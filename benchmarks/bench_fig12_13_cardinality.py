"""Figures 12 & 13: runtime and candidate counts vs dataset cardinality.

Fixed tau (3 in the paper; the scale's ``card_tau``), prefix subsets of one
generated collection per dataset — mirroring the paper's 20K..100K subset
sweeps at reproduction scale.

Paper shapes: every method grows with cardinality; the method ranking is
insensitive to collection size; PRT's candidates track REL more closely
than SET's.
"""

import pytest

from repro.bench.experiments import run_fig12_13
from repro.bench.reporting import render_figure

from conftest import save_and_print

DATASETS = ("swissprot", "treebank", "sentiment", "synthetic")


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig12_13(benchmark, dataset, scale, results_dir):
    cells = benchmark.pedantic(
        lambda: run_fig12_13(scale=scale, datasets=[dataset]),
        rounds=1, iterations=1,
    )
    text = render_figure(
        f"Figure 12/13 [{dataset}] runtime & candidates vs cardinality "
        f"(scale={scale.name}, tau={scale.card_tau})",
        cells,
    )
    save_and_print(results_dir, f"fig12_13_{dataset}", scale, text)

    for count in scale.cardinalities:
        counts = {c.results for c in cells if c.x_value == count}
        assert len(counts) == 1, f"methods disagree at n={count}: {counts}"
    # Monotonicity: more trees, at least as many results.
    rel = [c for c in cells if c.method == "REL"]
    rel.sort(key=lambda c: c.x_value)
    results = [c.results for c in rel]
    assert results == sorted(results)
