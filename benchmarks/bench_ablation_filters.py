"""Ablation: PartSJ filter variants, including the published window.

Measures candidates, results, and runtime for every combination of
matching semantics (paper / safe) and postorder window (paper / safe /
off) against the REL ground truth.  This is the benchmark behind
EXPERIMENTS.md finding F1: configurations using the published window
``Delta' = tau - floor(k/2)`` can return *fewer* results than REL.
"""

from repro.bench.experiments import run_ablation_filters
from repro.bench.reporting import format_table

from conftest import save_and_print


def test_ablation_filters(benchmark, scale, results_dir):
    cells = benchmark.pedantic(
        lambda: run_ablation_filters(scale=scale),
        rounds=1, iterations=1,
    )
    rel = next(c for c in cells if c.method == "REL")
    rows = []
    for cell in cells:
        rows.append([
            cell.method,
            cell.candidates,
            cell.results,
            f"{cell.total_time:.3f}",
            "exact" if cell.results == rel.results else
            f"MISSING {rel.results - cell.results}",
        ])
        assert cell.results <= rel.results
    table = format_table(
        ["variant", "candidates", "results", "total (s)", "vs ground truth"],
        rows,
    )
    text = (
        f"== Ablation: filter variants (scale={scale.name}, "
        f"n={scale.ablation_count}, tau={scale.sens_tau}) ==\n{table}\n"
    )
    save_and_print(results_dir, "ablation_filters", scale, text)
