"""Microbenchmarks: TED lower-bound filters (throughput and pruning power).

Measures the per-pair cost of each filter used by the baseline joins and
prints its pruning power on a clustered workload — the cost/selectivity
trade-off behind the method rankings in Figures 10/11.
"""

import itertools

import pytest

from repro.datasets.synthetic import SyntheticParams, generate_forest
from repro.ted.bounds import (
    binary_branch_lower_bound,
    degree_histogram_lower_bound,
    label_multiset_lower_bound,
    size_lower_bound,
    traversal_string_lower_bound,
)

BOUNDS = [
    ("size", size_lower_bound),
    ("labels", label_multiset_lower_bound),
    ("degrees", degree_histogram_lower_bound),
    ("traversal", traversal_string_lower_bound),
    ("binary_branch", binary_branch_lower_bound),
]


@pytest.fixture(scope="module")
def pairs():
    forest = generate_forest(
        16, SyntheticParams(avg_size=50, cluster_size=4), seed=31
    )
    return list(itertools.combinations(forest, 2))


@pytest.mark.parametrize("name,bound", BOUNDS)
def test_bound_throughput(benchmark, name, bound, pairs):
    tau = 2

    def run():
        return sum(1 for t1, t2 in pairs if bound(t1, t2) > tau)

    pruned = benchmark(run)
    print(f"\n[{name}] prunes {pruned}/{len(pairs)} pairs at tau={tau}")
    assert 0 <= pruned <= len(pairs)
