"""Benchmark: crash-safe persistence (PR 7, repro.persist) priced honestly.

PartSJ's preparation is deliberately cheap — partitioning is a linear
pass with hint-chained gamma searches — so snapshotting it is not a
big-speedup story and this benchmark does not pretend otherwise.  What
it records and guards is that **durability is (nearly) free**:

- **session snapshots**: ``save`` + checksummed container vs the cold
  ``from_file`` + ``prepare`` path it short-circuits.  Loading a warm
  sidecar restores every prepared tau *bit-identically* and must not
  cost materially more than preparing cold (``MAX_WARM_FRACTION``);
  saving must cost less than one cold preparation
  (``MAX_SAVE_FRACTION``).  The snapshot's value is crash-safety — a
  prepared session that survives process death at break-even wall cost.
- **write-ahead logging**: streaming ingest with ``wal=`` (the
  ``"batch"`` fsync policy, one log append per arrival) vs bare ingest.
  The guard bounds the overhead at ``MAX_WAL_OVERHEAD``; measured, it
  is a few percent.
- **recovery**: ``StreamingJoin.recover`` replays the log through the
  normal ingest path; the benchmark asserts the recovered pairs equal
  the pre-crash engine's, and records the replay wall time (it re-pays
  ingest, by design — recovery correctness, not speed, is the product).

``python benchmarks/bench_session_persist.py --snapshot`` regenerates
``BENCH_PR7.json``, the committed record the CI ``persist-smoke`` guard
refers to.

Run with ``pytest benchmarks/bench_session_persist.py``.
"""

import json
import sys
import time
from pathlib import Path

from repro.datasets.io import save_trees
from repro.persist.snapshot import sidecar_path
from repro.session import TreeCollection
from repro.stream import StreamingJoin

SNAPSHOT_PATH = Path(__file__).parent.parent / "BENCH_PR7.json"
SNAPSHOT_TAUS = (1, 2, 3)
REPEATS = 2
# CI guards (see the module docstring for why these are ceilings, not
# speedup claims): measured warm fractions hover around 0.6-1.0x, save
# around 0.05-0.4x, WAL overhead around 1.0-1.25x (noisy; best-of-N
# below).  A real regression — say an accidental per-append fsync —
# lands an order of magnitude past these.
MAX_WARM_FRACTION = 1.5
MAX_SAVE_FRACTION = 1.0
MAX_WAL_OVERHEAD = 1.5


def triples(pairs):
    return [(p.i, p.j, p.distance) for p in pairs]


def _best(fn, repeats):
    best_wall, best_value = None, None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        wall = time.perf_counter() - started
        if best_wall is None or wall < best_wall:
            best_wall, best_value = wall, value
    return best_wall, best_value


def measure_snapshot(trees, workdir, taus=SNAPSHOT_TAUS, repeats=REPEATS):
    """Cold prepare vs save/load, dataset + sidecar, equivalence asserted."""
    workdir = Path(workdir)
    dataset = workdir / "workload.trees"
    save_trees(trees, dataset)

    def cold_prepare():
        col = TreeCollection.from_file(dataset, sidecar=None)
        for tau in taus:
            col.prepare(tau)
        return col

    cold_wall, col = _best(cold_prepare, repeats)
    reference = {tau: triples(col.join(tau).run().pairs) for tau in taus}

    save_wall, snapshot = _best(
        lambda: col.save(sidecar_path(dataset), include_trees=False,
                         source=dataset),
        repeats,
    )
    warm_wall, warm = _best(lambda: TreeCollection.from_file(dataset), repeats)
    assert warm.provenance is not None, "sidecar was not auto-discovered"
    assert warm.prepared_taus() == sorted(taus)
    for tau in taus:
        assert triples(warm.join(tau).run().pairs) == reference[tau], (
            f"tau={tau}: warm-loaded session diverges from the saved one"
        )

    metrics = {
        "trees": len(trees),
        "taus": list(taus),
        "snapshot_bytes": Path(snapshot).stat().st_size,
        "cold_prepare_wall": round(cold_wall, 4),
        "save_wall": round(save_wall, 4),
        "warm_load_wall": round(warm_wall, 4),
        "warm_fraction_of_cold": round(warm_wall / max(cold_wall, 1e-9), 4),
        "save_fraction_of_cold": round(save_wall / max(cold_wall, 1e-9), 4),
        "warm_speedup": round(cold_wall / max(warm_wall, 1e-9), 3),
    }
    lines = [
        f"snapshot: cold from_file+prepare{list(taus)} {cold_wall:.3f}s | "
        f"save {save_wall:.3f}s | warm from_file {warm_wall:.3f}s "
        f"({metrics['warm_fraction_of_cold']:.2f}x cold, "
        f"{metrics['snapshot_bytes']} bytes)",
    ]
    return lines, metrics


def measure_wal(trees, workdir, tau=1, repeats=REPEATS):
    """Bare vs WAL-logged ingest, then crash-free recovery equivalence."""
    workdir = Path(workdir)
    wal_path = workdir / "ingest.wal"

    def ingest(wal=None):
        engine = StreamingJoin(tau, wal=wal)
        started = time.perf_counter()
        for tree in trees:
            engine.add(tree)
        engine.flush()
        wall = time.perf_counter() - started
        pairs = triples(engine.results())
        engine.close()
        return wall, pairs

    # Ingest walls are noisy at smoke scale; compare best-of-N to
    # best-of-N over the add+flush wall alone (a fresh engine truncates
    # and rewrites the log, so every logged repeat pays the full append
    # cost).
    def best_ingest(wal=None):
        walls_pairs = [ingest(wal) for _ in range(repeats)]
        return min(w for w, _ in walls_pairs), walls_pairs[0][1]

    bare_wall, bare_pairs = best_ingest()
    wal_wall, wal_pairs = best_ingest(wal=str(wal_path))
    assert wal_pairs == bare_pairs, "WAL-logged ingest diverges from bare"

    started = time.perf_counter()
    recovered = StreamingJoin.recover(wal_path)
    recover_wall = time.perf_counter() - started
    try:
        assert triples(recovered.results()) == bare_pairs, (
            "recovered state diverges from the logged stream"
        )
        replayed = recovered.stats().extra["wal"]["recovered"]["records"]
    finally:
        recovered.close()
    assert replayed == len(trees)

    metrics = {
        "trees": len(trees),
        "tau": tau,
        "results": len(bare_pairs),
        "bare_ingest_wall": round(bare_wall, 4),
        "wal_ingest_wall": round(wal_wall, 4),
        "wal_overhead": round(wal_wall / max(bare_wall, 1e-9), 4),
        "recover_wall": round(recover_wall, 4),
        "wal_bytes": wal_path.stat().st_size,
    }
    lines = [
        f"wal tau={tau}: bare ingest {bare_wall:.3f}s | logged "
        f"{wal_wall:.3f}s ({metrics['wal_overhead']:.3f}x) | recover "
        f"{recover_wall:.3f}s for {replayed} arrivals "
        f"({metrics['wal_bytes']} bytes)",
    ]
    return lines, metrics


def measure(trees, workdir, taus=SNAPSHOT_TAUS, repeats=REPEATS,
            wal_trees=None):
    lines = [
        "== session_persist: checksummed snapshots + streaming WAL ==",
        f"trees={len(trees)} (standard stream workload)",
    ]
    snap_lines, snap_metrics = measure_snapshot(trees, workdir, taus, repeats)
    wal_lines, wal_metrics = measure_wal(
        wal_trees if wal_trees is not None else trees, workdir,
        repeats=repeats,
    )
    lines += snap_lines + wal_lines
    return lines, {"snapshot": snap_metrics, "wal": wal_metrics}


def test_session_persist_timed(benchmark, stream_workload, tmp_path):
    result = benchmark.pedantic(
        lambda: measure(stream_workload, tmp_path, taus=(1,), repeats=1,
                        wal_trees=stream_workload[:100]),
        rounds=1, iterations=1,
    )
    assert result[1]["snapshot"]["cold_prepare_wall"] > 0


def test_equivalence_and_report(stream_workload, scale, results_dir, tmp_path):
    from conftest import save_and_print

    lines, metrics = measure(stream_workload, tmp_path, taus=(1, 2),
                             repeats=1, wal_trees=stream_workload[:150])
    assert metrics["wal"]["results"] > 0
    save_and_print(
        results_dir, "session_persist", scale, "\n".join(lines) + "\n"
    )


def test_smoke_guard_persist(stream_workload, tmp_path):
    """CI perf smoke: durability must stay (nearly) free.

    Warm sidecar loads at most ``MAX_WARM_FRACTION`` of a cold prepare,
    saving under ``MAX_SAVE_FRACTION`` of one, WAL-logged ingest within
    ``MAX_WAL_OVERHEAD`` of bare — with bit-identical results asserted
    inside the measurements.
    """
    _, metrics = measure(stream_workload, tmp_path, taus=SNAPSHOT_TAUS,
                         repeats=REPEATS, wal_trees=stream_workload[:150])
    snap, wal = metrics["snapshot"], metrics["wal"]
    assert snap["warm_fraction_of_cold"] <= MAX_WARM_FRACTION, (
        f"warm sidecar load out of bounds: {snap['warm_fraction_of_cold']}x "
        f"of cold prepare (warm {snap['warm_load_wall']}s vs cold "
        f"{snap['cold_prepare_wall']}s)"
    )
    assert snap["save_fraction_of_cold"] <= MAX_SAVE_FRACTION, (
        f"snapshot save out of bounds: {snap['save_fraction_of_cold']}x of "
        f"cold prepare"
    )
    assert wal["wal_overhead"] <= MAX_WAL_OVERHEAD, (
        f"WAL ingest overhead out of bounds: {wal['wal_overhead']}x of bare"
    )


def write_snapshot() -> dict:
    """Regenerate ``BENCH_PR7.json`` from a fresh measurement.

    Uses the exact stream-workload definition of
    ``benchmarks/conftest.py`` (smoke count), so the CI guard compares
    like with like.
    """
    import tempfile

    from conftest import (
        STREAM_WORKLOAD_COUNTS,
        STREAM_WORKLOAD_SEED,
        STREAM_WORKLOAD_SHAPE,
        make_stream_workload,
    )

    count = STREAM_WORKLOAD_COUNTS["smoke"]
    trees = make_stream_workload(count)
    with tempfile.TemporaryDirectory(prefix="bench-persist-") as workdir:
        lines, metrics = measure(trees, workdir, wal_trees=trees[:150])
    snapshot = {
        "description": (
            "Crash-safe persistence (PR 7, repro.persist) on the standard "
            "stream workload (smoke scale). snapshot: cold_prepare_wall = "
            "from_file + prepare taus {1,2,3} with no sidecar; "
            "warm_load_wall = from_file auto-discovering the sidecar "
            "(restores every prepared tau, bit-identical results "
            "asserted). PartSJ preparation is cache-dominated and cheap "
            "by design, so warm load is a break-even durability story, "
            "not a big speedup; the CI guard bounds warm at 1.5x cold and "
            "save at 1.0x cold. wal: ingest with a 'batch'-fsync "
            "write-ahead log vs bare, best-of-N walls (guard 1.5x; "
            "measured ~1.1x), plus recover() replay wall. Regenerate "
            "with: python "
            "benchmarks/bench_session_persist.py --snapshot"
        ),
        "workload": {
            "count": count,
            **STREAM_WORKLOAD_SHAPE,
            "seed": STREAM_WORKLOAD_SEED,
        },
        "guards": {
            "max_warm_fraction": MAX_WARM_FRACTION,
            "max_save_fraction": MAX_SAVE_FRACTION,
            "max_wal_overhead": MAX_WAL_OVERHEAD,
        },
        **metrics,
    }
    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
    print("\n".join(lines))
    print(f"wrote {SNAPSHOT_PATH}")
    return snapshot


if __name__ == "__main__":
    if "--snapshot" in sys.argv:
        write_snapshot()
    else:
        print(__doc__)
