"""Figures 10 & 11: runtime and candidate counts vs the TED threshold tau.

One benchmark per dataset; each executes the STR / SET / PRT / REL series
over the scale's tau grid, records the total wall time as the benchmark
value, and prints + saves the paper-style tables (runtime split and
candidate counts).

Paper shapes being reproduced:
- PRT is the fastest method at every tau, with the largest gap at tau=1;
- STR's bar is dominated by candidate generation (full string DP);
- SET's bar is dominated by TED verification;
- candidates: REL <= STR <= PRT << SET as tau grows.
"""

import pytest

from repro.bench.experiments import run_fig10_11
from repro.bench.reporting import candidates_table, render_figure, runtime_table

from conftest import save_and_print

DATASETS = ("swissprot", "treebank", "sentiment", "synthetic")


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig10_11(benchmark, dataset, scale, results_dir):
    cells = benchmark.pedantic(
        lambda: run_fig10_11(scale=scale, datasets=[dataset]),
        rounds=1, iterations=1,
    )
    text = render_figure(
        f"Figure 10/11 [{dataset}] runtime & candidates vs tau "
        f"(scale={scale.name}, n={scale.join_count})",
        cells,
    )
    save_and_print(results_dir, f"fig10_11_{dataset}", scale, text)

    # Integrity: every method returns the same join result per tau.
    for tau in scale.taus:
        counts = {c.results for c in cells if c.x_value == tau}
        assert len(counts) == 1, f"methods disagree at tau={tau}: {counts}"
    # Shape check: PRT beats the paper-faithful STR at the smallest tau.
    tau0 = scale.taus[0]
    str_time = next(
        c.total_time for c in cells if c.method == "STR" and c.x_value == tau0
    )
    prt_time = next(
        c.total_time for c in cells if c.method == "PRT" and c.x_value == tau0
    )
    assert prt_time < str_time, (
        f"expected PRT < STR at tau={tau0}: prt={prt_time:.2f}s str={str_time:.2f}s"
    )
