"""Ablation: banded early-exit string DP vs the paper's full string DP.

The paper's STR pays the full ``O(n^2)`` edit-distance DP per window pair,
which is why its candidate-generation bars dominate Figure 10.  Our STR
implementation optionally bands the DP to ``O(tau * n)`` with early exit.
This benchmark quantifies the speedup (candidates and results are
identical by construction).
"""

from repro.bench.experiments import run_ablation_str_banding
from repro.bench.reporting import format_table

from conftest import save_and_print


def test_ablation_str_banding(benchmark, scale, results_dir):
    cells = benchmark.pedantic(
        lambda: run_ablation_str_banding(scale=scale),
        rounds=1, iterations=1,
    )
    rows = []
    for tau in scale.taus:
        full = next(
            c for c in cells if c.x_value == tau and c.method == "STR[full]"
        )
        banded = next(
            c for c in cells if c.x_value == tau and c.method == "STR[banded]"
        )
        assert full.results == banded.results
        assert full.candidates == banded.candidates
        speedup = full.candidate_time / max(banded.candidate_time, 1e-9)
        rows.append([
            tau,
            f"{full.candidate_time:.3f}",
            f"{banded.candidate_time:.3f}",
            f"{speedup:.1f}x",
            full.candidates,
        ])
    table = format_table(
        ["tau", "full DP cand-gen (s)", "banded cand-gen (s)", "speedup",
         "candidates"],
        rows,
    )
    text = (
        f"== Ablation: STR banded vs full string DP (swissprot-like, "
        f"scale={scale.name}, n={scale.ablation_count}) ==\n{table}\n"
    )
    save_and_print(results_dir, "ablation_str_banding", scale, text)
