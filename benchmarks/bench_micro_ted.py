"""Microbenchmarks: TED algorithms on characteristic tree shapes.

Not a paper figure — engineering benchmarks for the verification kernel
that every join method shares.  The adversarial comb shape demonstrates
why the shape-adaptive hybrid (our RTED stand-in) matters: plain
Zhang–Shasha degrades on leaf-first combs while the hybrid stays flat.
"""

import pytest

from repro.datasets.synthetic import SyntheticParams, generate_forest
from repro.ted.rted import ted_hybrid
from repro.ted.zhang_shasha import zhang_shasha
from repro.tree.node import Tree


def make_leaf_first_comb(depth: int) -> Tree:
    """Children ordered (leaf, subtree): adversarial for plain ZS."""
    text = "{a{l}" * depth + "{a}" + "}" * depth
    return Tree.from_bracket(text)


def make_random_pair(seed: int):
    params = SyntheticParams(avg_size=60, decay=0.1, cluster_size=2)
    forest = generate_forest(2, params, seed=seed)
    return forest[0], forest[1]


@pytest.mark.parametrize("algorithm,impl", [
    ("zhang_shasha", zhang_shasha),
    ("hybrid", ted_hybrid),
])
def test_ted_random_trees(benchmark, algorithm, impl):
    t1, t2 = make_random_pair(17)
    distance = benchmark(impl, t1, t2)
    assert distance == zhang_shasha(t1, t2)


@pytest.mark.parametrize("algorithm,impl", [
    ("zhang_shasha", zhang_shasha),
    ("hybrid", ted_hybrid),
])
def test_ted_adversarial_comb(benchmark, algorithm, impl):
    comb = make_leaf_first_comb(40)
    distance = benchmark(impl, comb, comb)
    assert distance == 0
