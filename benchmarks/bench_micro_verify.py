"""Microbenchmark: unbounded vs threshold-aware verification.

The "TED computation" bars of Figures 10/12/14 are verify-phase time, so
this is the microbenchmark behind the verifier engine in
``repro.baselines.common``: the same candidate pairs (all size-window
pairs of the standard synthetic workload) are verified by

- the *unbounded* verifier (``threshold_aware=False``) — a full
  Zhang–Shasha per candidate, the behaviour of the original ``Verifier``;
- the *bounded* engine — cached-feature lower bounds, the trivial
  upper-bound short-circuit, and the tau-banded early-exit DP of
  :mod:`repro.ted.cutoff`.

Besides per-engine throughput (``--benchmark-only``), the comparison test
asserts the two engines accept identical pairs, reports the filter hit
rates, and checks the bounded engine is at least 2x faster at small tau.

Run with ``pytest benchmarks/bench_micro_verify.py`` (add
``--benchmark-only`` for the timed variants alone).
"""

import time

import pytest

from repro.baselines.common import SizeSortedCollection, Verifier

TAUS = (1, 2)


def window_pairs(trees, tau):
    """Candidate pairs: every size-window pair, as original-index tuples."""
    collection = SizeSortedCollection(trees)
    return [
        (collection.original_index(a), collection.original_index(b))
        for a, b in collection.iter_window_pairs(tau)
    ]


def run_engine(trees, pairs, tau, **options):
    """Verify every candidate; return (accepted pair dict, verifier)."""
    verifier = Verifier(trees, tau, **options)
    accepted = {}
    for i, j in pairs:
        distance = verifier.verify(i, j)
        if distance is not None:
            accepted[(i, j)] = distance
    return accepted, verifier


def best_of(repeats, fn):
    """Minimum wall time over ``repeats`` runs (robust to CI noise)."""
    best_time, best_result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best_time is None or elapsed < best_time:
            best_time, best_result = elapsed, result
    return best_time, best_result


@pytest.mark.parametrize("tau", TAUS)
def test_verify_unbounded(benchmark, verify_workload, tau):
    pairs = window_pairs(verify_workload, tau)
    accepted = benchmark(
        lambda: run_engine(verify_workload, pairs, tau, threshold_aware=False)[0]
    )
    assert len(accepted) <= len(pairs)


@pytest.mark.parametrize("tau", TAUS)
def test_verify_bounded(benchmark, verify_workload, tau):
    pairs = window_pairs(verify_workload, tau)
    accepted = benchmark(lambda: run_engine(verify_workload, pairs, tau)[0])
    assert len(accepted) <= len(pairs)


def test_bounded_engine_speedup_and_hit_rates(
    verify_workload, scale, results_dir
):
    from conftest import save_and_print

    lines = [
        "== micro_verify: unbounded vs threshold-aware verification ==",
        f"trees={len(verify_workload)} (standard synthetic workload)",
    ]
    for tau in TAUS:
        pairs = window_pairs(verify_workload, tau)

        # Best-of-3 timings: a single scheduler stall on a shared CI
        # runner must not flip the speedup assertion.
        slow_time, (slow_accepted, slow) = best_of(
            3,
            lambda: run_engine(verify_workload, pairs, tau, threshold_aware=False),
        )
        fast_time, (fast_accepted, fast) = best_of(
            3, lambda: run_engine(verify_workload, pairs, tau)
        )

        # Identical verification outcomes, including exact distances.
        assert fast_accepted == slow_accepted

        filtered = fast.stats_lb_filtered
        short_circuited = fast.stats_ub_accepted
        early = fast.stats_ted_early_exits
        speedup = slow_time / fast_time if fast_time > 0 else float("inf")
        lines.append(
            f"tau={tau}: candidates={len(pairs)} results={len(fast_accepted)} "
            f"lb_filtered={filtered} ({filtered / max(1, len(pairs)):.0%}) "
            f"ub_accepted={short_circuited} ted_early_exits={early} "
            f"dp_runs={fast.stats_ted_calls} | "
            f"unbounded {slow_time:.3f}s vs bounded {fast_time:.3f}s "
            f"-> {speedup:.1f}x"
        )
        # The acceptance bar for the engine: >= 2x verify-phase speedup at
        # small tau on the standard synthetic workload.
        assert speedup >= 2.0, lines[-1]
    save_and_print(results_dir, "micro_verify", scale, "\n".join(lines) + "\n")
