"""Benchmark: observability (PR 8, repro.obs) priced honestly.

Tracing is opt-in and coarse-grained (phase / shard / chunk spans, never
per tree or candidate), so its cost story has three tiers, each measured
against the same serial PartSJ join on the standard probe workload:

- **tracer off** (the default): every instrumented call site hits
  :data:`repro.obs.trace.NULL_TRACER`, whose ``span()`` returns one
  pre-allocated no-op context manager.  The per-call cost is measured
  directly (``null_span_ns``) and guarded in nanoseconds — the no-op
  path must stay cheap enough to be unmeasurable at join scale.
- **tracer on**: a :class:`repro.obs.Tracer` records the span tree.
  O(shards + chunks) spans means the overhead is a fixed handful of
  clock reads and allocations per phase — the guard bounds the traced
  wall at ``MAX_TRACE_OVERHEAD`` of untraced (CI uses the same bound).
- **tracer on + export**: the traced run plus :func:`write_jsonl` of
  the finished spans, i.e. the full ``join --trace FILE`` cost.

Results are asserted bit-identical across all three tiers inside the
measurement — the overhead numbers are only meaningful if tracing
changed nothing.

``python benchmarks/bench_obs_overhead.py --snapshot`` regenerates
``BENCH_PR8.json``, the committed record the CI ``obs-smoke`` guard
refers to.

Run with ``pytest benchmarks/bench_obs_overhead.py``.
"""

import json
import sys
import time
from pathlib import Path

from repro.core.join import partsj_join
from repro.obs.export import write_jsonl
from repro.obs.trace import NULL_TRACER, Tracer

SNAPSHOT_PATH = Path(__file__).parent.parent / "BENCH_PR8.json"
TAUS = (1, 2, 3)
REPEATS = 3
# Guards: traced walls hover around 1.0-1.1x of untraced (the span count
# is O(phases), not O(trees)); 1.5x is the CI bound — an accidental
# per-tree or per-candidate span shows up an order of magnitude past it.
# The null-span guard is per *call*: 2000 ns is ~100x the measured cost,
# far under timing noise at join scale, yet catches a null path that
# starts allocating or reading clocks.
MAX_TRACE_OVERHEAD = 1.5
MAX_EXPORT_OVERHEAD = 1.6
MAX_NULL_SPAN_NS = 2000.0


def triples(result):
    return [(p.i, p.j, p.distance) for p in result.pairs]


def _best(fn, repeats):
    best_wall, best_value = None, None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        wall = time.perf_counter() - started
        if best_wall is None or wall < best_wall:
            best_wall, best_value = wall, value
    return best_wall, best_value


def measure_null_span(calls: int = 200_000) -> float:
    """Nanoseconds per disabled ``tracer.span(...)`` call, best of 3."""
    def burn():
        span = NULL_TRACER.span
        for _ in range(calls):
            with span("partsj.probe"):
                pass
    wall, _ = _best(burn, 3)
    return wall / calls * 1e9


def measure_tau(trees, tau, workdir, repeats=REPEATS):
    """Off / on / on+export walls for one serial join, identity asserted."""
    workdir = Path(workdir)

    off_wall, off_result = _best(lambda: partsj_join(trees, tau), repeats)

    def traced():
        tracer = Tracer()
        result = partsj_join(trees, tau, tracer=tracer)
        return result, tracer

    on_wall, (on_result, tracer) = _best(traced, repeats)

    def traced_exported():
        tracer = Tracer()
        result = partsj_join(trees, tau, tracer=tracer)
        write_jsonl(tracer.finished(), workdir / f"tau{tau}.jsonl")
        return result

    export_wall, export_result = _best(traced_exported, repeats)

    reference = triples(off_result)
    assert triples(on_result) == reference, (
        f"tau={tau}: traced join diverges from untraced"
    )
    assert triples(export_result) == reference, (
        f"tau={tau}: traced+exported join diverges from untraced"
    )

    metrics = {
        "tau": tau,
        "results": len(reference),
        "spans": len(tracer.finished()),
        "off_wall": round(off_wall, 4),
        "on_wall": round(on_wall, 4),
        "export_wall": round(export_wall, 4),
        "trace_overhead": round(on_wall / max(off_wall, 1e-9), 4),
        "export_overhead": round(export_wall / max(off_wall, 1e-9), 4),
    }
    line = (
        f"tau={tau}: off {off_wall:.3f}s | traced {on_wall:.3f}s "
        f"({metrics['trace_overhead']:.3f}x, {metrics['spans']} spans) | "
        f"traced+jsonl {export_wall:.3f}s "
        f"({metrics['export_overhead']:.3f}x)"
    )
    return [line], metrics


def measure(trees, workdir, taus=TAUS, repeats=REPEATS):
    null_ns = measure_null_span()
    lines = [
        "== obs_overhead: tracer off / on / on+export ==",
        f"trees={len(trees)} (standard probe workload)",
        f"disabled tracer span(): {null_ns:.0f} ns/call",
    ]
    per_tau = []
    for tau in taus:
        tau_lines, tau_metrics = measure_tau(trees, tau, workdir, repeats)
        lines += tau_lines
        per_tau.append(tau_metrics)
    return lines, {"null_span_ns": round(null_ns, 1), "taus": per_tau}


def test_obs_overhead_timed(benchmark, probe_workload, tmp_path):
    result = benchmark.pedantic(
        lambda: measure(probe_workload, tmp_path, taus=(1,), repeats=1),
        rounds=1, iterations=1,
    )
    assert result[1]["taus"][0]["off_wall"] > 0


def test_equivalence_and_report(probe_workload, scale, results_dir, tmp_path):
    from conftest import save_and_print

    lines, metrics = measure(probe_workload, tmp_path)
    assert all(m["spans"] > 0 for m in metrics["taus"])
    save_and_print(
        results_dir, "obs_overhead", scale, "\n".join(lines) + "\n"
    )


def test_smoke_guard_obs(probe_workload, tmp_path):
    """CI perf smoke: tracing must stay (nearly) free.

    The traced wall stays within ``MAX_TRACE_OVERHEAD`` of untraced,
    export adds only the JSONL write, and the disabled-tracer span call
    stays in the nanosecond regime — with bit-identical results
    asserted inside the measurements.
    """
    _, metrics = measure(probe_workload, tmp_path)
    assert metrics["null_span_ns"] <= MAX_NULL_SPAN_NS, (
        f"disabled tracer span() out of bounds: "
        f"{metrics['null_span_ns']} ns/call"
    )
    for tau_metrics in metrics["taus"]:
        assert tau_metrics["trace_overhead"] <= MAX_TRACE_OVERHEAD, (
            f"tau={tau_metrics['tau']}: traced wall out of bounds: "
            f"{tau_metrics['trace_overhead']}x of untraced"
        )
        assert tau_metrics["export_overhead"] <= MAX_EXPORT_OVERHEAD, (
            f"tau={tau_metrics['tau']}: traced+export wall out of bounds: "
            f"{tau_metrics['export_overhead']}x of untraced"
        )


def write_snapshot() -> dict:
    """Regenerate ``BENCH_PR8.json`` from a fresh measurement.

    Uses the exact probe-workload definition of
    ``benchmarks/conftest.py`` (smoke count), so the CI guard compares
    like with like.
    """
    import tempfile

    from conftest import PROBE_WORKLOAD_COUNTS, PROBE_WORKLOAD_SEED, \
        PROBE_WORKLOAD_SHAPE, make_probe_workload

    count = PROBE_WORKLOAD_COUNTS["smoke"]
    trees = make_probe_workload(count)
    with tempfile.TemporaryDirectory(prefix="bench-obs-") as workdir:
        lines, metrics = measure(trees, workdir)
    snapshot = {
        "description": (
            "Observability overhead (PR 8, repro.obs) on the standard "
            "probe workload (smoke scale), serial PartSJ per tau. "
            "off_wall = partsj_join with the default NULL_TRACER; "
            "on_wall = the same join recording a span tree; export_wall "
            "= traced join + write_jsonl of the finished spans (the "
            "join --trace FILE cost). Bit-identical pairs asserted "
            "across all three tiers. null_span_ns is the per-call cost "
            "of the disabled tracer's span() (one shared no-op context "
            "manager). CI guards: traced <= 1.5x untraced, "
            "traced+export <= 1.6x, null span <= 2000 ns. Regenerate "
            "with: python benchmarks/bench_obs_overhead.py --snapshot"
        ),
        "workload": {
            "count": count,
            **PROBE_WORKLOAD_SHAPE,
            "seed": PROBE_WORKLOAD_SEED,
        },
        "guards": {
            "max_trace_overhead": MAX_TRACE_OVERHEAD,
            "max_export_overhead": MAX_EXPORT_OVERHEAD,
            "max_null_span_ns": MAX_NULL_SPAN_NS,
        },
        **metrics,
    }
    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
    print("\n".join(lines))
    print(f"wrote {SNAPSHOT_PATH}")
    return snapshot


if __name__ == "__main__":
    if "--snapshot" in sys.argv:
        write_snapshot()
    else:
        print(__doc__)
