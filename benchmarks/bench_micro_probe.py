"""Microbenchmark: flat-array vs PR-1 candidate generation.

PR 1 made verification ~50-100x faster, which left PartSJ dominated by
candidate generation — the probe/insert machinery of Algorithm 1 and the
Section 3.4 two-layer index.  This benchmark runs the current flat-array
engine (interned labels, packed twig keys, one index entry per subgraph,
int-array matching) head to head against the frozen PR-1 reference
implementation (``_legacy_candidates``) on the standard probe workload:

- both joins must return *bit-identical* results (same pairs, same exact
  distances) — verification is shared, so any difference would be a
  candidate-generation bug;
- the probe/insert breakdown (``JoinStats.probe_time`` / ``index_time``)
  is reported per tau and the candidate-generation phase must be >= 3x
  faster than PR 1 at tau in {1, 2};
- ``python benchmarks/bench_micro_probe.py --snapshot`` regenerates
  ``BENCH_PR2.json`` (tau in {1, 2, 3} end-to-end PartSJ timings plus the
  measured speedups), which the CI perf-smoke step uses as its regression
  baseline: the live speedup may not fall below half the committed one.

Run with ``pytest benchmarks/bench_micro_probe.py`` (the comparison test)
or ``--benchmark-only`` for the timed engine variants alone.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.core.join import partsj_join

sys.path.insert(0, str(Path(__file__).parent))
from _legacy_candidates import legacy_partsj_join  # noqa: E402

SNAPSHOT_PATH = Path(__file__).parent.parent / "BENCH_PR2.json"
TAUS = (1, 2)
SNAPSHOT_TAUS = (1, 2, 3)
REPEATS = 4
# Acceptance bar for the flat-array engine: candidate generation >= 3x
# faster than PR 1 at small tau on the standard probe workload.
MIN_SPEEDUP = 3.0


def best_joins(trees, tau, repeats=REPEATS):
    """Best-of-``repeats`` runs of both engines (interleaved, noise-robust).

    Returns ``(new_result, legacy_pairs, legacy_stats)`` where each engine
    kept its fastest candidate-generation run.
    """
    best_new = None
    best_legacy = None
    for _ in range(repeats):
        result = partsj_join(trees, tau)
        if (
            best_new is None
            or result.stats.candidate_time < best_new.stats.candidate_time
        ):
            best_new = result
        pairs, stats = legacy_partsj_join(trees, tau)
        if best_legacy is None or stats.candidate_time < best_legacy[1].candidate_time:
            best_legacy = (pairs, stats)
    return best_new, best_legacy[0], best_legacy[1]


@pytest.mark.parametrize("tau", TAUS)
def test_candidates_flat(benchmark, probe_workload, tau):
    result = benchmark(lambda: partsj_join(probe_workload, tau))
    assert result.stats.candidates >= result.stats.results


@pytest.mark.parametrize("tau", TAUS)
def test_candidates_legacy(benchmark, probe_workload, tau):
    pairs, stats = benchmark(lambda: legacy_partsj_join(probe_workload, tau))
    assert stats.candidates >= len(pairs)


def measure(trees, taus=TAUS, repeats=REPEATS):
    """Run both engines per tau; return report lines + per-tau metrics."""
    lines = [
        "== micro_probe: flat-array vs PR-1 candidate generation ==",
        f"trees={len(trees)} (standard probe workload)",
    ]
    metrics = {}
    for tau in taus:
        new, legacy_pairs, legacy = best_joins(trees, tau, repeats)
        new_pairs = [(p.i, p.j, p.distance) for p in new.pairs]
        old_pairs = [(p.i, p.j, p.distance) for p in legacy_pairs]
        assert new_pairs == old_pairs, f"tau={tau}: candidate engines disagree"
        stats = new.stats
        speedup = legacy.candidate_time / max(stats.candidate_time, 1e-9)
        metrics[tau] = {
            "trees": len(trees),
            "results": stats.results,
            "candidates": stats.candidates,
            "probe_hits": stats.extra["probe_hits"],
            "index_entries": stats.extra["total_index_entries"],
            "legacy_index_entries": legacy.total_index_entries,
            "probe_time": round(stats.probe_time, 4),
            "index_time": round(stats.index_time, 4),
            "candidate_time": round(stats.candidate_time, 4),
            "verify_time": round(stats.verify_time, 4),
            "legacy_probe_time": round(legacy.probe_time, 4),
            "legacy_index_time": round(legacy.index_time, 4),
            "legacy_candidate_time": round(legacy.candidate_time, 4),
            "candidate_speedup": round(speedup, 2),
        }
        lines.append(
            f"tau={tau}: cand gen {legacy.candidate_time:.3f}s -> "
            f"{stats.candidate_time:.3f}s ({speedup:.1f}x) | "
            f"probe {legacy.probe_time:.3f}s -> {stats.probe_time:.3f}s, "
            f"insert {legacy.index_time:.3f}s -> {stats.index_time:.3f}s | "
            f"entries {legacy.total_index_entries} -> "
            f"{stats.extra['total_index_entries']} | "
            f"candidates={stats.candidates} results={stats.results}"
        )
    return lines, metrics


def test_flat_engine_speedup_and_identical_results(
    probe_workload, scale, results_dir
):
    from conftest import save_and_print

    lines, metrics = measure(probe_workload)
    for tau, m in metrics.items():
        # One entry per subgraph vs 2*tau+1 duplicated window keys.
        assert m["index_entries"] * (2 * tau + 1) == m["legacy_index_entries"]
        assert m["candidate_speedup"] >= MIN_SPEEDUP, lines
    save_and_print(results_dir, "micro_probe", scale, "\n".join(lines) + "\n")


def test_smoke_guard_against_committed_baseline(probe_workload):
    """CI regression guard: live speedup vs. the committed snapshot.

    Ratios (not absolute seconds) are compared so the guard is robust to
    runner hardware: candidate generation has regressed when the live
    legacy/new speedup falls below *half* the committed speedup.
    """
    if not SNAPSHOT_PATH.exists():
        pytest.skip("no committed BENCH_PR2.json")
    committed = json.loads(SNAPSHOT_PATH.read_text())
    _, metrics = measure(probe_workload, repeats=3)
    for tau in TAUS:
        recorded = committed["taus"][str(tau)]["candidate_speedup"]
        live = metrics[tau]["candidate_speedup"]
        assert live >= recorded / 2, (
            f"tau={tau}: candidate generation regressed: live speedup "
            f"{live:.2f}x < committed {recorded:.2f}x / 2"
        )


def write_snapshot() -> dict:
    """Regenerate ``BENCH_PR2.json`` from a fresh measurement.

    Uses the exact probe-workload definition of ``benchmarks/conftest.py``
    (smoke count), so the CI guard always compares the committed ratio
    against a live run of the same workload.
    """
    from conftest import (
        PROBE_WORKLOAD_COUNTS,
        PROBE_WORKLOAD_SEED,
        PROBE_WORKLOAD_SHAPE,
        make_probe_workload,
    )

    count = PROBE_WORKLOAD_COUNTS["smoke"]
    trees = make_probe_workload(count)
    lines, metrics = measure(trees, taus=SNAPSHOT_TAUS)
    snapshot = {
        "description": (
            "PartSJ end-to-end timings and candidate-generation speedup of "
            "the flat-array engine (PR 2) vs the PR-1 reference, on the "
            "standard probe workload (smoke scale). Regenerate with: "
            "python benchmarks/bench_micro_probe.py --snapshot"
        ),
        "workload": {
            "count": count,
            **PROBE_WORKLOAD_SHAPE,
            "seed": PROBE_WORKLOAD_SEED,
        },
        "taus": {str(tau): m for tau, m in metrics.items()},
    }
    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
    print("\n".join(lines))
    print(f"wrote {SNAPSHOT_PATH}")
    return snapshot


if __name__ == "__main__":
    if "--snapshot" in sys.argv:
        write_snapshot()
    else:
        print(__doc__)
