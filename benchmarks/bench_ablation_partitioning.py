"""Ablation: MaxMinSize partitioning vs random partitioning.

The paper's Section 4.3 closes with: "we also experimentally tested the
effectiveness of our partitioning scheme in PRT and found that the general
performance improvement it offers compared to performing random tree
partitioning is 50%-300%".  This benchmark reproduces that comparison on
the synthetic dataset across the tau grid and asserts MaxMinSize does not
lose (the 50%-300% band is printed for eyeballing rather than asserted —
it depends on the workload).
"""

from repro.bench.experiments import run_ablation_partitioning
from repro.bench.harness import CellResult
from repro.bench.reporting import format_table

from conftest import save_and_print


def test_ablation_partitioning(benchmark, scale, results_dir):
    cells: list[CellResult] = benchmark.pedantic(
        lambda: run_ablation_partitioning(scale=scale),
        rounds=1, iterations=1,
    )
    rows = []
    improvements = []
    for tau in scale.taus:
        maxmin = next(
            c for c in cells if c.x_value == tau and "maxmin" in c.method
        )
        rand = next(
            c for c in cells if c.x_value == tau and "random" in c.method
        )
        improvement = (rand.total_time / maxmin.total_time - 1.0) * 100.0
        improvements.append(improvement)
        rows.append([
            tau,
            f"{maxmin.total_time:.3f}", maxmin.candidates,
            f"{rand.total_time:.3f}", rand.candidates,
            f"{improvement:+.0f}%",
        ])
        assert maxmin.results == rand.results  # both strategies are exact
    table = format_table(
        ["tau", "maxmin (s)", "maxmin cand", "random (s)", "random cand",
         "improvement"],
        rows,
    )
    text = (
        f"== Ablation: MaxMinSize vs random partitioning "
        f"(scale={scale.name}, n={scale.ablation_count}) ==\n"
        f"(paper reports a 50%-300% improvement)\n{table}\n"
    )
    save_and_print(results_dir, "ablation_partitioning", scale, text)
    # MaxMinSize must win on average across the tau grid.
    assert sum(improvements) / len(improvements) > 0
