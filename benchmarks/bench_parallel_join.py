"""Benchmark: the sharded multiprocess executor vs the serial engine.

PR 3 adds ``repro.parallel`` — candidate generation sharded over the size
axis (tau-wide handoff bands) plus chunked parallel verification.  This
benchmark runs PartSJ end to end at ``workers`` in {1, 2, 4} on the
standard parallel workload (dense near-duplicate clusters, so the banded
TED verification — the embarrassingly parallel stage — dominates):

- every worker count must return *bit-identical* results (same pairs,
  same exact distances) — sharding or merge bugs show up here first;
- wall-clock times and speedups vs the serial engine are reported per
  tau, along with the executor's own breakdown (per-shard times, band
  overhead, verify chunks);
- ``python benchmarks/bench_parallel_join.py --snapshot`` regenerates
  ``BENCH_PR3.json`` (tau in {1, 2, 3}, workers in {1, 2, 4}), which the
  CI perf-smoke step uses as its regression record.

Speedups are hardware-dependent: the snapshot records the host's usable
CPU count, and on a single-CPU host (e.g. a constrained container) the
expected "speedup" is < 1 — worker processes time-slice one core and the
measurement only bounds the executor's overhead.  The CI guard therefore
asserts *multi-worker no slower than serial* only when at least two CPUs
are usable, and on single-CPU hosts just bounds the overhead factor.

Run with ``pytest benchmarks/bench_parallel_join.py``.
"""

import json
import os
import sys
from pathlib import Path

import pytest

from repro.core.join import PartSJConfig, partsj_join

SNAPSHOT_PATH = Path(__file__).parent.parent / "BENCH_PR3.json"
SNAPSHOT_TAUS = (1, 2, 3)
WORKER_COUNTS = (1, 2, 4)
REPEATS = 2
# Guard tolerances: multicore hosts must not regress past serial (15%
# noise headroom); single-CPU hosts only bound the time-slicing overhead.
MULTICORE_TOLERANCE = 1.15
SINGLE_CPU_TOLERANCE = 2.0


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1  # pragma: no cover - non-Linux fallback


def best_run(trees, tau, workers, repeats=REPEATS):
    """Best-of-``repeats`` wall time; returns ``(wall, result)``."""
    import time

    best_wall = None
    best_result = None
    config = PartSJConfig(workers=workers)
    for _ in range(repeats):
        started = time.perf_counter()
        result = partsj_join(trees, tau, config)
        wall = time.perf_counter() - started
        if best_wall is None or wall < best_wall:
            best_wall = wall
            best_result = result
    return best_wall, best_result


def measure(trees, taus=SNAPSHOT_TAUS, worker_counts=WORKER_COUNTS,
            repeats=REPEATS):
    """Serial vs parallel runs per tau; returns report lines + metrics."""
    lines = [
        "== parallel_join: sharded executor vs serial engine ==",
        f"trees={len(trees)} usable_cpus={usable_cpus()} "
        f"(standard parallel workload)",
    ]
    metrics = {}
    for tau in taus:
        walls = {}
        reference = None
        shard_info = {}
        for workers in worker_counts:
            wall, result = best_run(trees, tau, workers, repeats)
            walls[workers] = wall
            pairs = [(p.i, p.j, p.distance) for p in result.pairs]
            if reference is None:
                reference = pairs
                serial_stats = result.stats
            else:
                assert pairs == reference, (
                    f"tau={tau} workers={workers}: parallel executor "
                    "disagrees with the serial engine"
                )
                shard_info[workers] = {
                    "shards": len(result.stats.extra.get("shards", [])),
                    "band_trees": result.stats.extra.get("band_trees", 0),
                    "verify_chunks": result.stats.extra.get("verify_chunks", 0),
                }
        serial_wall = walls[worker_counts[0]]
        metrics[tau] = {
            "trees": len(trees),
            "candidates": serial_stats.candidates,
            "results": serial_stats.results,
            "serial_candidate_time": round(serial_stats.candidate_time, 4),
            "serial_verify_time": round(serial_stats.verify_time, 4),
            "wall": {str(w): round(walls[w], 4) for w in worker_counts},
            "speedup": {
                str(w): round(serial_wall / max(walls[w], 1e-9), 3)
                for w in worker_counts
            },
            "parallel": {str(w): info for w, info in shard_info.items()},
        }
        speedups = " ".join(
            f"{w}w={serial_wall / max(walls[w], 1e-9):.2f}x"
            for w in worker_counts[1:]
        )
        lines.append(
            f"tau={tau}: serial {serial_wall:.3f}s "
            f"(verify {serial_stats.verify_time:.3f}s) | "
            + " ".join(f"{w}w {walls[w]:.3f}s" for w in worker_counts[1:])
            + f" | speedup {speedups} | candidates={serial_stats.candidates} "
            f"results={serial_stats.results}"
        )
    return lines, metrics


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_join_timed(benchmark, parallel_workload, workers):
    result = benchmark.pedantic(
        lambda: partsj_join(parallel_workload, 2, PartSJConfig(workers=workers)),
        rounds=1, iterations=1,
    )
    assert result.stats.results >= 0


def test_equivalence_and_report(parallel_workload, scale, results_dir):
    from conftest import save_and_print

    lines, metrics = measure(parallel_workload, taus=(1, 2), repeats=1)
    for tau, m in metrics.items():
        assert m["wall"]["1"] > 0
    save_and_print(results_dir, "parallel_join", scale, "\n".join(lines) + "\n")


def test_smoke_guard_multiworker_not_slower(parallel_workload):
    """CI perf smoke: the multi-worker run vs serial on the snapshot workload.

    On a host with >= 2 usable CPUs the 2-worker run must be no slower
    than serial (within noise tolerance) — sharded candidate generation
    plus parallel verification must at least pay for the pool.  On a
    single-CPU host a speedup is physically impossible (workers
    time-slice one core), so the guard only bounds the executor overhead.
    Result equivalence is asserted inside ``measure`` either way.
    """
    _, metrics = measure(parallel_workload, taus=(2,), worker_counts=(1, 2),
                         repeats=2)
    serial_wall = metrics[2]["wall"]["1"]
    parallel_wall = metrics[2]["wall"]["2"]
    cpus = usable_cpus()
    if cpus >= 2:
        assert parallel_wall <= serial_wall * MULTICORE_TOLERANCE, (
            f"2-worker run slower than serial on {cpus} CPUs: "
            f"{parallel_wall:.3f}s vs {serial_wall:.3f}s"
        )
    else:
        assert parallel_wall <= serial_wall * SINGLE_CPU_TOLERANCE, (
            f"single-CPU executor overhead out of bounds: "
            f"{parallel_wall:.3f}s vs serial {serial_wall:.3f}s"
        )


def write_snapshot() -> dict:
    """Regenerate ``BENCH_PR3.json`` from a fresh measurement.

    Uses the exact parallel-workload definition of
    ``benchmarks/conftest.py`` (smoke count).  The snapshot records the
    host's usable CPU count — interpret the speedup columns against it
    (single-CPU hosts cannot show > 1x; regenerate on a multicore host
    for the paper-style scaling figures).
    """
    from conftest import (
        PARALLEL_WORKLOAD_COUNTS,
        PARALLEL_WORKLOAD_SEED,
        PARALLEL_WORKLOAD_SHAPE,
        make_parallel_workload,
    )

    count = PARALLEL_WORKLOAD_COUNTS["smoke"]
    trees = make_parallel_workload(count)
    lines, metrics = measure(trees)
    snapshot = {
        "description": (
            "PartSJ end-to-end wall times of the sharded multiprocess "
            "executor (PR 3) vs the serial engine on the standard parallel "
            "workload (smoke scale), workers in {1, 2, 4}. Speedups are "
            "relative to workers=1 on the recording host; usable_cpus "
            "qualifies them (a single-CPU host cannot exceed 1x). "
            "Regenerate with: python benchmarks/bench_parallel_join.py "
            "--snapshot"
        ),
        "usable_cpus": usable_cpus(),
        "workload": {
            "count": count,
            **PARALLEL_WORKLOAD_SHAPE,
            "seed": PARALLEL_WORKLOAD_SEED,
        },
        "worker_counts": list(WORKER_COUNTS),
        "taus": {str(tau): m for tau, m in metrics.items()},
    }
    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
    print("\n".join(lines))
    print(f"wrote {SNAPSHOT_PATH}")
    return snapshot


if __name__ == "__main__":
    if "--snapshot" in sys.argv:
        write_snapshot()
    else:
        print(__doc__)
