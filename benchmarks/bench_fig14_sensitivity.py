"""Figure 14: sensitivity to the synthetic generator's parameters (Table 1).

Four benchmarks — fanout f, depth d, label count l, average tree size t —
each sweeping one knob over the scale's grid with the others at their
defaults (3 / 5 / 20 / 80), at fixed tau.

Paper shapes: PRT wins in all settings; SET is the method most sensitive
to the label count (small alphabets make binary branches collide); the
runtime of all methods drops as the average tree size grows (the size
filter prunes more pairs).
"""

import pytest

from repro.bench.experiments import run_fig14
from repro.bench.reporting import render_figure

from conftest import save_and_print

PANELS = [
    ("fanout", "a,b"),
    ("depth", "c,d"),
    ("labels", "e,f"),
    ("tree_size", "g,h"),
]


@pytest.mark.parametrize("parameter,panel", PANELS)
def test_fig14(benchmark, parameter, panel, scale, results_dir):
    cells = benchmark.pedantic(
        lambda: run_fig14(parameter, scale=scale),
        rounds=1, iterations=1,
    )
    text = render_figure(
        f"Figure 14({panel}) sensitivity to {parameter} "
        f"(scale={scale.name}, tau={scale.sens_tau})",
        cells,
    )
    save_and_print(results_dir, f"fig14_{parameter}", scale, text)

    values = getattr(scale, {
        "fanout": "fanouts",
        "depth": "depths",
        "labels": "label_counts",
        "tree_size": "tree_sizes",
    }[parameter])
    for value in values:
        counts = {c.results for c in cells if c.x_value == value}
        assert len(counts) == 1, f"methods disagree at {parameter}={value}"
