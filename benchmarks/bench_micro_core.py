"""Microbenchmarks: PartSJ building blocks.

Throughput of the pieces Algorithm 1 executes per tree: the LC-RS tree
cache, the MaxMinSize search (Algorithm 3), partition extraction, and
two-layer index insert + probe.
"""

import pytest

from repro.core.index import InvertedSizeIndex
from repro.core.partition import extract_partition, max_min_size
from repro.core.subgraph import EPSILON
from repro.core.treecache import TreeCache
from repro.datasets.synthetic import SyntheticParams, generate_forest

TAU = 3
DELTA = 2 * TAU + 1


@pytest.fixture(scope="module")
def forest():
    return generate_forest(50, SyntheticParams(avg_size=80), seed=99)


def test_treecache_build(benchmark, forest):
    tree = forest[0]
    cache = benchmark(TreeCache, tree)
    assert cache.size == tree.size


def test_max_min_size(benchmark, forest):
    cache = TreeCache(forest[0])
    gamma = benchmark(max_min_size, cache.binary, DELTA)
    assert gamma >= 1


def test_extract_partition(benchmark, forest):
    cache = TreeCache(forest[0])
    gamma = max_min_size(cache.binary, DELTA)
    subgraphs = benchmark(extract_partition, cache, 0, DELTA, gamma)
    assert len(subgraphs) == DELTA


def test_index_insert(benchmark, forest):
    caches = [TreeCache(tree) for tree in forest]
    partitions = [
        extract_partition(cache, i, DELTA) for i, cache in enumerate(caches)
    ]

    def insert_all():
        index = InvertedSizeIndex(TAU, "safe")
        for cache, subgraphs in zip(caches, partitions):
            index.insert_all(cache.size, subgraphs)
        return index

    index = benchmark(insert_all)
    assert index.total_subgraphs == len(forest) * DELTA


def test_index_probe(benchmark, forest):
    index = InvertedSizeIndex(TAU, "safe")
    caches = [TreeCache(tree) for tree in forest]
    for i, cache in enumerate(caches[:-1]):
        index.insert_all(cache.size, extract_partition(cache, i, DELTA))
    probe_cache = caches[-1]
    sizes = [
        index.for_size(size)
        for size in range(probe_cache.size - TAU, probe_cache.size + 1)
    ]
    sizes = [s for s in sizes if s is not None]

    def probe_all():
        hits = 0
        for node in probe_cache.binary_postorder:
            p = probe_cache.general_postorder(node)
            left = node.left.label if node.left is not None else EPSILON
            right = node.right.label if node.right is not None else EPSILON
            for size_index in sizes:
                for _ in size_index.probe(p, node.label, left, right):
                    hits += 1
        return hits

    hits = benchmark(probe_all)
    assert hits >= 0
