"""Frozen PR-1 candidate-generation engine (reference implementation).

This module preserves, essentially verbatim, the object-graph candidate
generation that shipped before the flat-array engine: ``id()``-keyed
dictionaries in the tree cache, ``(postorder_key, (str, str, str))``
tuple keys with ``2*tau + 1``-fold window duplication in the two-layer
index, ``frozenset`` member sets and node-object walks in subgraph
matching.  It exists for two purposes:

- ``benchmarks/bench_micro_probe.py`` runs it live against the current
  engine to report an honest, same-machine before/after breakdown of the
  probe/insert phases;
- ``tests/core/test_flat_equivalence.py`` asserts the flat-array engine
  returns pair sets and exact distances identical to this reference on
  random workloads for every filter configuration.

Do not optimize or "fix" this module: its value is that it stays the
PR-1 behaviour.  Verification is intentionally shared with the live
:class:`repro.baselines.common.Verifier` so any difference between the
two joins is attributable to candidate generation alone.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.baselines.common import JoinPair, SizeSortedCollection, Verifier
from repro.core.index import PostorderFilter
from repro.core.join import PartSJConfig
from repro.core.subgraph import EPSILON, MatchSemantics
from repro.errors import NotPartitionableError
from repro.tree.binary import BinaryNode, BinaryTree, EdgeKind
from repro.tree.node import Tree, TreeNode

__all__ = ["LegacyStats", "legacy_partsj_join"]


class LegacyTreeCache:
    """PR-1 ``TreeCache``: LC-RS object graph + ``id()``-keyed number maps."""

    __slots__ = (
        "tree",
        "binary",
        "binary_postorder",
        "_general_postorder_of",
        "_binary_number_of",
    )

    def __init__(self, tree: Tree):
        self.tree = tree
        general_post: dict[int, int] = {}
        for number, node in enumerate(tree.iter_postorder(), start=1):
            general_post[id(node)] = number

        binary_root = BinaryNode(tree.root.label)
        twin_general: dict[int, TreeNode] = {id(binary_root): tree.root}
        stack: list[tuple[TreeNode, BinaryNode]] = [(tree.root, binary_root)]
        while stack:
            general, binary = stack.pop()
            previous: Optional[BinaryNode] = None
            for child in general.children:
                twin = BinaryNode(child.label)
                twin_general[id(twin)] = child
                if previous is None:
                    binary.set_left(twin)
                else:
                    previous.set_right(twin)
                stack.append((child, twin))
                previous = twin

        self.binary = BinaryTree(binary_root)
        self.binary_postorder: list[BinaryNode] = self.binary.postorder()
        self._general_postorder_of: dict[int, int] = {
            id(bnode): general_post[id(twin_general[id(bnode)])]
            for bnode in self.binary_postorder
        }
        self._binary_number_of: dict[int, int] = {
            id(bnode): index
            for index, bnode in enumerate(self.binary_postorder, start=1)
        }

    @property
    def size(self) -> int:
        return len(self.binary_postorder)

    def general_postorder(self, node: BinaryNode) -> int:
        return self._general_postorder_of[id(node)]

    def binary_number(self, node: BinaryNode) -> int:
        return self._binary_number_of[id(node)]


@dataclass
class LegacySubgraph:
    """PR-1 ``Subgraph``: frozenset members, string twig, node-object walk."""

    owner: int
    root: BinaryNode
    members: frozenset[int]
    rank: int
    postorder_id: int
    incoming: EdgeKind
    cache: LegacyTreeCache
    twig: tuple[str, str, str] = field(init=False)

    def __post_init__(self) -> None:
        self.twig = (
            self.root.label,
            self._member_label(self.root.left),
            self._member_label(self.root.right),
        )

    def _member_label(self, child: Optional[BinaryNode]) -> str:
        if child is None:
            return EPSILON
        if self.cache.binary_number(child) not in self.members:
            return EPSILON
        return child.label

    @property
    def size(self) -> int:
        return len(self.members)

    def is_member(self, node: BinaryNode) -> bool:
        return self.cache.binary_number(node) in self.members

    def matches_at(self, node: BinaryNode, semantics: MatchSemantics) -> bool:
        strict = semantics is MatchSemantics.PAPER
        if strict and node.incoming is not self.incoming:
            return False
        stack: list[tuple[BinaryNode, BinaryNode]] = [(self.root, node)]
        while stack:
            mine, theirs = stack.pop()
            if mine.label != theirs.label:
                return False
            for my_child, their_child in (
                (mine.left, theirs.left),
                (mine.right, theirs.right),
            ):
                if my_child is not None and self.is_member(my_child):
                    if their_child is None:
                        return False
                    stack.append((my_child, their_child))
                elif my_child is not None:
                    if strict and their_child is None:
                        return False
                else:
                    if strict and their_child is not None:
                        return False
        return True


_ANY = -1


class LegacyTwoLayerIndex:
    """PR-1 index: tuple keys, one entry per postorder key in the window."""

    __slots__ = ("tau", "postorder_filter", "_groups", "count")

    def __init__(self, tau: int, postorder_filter: PostorderFilter):
        self.tau = tau
        self.postorder_filter = postorder_filter
        self._groups: dict[tuple[int, tuple[str, str, str]], list[LegacySubgraph]] = {}
        self.count = 0

    def window(self, subgraph: LegacySubgraph) -> int:
        if self.postorder_filter is PostorderFilter.PAPER:
            return max(0, self.tau - subgraph.rank // 2)
        return self.tau

    def insert(self, subgraph: LegacySubgraph) -> None:
        self.count += 1
        twig = subgraph.twig
        if self.postorder_filter is PostorderFilter.OFF:
            self._groups.setdefault((_ANY, twig), []).append(subgraph)
            return
        half = self.window(subgraph)
        pk = subgraph.postorder_id
        for key in range(pk - half, pk + half + 1):
            self._groups.setdefault((key, twig), []).append(subgraph)

    @property
    def entry_count(self) -> int:
        """Stored index entries (PR-1 duplicates per window key)."""
        return sum(len(bucket) for bucket in self._groups.values())

    def probe(
        self,
        postorder_number: int,
        label: str,
        left_label: str,
        right_label: str,
    ) -> Iterator[LegacySubgraph]:
        if self.postorder_filter is PostorderFilter.OFF:
            position = _ANY
        else:
            position = postorder_number
        groups = self._groups
        seen_keys = set()
        for twig in (
            (label, left_label, right_label),
            (label, left_label, EPSILON),
            (label, EPSILON, right_label),
            (label, EPSILON, EPSILON),
        ):
            if twig in seen_keys:
                continue
            seen_keys.add(twig)
            bucket = groups.get((position, twig))
            if bucket:
                yield from bucket


class LegacyInvertedSizeIndex:
    __slots__ = ("tau", "postorder_filter", "_by_size")

    def __init__(self, tau: int, postorder_filter: PostorderFilter):
        self.tau = tau
        self.postorder_filter = postorder_filter
        self._by_size: dict[int, LegacyTwoLayerIndex] = {}

    def for_size(self, size: int, create: bool = False) -> LegacyTwoLayerIndex | None:
        index = self._by_size.get(size)
        if index is None and create:
            index = LegacyTwoLayerIndex(self.tau, self.postorder_filter)
            self._by_size[size] = index
        return index

    def insert_all(self, size: int, subgraphs: list[LegacySubgraph]) -> None:
        index = self.for_size(size, create=True)
        assert index is not None
        for subgraph in subgraphs:
            index.insert(subgraph)

    @property
    def total_entries(self) -> int:
        return sum(index.entry_count for index in self._by_size.values())


def _legacy_partitionable(binary: BinaryTree, delta: int, gamma: int) -> bool:
    if gamma * delta > binary.size:
        return False
    found = 0
    remaining: dict[int, int] = {}
    for node in binary.iter_postorder():
        value = 1
        if node.left is not None:
            value += remaining[id(node.left)]
        if node.right is not None:
            value += remaining[id(node.right)]
        if value >= gamma:
            found += 1
            if found >= delta:
                return True
            value = 0
        remaining[id(node)] = value
    return False


def _legacy_max_min_size(binary: BinaryTree, delta: int) -> int:
    size = binary.size
    if delta > size:
        raise NotPartitionableError(
            f"cannot split a tree of {size} nodes into {delta} non-empty subgraphs"
        )
    gamma_max = size // delta
    gamma_min = max(1, (size + delta - 1) // (2 * delta - 1))
    count = gamma_max - gamma_min + 1
    while count > 1:
        gamma_mid = gamma_min + count // 2
        if _legacy_partitionable(binary, delta, gamma_mid):
            count -= count // 2
            gamma_min = gamma_mid
        else:
            count //= 2
    return gamma_min


def _legacy_finalize(
    cache: LegacyTreeCache,
    owner: int,
    component_of: list[int],
    roots: dict[int, BinaryNode],
    numbering: str,
) -> list[LegacySubgraph]:
    number_of = (
        cache.general_postorder if numbering == "general" else cache.binary_number
    )
    members: dict[int, set[int]] = {comp: set() for comp in roots}
    for number in range(1, cache.size + 1):
        members[component_of[number]].add(number)
    subgraphs = [
        LegacySubgraph(
            owner=owner,
            root=root,
            members=frozenset(members[comp]),
            rank=0,
            postorder_id=number_of(root),
            incoming=root.incoming,
            cache=cache,
        )
        for comp, root in roots.items()
    ]
    subgraphs.sort(key=lambda sub: sub.postorder_id)
    for rank, sub in enumerate(subgraphs, start=1):
        sub.rank = rank
    return subgraphs


def _legacy_extract_partition(
    cache: LegacyTreeCache,
    owner: int,
    delta: int,
    gamma: int,
    numbering: str,
) -> list[LegacySubgraph]:
    binary = cache.binary
    size = cache.size
    component_of = [0] * (size + 1)
    subtree_size = [0] * (size + 1)
    remaining = [0] * (size + 1)
    roots: dict[int, BinaryNode] = {}
    cuts = 0
    for number, node in enumerate(cache.binary_postorder, start=1):
        total = 1
        rem = 1
        if node.left is not None:
            child = cache.binary_number(node.left)
            total += subtree_size[child]
            rem += remaining[child]
        if node.right is not None:
            child = cache.binary_number(node.right)
            total += subtree_size[child]
            rem += remaining[child]
        subtree_size[number] = total
        if cuts < delta - 1 and rem >= gamma:
            for claimed in range(number - total + 1, number + 1):
                if component_of[claimed] == 0:
                    component_of[claimed] = number
            roots[number] = node
            cuts += 1
            rem = 0
        remaining[number] = rem

    root_number = cache.binary_number(binary.root)
    for number in range(1, size + 1):
        if component_of[number] == 0:
            component_of[number] = root_number
    roots[root_number] = binary.root
    return _legacy_finalize(cache, owner, component_of, roots, numbering)


def _legacy_extract_random_partition(
    cache: LegacyTreeCache,
    owner: int,
    delta: int,
    rng: random.Random,
    numbering: str,
) -> list[LegacySubgraph]:
    binary = cache.binary
    size = cache.size
    root_number = cache.binary_number(binary.root)
    candidates = [n for n in range(1, size + 1) if n != root_number]
    cut_numbers = set(rng.sample(candidates, delta - 1))

    roots: dict[int, BinaryNode] = {root_number: binary.root}
    component_of = [0] * (size + 1)
    for node in binary.iter_preorder():
        number = cache.binary_number(node)
        if number in cut_numbers or node.parent is None:
            component_of[number] = number
            roots[number] = node
        else:
            component_of[number] = component_of[cache.binary_number(node.parent)]
    return _legacy_finalize(cache, owner, component_of, roots, numbering)


@dataclass
class LegacyStats:
    """Phase timings and counters of a legacy join run."""

    probe_time: float = 0.0
    index_time: float = 0.0
    verify_time: float = 0.0
    candidates: int = 0
    probe_hits: int = 0
    total_index_entries: int = 0

    @property
    def candidate_time(self) -> float:
        return self.probe_time + self.index_time


def legacy_partsj_join(
    trees: Sequence[Tree],
    tau: int,
    config: Optional[PartSJConfig] = None,
) -> tuple[list[JoinPair], LegacyStats]:
    """PR-1 PartSJ: Algorithm 1 over the legacy candidate structures.

    Verification uses the current shared :class:`Verifier`, so pairs and
    distances differ from :func:`repro.core.join.partsj_join` only if
    candidate generation differs.
    """
    cfg = (config or PartSJConfig()).resolved()
    semantics: MatchSemantics = cfg.semantics  # type: ignore[assignment]
    stats = LegacyStats()
    collection = SizeSortedCollection(trees)
    verifier = Verifier(trees, tau)
    index = LegacyInvertedSizeIndex(tau, cfg.postorder_filter)  # type: ignore[arg-type]
    rng = random.Random(cfg.seed)

    delta = 2 * tau + 1
    min_size = delta
    small_pool: list[tuple[int, int]] = []
    checked: set[tuple[int, int]] = set()
    pairs: list[JoinPair] = []

    for position in range(len(collection)):
        i = collection.original_index(position)
        tree = trees[i]
        n = tree.size

        start = time.perf_counter()
        candidates: list[int] = []

        if n >= min_size:
            cache = LegacyTreeCache(tree)
            per_size = [
                index.for_size(size)
                for size in range(max(min_size, n - tau), n + 1)
            ]
            per_size = [idx for idx in per_size if idx is not None and idx.count]
            number_of = (
                cache.general_postorder
                if cfg.postorder_numbering == "general"
                else cache.binary_number
            )
            if per_size:
                for node in cache.binary_postorder:
                    p = number_of(node)
                    label = node.label
                    left_label = node.left.label if node.left is not None else EPSILON
                    right_label = (
                        node.right.label if node.right is not None else EPSILON
                    )
                    for size_index in per_size:
                        for subgraph in size_index.probe(
                            p, label, left_label, right_label
                        ):
                            stats.probe_hits += 1
                            j = subgraph.owner
                            key = (j, i) if j < i else (i, j)
                            if key in checked:
                                continue
                            if subgraph.matches_at(node, semantics):
                                checked.add(key)
                                candidates.append(j)
        else:
            cache = None

        if small_pool and n - tau <= 2 * tau:
            for j, size_j in small_pool:
                if size_j >= n - tau:
                    key = (j, i) if j < i else (i, j)
                    if key not in checked:
                        checked.add(key)
                        candidates.append(j)
        stats.probe_time += time.perf_counter() - start

        stats.candidates += len(candidates)
        start = time.perf_counter()
        for j in candidates:
            distance = verifier.verify(i, j)
            if distance is not None:
                lo, hi = (i, j) if i < j else (j, i)
                pairs.append(JoinPair(lo, hi, distance))
        stats.verify_time += time.perf_counter() - start

        start = time.perf_counter()
        if cache is not None:
            if cfg.partition_strategy == "random":
                subgraphs = _legacy_extract_random_partition(
                    cache, i, delta, rng, cfg.postorder_numbering
                )
            else:
                gamma = _legacy_max_min_size(cache.binary, delta)
                subgraphs = _legacy_extract_partition(
                    cache, i, delta, gamma, cfg.postorder_numbering
                )
            index.insert_all(n, subgraphs)
        else:
            small_pool.append((i, n))
        stats.index_time += time.perf_counter() - start

    stats.total_index_entries = index.total_entries
    pairs.sort(key=lambda p: p.key())
    return pairs, stats
