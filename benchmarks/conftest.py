"""Benchmark configuration.

``pytest benchmarks/ --benchmark-only`` reproduces every figure of the
paper's evaluation.  The workload scale defaults to ``smoke`` here (a few
minutes total); export ``REPRO_BENCH_SCALE=small`` or ``medium`` for the
fuller grids (see ``repro.bench.experiments.SCALES``).

Every figure benchmark prints its paper-style tables and also writes them
to ``benchmarks/results/<experiment>_<scale>.txt`` so the numbers quoted in
EXPERIMENTS.md can be regenerated.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.experiments import get_scale

RESULTS_DIR = Path(__file__).parent / "results"

# Benchmarks default to the smoke scale so a full `pytest benchmarks/`
# pass stays in the minutes range; the env var still wins.
os.environ.setdefault("REPRO_BENCH_SCALE", "smoke")


@pytest.fixture(scope="session")
def scale():
    return get_scale()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


# Trees per scale for the verification microbenchmark's standard synthetic
# workload (bench_micro_verify.py): the unbounded baseline pays a full
# Zhang-Shasha per window pair, so the counts stay modest.
VERIFY_WORKLOAD_COUNTS = {"smoke": 48, "small": 72, "medium": 120}


@pytest.fixture(scope="session")
def verify_workload(scale):
    """Clustered synthetic trees for verify-phase microbenchmarks.

    Returned as a plain list; benchmarks derive their candidate pairs
    (size-window pairs) per tau from it.
    """
    from repro.datasets.synthetic import SyntheticParams, generate_forest

    count = VERIFY_WORKLOAD_COUNTS.get(scale.name, 72)
    return generate_forest(
        count, SyntheticParams(avg_size=50, cluster_size=4), seed=1105
    )


def save_and_print(results_dir: Path, name: str, scale, text: str) -> None:
    """Echo a rendered figure and persist it under benchmarks/results/."""
    print()
    print(text)
    path = results_dir / f"{name}_{scale.name}.txt"
    path.write_text(text, encoding="utf-8")
