"""Benchmark configuration.

``pytest benchmarks/ --benchmark-only`` reproduces every figure of the
paper's evaluation.  The workload scale defaults to ``smoke`` here (a few
minutes total); export ``REPRO_BENCH_SCALE=small`` or ``medium`` for the
fuller grids (see ``repro.bench.experiments.SCALES``).

Every figure benchmark prints its paper-style tables and also writes them
to ``benchmarks/results/<experiment>_<scale>.txt`` so the numbers quoted in
EXPERIMENTS.md can be regenerated.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.experiments import get_scale

RESULTS_DIR = Path(__file__).parent / "results"

# Benchmarks default to the smoke scale so a full `pytest benchmarks/`
# pass stays in the minutes range; the env var still wins.
os.environ.setdefault("REPRO_BENCH_SCALE", "smoke")


@pytest.fixture(scope="session")
def scale():
    return get_scale()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


# Trees per scale for the verification microbenchmark's standard synthetic
# workload (bench_micro_verify.py): the unbounded baseline pays a full
# Zhang-Shasha per window pair, so the counts stay modest.
VERIFY_WORKLOAD_COUNTS = {"smoke": 48, "small": 72, "medium": 120}


@pytest.fixture(scope="session")
def verify_workload(scale):
    """Clustered synthetic trees for verify-phase microbenchmarks.

    Returned as a plain list; benchmarks derive their candidate pairs
    (size-window pairs) per tau from it.
    """
    from repro.datasets.synthetic import SyntheticParams, generate_forest

    count = VERIFY_WORKLOAD_COUNTS.get(scale.name, 72)
    return generate_forest(
        count, SyntheticParams(avg_size=50, cluster_size=4), seed=1105
    )


# Trees per scale for the candidate-generation microbenchmark
# (bench_micro_probe.py): probing and inserting are cheap per tree, so the
# counts can be larger than the verify workload's.
PROBE_WORKLOAD_COUNTS = {"smoke": 250, "small": 400, "medium": 600}
# Shape and seed of the probe workload.  The BENCH_PR2.json snapshot is
# recorded on this exact definition (at smoke count), so the CI guard
# compares like with like; regenerate the snapshot when changing it.
PROBE_WORKLOAD_SHAPE = dict(avg_size=150, max_fanout=4, max_depth=6, cluster_size=8)
PROBE_WORKLOAD_SEED = 1105


def make_probe_workload(count: int):
    """The standard candidate-generation workload at a given tree count.

    Larger, bushier trees than the verify workload: candidate generation
    cost scales with node count, and the big-tree regime is where the
    paper's probe/insert machinery (not TED) dominates the join.
    """
    from repro.datasets.synthetic import SyntheticParams, generate_forest

    return generate_forest(
        count, SyntheticParams(**PROBE_WORKLOAD_SHAPE), seed=PROBE_WORKLOAD_SEED
    )


@pytest.fixture(scope="session")
def probe_workload(scale):
    """Clustered synthetic trees for candidate-generation microbenchmarks."""
    return make_probe_workload(PROBE_WORKLOAD_COUNTS.get(scale.name, 250))


# Trees per scale for the parallel-executor benchmark
# (bench_parallel_join.py).  Dense, barely-decayed clusters make the join
# verification-heavy (thousands of candidates surviving to the banded DP)
# — the regime where worker processes pay off; a workload that a serial
# run finishes in tenths of a second would only measure pool startup.
# The BENCH_PR3.json snapshot is recorded on this exact definition (smoke
# count); regenerate the snapshot when changing it.
PARALLEL_WORKLOAD_COUNTS = {"smoke": 600, "small": 900, "medium": 1200}
PARALLEL_WORKLOAD_SHAPE = dict(
    avg_size=150, max_fanout=4, max_depth=6, cluster_size=12, decay=0.02
)
PARALLEL_WORKLOAD_SEED = 1105


def make_parallel_workload(count: int):
    """The standard parallel-join workload at a given tree count."""
    from repro.datasets.synthetic import SyntheticParams, generate_forest

    return generate_forest(
        count,
        SyntheticParams(**PARALLEL_WORKLOAD_SHAPE),
        seed=PARALLEL_WORKLOAD_SEED,
    )


@pytest.fixture(scope="session")
def parallel_workload(scale):
    """Verification-heavy clustered trees for the parallel executor."""
    return make_parallel_workload(PARALLEL_WORKLOAD_COUNTS.get(scale.name, 600))


def save_and_print(results_dir: Path, name: str, scale, text: str) -> None:
    """Echo a rendered figure and persist it under benchmarks/results/."""
    print()
    print(text)
    path = results_dir / f"{name}_{scale.name}.txt"
    path.write_text(text, encoding="utf-8")


# Trees per scale for the streaming-ingestion benchmark
# (bench_stream_ingest.py).  Mixed-size clusters at a moderate average
# size: big enough that candidate generation and verification both
# register, small enough that the CI smoke guard (streaming overhead vs
# batch) finishes in seconds.  The BENCH_PR4.json snapshot is recorded on
# this exact definition (smoke count); regenerate it when changing this.
STREAM_WORKLOAD_COUNTS = {"smoke": 300, "small": 500, "medium": 800}
STREAM_WORKLOAD_SHAPE = dict(
    avg_size=80, max_fanout=4, max_depth=6, cluster_size=8, decay=0.03
)
STREAM_WORKLOAD_SEED = 1105


def make_stream_workload(count: int):
    """The standard streaming-ingestion workload at a given tree count."""
    from repro.datasets.synthetic import SyntheticParams, generate_forest

    return generate_forest(
        count, SyntheticParams(**STREAM_WORKLOAD_SHAPE),
        seed=STREAM_WORKLOAD_SEED,
    )


@pytest.fixture(scope="session")
def stream_workload(scale):
    """Clustered synthetic trees for the streaming-ingestion benchmark."""
    return make_stream_workload(STREAM_WORKLOAD_COUNTS.get(scale.name, 300))
