"""Benchmark: prepared-once TreeCollection sessions vs one-shot calls.

PR 5 redesigns the public API around :class:`repro.TreeCollection` — a
session that pays parsing, interning, size-sorting, partitioning, index
building and per-tree verification caching once per collection and
serves many queries.  This benchmark records the amortization win:

- **warm re-query**: an identical join on a warm session is served from
  the result cache — the CI smoke guard fails if it costs more than
  ``0.5x`` a cold one-shot call (in practice it is orders of magnitude
  cheaper).
- **multi-tau workload**: ``join(1); join(2); join(3)`` on one session vs
  three one-shot calls.  Each tau still pays its own partitioning, but
  the tau-independent work (sort, caches, interner, TED annotations and
  feature bags) is shared.
- **warm search**: many ``similarity_search`` queries against one
  prepared session vs one-shot calls that rebuild the index per query —
  the per-query cost collapses to probe + verify.
- **result equivalence**: every measurement re-asserts that session
  results equal the raw engine's, bit for bit.

``python benchmarks/bench_session_reuse.py --snapshot`` regenerates
``BENCH_PR5.json`` (tau in {1, 2, 3}), the committed record the CI guard
and EXPERIMENTS-style notes refer to.

Run with ``pytest benchmarks/bench_session_reuse.py``.
"""

import json
import sys
import time
from pathlib import Path

import pytest

from repro.core.join import partsj_join
from repro.session import TreeCollection

SNAPSHOT_PATH = Path(__file__).parent.parent / "BENCH_PR5.json"
SNAPSHOT_TAUS = (1, 2, 3)
REPEATS = 2
SEARCH_QUERIES = 25
# CI guard: an identical re-query on a warm session must cost at most
# half a cold one-shot call.  The result cache makes the real factor
# ~1e-4; 0.5x is the acceptance bound of the subsystem, far above noise.
MAX_WARM_FRACTION = 0.5


def run_cold(trees, tau, repeats=REPEATS):
    """Best-of-``repeats`` one-shot session (build + join); equals the
    legacy ``similarity_join`` shim's cost."""
    best_wall, best_result = None, None
    for _ in range(repeats):
        started = time.perf_counter()
        result = TreeCollection.from_trees(trees).join(tau).run()
        wall = time.perf_counter() - started
        if best_wall is None or wall < best_wall:
            best_wall, best_result = wall, result
    return best_wall, best_result


def run_warm_requery(col, tau, repeats=REPEATS):
    """Best-of-``repeats`` identical re-query on an already-queried
    session (the result-cache path)."""
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = col.join(tau).run()
        wall = time.perf_counter() - started
        if best is None or wall < best[0]:
            best = (wall, result)
    return best


def measure(trees, taus=SNAPSHOT_TAUS, repeats=REPEATS,
            search_queries=SEARCH_QUERIES):
    """Cold vs session execution per tau; returns report lines + metrics."""
    lines = [
        "== session_reuse: prepared-once TreeCollection vs one-shot calls ==",
        f"trees={len(trees)} (standard stream workload)",
    ]
    metrics = {"taus": {}}

    # Multi-tau: one session for all taus vs a fresh one-shot per tau.
    col = TreeCollection.from_trees(trees)
    cold_total = 0.0
    session_total = 0.0
    for tau in taus:
        engine = partsj_join(trees, tau)
        cold_wall, cold_result = run_cold(trees, tau, repeats)
        assert [(p.i, p.j, p.distance) for p in cold_result.pairs] == [
            (p.i, p.j, p.distance) for p in engine.pairs
        ], f"tau={tau}: one-shot session diverges from engine"

        started = time.perf_counter()
        session_result = col.join(tau).run()
        session_first_wall = time.perf_counter() - started
        assert [(p.i, p.j, p.distance) for p in session_result.pairs] == [
            (p.i, p.j, p.distance) for p in engine.pairs
        ], f"tau={tau}: warm-session join diverges from engine"

        warm_wall, warm_result = run_warm_requery(col, tau, repeats)
        assert warm_result is session_result  # served from the result cache

        cold_total += cold_wall
        session_total += session_first_wall
        warm_fraction = warm_wall / max(cold_wall, 1e-9)
        metrics["taus"][tau] = {
            "results": len(session_result.pairs),
            "cold_wall": round(cold_wall, 4),
            "session_first_wall": round(session_first_wall, 4),
            "warm_requery_wall": round(warm_wall, 6),
            "warm_fraction_of_cold": round(warm_fraction, 6),
            "prep_reused": session_result.stats.extra.get("prep_reused"),
        }
        lines.append(
            f"tau={tau}: cold {cold_wall:.3f}s | session first "
            f"{session_first_wall:.3f}s | warm re-query {warm_wall:.6f}s "
            f"({warm_fraction:.5f}x cold) | results={len(session_result.pairs)}"
        )
    metrics["multi_tau"] = {
        "one_shot_total": round(cold_total, 4),
        "session_total": round(session_total, 4),
        "speedup": round(cold_total / max(session_total, 1e-9), 3),
    }
    lines.append(
        f"multi-tau {list(taus)}: one-shot total {cold_total:.3f}s | "
        f"session total {session_total:.3f}s "
        f"({metrics['multi_tau']['speedup']:.2f}x)"
    )

    # Warm search: the per-tau index is already prepared on `col`.
    tau = taus[0]
    queries = trees[:search_queries]
    from repro.search import SimilaritySearcher

    started = time.perf_counter()
    one_shot_hits = [
        SimilaritySearcher(trees, tau).search(q) for q in queries
    ]
    one_shot_wall = time.perf_counter() - started
    started = time.perf_counter()
    warm_hits = [col.search(q, tau).run() for q in queries]
    warm_search_wall = time.perf_counter() - started
    assert [
        [(h.index, h.distance) for h in hits] for hits in warm_hits
    ] == [
        [(h.index, h.distance) for h in hits] for hits in one_shot_hits
    ], "warm search diverges from one-shot searcher"
    metrics["search"] = {
        "tau": tau,
        "queries": len(queries),
        "one_shot_wall": round(one_shot_wall, 4),
        "warm_wall": round(warm_search_wall, 4),
        "speedup": round(one_shot_wall / max(warm_search_wall, 1e-9), 2),
    }
    lines.append(
        f"search tau={tau} x{len(queries)}: one-shot {one_shot_wall:.3f}s | "
        f"warm session {warm_search_wall:.3f}s "
        f"({metrics['search']['speedup']:.1f}x)"
    )
    return lines, metrics


def test_session_reuse_timed(benchmark, stream_workload):
    result = benchmark.pedantic(
        lambda: measure(stream_workload, taus=(2,), repeats=1,
                        search_queries=5),
        rounds=1, iterations=1,
    )
    assert result[1]["taus"][2]["cold_wall"] > 0


def test_equivalence_and_report(stream_workload, scale, results_dir):
    from conftest import save_and_print

    lines, metrics = measure(stream_workload, taus=(1, 2), repeats=1,
                             search_queries=10)
    assert metrics["multi_tau"]["session_total"] > 0
    save_and_print(results_dir, "session_reuse", scale, "\n".join(lines) + "\n")


def test_smoke_guard_warm_requery(stream_workload):
    """CI perf smoke: a warm re-query must cost at most ``0.5x`` a cold
    one-shot call (result equivalence is asserted inside ``measure``)."""
    _, metrics = measure(stream_workload, taus=(2,), repeats=REPEATS,
                         search_queries=5)
    m = metrics["taus"][2]
    assert m["warm_fraction_of_cold"] <= MAX_WARM_FRACTION, (
        f"warm re-query out of bounds: {m['warm_fraction_of_cold']:.4f}x of "
        f"cold (warm {m['warm_requery_wall']:.6f}s vs cold "
        f"{m['cold_wall']:.3f}s)"
    )
    assert m["prep_reused"] is False  # first session query built the prep
    assert metrics["search"]["warm_wall"] <= metrics["search"]["one_shot_wall"]


def write_snapshot() -> dict:
    """Regenerate ``BENCH_PR5.json`` from a fresh measurement.

    Uses the exact stream-workload definition of
    ``benchmarks/conftest.py`` (smoke count), so the CI guard compares
    like with like.
    """
    from conftest import (
        STREAM_WORKLOAD_COUNTS,
        STREAM_WORKLOAD_SEED,
        STREAM_WORKLOAD_SHAPE,
        make_stream_workload,
    )

    count = STREAM_WORKLOAD_COUNTS["smoke"]
    trees = make_stream_workload(count)
    lines, metrics = measure(trees)
    snapshot = {
        "description": (
            "TreeCollection sessions (PR 5, repro.session) vs one-shot "
            "calls on the standard stream workload (smoke scale), tau in "
            "{1, 2, 3}. cold_wall = fresh session per call (the legacy "
            "shim's cost); session_first_wall = first query on a shared "
            "session (tau-independent state amortized); warm_requery_wall "
            "= identical re-query on the warm session (result cache; the "
            "CI smoke guard bounds it at 0.5x cold). search compares "
            "per-query one-shot searchers against one prepared session. "
            "Regenerate with: python benchmarks/bench_session_reuse.py "
            "--snapshot"
        ),
        "workload": {
            "count": count,
            **STREAM_WORKLOAD_SHAPE,
            "seed": STREAM_WORKLOAD_SEED,
        },
        "max_warm_fraction_guard": MAX_WARM_FRACTION,
        **metrics,
    }
    snapshot["taus"] = {str(tau): m for tau, m in metrics["taus"].items()}
    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
    print("\n".join(lines))
    print(f"wrote {SNAPSHOT_PATH}")
    return snapshot


if __name__ == "__main__":
    if "--snapshot" in sys.argv:
        write_snapshot()
    else:
        print(__doc__)
