"""Kernel backends head to head: python reference vs numpy flat-array.

PR 9 put the three hot loops behind ``PartSJConfig(backend=...)``: the
probe/bucket-window walk (``repro.kernels.probe``), the partition span
fills (``repro.kernels.partition``) and the tau-banded Zhang-Shasha DP
(``repro.kernels.ted``).  This benchmark measures each kernel against
its pure-python reference, and the two backends end to end, on a
duplicate-heavy clustered workload (the dedup-dominated regime the probe
kernel targets):

- both backends must return *bit-identical* results — same pairs, same
  distances, same candidate counts (the cross-backend test matrix in
  ``tests/kernels/`` property-tests the same contract);
- the committed snapshot ``BENCH_PR9.json`` records the measured
  end-to-end and per-kernel ratios **honestly**: on CPython + numpy the
  end-to-end ratio is ~1x at tau <= 3 — verification dominates and the
  banded DP's 2*tau+1-cell rows are far below numpy's dispatch
  break-even (measured 0.05-0.15x for the row-sliced vector DP at every
  band up to 289), so ``BandedTed`` keeps those calls scalar and the
  numpy win is confined to probe windows of ~a hundred entries or more;
- ``python benchmarks/bench_kernels.py --snapshot`` regenerates the
  snapshot; the CI kernels-smoke job guards against regressions with
  ratios, not absolute seconds: the live numpy/python end-to-end ratio
  may not fall below *half* the committed one.

Run with ``pytest benchmarks/bench_kernels.py``.
"""

import json
import random
import sys
import time
from pathlib import Path

import pytest

from repro.core.join import PartSJConfig, ShardDriver, partsj_join
from repro.kernels import numpy_available

SNAPSHOT_PATH = Path(__file__).parent.parent / "BENCH_PR9.json"
TAUS = (1, 2, 3)
TED_TAUS = (1, 3, 8)
REPEATS = 3

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)

# Duplicate-heavy clusters: many near-copies of one base tree per
# cluster, so probe windows carry long runs of already-checked owners —
# the dedup-gather regime the probe kernel vectorizes.  The BENCH_PR9
# snapshot is recorded on this exact definition (smoke count).
KERNELS_WORKLOAD_COUNTS = {"smoke": 240, "small": 400, "medium": 640}
KERNELS_WORKLOAD_SHAPE = dict(cluster_size=30, base_size=45, max_edits=2)
KERNELS_WORKLOAD_SEED = 1105


def make_kernels_workload(count: int):
    from repro.tree.edits import random_script
    from repro.tree.node import Tree, TreeNode

    shape = KERNELS_WORKLOAD_SHAPE
    rng = random.Random(KERNELS_WORKLOAD_SEED)
    labels = list("abcd")
    trees = []
    while len(trees) < count:
        root = TreeNode(rng.choice(labels))
        nodes = [root]
        for _ in range(shape["base_size"] - 1):
            parent = rng.choice(nodes)
            nodes.append(parent.add_child(TreeNode(rng.choice(labels))))
        base = Tree(root)
        for _ in range(min(shape["cluster_size"], count - len(trees))):
            edited, _ = random_script(
                base, rng.randint(0, shape["max_edits"]), rng, labels
            )
            trees.append(edited)
    return trees


@pytest.fixture(scope="module")
def kernels_workload():
    from repro.bench.experiments import get_scale

    count = KERNELS_WORKLOAD_COUNTS.get(get_scale().name, 240)
    return make_kernels_workload(count)


def _best_join(trees, tau, backend, repeats=REPEATS):
    best = None
    for _ in range(repeats):
        result = partsj_join(trees, tau, PartSJConfig(backend=backend))
        if best is None or (
            result.stats.candidate_time + result.stats.verify_time
            < best[1]
        ):
            best = (result, result.stats.candidate_time
                    + result.stats.verify_time)
    return best[0]


def measure_end_to_end(trees, taus=TAUS, repeats=REPEATS):
    """Interleaved best-of runs per tau; asserts bit-identity."""
    metrics = {}
    for tau in taus:
        py = _best_join(trees, tau, "python", repeats)
        np_ = _best_join(trees, tau, "numpy", repeats)
        assert [(p.i, p.j, p.distance) for p in py.pairs] == \
            [(p.i, p.j, p.distance) for p in np_.pairs], f"tau={tau}"
        assert py.stats.candidates == np_.stats.candidates
        t_py = py.stats.candidate_time + py.stats.verify_time
        t_np = np_.stats.candidate_time + np_.stats.verify_time
        metrics[tau] = {
            "python_s": round(t_py, 4),
            "numpy_s": round(t_np, 4),
            "ratio": round(t_py / max(t_np, 1e-9), 3),
            "probe_ratio": round(
                py.stats.probe_time / max(np_.stats.probe_time, 1e-9), 3
            ),
            "candidates": py.stats.candidates,
            "results": py.stats.results,
            "probe_hits": py.stats.extra["probe_hits"],
            "dedup_skips": py.stats.extra["dedup_skips"],
        }
    return metrics


def measure_probe(trees, tau=2, repeats=REPEATS):
    """Candidate-generation phase only, via the incremental driver."""
    order = sorted(range(len(trees)), key=lambda i: trees[i].size)

    def run(backend):
        driver = ShardDriver(
            trees, tau, PartSJConfig(backend=backend).resolved()
        )
        for i in order:
            driver.ingest(i)
        return driver.probe_time

    best = {"python": None, "numpy": None}
    for _ in range(repeats):
        for backend in best:
            t = run(backend)
            if best[backend] is None or t < best[backend]:
                best[backend] = t
    return {
        "tau": tau,
        "python_s": round(best["python"], 4),
        "numpy_s": round(best["numpy"], 4),
        "ratio": round(best["python"] / max(best["numpy"], 1e-9), 3),
    }


def measure_ted(taus=TED_TAUS, pairs=12, size=40):
    """The vector DP forced on (crossover pinned to 0) vs the scalar DP."""
    import repro.kernels.ted as kted
    from repro.kernels.ted import BandedTed
    from repro.ted.cutoff import zhang_shasha_bounded
    from repro.tree.edits import random_script
    from repro.tree.node import Tree, TreeNode

    rng = random.Random(17)
    labels = list("abcd")
    sample = []
    for _ in range(pairs):
        root = TreeNode(rng.choice(labels))
        nodes = [root]
        for _ in range(size - 1):
            nodes.append(
                rng.choice(nodes).add_child(TreeNode(rng.choice(labels)))
            )
        a = Tree(root)
        b, _ = random_script(a, rng.randint(1, 3), rng, labels)
        sample.append((a, b))

    saved = kted.NUMPY_TED_MIN_BAND
    kted.NUMPY_TED_MIN_BAND = 0
    banded = BandedTed()
    out = {}
    try:
        for tau in taus:
            t0 = time.perf_counter()
            ref = [zhang_shasha_bounded(a, b, tau) for a, b in sample]
            t_py = time.perf_counter() - t0
            t0 = time.perf_counter()
            got = [banded(a, b, tau) for a, b in sample]
            t_np = time.perf_counter() - t0
            assert ref == got, f"tau={tau}: TED kernels disagree"
            out[tau] = {
                "band": 2 * tau + 1,
                "python_ms": round(t_py * 1000, 2),
                "numpy_ms": round(t_np * 1000, 2),
                "ratio": round(t_py / max(t_np, 1e-9), 3),
            }
    finally:
        kted.NUMPY_TED_MIN_BAND = saved
    return out


def measure_partition(tau=2, count=40, size=60):
    from repro.core.partition import extract_partition
    from repro.core.treecache import TreeCache

    caches = [
        TreeCache(tree) for tree in make_kernels_workload(count)
    ]
    delta = 2 * tau + 1
    timings = {}
    for backend in ("python", "numpy"):
        best = None
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            out = [
                extract_partition(c, 0, delta, backend=backend)
                for c in caches
            ]
            t = time.perf_counter() - t0
            if best is None or t < best[0]:
                best = (t, out)
        timings[backend] = best
    bits = lambda runs: [  # noqa: E731
        [(s.root_number, bytes(s.member_bits)) for s in subs] for subs in runs
    ]
    assert bits(timings["python"][1]) == bits(timings["numpy"][1])
    return {
        "delta": delta,
        "python_ms": round(timings["python"][0] * 1000, 2),
        "numpy_ms": round(timings["numpy"][0] * 1000, 2),
        "ratio": round(
            timings["python"][0] / max(timings["numpy"][0], 1e-9), 3
        ),
    }


def render(end_to_end, probe, ted, partition) -> str:
    lines = ["== kernels: python reference vs numpy backend =="]
    for tau, m in end_to_end.items():
        lines.append(
            f"end-to-end tau={tau}: python {m['python_s']:.3f}s "
            f"numpy {m['numpy_s']:.3f}s ({m['ratio']:.2f}x) "
            f"candidates={m['candidates']} dedup={m['dedup_skips']}"
        )
    lines.append(
        f"probe phase tau={probe['tau']}: python {probe['python_s']:.3f}s "
        f"numpy {probe['numpy_s']:.3f}s ({probe['ratio']:.2f}x)"
    )
    for tau, m in ted.items():
        lines.append(
            f"banded TED tau={tau} (band {m['band']}): "
            f"python {m['python_ms']:.1f}ms numpy {m['numpy_ms']:.1f}ms "
            f"({m['ratio']:.2f}x, vector path forced)"
        )
    lines.append(
        f"partition delta={partition['delta']}: "
        f"python {partition['python_ms']:.1f}ms "
        f"numpy {partition['numpy_ms']:.1f}ms ({partition['ratio']:.2f}x)"
    )
    return "\n".join(lines)


def test_backends_bit_identical_end_to_end(kernels_workload, scale,
                                           results_dir):
    from conftest import save_and_print

    end_to_end = measure_end_to_end(kernels_workload, repeats=2)
    probe = measure_probe(kernels_workload, repeats=2)
    ted = measure_ted()
    partition = measure_partition()
    save_and_print(
        results_dir, "kernels", scale,
        render(end_to_end, probe, ted, partition) + "\n",
    )


def test_smoke_guard_kernels_backend(kernels_workload):
    """CI regression guard: live numpy/python ratio vs the snapshot.

    Ratios, not absolute seconds, so the guard survives runner hardware
    differences: the numpy backend has regressed when its live
    end-to-end ratio falls below half the committed one.
    """
    if not SNAPSHOT_PATH.exists():
        pytest.skip("no committed BENCH_PR9.json")
    committed = json.loads(SNAPSHOT_PATH.read_text())
    metrics = measure_end_to_end(kernels_workload, repeats=2)
    for tau in TAUS:
        recorded = committed["end_to_end"][str(tau)]["ratio"]
        live = metrics[tau]["ratio"]
        assert live >= recorded / 2, (
            f"tau={tau}: numpy backend regressed: live python/numpy ratio "
            f"{live:.2f} < committed {recorded:.2f} / 2"
        )


def write_snapshot() -> dict:
    import numpy

    count = KERNELS_WORKLOAD_COUNTS["smoke"]
    trees = make_kernels_workload(count)
    end_to_end = measure_end_to_end(trees)
    probe = measure_probe(trees)
    ted = measure_ted()
    partition = measure_partition()
    snapshot = {
        "description": (
            "Kernel backend comparison (PR 9): pure-python reference vs "
            "numpy flat-array kernels, end to end and per kernel, on the "
            "duplicate-heavy kernels workload (smoke scale). Regenerate "
            "with: python benchmarks/bench_kernels.py --snapshot"
        ),
        "numpy_version": numpy.__version__,
        "workload": {
            "count": count,
            **KERNELS_WORKLOAD_SHAPE,
            "seed": KERNELS_WORKLOAD_SEED,
        },
        "end_to_end": {str(tau): m for tau, m in end_to_end.items()},
        "kernels": {
            "probe": probe,
            "banded_ted_vector_forced": {
                str(tau): m for tau, m in ted.items()
            },
            "partition": partition,
        },
        "caveats": [
            "Single-CPU container; ratios are wall-clock best-of-3 on one "
            "core and carry run-to-run noise of a few percent.",
            "End-to-end ratios are ~1x at tau <= 3: verification dominates "
            "these workloads and BandedTed intentionally runs those bands "
            "scalar (the row-sliced vector DP measured 0.05-0.15x at every "
            "band up to 289 - per-row ufunc dispatch dominates narrow "
            "rows), so the numpy backend's win is confined to probe "
            "windows of ~a hundred entries or more.",
            "Both backends are bit-identical on every measurement here and "
            "under the tests/kernels/ matrix; the backend choice is a "
            "speed knob only.",
        ],
    }
    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(render(end_to_end, probe, ted, partition))
    print(f"wrote {SNAPSHOT_PATH}")
    return snapshot


if __name__ == "__main__":
    if "--snapshot" in sys.argv:
        write_snapshot()
    else:
        print(__doc__)
