"""Benchmark: streaming ingestion vs the batch join.

PR 4 adds ``repro.stream`` — the incremental engine that consumes trees
one at a time and yields verified pairs as they are found.  Its price
relative to the batch pipeline is bounded and its payoff measured here:

- **ingest throughput** (trees/s through ``StreamingJoin.add``) and the
  **streaming overhead factor** (streamed end-to-end wall over batch
  ``partsj_join`` wall).  Streaming does strictly more bookkeeping per
  tree — in-place sorted insertion, reverse node-twig registration,
  retained caches — so the factor is ``> 1`` by construction; the CI
  smoke guard fails if it exceeds ``2x`` on the small workload.
- **time-to-first-result**: how long until the first verified pair is
  yielded, versus the batch join's single all-or-nothing wall time.
  This is the latency argument for streaming — first results arrive
  orders of magnitude before the batch run would return anything.
- **result equivalence**: every measurement re-asserts that the streamed
  pairs equal the batch join's, bit for bit.

``python benchmarks/bench_stream_ingest.py --snapshot`` regenerates
``BENCH_PR4.json`` (tau in {1, 2, 3}), the committed record the CI guard
and EXPERIMENTS-style notes refer to.

Run with ``pytest benchmarks/bench_stream_ingest.py``.
"""

import json
import sys
import time
from pathlib import Path

import pytest

from repro.core.join import partsj_join
from repro.stream import StreamingJoin

SNAPSHOT_PATH = Path(__file__).parent.parent / "BENCH_PR4.json"
SNAPSHOT_TAUS = (1, 2, 3)
REPEATS = 2
# CI guard: streamed wall over batch wall on the small (smoke) workload.
# Calibrated headroom — the engine sits at ~1.05-1.2x on the snapshot
# workload; 2x is the hard acceptance bound of the subsystem.
MAX_OVERHEAD = 2.0


def run_batch(trees, tau, repeats=REPEATS):
    """Best-of-``repeats`` batch wall; returns ``(wall, result)``."""
    best_wall, best_result = None, None
    for _ in range(repeats):
        started = time.perf_counter()
        result = partsj_join(trees, tau)
        wall = time.perf_counter() - started
        if best_wall is None or wall < best_wall:
            best_wall, best_result = wall, result
    return best_wall, best_result


def run_stream(trees, tau, repeats=REPEATS):
    """Best-of-``repeats`` streamed run.

    Returns ``(wall, time_to_first_result, pairs, stats)`` where the
    wall covers ingesting every tree and draining the (inline) results.
    """
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        join = StreamingJoin(tau)
        first = None
        for tree in trees:
            if join.add(tree) and first is None:
                first = time.perf_counter() - started
        join.flush()
        wall = time.perf_counter() - started
        if best is None or wall < best[0]:
            best = (wall, first, join.results(), join.stats())
    return best


def measure(trees, taus=SNAPSHOT_TAUS, repeats=REPEATS):
    """Batch vs streaming per tau; returns report lines + metrics."""
    lines = [
        "== stream_ingest: incremental engine vs batch join ==",
        f"trees={len(trees)} (standard stream workload)",
    ]
    metrics = {}
    for tau in taus:
        batch_wall, batch = run_batch(trees, tau, repeats)
        stream_wall, first, pairs, stats = run_stream(trees, tau, repeats)
        assert [(p.i, p.j, p.distance) for p in pairs] == [
            (p.i, p.j, p.distance) for p in batch.pairs
        ], f"tau={tau}: streamed results diverge from batch"
        overhead = stream_wall / max(batch_wall, 1e-9)
        metrics[tau] = {
            "trees": len(trees),
            "results": len(pairs),
            "candidates": stats.candidates,
            "reverse_candidates": stats.reverse_candidates,
            "batch_wall": round(batch_wall, 4),
            "stream_wall": round(stream_wall, 4),
            "overhead": round(overhead, 3),
            "time_to_first_result": round(first, 4) if first else None,
            "ingest_rate": round(stats.ingest_rate, 1),
            "index_entries": stats.index_entries,
            "reverse_nodes": stats.reverse_nodes,
        }
        first_str = f"{first:.4f}s" if first else "n/a"
        lines.append(
            f"tau={tau}: batch {batch_wall:.3f}s | stream {stream_wall:.3f}s "
            f"({overhead:.2f}x) | first result {first_str} | "
            f"{stats.ingest_rate:.0f} trees/s | results={len(pairs)}"
        )
    return lines, metrics


def test_stream_timed(benchmark, stream_workload):
    result = benchmark.pedantic(
        lambda: run_stream(stream_workload, 2, repeats=1), rounds=1, iterations=1
    )
    assert len(result[2]) >= 0


def test_equivalence_and_report(stream_workload, scale, results_dir):
    from conftest import save_and_print

    lines, metrics = measure(stream_workload, taus=(1, 2), repeats=1)
    for tau, m in metrics.items():
        assert m["stream_wall"] > 0
    save_and_print(results_dir, "stream_ingest", scale, "\n".join(lines) + "\n")


def test_smoke_guard_stream_overhead(stream_workload):
    """CI perf smoke: streaming must cost at most ``2x`` the batch join.

    Result equivalence is asserted inside ``measure``; the guard then
    bounds the live overhead factor and sanity-checks that the first
    streamed result lands well before the batch join would have returned
    at all.
    """
    _, metrics = measure(stream_workload, taus=(2,), repeats=REPEATS)
    m = metrics[2]
    assert m["overhead"] <= MAX_OVERHEAD, (
        f"streaming overhead out of bounds: {m['overhead']:.2f}x "
        f"(stream {m['stream_wall']:.3f}s vs batch {m['batch_wall']:.3f}s)"
    )
    if m["time_to_first_result"] is not None:
        assert m["time_to_first_result"] <= m["batch_wall"], (
            "first streamed result arrived later than the whole batch join"
        )


def write_snapshot() -> dict:
    """Regenerate ``BENCH_PR4.json`` from a fresh measurement.

    Uses the exact stream-workload definition of
    ``benchmarks/conftest.py`` (smoke count), so the CI guard compares
    like with like.
    """
    from conftest import (
        STREAM_WORKLOAD_COUNTS,
        STREAM_WORKLOAD_SEED,
        STREAM_WORKLOAD_SHAPE,
        make_stream_workload,
    )

    count = STREAM_WORKLOAD_COUNTS["smoke"]
    trees = make_stream_workload(count)
    lines, metrics = measure(trees)
    snapshot = {
        "description": (
            "Streaming ingestion (PR 4, repro.stream) vs the batch join on "
            "the standard stream workload (smoke scale), tau in {1, 2, 3}. "
            "overhead = streamed end-to-end wall / batch wall (streaming "
            "does strictly more per-tree bookkeeping; the CI smoke guard "
            "bounds it at 2x); time_to_first_result is the latency until "
            "the first verified pair is yielded, the quantity batch "
            "processing cannot bound at all. Regenerate with: "
            "python benchmarks/bench_stream_ingest.py --snapshot"
        ),
        "workload": {
            "count": count,
            **STREAM_WORKLOAD_SHAPE,
            "seed": STREAM_WORKLOAD_SEED,
        },
        "max_overhead_guard": MAX_OVERHEAD,
        "taus": {str(tau): m for tau, m in metrics.items()},
    }
    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
    print("\n".join(lines))
    print(f"wrote {SNAPSHOT_PATH}")
    return snapshot


if __name__ == "__main__":
    if "--snapshot" in sys.argv:
        write_snapshot()
    else:
        print(__doc__)
