"""Setuptools entry point.

This stub keeps the legacy editable install path (`pip install -e .`
without PEP 517 build isolation, or `python setup.py develop`) working
in offline environments that lack the `wheel` package.

The core library is dependency-free pure python.  ``pip install
repro[fast]`` additionally pulls in numpy for the optional flat-array
kernel backend (see the "Backend selection" section of ``repro.api``);
without it every ``backend="auto"`` run silently uses the bit-identical
pure-python kernels.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    extras_require={"fast": ["numpy"]},
)
