"""Setuptools entry point.

Metadata lives in setup.cfg; this stub exists so the legacy editable
install path (`pip install -e .` without PEP 517 build isolation, or
`python setup.py develop`) works in offline environments that lack the
`wheel` package.
"""
from setuptools import setup

setup()
