#!/usr/bin/env python
"""Crash-safe persistence: snapshots, sidecars, and the streaming WAL.

A prepared :class:`repro.TreeCollection` session represents real work —
parsing, interning, size-sorting, partitioning, index building.  This
example walks the machinery that lets that work survive process death
(:mod:`repro.persist`):

1. save a prepared session to a checksummed snapshot and load it back
   bit-identically;
2. keep a *sidecar* snapshot next to a dataset file, auto-discovered by
   ``TreeCollection.from_file`` — and watch a corrupted sidecar get
   rejected safely (warn + cold rebuild, never a wrong answer);
3. run a :class:`repro.StreamingJoin` with a write-ahead log, "crash"
   it, and recover to the exact pre-crash state — then keep ingesting.

Run with::

    python examples/session_persist.py
"""

import tempfile
import warnings
from pathlib import Path

from repro import StreamingJoin, Tree, TreeCollection
from repro.datasets.io import save_trees
from repro.persist import inspect_container, sidecar_path


def build_forest() -> list[Tree]:
    """A small forest with near-duplicate clusters at several sizes."""
    brackets = [
        "{article{title{Similarity Joins}}{author{Tang}}{year{2015}}}",
        "{article{title{Similarity Joins}}{author{Tang}}{year{2016}}}",
        "{article{title{Similarity Join}}{author{Tang}}{year{2015}}}",
        "{book{title{Tree Algorithms}}{author{Knuth}}}",
        "{book{title{Tree Algorithms}}{author{Knuth}}{edition{2}}}",
        "{thesis{title{Edit Distances}}{author{Zhang}}{year{1989}}}",
        "{thesis{title{Edit Distance}}{author{Zhang}}{year{1989}}}",
    ]
    return [Tree.from_bracket(b) for b in brackets]


def main() -> None:
    forest = build_forest()
    workdir = Path(tempfile.mkdtemp(prefix="repro-persist-"))

    # -- 1. Save a prepared session, load it back ----------------------------
    col = TreeCollection.from_trees(forest)
    pairs_before = [(p.i, p.j, p.distance) for p in col.join(2).run().pairs]
    col.prepare(1)  # a second prepared tau rides along in the snapshot

    snapshot = col.save(workdir / "forest.snapshot")
    info = inspect_container(snapshot)
    print(f"snapshot: {info['bytes']} bytes, format v{info['format_version']}, "
          f"sections {[s['name'] for s in info['sections']]}")

    loaded = TreeCollection.load(snapshot)
    print(f"loaded: taus prepared {loaded.prepared_taus()} "
          f"(provenance: {Path(loaded.provenance['path']).name})")
    pairs_after = [(p.i, p.j, p.distance) for p in loaded.join(2).run().pairs]
    assert pairs_after == pairs_before  # bit-identical, provably
    print(f"join(tau=2) identical before/after: {len(pairs_after)} pairs")

    # -- 2. Sidecar next to the dataset file ---------------------------------
    dataset = workdir / "forest.trees"
    save_trees(forest, dataset)           # atomic: temp + fsync + rename
    warm = TreeCollection.from_file(dataset)
    warm.join(2).run()
    warm.save(sidecar_path(dataset), include_trees=False, source=dataset)
    print(f"\nsidecar saved: {sidecar_path(dataset).name}")

    rewarmed = TreeCollection.from_file(dataset)  # auto-discovers the sidecar
    print(f"from_file restored taus {rewarmed.prepared_taus()} "
          f"without re-partitioning")
    assert [(p.i, p.j, p.distance) for p in rewarmed.join(2).run().pairs] \
        == pairs_before

    # Corrupt the sidecar: from_file must *warn and rebuild cold*, never
    # trust damaged bytes into a wrong answer.
    blob = bytearray(sidecar_path(dataset).read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    sidecar_path(dataset).write_bytes(bytes(blob))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cold = TreeCollection.from_file(dataset)
    print(f"corrupt sidecar: warned ({len(caught)} warning), "
          f"rebuilt cold (taus prepared {cold.prepared_taus()})")
    assert [(p.i, p.j, p.distance) for p in cold.join(2).run().pairs] \
        == pairs_before

    # -- 3. Streaming with a write-ahead log, crash, recover -----------------
    wal = workdir / "arrivals.wal"
    engine = StreamingJoin(2, wal=str(wal))
    for tree in forest[:5]:
        engine.add(tree)
    engine.flush()                      # durability point under fsync="batch"
    crashed_results = [(p.i, p.j, p.distance) for p in engine.results()]
    # "Crash": abandon the engine without close(); the log survives.
    del engine

    recovered = StreamingJoin.recover(wal)
    restored = [(p.i, p.j, p.distance) for p in recovered.results()]
    assert restored == crashed_results  # batch-equivalent replay
    info = recovered.stats().extra["wal"]["recovered"]
    print(f"\nWAL recovery: replayed {info['records']} arrivals, "
          f"{len(restored)} pairs restored, torn bytes {info['torn_bytes']}")

    # The recovered engine keeps appending to the same log.
    late = recovered.add(forest[5])
    recovered.add(forest[6])
    print(f"continued ingesting: {len(recovered)} trees "
          f"(late arrival matched {len(late)} partners)")
    recovered.close()

    print("\ndurability rules of thumb:")
    print("  explicit load/recover -> typed PersistenceError on damage")
    print("  implicit sidecar      -> warn + cold rebuild, never wrong")
    print("  WAL torn tail         -> dropped; mid-log hole -> refused")


if __name__ == "__main__":
    main()
