#!/usr/bin/env python
"""Finding similar RNA secondary structures.

The paper's second motivating application: biologists compare RNA
secondary structures — which fold into hairpins, bulges, and multiloops —
by modeling them as rooted ordered trees and joining on tree edit
distance.

This example encodes secondary structures in dot-bracket notation,
converts them into structure trees (paired regions become internal
``pair`` nodes, unpaired bases become leaves), then:

1. joins a small family of tRNA-like structures against decoys;
2. searches for the structures closest to a query hairpin;
3. compares PartSJ's filter statistics against the SET baseline.

Run with::

    python examples/rna_motifs.py
"""

from repro import similarity_join, similarity_search
from repro.tree.node import Tree, TreeNode


def structure_tree(dot_bracket: str, sequence: str | None = None) -> Tree:
    """Convert dot-bracket RNA notation into a structure tree.

    ``(`` opens a paired region (an internal node labeled ``pair``),
    ``)`` closes it, and ``.`` is an unpaired base (a leaf labeled with
    the nucleotide when a sequence is given, else ``base``).
    """
    root = TreeNode("rna")
    stack = [root]
    for position, symbol in enumerate(dot_bracket):
        if symbol == "(":
            node = stack[-1].add_child(TreeNode("pair"))
            stack.append(node)
        elif symbol == ")":
            if len(stack) == 1:
                raise ValueError(f"unbalanced ')' at position {position}")
            stack.pop()
        elif symbol == ".":
            label = sequence[position] if sequence else "base"
            stack[-1].add_child(TreeNode(label))
        else:
            raise ValueError(f"unexpected symbol {symbol!r}")
    if len(stack) != 1:
        raise ValueError("unbalanced '(' in structure")
    return Tree(root)


# A tRNA-like cloverleaf: three hairpin arms under one multiloop, plus
# structural variants (arm lengths wobble, loops gain/lose bases).
CLOVERLEAF_FAMILY = [
    "((((..(((....)))..(((....)))..(((....)))..))))",
    "((((..(((....)))..(((...)))...(((....)))..))))",   # one loop shrunk
    "((((..(((....)))..(((....)))..(((.....)))..))))",  # one loop grown
    "((((.((((....))))..(((....)))..(((....)))..))))",  # one stem deepened
]
DECOYS = [
    "(((((((((....)))))))))",  # a single long hairpin
    "((((....))))((((....))))"[:24] + "....",  # fallback linear-ish decoy
    "..........((((......))))..........",
    "((..((..((..((....))..))..))..))",  # nested bulges
]


def main() -> None:
    structures = CLOVERLEAF_FAMILY + DECOYS
    trees = []
    for text in structures:
        try:
            trees.append(structure_tree(text))
        except ValueError:
            # Skip malformed decoys rather than crash the demo.
            continue
    print(f"{len(trees)} structures, sizes {[t.size for t in trees]}")

    # -- Join the family against the decoys --------------------------------
    tau = 6
    result = similarity_join(trees, tau)
    print(f"\nStructure pairs within TED {tau}:")
    for pair in result.pairs:
        kind_i = "cloverleaf" if pair.i < len(CLOVERLEAF_FAMILY) else "decoy"
        kind_j = "cloverleaf" if pair.j < len(CLOVERLEAF_FAMILY) else "decoy"
        print(f"  {pair.i} ({kind_i}) ~ {pair.j} ({kind_j}): TED {pair.distance}")
    family_pairs = [
        p for p in result.pairs
        if p.i < len(CLOVERLEAF_FAMILY) and p.j < len(CLOVERLEAF_FAMILY)
    ]
    print(f"  -> {len(family_pairs)} intra-family pairs recovered")

    # -- Compare filter statistics -----------------------------------------
    for method in ("partsj", "set"):
        stats = similarity_join(trees, tau, method=method).stats
        print(f"  {stats.method}: {stats.candidates} candidates, "
              f"{stats.ted_calls} TED calls")

    # -- Search with a query hairpin ----------------------------------------
    query = structure_tree("((((..(((....)))..(((....)))..(((...)))..))))")
    hits = similarity_search(query, trees, tau=4)
    print(f"\nStructures within TED 4 of the query: "
          f"{[(h.index, h.distance) for h in hits]}")


if __name__ == "__main__":
    main()
