#!/usr/bin/env python
"""Quickstart: tree similarity joins in five minutes.

Walks through the core public API:

1. build trees (bracket notation and programmatic construction);
2. compute tree edit distances;
3. prepare a TreeCollection session and join it with PartSJ;
4. cross-check against a baseline method (same session, same pairs);
5. run similarity searches on the session's warm index.

The one-shot shims (``similarity_join``, ``similarity_search``, ...)
still exist for quick scripts; ``examples/session_reuse.py`` shows the
full prepare-once-query-many workflow this file only samples.

Run with::

    python examples/quickstart.py
"""

from repro import (
    PartSJConfig,
    Tree,
    TreeCollection,
    TreeNode,
    ted,
)


def main() -> None:
    # -- 1. Building trees -------------------------------------------------
    # Bracket notation: {label{child}{child}...} — the TED community's
    # interchange format (RTED / APTED compatible).
    album_a = Tree.from_bracket(
        "{album{title{Abbey Road}}{artist{The Beatles}}{year{1969}}"
        "{track{Come Together}}{track{Something}}}"
    )
    # The same record as another store lists it: one track missing, a typo
    # in the year.
    album_b = Tree.from_bracket(
        "{album{title{Abbey Road}}{artist{The Beatles}}{year{1996}}"
        "{track{Come Together}}}"
    )
    # Or build programmatically:
    root = TreeNode("album")
    root.add_child(TreeNode("title", [TreeNode("Let It Be")]))
    root.add_child(TreeNode("artist", [TreeNode("The Beatles")]))
    album_c = Tree(root)

    print("album_a:", album_a.to_bracket())
    print("album_b:", album_b.to_bracket())
    print(f"sizes: {album_a.size}, {album_b.size}, {album_c.size}")

    # -- 2. Tree edit distance ---------------------------------------------
    # ted() is exact: the minimum number of node inserts/deletes/renames.
    print("\nTED(a, b) =", ted(album_a, album_b))  # rename year + delete 2 nodes
    print("TED(a, c) =", ted(album_a, album_c))

    # -- 3. A similarity self-join ------------------------------------------
    # Collect a few near-duplicate listings, prepare them ONCE as a
    # session, and join with threshold tau.  (For a single throwaway call
    # the shim `similarity_join(trees, tau)` does the same thing.)
    listings = [album_a, album_b, album_c]
    for bracket in (
        "{album{title{Abbey Road}}{artist{The Beatles}}{year{1969}}"
        "{track{Come Together}}{track{Something}}}",  # exact dup of album_a
        "{album{title{Abbey Road}}{artist{Beatles}}{year{1969}}"
        "{track{Come Together}}{track{Something}}}",  # one rename away
    ):
        listings.append(Tree.from_bracket(bracket))

    collection = TreeCollection.from_trees(listings)
    result = collection.join(tau=2).run()  # PartSJ, exact by default
    print("\nSimilarity join (tau=2):")
    for pair in result.pairs:
        print(f"  trees {pair.i} and {pair.j} are TED {pair.distance} apart")
    print(" ", result.stats.summary())

    # The paper-faithful filter configuration is one switch away (it can
    # miss results in corner cases — see EXPERIMENTS.md finding F1):
    paper_result = collection.join(
        tau=2, config=PartSJConfig(semantics="paper")
    ).run()
    print("  strict matching finds", len(paper_result.pairs), "pairs")

    # -- 4. Baselines return identical results ------------------------------
    # Same session: the baselines see the same trees, and a repeated
    # PartSJ query would be served from the session's result cache.
    for method in ("str", "set", "nested_loop"):
        other = collection.join(tau=2, method=method).run()
        assert other.pair_set() == result.pair_set()
        print(f"  {other.stats.method:>3} agrees "
              f"({other.stats.candidates} candidates)")

    # -- 5. Similarity search ------------------------------------------------
    # Searches share the session's preparation with the joins above.
    query = Tree.from_bracket(
        "{album{title{Abbey Road}}{artist{The Beatles}}{year{1969}}}"
    )
    hits = collection.search(query, tau=3).run()
    print("\nSearch hits within TED 3 of the query:")
    for hit in hits:
        print(f"  #{hit.index} at distance {hit.distance}")


if __name__ == "__main__":
    main()
