#!/usr/bin/env python
"""Quickstart: tree similarity joins in five minutes.

Walks through the core public API:

1. build trees (bracket notation and programmatic construction);
2. compute tree edit distances;
3. run a similarity self-join with PartSJ and inspect the statistics;
4. cross-check against a baseline method;
5. run a similarity search for a single query.

Run with::

    python examples/quickstart.py
"""

from repro import (
    PartSJConfig,
    Tree,
    TreeNode,
    similarity_join,
    similarity_search,
    ted,
)


def main() -> None:
    # -- 1. Building trees -------------------------------------------------
    # Bracket notation: {label{child}{child}...} — the TED community's
    # interchange format (RTED / APTED compatible).
    album_a = Tree.from_bracket(
        "{album{title{Abbey Road}}{artist{The Beatles}}{year{1969}}"
        "{track{Come Together}}{track{Something}}}"
    )
    # The same record as another store lists it: one track missing, a typo
    # in the year.
    album_b = Tree.from_bracket(
        "{album{title{Abbey Road}}{artist{The Beatles}}{year{1996}}"
        "{track{Come Together}}}"
    )
    # Or build programmatically:
    root = TreeNode("album")
    root.add_child(TreeNode("title", [TreeNode("Let It Be")]))
    root.add_child(TreeNode("artist", [TreeNode("The Beatles")]))
    album_c = Tree(root)

    print("album_a:", album_a.to_bracket())
    print("album_b:", album_b.to_bracket())
    print(f"sizes: {album_a.size}, {album_b.size}, {album_c.size}")

    # -- 2. Tree edit distance ---------------------------------------------
    # ted() is exact: the minimum number of node inserts/deletes/renames.
    print("\nTED(a, b) =", ted(album_a, album_b))  # rename year + delete 2 nodes
    print("TED(a, c) =", ted(album_a, album_c))

    # -- 3. A similarity self-join ------------------------------------------
    # Collect a few near-duplicate listings and join with threshold tau.
    collection = [album_a, album_b, album_c]
    for bracket in (
        "{album{title{Abbey Road}}{artist{The Beatles}}{year{1969}}"
        "{track{Come Together}}{track{Something}}}",  # exact dup of album_a
        "{album{title{Abbey Road}}{artist{Beatles}}{year{1969}}"
        "{track{Come Together}}{track{Something}}}",  # one rename away
    ):
        collection.append(Tree.from_bracket(bracket))

    result = similarity_join(collection, tau=2)  # PartSJ, exact by default
    print("\nSimilarity join (tau=2):")
    for pair in result.pairs:
        print(f"  trees {pair.i} and {pair.j} are TED {pair.distance} apart")
    print(" ", result.stats.summary())

    # The paper-faithful filter configuration is one switch away (it can
    # miss results in corner cases — see EXPERIMENTS.md finding F1):
    paper_result = similarity_join(
        collection, tau=2, config=PartSJConfig(semantics="paper")
    )
    print("  strict matching finds", len(paper_result.pairs), "pairs")

    # -- 4. Baselines return identical results ------------------------------
    for method in ("str", "set", "nested_loop"):
        other = similarity_join(collection, tau=2, method=method)
        assert other.pair_set() == result.pair_set()
        print(f"  {other.stats.method:>3} agrees "
              f"({other.stats.candidates} candidates)")

    # -- 5. Similarity search ------------------------------------------------
    query = Tree.from_bracket(
        "{album{title{Abbey Road}}{artist{The Beatles}}{year{1969}}}"
    )
    hits = similarity_search(query, collection, tau=3)
    print("\nSearch hits within TED 3 of the query:")
    for hit in hits:
        print(f"  #{hit.index} at distance {hit.distance}")


if __name__ == "__main__":
    main()
