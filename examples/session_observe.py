#!/usr/bin/env python
"""Observability: trace a join, render the span tree, scrape metrics.

Every execution tier of the engine is instrumented (:mod:`repro.obs`)
under one invariant — *observability never changes results*.  This
example walks the three surfaces:

1. trace a join by passing ``trace=Tracer()`` to ``run()``, then render
   the recorded span tree and export it as a JSONL artifact;
2. check the invariant: the traced run returned exactly the pairs of
   the untraced one;
3. publish engine statistics into a :class:`repro.MetricsRegistry` and
   render Prometheus text exposition — what ``stats --metrics`` emits.

Run with::

    python examples/session_observe.py
"""

import tempfile
from pathlib import Path

from repro import (
    MetricsRegistry,
    Tracer,
    Tree,
    TreeCollection,
    format_span_tree,
    publish_join_stats,
    read_jsonl,
    render_prometheus,
    write_jsonl,
)


def build_forest() -> list[Tree]:
    """Near-duplicate clusters: enough structure for a real span tree."""
    brackets = [
        "{a{b{c}{d}}{e{f}}}",
        "{a{b{c}{d}}{e{g}}}",
        "{a{b{c}}{e{f}}}",
        "{x{y{z}}{w}}",
        "{x{y{z}}{w{v}}}",
        "{x{y}{w{v}}}",
        "{m{n{o{p}}}{q}}",
        "{m{n{o{p}}}{q{r}}}",
    ]
    return [Tree.from_bracket(b) for b in brackets]


def main() -> None:
    forest = build_forest()
    workdir = Path(tempfile.mkdtemp(prefix="repro-observe-"))

    # -- 1. Trace a join -----------------------------------------------------
    col = TreeCollection.from_trees(forest)
    untraced = col.join(2).run()

    tracer = Tracer()
    traced = col.join(2).run(trace=tracer)

    spans = tracer.finished()
    print(f"traced join: {len(traced.pairs)} pairs, "
          f"{len(spans)} spans recorded")
    print(format_span_tree(spans))

    trace_file = workdir / "join-trace.jsonl"
    written = write_jsonl(spans, trace_file)
    rows = read_jsonl(trace_file)
    print(f"exported {written} spans to {trace_file.name}; "
          f"round-trip read {len(rows)} back")

    # -- 2. The invariant: tracing never changes results ---------------------
    key = lambda result: [(p.i, p.j, p.distance) for p in result.pairs]
    assert key(traced) == key(untraced), "tracing changed the results!"
    print("invariant holds: traced pairs == untraced pairs "
          f"({len(traced.pairs)} pairs)")

    # -- 3. Metrics: publish stats, render Prometheus text -------------------
    registry = MetricsRegistry()
    publish_join_stats(traced.stats, registry=registry)
    exposition = render_prometheus(registry)
    wanted = ("repro_join_runs_total", "repro_join_results_total",
              "repro_join_phase_seconds_count")
    print("metrics exposition (selected lines):")
    for line in exposition.splitlines():
        if line.startswith(wanted):
            print(f"  {line}")


if __name__ == "__main__":
    main()
