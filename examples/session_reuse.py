#!/usr/bin/env python
"""Prepare once, query many: the TreeCollection session API.

The paper's pipeline (partition -> two-layer index -> verify) pays its
preparation cost per *collection*, not per call — and so does the
session API.  This example walks through the scenarios where that
matters:

1. prepare a collection once and run a multi-tau join workload on it;
2. inspect a query plan with ``.explain()`` before running it;
3. serve many similarity searches from the warm per-tau index;
4. R x S joins against a second prepared collection;
5. hand the collection off to the streaming engine and keep ingesting.

When to use what:

- **sessions** (``TreeCollection``) whenever the same trees are queried
  more than once — other thresholds, searches, R x S joins, re-queries;
- **shims** (``similarity_join`` & friends) for one-off calls and quick
  scripts; they build a one-shot session per call, return bit-identical
  results, and remind you (once per process) that sessions exist.

Run with::

    python examples/session_reuse.py
"""

import time

from repro import PartSJConfig, Tree, TreeCollection


def build_catalog() -> list[Tree]:
    """A small product-catalog-like forest with near-duplicate clusters."""
    brackets = [
        "{album{title{Abbey Road}}{artist{The Beatles}}{year{1969}}"
        "{track{Come Together}}{track{Something}}}",
        "{album{title{Abbey Road}}{artist{The Beatles}}{year{1996}}"
        "{track{Come Together}}}",
        "{album{title{Abbey Road}}{artist{Beatles}}{year{1969}}"
        "{track{Come Together}}{track{Something}}}",
        "{album{title{Let It Be}}{artist{The Beatles}}{year{1970}}"
        "{track{Across the Universe}}}",
        "{album{title{Let It Be}}{artist{The Beatles}}{year{1970}}"
        "{track{Across the Universe}}{track{Get Back}}}",
        "{album{title{Help}}{artist{The Beatles}}{year{1965}}}",
        "{single{title{Help}}{artist{The Beatles}}{year{1965}}}",
    ]
    return [Tree.from_bracket(b) for b in brackets]


def main() -> None:
    catalog = build_catalog()

    # -- 1. One session, many thresholds ------------------------------------
    col = TreeCollection.from_trees(catalog)
    print(f"session: {col!r}")
    for tau in (1, 2, 3):
        result = col.join(tau).run()
        print(f"  join(tau={tau}): {len(result.pairs)} pairs "
              f"(prep reused: {result.stats.extra['prep_reused']})")
    # An identical re-query is served from the session's result cache.
    started = time.perf_counter()
    col.join(2).run()
    print(f"  re-query join(tau=2): {time.perf_counter() - started:.6f}s "
          "(result cache)")

    # -- 2. Plans explain themselves before running -------------------------
    plan = col.join(2, config=PartSJConfig(semantics="paper"))
    explain = plan.explain()
    print("\nexplain(join tau=2, paper semantics):")
    print(f"  method={explain['method']} filter={explain['filter']}")
    print(f"  prepared={explain['prepared']} "
          f"cached_result={explain['cached_result']}")
    plan.run()
    print(f"  after run: prepared={plan.explain()['prepared']}")

    # -- 3. Many searches on the warm index ----------------------------------
    queries = [
        Tree.from_bracket("{album{title{Abbey Road}}{artist{The Beatles}}"
                          "{year{1969}}}"),
        Tree.from_bracket("{album{title{Help}}{artist{The Beatles}}"
                          "{year{1965}}}"),
    ]
    print("\nsearches against the warm tau=2 index:")
    for query in queries:
        hits = col.search(query, 2).run()
        print(f"  {query.to_bracket()[:42]}...: "
              f"{[(h.index, h.distance) for h in hits]}")

    # -- 4. R x S against a second prepared collection ------------------------
    other = TreeCollection.from_trees([
        Tree.from_bracket("{album{title{Abbey Road}}{artist{The Beatles}}"
                          "{year{1969}}{track{Come Together}}"
                          "{track{Something}}}"),
        Tree.from_bracket("{album{title{Revolver}}{artist{The Beatles}}"
                          "{year{1966}}}"),
    ])
    rs = col.join_with(other, 1).run()
    print(f"\nR x S (tau=1): {[(p.i, p.j, p.distance) for p in rs.pairs]}")
    # Another threshold against the same right side re-prepares nothing.
    rs3 = col.join_with(other, 3).run()
    print(f"R x S (tau=3): {len(rs3.pairs)} pairs (merged session reused)")

    # -- 5. Streaming handoff -------------------------------------------------
    # Replay the collection through the incremental engine and keep going.
    engine = col.stream(1).engine()
    try:
        new_arrival = Tree.from_bracket(
            "{album{title{Abbey Road}}{artist{The Beatles}}{year{1969}}"
            "{track{Come Together}}{track{Something}}}"
        )
        fresh_pairs = engine.add(new_arrival)
        print(f"\nstreaming handoff: {len(engine)} trees ingested, "
              f"new arrival matched {len(fresh_pairs)} partners")
    finally:
        engine.close()

    # The session's accumulated state, for the curious:
    stats = col.stats()
    print(f"\nsession stats: {stats['trees']} trees, "
          f"taus prepared {col.prepared_taus()}, "
          f"{stats['cached_results']} cached results, "
          f"{stats['verifier_annotations']} cached annotations")
    assert col.join(2).run() is col.join(2).run()  # cache, provably


if __name__ == "__main__":
    main()
