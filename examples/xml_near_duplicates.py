#!/usr/bin/env python
"""Near-duplicate detection over XML product listings.

The paper's motivating scenario (Section 1): a C2C shopping site models
items as XML documents; the similarity join finds items sold at other
stores — near-duplicates differing by a typo, a missing field, or a
renamed tag.

This example:

1. builds a small catalogue of XML listings, including deliberately
   near-duplicate entries from "different vendors";
2. converts XML to trees with :func:`repro.tree.tree_from_xml` (tags and
   text both become labels, as in the paper's Figure 1);
3. joins the catalogue at several thresholds and reports the duplicate
   clusters;
4. shows the filter statistics that make PartSJ cheaper than the
   brute-force scan.

Run with::

    python examples/xml_near_duplicates.py
"""

from collections import defaultdict

from repro import similarity_join
from repro.tree.xmlio import tree_from_xml


def listing(vendor: str, title: str, year: str, price: str, tracks: list[str]) -> str:
    track_xml = "".join(f"<track>{t}</track>" for t in tracks)
    return (
        f"<item><vendor>{vendor}</vendor><title>{title}</title>"
        f"<year>{year}</year><price>{price}</price>{track_xml}</item>"
    )


CATALOGUE_XML = [
    # Vendor A and B sell the same album; B has a typo in the year.
    listing("A", "Abbey Road", "1969", "25", ["Come Together", "Something"]),
    listing("B", "Abbey Road", "1996", "25", ["Come Together", "Something"]),
    # Vendor C dropped one track and renamed the price.
    listing("C", "Abbey Road", "1969", "27", ["Come Together"]),
    # A different album entirely.
    listing("A", "Kind of Blue", "1959", "19", ["So What", "Blue in Green"]),
    listing("D", "Kind of Blue", "1959", "19", ["So What", "Blue in Green"]),
    # And something unrelated.
    listing("E", "OK Computer", "1997", "15",
            ["Airbag", "Paranoid Android", "Karma Police"]),
]


def main() -> None:
    trees = [tree_from_xml(xml) for xml in CATALOGUE_XML]
    print(f"catalogue: {len(trees)} listings, "
          f"tree sizes {[t.size for t in trees]}")

    for tau in (1, 2, 4):
        result = similarity_join(trees, tau)
        print(f"\n-- tau = {tau}: {len(result.pairs)} near-duplicate pairs --")
        for pair in result.pairs:
            print(f"  listing {pair.i} ~ listing {pair.j} "
                  f"(TED {pair.distance})")
        stats = result.stats
        print(f"  [{stats.candidates} candidates, {stats.ted_calls} TED "
              f"calls out of {len(trees) * (len(trees) - 1) // 2} possible pairs]")

    # Group tau=4 matches into duplicate clusters via union-find.
    result = similarity_join(trees, 4)
    parent = list(range(len(trees)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for pair in result.pairs:
        parent[find(pair.i)] = find(pair.j)
    clusters = defaultdict(list)
    for index in range(len(trees)):
        clusters[find(index)].append(index)

    print("\nDuplicate clusters at tau=4:")
    for members in clusters.values():
        if len(members) > 1:
            titles = {CATALOGUE_XML[m].split("<title>")[1].split("<")[0]
                      for m in members}
            print(f"  listings {members}: {sorted(titles)}")


if __name__ == "__main__":
    main()
