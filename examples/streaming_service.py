#!/usr/bin/env python
"""Streaming ingestion and search-as-a-service (``repro.stream``).

A log-deduplication scenario: structured event records arrive one at a
time, and the service must (a) report each new record's near-duplicates
*the moment it arrives* and (b) answer ad-hoc similarity queries from a
warm index, without ever rebuilding anything.  Walks through:

1. ``stream_join`` — the generator API: pairs yielded as they verify;
2. ``StreamingJoin`` — the engine underneath: flush points, live stats,
   and the guarantee that streamed results equal a batch join of the
   prefix;
3. ``StreamingJoin.searcher()`` — warm-index similarity search mid-ingest;
4. ``StreamJoinService`` — the asyncio front end multiplexing concurrent
   ingest and search clients.

Run with::

    python examples/streaming_service.py
"""

import asyncio
import random

from repro import (
    StreamingJoin,
    StreamJoinService,
    Tree,
    similarity_join,
    stream_join,
)


def make_event(rng: random.Random, service_id: int, spans: int) -> Tree:
    """A synthetic trace: request -> services -> spans, near-duplicated."""
    bracket = "{request{service-%d" % service_id
    for k in range(spans):
        op = rng.choice(("read", "write", "cache"))
        bracket += "{span{%s}{status-%d}}" % (op, rng.randint(0, 1))
    bracket += "}{client{web}}"
    # Some traces carry retry markers: sizes inside a cluster differ by a
    # node or two, so a smaller variant can arrive *after* its larger
    # near-duplicates — the pairs the engine's reverse index covers.
    for _ in range(rng.randint(0, 2)):
        bracket += "{retry}"
    return Tree.from_bracket(bracket + "}")


def make_stream(seed: int = 7, count: int = 40) -> list[Tree]:
    rng = random.Random(seed)
    return [make_event(rng, rng.randint(0, 3), rng.randint(2, 4))
            for _ in range(count)]


def main() -> None:
    events = make_stream()
    tau = 2

    # -- 1. The generator API ----------------------------------------------
    # Pairs come out while the stream is still being consumed; indices are
    # arrival positions.
    first_pairs = []
    for pair in stream_join(iter(events), tau):
        first_pairs.append(pair)
        if len(first_pairs) == 3:
            break  # stop early: the prefix join so far is still exact
    print(f"first duplicates on the wire: "
          f"{[(p.i, p.j, p.distance) for p in first_pairs]}")

    # -- 2. The engine and its flush-point guarantee -----------------------
    join = StreamingJoin(tau)
    for event in events:
        join.add(event)
    batch = similarity_join(events, tau)
    assert [(p.i, p.j, p.distance) for p in join.results()] == [
        (p.i, p.j, p.distance) for p in batch.pairs
    ], "streamed results must equal the batch join of the prefix"
    stats = join.stats()
    print(f"streamed {stats.trees} events at {stats.ingest_rate:.0f}/s: "
          f"{stats.results} duplicate pairs, {stats.candidates} candidates "
          f"({stats.reverse_candidates} found via the reverse index)")

    # -- 3. Warm-index search mid-ingest -----------------------------------
    searcher = join.searcher()  # a live view: no copy, no rebuild
    probe = events[5]
    hits = searcher.search(probe)
    print(f"query against the warm index: {len(hits)} events within "
          f"tau={tau} of event 5")
    assert any(h.index == 5 and h.distance == 0 for h in hits)

    # -- 4. The asyncio service --------------------------------------------
    async def scenario() -> tuple[int, int, int]:
        async with StreamJoinService(tau) as service:
            async def producer():
                for event in events:
                    await service.ingest(event)

            async def client():
                # Keep querying until the producer has fed everything;
                # each answer covers exactly the prefix ingested so far.
                searches = 0
                while (await service.stats()).trees < len(events):
                    await service.search(probe)
                    searches += 1
                return searches

            _, mid_ingest_searches = await asyncio.gather(producer(), client())
            final_hits = len(await service.search(probe))
            results = await service.results()
            return len(results), mid_ingest_searches, final_hits

    pair_count, mid_ingest_searches, final_hits = asyncio.run(scenario())
    assert pair_count == len(batch.pairs)
    assert final_hits == len(hits)  # same warm answer as the engine's searcher
    print(f"service: {pair_count} pairs streamed to subscribers, "
          f"{mid_ingest_searches} searches answered mid-ingest, "
          f"{final_hits} hits once the stream drained")


if __name__ == "__main__":
    main()
