#!/usr/bin/env python
"""Grouping sentences with similar parse structure.

The paper's third motivating application (computational linguistics):
sentences with similar parse trees often share semantic structure, so a
tree similarity join over constituency parses groups paraphrase
candidates.

This example hand-writes a handful of s-expression parses (the Treebank
format), converts them into trees, and joins them:

1. parse s-expressions like ``(S (NP (DT the) (NN cat)) (VP ...))``;
2. join with structure-only labels (drop the words) to find sentences
   that *parse* alike regardless of vocabulary;
3. join with full labels to find near-identical sentences;
4. show how the streaming-ready incremental interface of PartSJ matches
   the paper's "refreshed every few minutes" workload.

Run with::

    python examples/sentence_paraphrases.py
"""

from repro import similarity_join
from repro.tree.node import Tree, TreeNode


def parse_sexpr(text: str) -> Tree:
    """Parse an s-expression constituency tree."""
    tokens = text.replace("(", " ( ").replace(")", " ) ").split()
    position = 0

    def parse_node() -> TreeNode:
        nonlocal position
        assert tokens[position] == "("
        position += 1
        node = TreeNode(tokens[position])
        position += 1
        while tokens[position] != ")":
            if tokens[position] == "(":
                node.add_child(parse_node())
            else:
                node.add_child(TreeNode(tokens[position]))
                position += 1
        position += 1  # consume ')'
        return node

    root = parse_node()
    if position != len(tokens):
        raise ValueError("trailing tokens after the root s-expression")
    return Tree(root)


def strip_words(tree: Tree) -> Tree:
    """Keep only the syntactic skeleton (drop leaf word nodes)."""
    def strip(node: TreeNode) -> TreeNode:
        kept = [strip(child) for child in node.children if child.children or
                child.label.isupper()]
        return TreeNode(node.label, kept)

    return Tree(strip(tree.root))


SENTENCES = [
    ("the cat sat on the mat",
     "(S (NP (DT the) (NN cat)) (VP (VBD sat) (PP (IN on) (NP (DT the) (NN mat)))))"),
    ("a dog slept on the rug",
     "(S (NP (DT a) (NN dog)) (VP (VBD slept) (PP (IN on) (NP (DT the) (NN rug)))))"),
    ("the cat sat on a mat",
     "(S (NP (DT the) (NN cat)) (VP (VBD sat) (PP (IN on) (NP (DT a) (NN mat)))))"),
    ("birds sing",
     "(S (NP (NNS birds)) (VP (VBP sing)))"),
    ("fish swim",
     "(S (NP (NNS fish)) (VP (VBP swim)))"),
    ("the old man who lived there smiled",
     "(S (NP (NP (DT the) (JJ old) (NN man)) (SBAR (WHNP (WP who)) "
     "(S (VP (VBD lived) (ADVP (RB there)))))) (VP (VBD smiled)))"),
]


def main() -> None:
    trees = [parse_sexpr(sexpr) for _, sexpr in SENTENCES]
    print("parsed sentences:")
    for index, (sentence, _) in enumerate(SENTENCES):
        print(f"  [{index}] {sentence!r} -> {trees[index].size} nodes")

    # -- Structural paraphrases: drop the words -----------------------------
    skeletons = [strip_words(tree) for tree in trees]
    result = similarity_join(skeletons, tau=1)
    print("\nSentences with near-identical parse structure (tau=1, no words):")
    for pair in result.pairs:
        print(f"  {SENTENCES[pair.i][0]!r} ~ {SENTENCES[pair.j][0]!r} "
              f"(TED {pair.distance})")

    # -- Near-identical sentences: full labels -------------------------------
    result = similarity_join(trees, tau=2)
    print("\nNear-identical sentences (tau=2, words included):")
    for pair in result.pairs:
        print(f"  {SENTENCES[pair.i][0]!r} ~ {SENTENCES[pair.j][0]!r} "
              f"(TED {pair.distance})")

    # -- Streaming use: trees arriving one at a time -------------------------
    # Algorithm 1 needs no offline index: the two-layer index is built
    # on-the-fly while joining, so appending a batch and re-joining models
    # the paper's streaming workload.
    extended = trees + [parse_sexpr(
        "(S (NP (DT the) (NN dog)) (VP (VBD sat) (PP (IN on) "
        "(NP (DT the) (NN mat)))))"
    )]
    before = similarity_join(trees, 2).pair_set()
    after = similarity_join(extended, 2).pair_set()
    new_pairs = after - before
    print(f"\nAfter a new sentence arrives: {len(new_pairs)} new pairs "
          f"{sorted(new_pairs)}")


if __name__ == "__main__":
    main()
