#!/usr/bin/env python
"""A guided tour of the paper's evaluation at miniature scale.

Runs a shrunken version of each experiment family from Section 4 and
prints the same tables the full benchmark suite produces, so you can see
the paper's claims take shape in under a minute:

- runtime and candidates vs tau (Figures 10/11);
- the MaxMinSize-vs-random partitioning ablation (Section 4.3);
- the filter-variant ablation documenting the published window's false
  negatives (EXPERIMENTS.md finding F1).

For the real grids use ``pytest benchmarks/ --benchmark-only`` or
``python -m repro experiment fig10 --scale small``.

Run with::

    python examples/benchmark_tour.py
"""

from repro.bench.experiments import (
    Scale,
    run_ablation_filters,
    run_ablation_partitioning,
    run_fig10_11,
)
from repro.bench.reporting import format_table, render_figure

MINI = Scale(
    name="mini",
    join_count=60,
    taus=(1, 2),
    cardinalities=(30, 60),
    card_tau=2,
    sens_count=40,
    sens_tau=2,
    fanouts=(2, 4),
    depths=(4, 6),
    label_counts=(5, 20),
    tree_sizes=(30, 60),
    ablation_count=60,
    datasets=("sentiment",),
)


def main() -> None:
    print("1. Figures 10/11 (sentiment-like, 60 trees) ...")
    cells = run_fig10_11(scale=MINI)
    print(render_figure("runtime & candidates vs tau (miniature)", cells))

    print("2. Partitioning ablation ...")
    cells = run_ablation_partitioning(scale=MINI)
    rows = [
        [c.x_value, c.method, f"{c.total_time:.3f}", c.candidates, c.results]
        for c in cells
    ]
    print(format_table(["tau", "variant", "total (s)", "candidates",
                        "results"], rows))

    print("\n3. Filter-variant ablation (the published window may miss) ...")
    cells = run_ablation_filters(scale=MINI)
    rows = [
        [c.method, c.candidates, c.results] for c in cells
    ]
    print(format_table(["variant", "candidates", "results"], rows))

    rel = next(c for c in cells if c.method == "REL")
    missing = [
        c.method for c in cells
        if c.method != "REL" and c.results < rel.results
    ]
    if missing:
        print(f"\n-> variants that LOST results on this workload: {missing}")
    else:
        print("\n-> no variant lost results on this workload (it happens "
              "on specific edit patterns; see EXPERIMENTS.md finding F1)")


if __name__ == "__main__":
    main()
