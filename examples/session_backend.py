#!/usr/bin/env python
"""Choosing a kernel backend: auto, python, numpy.

Every hot loop of the join — the probe/bucket walk, the partition span
fills, the tau-banded Zhang-Shasha DP — exists twice: as the pure-python
reference and as a numpy flat-array kernel (``repro.kernels``).  The
``backend`` knob on :class:`repro.PartSJConfig` picks between them:

- ``"auto"`` (the default) uses numpy when it imports, pure python
  otherwise — no install-time decision, no behavior change;
- ``"python"`` forces the reference kernels (useful for debugging and
  for apples-to-apples benchmarks);
- ``"numpy"`` demands the flat-array kernels and raises
  ``InvalidParameterError`` if numpy is missing (``pip install
  repro[fast]``).

The backends are **bit-identical**: same pairs, same distances, same
candidate counts, same deterministic stats — the choice is a speed knob,
never a semantics knob.  This example proves it on a small forest and
shows where the resolved backend is reported.

Run with::

    python examples/session_backend.py
"""

from repro import PartSJConfig, Tree, TreeCollection
from repro.kernels import numpy_available, resolve_backend


def build_forest(count: int = 40) -> list[Tree]:
    """Near-duplicate clusters, the regime the kernels target."""
    from repro.datasets.synthetic import SyntheticParams, generate_forest

    return generate_forest(
        count, SyntheticParams(avg_size=20, cluster_size=5), seed=9
    )


def main() -> None:
    forest = build_forest()
    col = TreeCollection.from_trees(forest)

    # -- 1. What does "auto" mean on this machine? ---------------------------
    resolved = resolve_backend("auto")
    print(f"numpy available: {numpy_available()}")
    print(f'backend="auto" resolves to: "{resolved}"')

    # -- 2. The plan reports the backend before running ----------------------
    plan = col.join(2)
    print(f"\nexplain(): backend={plan.explain()['filter']['backend']}")

    # -- 3. ... and the stats report the backend that actually ran -----------
    result = plan.run()
    print(f"run():     backend={result.stats.extra['backend']} "
          f"({len(result.pairs)} pairs)")

    # -- 4. Bit-identity, provably -------------------------------------------
    # Forcing the python reference returns exactly the same answer; only
    # the reported backend (and the wall clock) differs.  Each backend
    # gets its own slot in the session's result and preparation caches.
    reference = col.join(2, backend="python").run()
    pairs = lambda r: [(p.i, p.j, p.distance) for p in r.pairs]  # noqa: E731
    assert pairs(reference) == pairs(result)
    print(f"\npython reference: backend="
          f"{reference.stats.extra['backend']}, pairs identical: "
          f"{pairs(reference) == pairs(result)}")

    # -- 5. Explicit numpy raises when numpy is missing ----------------------
    if numpy_available():
        fast = col.join(2, config=PartSJConfig(backend="numpy")).run()
        print(f"explicit numpy: {len(fast.pairs)} pairs, "
              f"backend={fast.stats.extra['backend']}")
    else:
        from repro.errors import InvalidParameterError
        try:
            col.join(2, config=PartSJConfig(backend="numpy")).run()
        except InvalidParameterError as exc:
            print(f"explicit numpy without numpy installed: {exc}")

    # The CLI takes the same knob: repro join data.jsonl --tau 2
    # --backend numpy.  Honest expectations: on CPython the end-to-end
    # ratio is ~1x at tau <= 3 (verification's narrow DP bands stay
    # scalar by design); see BENCH_PR9.json for the measured per-kernel
    # breakdown on this exact codebase.


if __name__ == "__main__":
    main()
