"""Dataset files: one bracket-notation tree per line, optionally gzipped.

The format interoperates with the RTED/APTED tool family and keeps the
whole collection greppable.  Lines starting with ``#`` are comments (the
writers emit a header recording provenance), blank lines are skipped.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import TreeFormatError
from repro.tree.bracket import parse_bracket, to_bracket
from repro.tree.node import Tree

__all__ = ["save_trees", "load_trees", "iter_trees"]


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_trees(
    trees: Iterable[Tree],
    path: str | Path,
    comment: str | None = None,
) -> int:
    """Write a collection to ``path``; returns the number of trees written.

    A ``.gz`` suffix turns on transparent gzip compression.  The write
    is atomic (temp file + fsync + rename, :mod:`repro.persist.atomic`):
    a crash mid-write leaves the previous file intact instead of a
    silently truncated dataset that loads cleanly.
    """
    from repro.persist.atomic import replace_on_success

    path = Path(path)
    count = 0
    with replace_on_success(path) as tmp:
        # Compression is decided by the *final* suffix; the temp name is
        # meaningless by design.
        if path.suffix == ".gz":
            handle = gzip.open(tmp, "wt", encoding="utf-8")
        else:
            handle = open(tmp, "w", encoding="utf-8")
        with handle:
            if comment:
                for line in comment.splitlines():
                    handle.write(f"# {line}\n")
            for tree in trees:
                handle.write(to_bracket(tree))
                handle.write("\n")
                count += 1
    return count


def iter_trees(path: str | Path) -> Iterator[Tree]:
    """Stream trees from ``path`` one at a time (constant memory).

    Raises
    ------
    TreeFormatError
        On the first malformed line, with the line number in the message.
    """
    path = Path(path)
    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                yield parse_bracket(line)
            except TreeFormatError as exc:
                raise TreeFormatError(f"{path}:{lineno}: {exc}") from exc


def load_trees(path: str | Path) -> list[Tree]:
    """Read the whole collection into memory."""
    return list(iter_trees(path))
