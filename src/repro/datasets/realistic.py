"""Simulators for the paper's three real datasets.

The paper evaluates on Swissprot, Treebank and the Stanford Sentiment
treebank — XML/parse-tree dumps we cannot redistribute or download in this
offline reproduction.  Per the substitution policy in DESIGN.md, each
generator below reproduces the *join-relevant* properties the paper reports
(Section 4): tree count scale, average size, label alphabet size, average
and maximum depth, and characteristic shape (flat/wide vs deep/narrow vs
binary), plus near-duplicate cluster structure so the join has work to do.

Published shape statistics being matched:

=========== ======= ========= ======== ========== =========
dataset     trees   avg size  labels   avg depth  max depth
=========== ======= ========= ======== ========== =========
Swissprot   100K    62.37     84       2.65       4
Treebank    50K     45.12     218      6.93       35
Sentiment   10K     37.31     5        10.84      30
=========== ======= ========= ======== ========== =========

(The paper's "average depth" for Swissprot, 2.65, is consistent with the
mean *node* depth of flat record-like documents whose leaves sit at depth
3-4.)  ``tests/datasets/test_realistic.py`` asserts each generator lands
within tolerance of these numbers.
"""

from __future__ import annotations

import random

from repro.errors import InvalidParameterError
from repro.tree.edits import apply_edit, random_edit
from repro.tree.node import Tree, TreeNode

__all__ = ["swissprot_like", "treebank_like", "sentiment_like", "DATASET_GENERATORS"]


# Near-duplicate tiers: real collections are bimodal — documents are either
# revisions of each other (few edits) or unrelated (many).  Each variant
# draws its edit count from this distribution; the heavy tier keeps a share
# of pairs outside any reasonable join threshold so filters have work to do.
# Each tier: (weight, (min_ops, max_ops), (w_insert, w_delete, w_rename)).
# Diverged revisions are rename-heavy — real-world revisions mostly change
# content inside an unchanged schema — which is precisely the regime where
# the tau-insensitive binary-branch filter (SET) admits false candidates
# while the traversal-string and partition filters stay selective.
_MUTATION_TIERS: list[
    tuple[float, tuple[int, int], tuple[float, float, float]]
] = [
    (0.18, (0, 0), (1.0, 1.0, 1.0)),  # exact duplicate
    (0.27, (1, 1), (1.0, 1.0, 1.0)),
    (0.18, (2, 2), (1.0, 1.0, 1.0)),
    (0.12, (3, 4), (1.0, 1.0, 1.0)),
    (0.10, (5, 7), (0.5, 0.5, 2.0)),  # near-miss band
    (0.15, (9, 18), (0.15, 0.15, 1.7)),  # diverged revision (rename-heavy)
]


def _draw_mutations(rng: random.Random) -> tuple[int, tuple[float, float, float]]:
    roll = rng.random()
    acc = 0.0
    for weight, (low, high), kind_weights in _MUTATION_TIERS:
        acc += weight
        if roll < acc:
            return rng.randint(low, high), kind_weights
    return 0, (1.0, 1.0, 1.0)


def _decay_variants(
    base_trees: list[Tree],
    count: int,
    labels: list[str],
    rng: random.Random,
    mutation_rate: float,
    kind_override: tuple[float, float, float] | None = None,
) -> list[Tree]:
    """Expand base trees into ``count`` near-duplicate variants.

    ``mutation_rate`` scales the tier distribution: the drawn edit count is
    multiplied by ``mutation_rate / 0.03`` (so the documented defaults keep
    the tier counts as-is).  ``kind_override`` replaces every tier's
    (insert, delete, rename) weights — used by the sentiment simulator,
    whose revisions are re-annotations (renames) of a fixed binary parse.
    """
    scale = mutation_rate / 0.03
    trees: list[Tree] = []
    index = 0
    while len(trees) < count:
        base = base_trees[index % len(base_trees)]
        index += 1
        count_drawn, kind_weights = _draw_mutations(rng)
        if kind_override is not None:
            kind_weights = kind_override
        mutations = round(count_drawn * scale)
        tree = base
        for _ in range(mutations):
            tree = apply_edit(tree, random_edit(tree, rng, labels, kind_weights))
        trees.append(tree)
    return trees


def swissprot_like(
    count: int,
    seed: int = 0,
    avg_size: int = 62,
    mutation_rate: float = 0.03,
) -> list[Tree]:
    """Flat, wide protein-record trees (Swissprot's shape).

    Each tree is an ``entry`` element with many flat children (``name``,
    ``accession``, ``organism``, feature records...), leaves at depth 3-4,
    84 distinct labels, and no deeper nesting — matching the published
    statistics (avg size 62.37, avg depth 2.65, max depth 4).
    """
    if count < 1:
        raise InvalidParameterError(f"count must be >= 1, got {count}")
    rng = random.Random(seed)
    # 84 labels: a few structural tags plus synthetic field/value labels.
    structural = ["entry", "name", "accession", "organism", "reference",
                  "feature", "sequence", "comment", "keyword", "dbref"]
    fields = [f"f{k}" for k in range(34)]
    values = [f"v{k}" for k in range(40)]
    labels = structural + fields + values
    assert len(labels) == 84

    def one_base() -> Tree:
        root = TreeNode("entry")
        size = 1
        target = max(8, int(rng.gauss(avg_size, avg_size * 0.18)))
        # Flat record sections in a fixed schema order (real entries share
        # the same tag skeleton; only the content varies): each section has
        # field children, each field may carry one value leaf — depth never
        # exceeds 4.
        section_index = 0
        while size < target:
            tag = structural[1 + section_index % (len(structural) - 1)]
            section_index += 1
            section = root.add_child(TreeNode(tag))
            size += 1
            for k in range(rng.randint(2, 5)):
                if size >= target:
                    break
                field = section.add_child(TreeNode(fields[(section_index * 5 + k) % len(fields)]))
                size += 1
                if size < target and rng.random() < 0.7:
                    field.add_child(TreeNode(rng.choice(values)))
                    size += 1
        return Tree(root)

    base_count = max(1, count // 4)
    bases = [one_base() for _ in range(base_count)]
    return _decay_variants(bases, count, labels, rng, mutation_rate)


def treebank_like(
    count: int,
    seed: int = 0,
    avg_size: int = 45,
    mutation_rate: float = 0.03,
) -> list[Tree]:
    """Deep, narrow parse trees (Treebank's shape).

    English-sentence part-of-speech trees: deep recursive clause structure
    (average depth ~7, maximum capped at 35), 218 distinct labels (phrase
    tags plus a vocabulary of terminals), average size ~45.
    """
    if count < 1:
        raise InvalidParameterError(f"count must be >= 1, got {count}")
    rng = random.Random(seed)
    phrase_tags = ["S", "SBAR", "NP", "VP", "PP", "ADJP", "ADVP", "WHNP",
                   "PRT", "QP", "SINV", "NX", "X", "FRAG", "UCP", "CONJP",
                   "INTJ", "LST"]
    pos_tags = [f"P{k}" for k in range(30)]
    words = [f"w{k}" for k in range(170)]
    labels = phrase_tags + pos_tags + words
    assert len(labels) == 218
    max_depth = 35

    def grow(node: TreeNode, depth: int, budget: list[int]) -> None:
        """Recursive clause expansion biased toward depth over width.

        The root level never returns while budget remains, so trees always
        reach their target size; deeper levels return probabilistically,
        which produces the mix of long embedded clauses and short terminal
        runs that gives Treebank its ~7 average node depth.
        """
        while budget[0] > 0:
            roll = rng.random()
            if roll < 0.62 and depth + 2 < max_depth and budget[0] >= 3:
                # Embedded phrase: one level deeper.
                child = node.add_child(TreeNode(rng.choice(phrase_tags)))
                budget[0] -= 1
                grow(child, depth + 1, budget)
                if depth > 0 and rng.random() < 0.75:
                    return
            elif budget[0] >= 2:
                # Terminal: POS tag over a word.
                pos = node.add_child(TreeNode(rng.choice(pos_tags)))
                pos.add_child(TreeNode(rng.choice(words)))
                budget[0] -= 2
                if depth > 0 and rng.random() < 0.45:
                    return
            else:
                node.add_child(TreeNode(rng.choice(pos_tags)))
                budget[0] -= 1
                if depth > 0:
                    return

    def one_base() -> Tree:
        root = TreeNode("S")
        target = max(6, int(rng.gauss(avg_size, avg_size * 0.25)))
        budget = [target - 1]
        grow(root, 0, budget)
        return Tree(root)

    base_count = max(1, count // 4)
    bases = [one_base() for _ in range(base_count)]
    return _decay_variants(bases, count, labels, rng, mutation_rate)


def sentiment_like(
    count: int,
    seed: int = 0,
    avg_size: int = 37,
    mutation_rate: float = 0.04,
) -> list[Tree]:
    """Binarized sentiment parse trees (Stanford Sentiment's shape).

    The sentiment treebank annotates each phrase with one of five sentiment
    classes (labels "0".."4"), and its trees are binarized parses — which
    is why the paper reports only 5 distinct labels, depth up to 30, and
    average size ~37.  A tree of average size 37 with fanout 2 has ~19
    leaves, giving the deep-and-thin shape the paper describes.
    """
    if count < 1:
        raise InvalidParameterError(f"count must be >= 1, got {count}")
    rng = random.Random(seed)
    labels = [str(k) for k in range(5)]
    max_depth = 30

    def one_base() -> Tree:
        target = max(3, int(rng.gauss(avg_size, avg_size * 0.2)))
        if target % 2 == 0:
            target += 1  # a full binary tree has an odd node count

        def build(nodes: int, depth: int) -> TreeNode:
            node = TreeNode(rng.choice(labels))
            if nodes <= 2 or depth + 1 >= max_depth:
                # Degrade gracefully at the depth cap: unary chains are not
                # valid binarized parses, so stop with a leaf.
                return node
            # English parses are heavily right-branching: the left child is
            # usually a short constituent and the spine continues right.
            rest = nodes - 1
            roll = rng.random()
            if roll < 0.93:
                left_share = 1
            elif roll < 0.985:
                left_share = min(3, rest - 2)
            else:
                left_share = min(1 + 2 * rng.randint(0, 3), rest - 2)
            left_share = max(1, left_share)
            right_share = rest - left_share
            if right_share <= 0:
                return node
            node.add_child(build(left_share, depth + 1))
            node.add_child(build(right_share, depth + 1))
            return node

        return Tree(build(target, 0))

    base_count = max(1, count // 4)
    bases = [one_base() for _ in range(base_count)]
    # Sentiment revisions re-label phrases of an unchanged binary parse:
    # keep mutations almost exclusively renames so trees stay binarized.
    return _decay_variants(
        bases, count, labels, rng, mutation_rate, kind_override=(0.05, 0.05, 0.9)
    )


DATASET_GENERATORS = {
    "swissprot": swissprot_like,
    "treebank": treebank_like,
    "sentiment": sentiment_like,
}
