"""Dataset generation and IO: synthetic (TreeGen-style) and realistic shapes."""

from repro.datasets.io import iter_trees, load_trees, save_trees
from repro.datasets.realistic import (
    DATASET_GENERATORS,
    sentiment_like,
    swissprot_like,
    treebank_like,
)
from repro.datasets.synthetic import (
    SyntheticParams,
    TreeGenerator,
    decay,
    generate_forest,
)

__all__ = [
    "SyntheticParams",
    "TreeGenerator",
    "generate_forest",
    "decay",
    "swissprot_like",
    "treebank_like",
    "sentiment_like",
    "DATASET_GENERATORS",
    "save_trees",
    "load_trees",
    "iter_trees",
]
