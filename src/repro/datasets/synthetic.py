"""Synthetic tree generation (paper Section 4, "Synthetic" dataset).

The paper generates trees with Zaki's TreeGen [28] controlled by four
parameters — maximum fanout ``f``, maximum depth ``d``, number of labels
``l``, and (average) tree size ``t`` (Table 1 defaults: 3, 5, 20, 80) — and
then perturbs every generated tree with the decay factor ``Dz`` of [27]:
each node is changed with probability ``Dz`` (default 0.05), the change
drawn uniformly from {insert, delete, rename}.

:class:`TreeGenerator` reproduces that pipeline.  Trees are grown
breadth-first toward a per-tree target size (sampled around ``t``) while
respecting the fanout and depth caps; because the caps bound the number of
slots, the generator fills shallow levels first when the requested size
would not otherwise fit, which mirrors TreeGen's behaviour of producing
bushier trees when ``t`` is large relative to ``f**d``.

A join benchmark needs *similar pairs to exist*; real collections contain
near-duplicates, and the decay-factor construction of [27] creates them by
deriving each dataset tree from a smaller pool of base trees.  The
``cluster_size`` knob controls how many decayed variants each base tree
spawns (1 = fully independent trees).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import InvalidParameterError
from repro.tree.edits import random_edit, apply_edit
from repro.tree.node import Tree, TreeNode

__all__ = ["SyntheticParams", "TreeGenerator", "generate_forest", "decay"]


@dataclass(frozen=True)
class SyntheticParams:
    """Table 1's knobs with the paper's defaults in bold there (3/5/20/80)."""

    max_fanout: int = 3  # f
    max_depth: int = 5  # d (root at depth 0)
    num_labels: int = 20  # l
    avg_size: int = 80  # t
    decay: float = 0.05  # Dz of [27]
    cluster_size: int = 4  # decayed variants derived per base tree

    def validate(self) -> None:
        if self.max_fanout < 1:
            raise InvalidParameterError(f"max_fanout must be >= 1, got {self.max_fanout}")
        if self.max_depth < 0:
            raise InvalidParameterError(f"max_depth must be >= 0, got {self.max_depth}")
        if self.num_labels < 1:
            raise InvalidParameterError(f"num_labels must be >= 1, got {self.num_labels}")
        if self.avg_size < 1:
            raise InvalidParameterError(f"avg_size must be >= 1, got {self.avg_size}")
        if not 0.0 <= self.decay <= 1.0:
            raise InvalidParameterError(f"decay must be in [0, 1], got {self.decay}")
        if self.cluster_size < 1:
            raise InvalidParameterError(
                f"cluster_size must be >= 1, got {self.cluster_size}"
            )

    @property
    def labels(self) -> list[str]:
        return [f"L{k}" for k in range(self.num_labels)]

    def max_possible_size(self) -> int:
        """Nodes in the full ``max_fanout``-ary tree of ``max_depth`` levels."""
        total = 0
        level = 1
        for _ in range(self.max_depth + 1):
            total += level
            level *= self.max_fanout
        return total


class TreeGenerator:
    """Random tree source with TreeGen-style shape control."""

    def __init__(self, params: SyntheticParams, seed: int = 0):
        params.validate()
        self.params = params
        self.rng = random.Random(seed)

    def _target_size(self) -> int:
        """Per-tree size drawn around ``avg_size`` (±25%), capped by shape."""
        spread = max(1, self.params.avg_size // 4)
        target = self.params.avg_size + self.rng.randint(-spread, spread)
        return max(1, min(target, self.params.max_possible_size()))

    def _random_label(self) -> str:
        return f"L{self.rng.randrange(self.params.num_labels)}"

    def generate_tree(self) -> Tree:
        """Grow one tree to its target size, one child at a time.

        Every node can hold up to ``max_fanout`` children; a uniformly
        random frontier node receives each new child, so fanouts vary in
        ``[0, f]`` while the tree reliably reaches its target size (the
        frontier only empties when the shape caps make the target
        infeasible, which ``_target_size`` already rules out).
        """
        params = self.params
        rng = self.rng
        target = self._target_size()
        root = TreeNode(self._random_label())
        size = 1
        # Frontier of (node, depth) with at least one free child slot.
        frontier: list[tuple[TreeNode, int]] = (
            [(root, 0)] if params.max_depth > 0 else []
        )
        while size < target and frontier:
            pick = rng.randrange(len(frontier))
            node, depth = frontier[pick]
            child = node.add_child(TreeNode(self._random_label()))
            size += 1
            if depth + 1 < params.max_depth:
                frontier.append((child, depth + 1))
            if len(node.children) >= params.max_fanout:
                frontier[pick] = frontier[-1]
                frontier.pop()
        return Tree(root)

    def decay_tree(self, tree: Tree) -> Tree:
        """Apply the decay factor: each node mutates with probability ``Dz``.

        The number of mutations is drawn as a binomial over the node count
        (equivalent to flipping a ``Dz`` coin per node); each mutation is a
        uniformly random insert/delete/rename.
        """
        mutations = sum(
            1 for _ in range(tree.size) if self.rng.random() < self.params.decay
        )
        current = tree
        for _ in range(mutations):
            op = random_edit(current, self.rng, self.params.labels)
            current = apply_edit(current, op)
        return current

    def generate(self, count: int) -> list[Tree]:
        """A forest of ``count`` trees with near-duplicate cluster structure.

        Base trees are generated independently; each spawns up to
        ``cluster_size`` decayed variants until ``count`` is reached.
        """
        trees: list[Tree] = []
        while len(trees) < count:
            base = self.generate_tree()
            for _ in range(min(self.params.cluster_size, count - len(trees))):
                trees.append(self.decay_tree(base))
        return trees

    def stream(self) -> Iterator[Tree]:
        """Endless stream of decayed trees (for streaming-workload demos)."""
        while True:
            base = self.generate_tree()
            for _ in range(self.params.cluster_size):
                yield self.decay_tree(base)


def generate_forest(
    count: int,
    params: Optional[SyntheticParams] = None,
    seed: int = 0,
) -> list[Tree]:
    """Convenience wrapper: ``TreeGenerator(params, seed).generate(count)``."""
    return TreeGenerator(params or SyntheticParams(), seed).generate(count)


def decay(tree: Tree, dz: float, num_labels: int, seed: int = 0) -> Tree:
    """Standalone decay-factor mutation of one tree."""
    params = SyntheticParams(decay=dz, num_labels=num_labels)
    generator = TreeGenerator(params, seed)
    return generator.decay_tree(tree)
