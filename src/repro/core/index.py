"""The two-layer subgraph index of Section 3.4, on packed integer keys.

The join keeps one :class:`TwoLayerIndex` per tree size ``n`` (the
*inverted size index* ``I_n`` of Algorithm 1).  Within a size, the two
layers of the paper are materialized as:

1. **label layer** — a flat dictionary keyed by the *packed twig key*
   (:func:`repro.core.intern.pack_twig`): the subgraph root's
   ``(label, left, right)`` interned label ids, epsilon (``0``) for
   missing / non-member children, packed into one small integer.  One
   int hash per lookup instead of a three-string tuple hash.
2. **postorder layer** — inside each twig bucket, subgraphs are stored
   *once* (not once per window key) as ``(postorder_id, half_width,
   subgraph)`` entries kept sorted by ``postorder_id``.  A probe at
   postorder number ``p`` bisects the bucket for the superset window
   ``[p - tau, p + tau]`` and keeps entries with ``|p - p_k| <=
   half_width`` — exactly the subgraphs the paper would have filed under
   key ``p``.  With ``postorder_filter="paper"`` the half width is
   ``Delta' = tau - floor(k / 2)`` (the published derivation); with
   ``"safe"`` it is ``tau``, which is provably sufficient because a
   surviving node's general-tree postorder number shifts by at most one
   per edit operation; ``"off"`` disables the layer.

Storing each subgraph once — instead of under every integer key in
``[p_k - Delta', p_k + Delta']`` — cuts index memory and insert work by a
factor of ``2*tau + 1`` and makes the number of stored entries
independent of ``tau`` (see :attr:`TwoLayerIndex.entry_count`).

Mutation invariants
-------------------
The index is built for *interleaved* probing and insertion — the batch
join alternates the two per tree, and the streaming engine
(:mod:`repro.stream`) keeps one index alive indefinitely while trees
keep arriving.  Four invariants make that safe:

1. **Append-only buckets, lazily sorted.**  Inserts append to a bucket
   and mark it dirty; the ``O(k log k)`` re-sort (and the mirrored
   ``posts`` bisection array) happens on the bucket's next probe, never
   eagerly.  The alternating pattern thus pays one amortized sort per
   touched bucket per tree rather than ``O(k)`` shifting per insert, and
   a probe always observes every earlier insert.
2. **Shared bucket objects in the merged view.**  ``InvertedSizeIndex``
   maintains ``merged: twig_key -> {size: bucket}`` pointing at the
   *same* bucket objects as the per-size indexes — an insert through
   :meth:`InvertedSizeIndex.insert_all` is immediately visible through
   both access paths, with no copy to refresh.
3. **Append-only label ids.**  Packed twig keys embed interned label ids
   (:mod:`repro.core.intern`); the interner never reassigns an id, so a
   key filed in a bucket remains probe-able forever regardless of how
   many new labels later trees introduce.  A label first seen *after* a
   subgraph was filed gets a fresh id, whose packed keys cannot collide
   with any stored key.
4. **Monotone statistics.**  ``count`` / ``entry_count`` /
   ``total_subgraphs`` / ``total_entries`` only grow, so a streaming
   consumer may publish them mid-ingest without tearing.

Nothing is ever deleted or rewritten in place; a probe running between
two inserts sees exactly the prefix of insertions that completed, which
is what makes the warm-index search service sound.

A probe for node ``N`` (postorder number ``p``, packed twig keys of the
at most four search twigs ``(l,ll,lr)``, ``(l,ll,eps)``, ``(l,eps,lr)``,
``(l,eps,eps)``) calls :meth:`TwoLayerIndex.probe_packed` with keys the
caller computed *once per node* — the epsilon collapse of duplicate keys
is a static property of the node's children, so the join hoists key
construction out of its per-size loop (see ``partsj_join._probe_index``).
"""

from __future__ import annotations

import enum
from bisect import bisect_left, bisect_right
from operator import itemgetter
from typing import Sequence

from repro.core.intern import search_keys
from repro.core.subgraph import Subgraph
from repro.errors import InvalidParameterError

__all__ = [
    "PostorderFilter",
    "TwoLayerIndex",
    "InvertedSizeIndex",
    "postorder_half_width",
    "probe_all_packed",
]

_entry_postorder = itemgetter(0)


def postorder_half_width(
    postorder_filter: "PostorderFilter", tau: int, rank: int
) -> int:
    """Half-width ``Delta'`` of a subgraph's postorder window.

    One source of truth for the window rule, shared by the forward index
    (:meth:`TwoLayerIndex.window`) and the streaming reverse index
    (:class:`repro.stream.reverse.NodeTwigIndex`), which applies the same
    window from the subgraph side: ``tau - floor(rank / 2)`` under the
    published ``PAPER`` rule, ``tau`` under the provably-safe default,
    and unused (``0``) when the layer is ``OFF``.
    """
    if postorder_filter is PostorderFilter.PAPER:
        return max(0, tau - rank // 2)
    return tau


class PostorderFilter(enum.Enum):
    """Window rule for the postorder layer."""

    PAPER = "paper"  # Delta' = tau - floor(k/2): the published scheme
    SAFE = "safe"  # Delta' = tau: provably no false negatives
    OFF = "off"  # label layer only

    @classmethod
    def coerce(cls, value: "PostorderFilter | str") -> "PostorderFilter":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise InvalidParameterError(
                f"unknown postorder filter {value!r}; use 'paper', 'safe' or 'off'"
            ) from None


class _TwigBucket:
    """All subgraphs of one size sharing one packed twig key.

    ``entries`` holds ``(postorder_id, half_width, subgraph)`` triples;
    ``posts`` mirrors the postorder ids for bisection.  Inserts append
    and mark the bucket dirty; the sort happens lazily on the next probe.
    ``arrays`` caches the numpy probe kernel's column view of the entries
    (:func:`repro.kernels.probe._bucket_arrays`) and is invalidated on
    every insert and re-sort; it stays ``None`` under the python backend.
    """

    __slots__ = ("entries", "posts", "dirty", "arrays")

    def __init__(self) -> None:
        self.entries: list[tuple[int, int, Subgraph]] = []
        self.posts: list[int] = []
        self.dirty = False
        self.arrays = None

    def add(self, postorder_id: int, half: int, subgraph: Subgraph) -> None:
        self.entries.append((postorder_id, half, subgraph))
        self.dirty = True
        self.arrays = None

    def _ensure_sorted(self) -> None:
        self.entries.sort(key=_entry_postorder)
        self.posts = [entry[0] for entry in self.entries]
        self.dirty = False
        self.arrays = None


class TwoLayerIndex:
    """Subgraph index for the trees of one fixed size."""

    __slots__ = ("tau", "postorder_filter", "_buckets", "count", "entry_count")

    def __init__(self, tau: int, postorder_filter: PostorderFilter):
        self.tau = tau
        self.postorder_filter = postorder_filter
        self._buckets: dict[int, _TwigBucket] = {}
        self.count = 0  # subgraphs inserted
        self.entry_count = 0  # stored index entries (== count: one per subgraph)

    def window(self, subgraph: Subgraph) -> int:
        """The half-width ``Delta'`` of ``subgraph``'s postorder window."""
        # SAFE -> tau; unused for OFF.
        return postorder_half_width(self.postorder_filter, self.tau, subgraph.rank)

    def insert(self, subgraph: Subgraph) -> _TwigBucket:
        """File ``subgraph`` once under its packed twig key."""
        self.count += 1
        self.entry_count += 1
        bucket = self._buckets.get(subgraph.twig_key)
        if bucket is None:
            bucket = self._buckets[subgraph.twig_key] = _TwigBucket()
        if self.postorder_filter is PostorderFilter.OFF:
            bucket.add(subgraph.postorder_id, 0, subgraph)
        else:
            bucket.add(subgraph.postorder_id, self.window(subgraph), subgraph)
        return bucket

    def probe_packed(
        self, postorder_number: int, twig_keys: Sequence[int]
    ) -> list[Subgraph]:
        """Subgraphs that may match a node probing with these twig keys.

        ``twig_keys`` must be duplicate-free (the caller collapses epsilon
        variants once per node); each stored subgraph has exactly one twig
        key, so the result carries no duplicates.
        """
        return probe_all_packed((self,), postorder_number, twig_keys)

    def probe(
        self,
        postorder_number: int,
        label: str,
        left_label: str,
        right_label: str,
    ) -> list[Subgraph]:
        """String-label probe (compat wrapper over :meth:`probe_packed`).

        Labels are resolved against the interner of the inserted
        subgraphs; a label the interner has never seen cannot match.
        """
        # Resolve the interner through any stored subgraph: every insert
        # carries its container cache, and caches share the collection
        # interner.
        interner = None
        for bucket in self._buckets.values():
            if bucket.entries:
                interner = bucket.entries[0][2].cache.interner
                break
        if interner is None:
            return []
        lab = interner.get(label)
        if lab is None:
            return []
        # The paper's four search twigs with the epsilon collapse; an
        # un-interned child label can only ever match as epsilon.
        keys = search_keys(
            lab, interner.get(left_label) or 0, interner.get(right_label) or 0
        )
        return self.probe_packed(postorder_number, keys)

    def __len__(self) -> int:
        return self.count


def probe_all_packed(
    indexes: Sequence[TwoLayerIndex],
    postorder_number: int,
    twig_keys: Sequence[int],
) -> list[Subgraph]:
    """Probe several same-``tau`` per-size indexes with one set of keys.

    The probe loop of Algorithm 1 visits every size in ``[n - tau, n]``
    for every node; this batches those lookups into a single call per
    node so the (mostly empty) per-size results cost one dict probe each
    instead of a Python call and a list allocation.  All ``indexes`` must
    share ``tau`` and ``postorder_filter`` (they come from one
    :class:`InvertedSizeIndex`).
    """
    hits: list[Subgraph] = []
    if not indexes:
        return hits
    first = indexes[0]
    if first.postorder_filter is PostorderFilter.OFF:
        for index in indexes:
            buckets = index._buckets
            for key in twig_keys:
                bucket = buckets.get(key)
                if bucket is not None:
                    hits.extend(entry[2] for entry in bucket.entries)
        return hits
    tau = first.tau
    lo = postorder_number - tau
    hi = postorder_number + tau
    safe = first.postorder_filter is PostorderFilter.SAFE
    for index in indexes:
        buckets = index._buckets
        for key in twig_keys:
            bucket = buckets.get(key)
            if bucket is None:
                continue
            if bucket.dirty:
                bucket._ensure_sorted()
            posts = bucket.posts
            start = bisect_left(posts, lo)
            stop = bisect_right(posts, hi, start)
            if start == stop:
                continue
            entries = bucket.entries
            if safe:
                # half == tau for every entry: the bisect is the filter.
                hits.extend(entries[k][2] for k in range(start, stop))
            else:
                for k in range(start, stop):
                    pk, half, subgraph = entries[k]
                    if -half <= postorder_number - pk <= half:
                        hits.append(subgraph)
    return hits


class InvertedSizeIndex:
    """``I``: one :class:`TwoLayerIndex` per tree size, built on the fly.

    Besides the per-size indexes, a *merged* view ``twig_key -> {size:
    bucket}`` is maintained (sharing the same bucket objects, so it costs
    one pointer per bucket, not a copy).  The probe loop visits ``tau + 1``
    sizes per node and most twig keys hit nothing; the merged view
    collapses those misses into a single dictionary probe per key.
    """

    __slots__ = ("tau", "postorder_filter", "_by_size", "merged")

    def __init__(self, tau: int, postorder_filter: PostorderFilter | str = "safe"):
        if tau < 0:
            raise InvalidParameterError(f"tau must be >= 0, got {tau}")
        self.tau = tau
        self.postorder_filter = PostorderFilter.coerce(postorder_filter)
        self._by_size: dict[int, TwoLayerIndex] = {}
        self.merged: dict[int, dict[int, _TwigBucket]] = {}

    def for_size(self, size: int, create: bool = False) -> TwoLayerIndex | None:
        """The per-size index, optionally creating it."""
        index = self._by_size.get(size)
        if index is None and create:
            index = TwoLayerIndex(self.tau, self.postorder_filter)
            self._by_size[size] = index
        return index

    def insert_all(self, size: int, subgraphs: list[Subgraph]) -> None:
        """Insert a tree's partition into its size's index.

        Delegates to :meth:`TwoLayerIndex.insert` (the one owner of the
        half-width logic) and files the returned bucket in the merged
        view.
        """
        index = self.for_size(size, create=True)
        assert index is not None
        insert = index.insert
        merged = self.merged
        for subgraph in subgraphs:
            bucket = insert(subgraph)
            key = subgraph.twig_key
            by_size = merged.get(key)
            if by_size is None:
                merged[key] = {size: bucket}
            else:
                by_size[size] = bucket  # idempotent: same shared bucket

    @property
    def total_subgraphs(self) -> int:
        return sum(index.count for index in self._by_size.values())

    @property
    def total_entries(self) -> int:
        """Stored index entries across sizes — one per subgraph, tau-free."""
        return sum(index.entry_count for index in self._by_size.values())

    def sizes(self) -> list[int]:
        """Sizes that currently have a non-empty index."""
        return sorted(self._by_size)
