"""The two-layer subgraph index of Section 3.4.

The join keeps one :class:`TwoLayerIndex` per tree size ``n`` (the
*inverted size index* ``I_n`` of Algorithm 1).  Within a size, subgraphs
are grouped by

1. **postorder layer** — subgraph ``s_k`` (root postorder id ``p_k``,
   rank ``k``) is filed under every integer key in
   ``[p_k - Delta', p_k + Delta']``.  With ``postorder_filter="paper"``
   ``Delta' = tau - floor(k / 2)`` (the paper's derivation);
   with ``"safe"`` ``Delta' = tau``, which is provably sufficient because a
   surviving node's general-tree postorder number shifts by at most one per
   edit operation; ``"off"`` disables the layer.
2. **label layer** — within a postorder group, subgraphs are keyed by their
   topmost twig ``(label, left, right)`` with epsilon for missing /
   non-member children.

A probe for node ``N`` (postorder number ``p``, label ``l``, binary
children labels ``ll``/``lr``) inspects the single postorder group ``p``
and, inside it, the at most four label keys ``(l,ll,lr)``, ``(l,ll,eps)``,
``(l,eps,lr)``, ``(l,eps,eps)`` — the paper's four search keys.  The two
layers are materialized as one flat dictionary keyed by
``(postorder_key, twig)`` tuples.
"""

from __future__ import annotations

import enum
from typing import Iterator

from repro.core.subgraph import EPSILON, Subgraph
from repro.errors import InvalidParameterError

__all__ = ["PostorderFilter", "TwoLayerIndex", "InvertedSizeIndex"]


class PostorderFilter(enum.Enum):
    """Window rule for the postorder layer."""

    PAPER = "paper"  # Delta' = tau - floor(k/2): the published scheme
    SAFE = "safe"  # Delta' = tau: provably no false negatives
    OFF = "off"  # label layer only

    @classmethod
    def coerce(cls, value: "PostorderFilter | str") -> "PostorderFilter":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise InvalidParameterError(
                f"unknown postorder filter {value!r}; use 'paper', 'safe' or 'off'"
            ) from None


# Sentinel postorder key used when the postorder layer is disabled.
_ANY = -1


class TwoLayerIndex:
    """Subgraph index for the trees of one fixed size."""

    __slots__ = ("tau", "postorder_filter", "_groups", "count")

    def __init__(self, tau: int, postorder_filter: PostorderFilter):
        self.tau = tau
        self.postorder_filter = postorder_filter
        self._groups: dict[tuple[int, tuple[str, str, str]], list[Subgraph]] = {}
        self.count = 0  # subgraphs inserted (not index entries)

    def window(self, subgraph: Subgraph) -> int:
        """The half-width ``Delta'`` of ``subgraph``'s postorder window."""
        if self.postorder_filter is PostorderFilter.PAPER:
            return max(0, self.tau - subgraph.rank // 2)
        return self.tau  # SAFE; unused for OFF

    def insert(self, subgraph: Subgraph) -> None:
        """File ``subgraph`` under its postorder-window and twig keys."""
        self.count += 1
        twig = subgraph.twig
        if self.postorder_filter is PostorderFilter.OFF:
            self._groups.setdefault((_ANY, twig), []).append(subgraph)
            return
        half = self.window(subgraph)
        pk = subgraph.postorder_id
        for key in range(pk - half, pk + half + 1):
            self._groups.setdefault((key, twig), []).append(subgraph)

    def probe(
        self,
        postorder_number: int,
        label: str,
        left_label: str,
        right_label: str,
    ) -> Iterator[Subgraph]:
        """Subgraphs that may match a node with this position and twig.

        Each stored subgraph is filed under exactly one twig key per
        postorder key, so the iteration yields no duplicates.
        """
        if self.postorder_filter is PostorderFilter.OFF:
            position = _ANY
        else:
            position = postorder_number
        groups = self._groups
        seen_keys = set()
        for twig in (
            (label, left_label, right_label),
            (label, left_label, EPSILON),
            (label, EPSILON, right_label),
            (label, EPSILON, EPSILON),
        ):
            if twig in seen_keys:
                continue  # collapses when the node lacks a child
            seen_keys.add(twig)
            bucket = groups.get((position, twig))
            if bucket:
                yield from bucket

    def __len__(self) -> int:
        return self.count


class InvertedSizeIndex:
    """``I``: one :class:`TwoLayerIndex` per tree size, built on the fly."""

    __slots__ = ("tau", "postorder_filter", "_by_size")

    def __init__(self, tau: int, postorder_filter: PostorderFilter | str = "safe"):
        if tau < 0:
            raise InvalidParameterError(f"tau must be >= 0, got {tau}")
        self.tau = tau
        self.postorder_filter = PostorderFilter.coerce(postorder_filter)
        self._by_size: dict[int, TwoLayerIndex] = {}

    def for_size(self, size: int, create: bool = False) -> TwoLayerIndex | None:
        """The per-size index, optionally creating it."""
        index = self._by_size.get(size)
        if index is None and create:
            index = TwoLayerIndex(self.tau, self.postorder_filter)
            self._by_size[size] = index
        return index

    def insert_all(self, size: int, subgraphs: list[Subgraph]) -> None:
        """Insert a tree's partition into its size's index."""
        index = self.for_size(size, create=True)
        assert index is not None
        for subgraph in subgraphs:
            index.insert(subgraph)

    @property
    def total_subgraphs(self) -> int:
        return sum(index.count for index in self._by_size.values())

    def sizes(self) -> list[int]:
        """Sizes that currently have a non-empty index."""
        return sorted(self._by_size)
