"""Per-tree flat-array precomputation shared by the PartSJ probe and insert
phases.

For every tree the join touches, :class:`TreeCache` materializes once the
LC-RS binary representation — *as parallel integer arrays, not as a node
object graph*.  Nodes are identified by their 1-based binary postorder
number ``b`` (the traversal order of Algorithm 2 and of the probe loop,
Algorithm 1 line 6); slot ``0`` of every array is unused so that ``0``
can mean "no child / no parent".  The arrays are:

- ``labels[b]`` — the interned label id (:mod:`repro.core.intern`) of the
  node, shared collection-wide so ids are comparable across trees;
- ``left[b]`` / ``right[b]`` — binary postorder numbers of the LC-RS
  left (leftmost-child) and right (next-sibling) children, or ``0``;
- ``parent[b]`` — binary postorder number of the binary parent, ``0`` at
  the root (which is always number ``size``, being last in postorder);
- ``general_post[b]`` — the *general-tree* postorder number of the
  node's general twin, which is the position identifier the two-layer
  index keys on.

The probe loop, partition extraction and subgraph matching all walk these
arrays with plain integer indices — no attribute loads, no ``id()``-keyed
dictionaries, no per-node objects.  A :class:`~repro.tree.binary.BinaryNode`
object layer is still available through :attr:`binary` /
:attr:`binary_postorder` / :meth:`binary_number` for tests, ablation
paths and debugging, but it is built lazily on first access and the hot
paths never touch it.

Why general-tree postorder?  The postorder-pruning layer (paper Section
3.4) relies on "a node edit operation shifts a surviving node's postorder
identifier by at most one".  That statement is provable for the general
tree's postorder — insert/delete/rename all preserve the relative postorder
of surviving nodes, and each changes the predecessor count by at most one —
but *not* for the binary tree's postorder, where deleting one node can
displace a promoted subtree past an arbitrarily large sibling subtree.
Keying the index on general postorder keeps the paper's scheme while making
the conservative window (``postorder_filter="safe"``) provably correct; see
``repro.core.index`` for the window arithmetic.
"""

from __future__ import annotations

from typing import Optional

from repro.core.intern import DEFAULT_INTERNER, LabelInterner
from repro.tree.binary import BinaryNode, BinaryTree
from repro.tree.node import Tree, TreeNode

__all__ = ["TreeCache"]


class TreeCache:
    """All derived structures PartSJ needs for one tree, as flat arrays.

    Attributes
    ----------
    tree:
        The original general tree.
    interner:
        The label interner the array ids refer to (the process-wide
        default unless one is passed, so independently built caches
        agree on ids).
    size:
        Node count (identical for the general and binary representations).
    labels, left, right, parent, general_post:
        The parallel arrays described in the module docstring, indexed by
        1-based binary postorder number.
    internal:
        Ascending binary postorder numbers of the nodes with at least one
        binary child.  The greedy partitioning passes (Algorithms 2/3)
        iterate only these: binary leaves contribute a constant ``1`` that
        a C-speed list fill provides up front.
    """

    __slots__ = (
        "tree",
        "interner",
        "size",
        "labels",
        "left",
        "right",
        "parent",
        "general_post",
        "internal",
        "_general_at",
        "_nodes",
        "_binary",
        "_number_of",
        "_arrays",
    )

    def __init__(self, tree: Tree, interner: Optional[LabelInterner] = None):
        self.tree = tree
        self.interner = DEFAULT_INTERNER if interner is None else interner
        intern = self.interner.intern
        # Fast path: most labels are already interned, so the hot loop
        # reads the id table directly and only falls back to intern() for
        # first-seen labels (which enforces the packing bound).
        known_ids = self.interner.get

        n = tree.size
        self.size = n
        labels = [0] * (n + 1)
        left = [0] * (n + 1)
        right = [0] * (n + 1)
        parent = [0] * (n + 1)
        gp = [0] * (n + 1)
        general_at: list[Optional[TreeNode]] = [None] * (n + 1)
        internal: list[int] = []
        internal_append = internal.append

        # One iterative pass over the *general* nodes computes everything.
        # A binary node is a general node viewed inside its sibling list:
        # its LC-RS left child is its first general child, its LC-RS right
        # child is its next sibling.  The pass walks the binary structure
        # with three states per node — descend-left (0), between-subtrees
        # (1), emit (2) — and assigns binary *postorder* numbers at state
        # 2 and, at state 1, binary *inorder* numbers, which are exactly
        # the general tree's postorder numbers (LC-RS inorder visits a
        # node after all its general children and earlier siblings).  The
        # child links resolve without any id()-keyed table: a node is the
        # last of its own binary subtree in postorder, so at state 1 the
        # running postorder counter *is* the left child's number, and at
        # state 2 it is the right child's.
        post_counter = 0
        in_counter = 0
        root = tree.root
        # Stack entries: (general node, its sibling list, index in it,
        # state, inorder number and left-child number once known).
        stack: list[tuple[TreeNode, list[TreeNode], int, int, int, int]] = [
            (root, [root], 0, 0, 0, 0)
        ]
        push = stack.append
        while stack:
            node, sibs, idx, state, in_number, left_num = stack.pop()
            if state == 0:
                children = node.children
                if children:
                    # in_number slot doubles as a has-children flag here.
                    push((node, sibs, idx, 1, 1, 0))
                    push((children[0], children, 0, 0, 0, 0))
                    continue
                state = 1  # no left subtree: fall through to the inorder visit
            if state == 1:
                if in_number:
                    left_num = post_counter  # last emitted = the left child
                in_counter += 1
                in_number = in_counter
                nxt = idx + 1
                if nxt < len(sibs):
                    push((node, sibs, idx, 2, in_number, left_num))
                    push((sibs[nxt], sibs, nxt, 0, 0, 0))
                    continue
                right_num = 0  # no right subtree: emit directly
            else:
                right_num = post_counter  # last emitted = the right child
            post_counter += 1
            b = post_counter
            node_label = node.label
            lid = known_ids(node_label)
            labels[b] = intern(node_label) if lid is None else lid
            gp[b] = in_number
            general_at[b] = node
            if left_num:
                left[b] = left_num
                parent[left_num] = b
                internal_append(b)
                if right_num:
                    right[b] = right_num
                    parent[right_num] = b
            elif right_num:
                right[b] = right_num
                parent[right_num] = b
                internal_append(b)

        self.labels = labels
        self.left = left
        self.right = right
        self.parent = parent
        self.general_post = gp
        self.internal = internal
        self._general_at = general_at
        self._nodes: Optional[list[Optional[BinaryNode]]] = None
        self._binary: Optional[BinaryTree] = None
        self._number_of: Optional[dict[int, int]] = None
        self._arrays = None

    # -- fast array accessors ------------------------------------------------

    def as_arrays(self, np):
        """``(labels, left, right, general_post)`` as int64 ndarrays.

        Built once from the int lists (the one unavoidable copy — list
        storage is boxed) and cached; every later call is zero-copy.  The
        cache is sound because a :class:`TreeCache` is immutable after
        construction.  ``np`` is passed in (from :mod:`repro.kernels`) so
        this module never imports numpy itself.
        """
        arrays = self._arrays
        if arrays is None:
            arrays = (
                np.asarray(self.labels, dtype=np.int64),
                np.asarray(self.left, dtype=np.int64),
                np.asarray(self.right, dtype=np.int64),
                np.asarray(self.general_post, dtype=np.int64),
            )
            self._arrays = arrays
        return arrays

    def incoming_code(self, number: int) -> int:
        """Incoming-edge category of node ``number``: 0 root, 1 left, 2 right."""
        p = self.parent[number]
        if p == 0:
            return 0
        return 1 if self.left[p] == number else 2

    def general_node_at(self, number: int) -> TreeNode:
        """The general-tree twin of binary postorder number ``number``."""
        node = self._general_at[number]
        assert node is not None
        return node

    # -- node-object compatibility layer (built lazily, never on hot paths) --

    def _materialize_nodes(self) -> list[Optional[BinaryNode]]:
        nodes = self._nodes
        if nodes is None:
            n = self.size
            general_at = self._general_at
            nodes = [None] * (n + 1)
            for b in range(1, n + 1):
                nodes[b] = BinaryNode(general_at[b].label)  # type: ignore[union-attr]
            left, right = self.left, self.right
            for b in range(1, n + 1):
                node = nodes[b]
                if left[b]:
                    node.set_left(nodes[left[b]])  # type: ignore[union-attr]
                if right[b]:
                    node.set_right(nodes[right[b]])  # type: ignore[union-attr]
            self._nodes = nodes
            # Identity -> number lookup; keys never ordered into output.
            self._number_of = {id(nodes[b]): b for b in range(1, n + 1)}  # repro: allow[determinism]
            tree = BinaryTree(nodes[n])  # type: ignore[arg-type]  # root is last
            # Postorder is known by construction; prime the tree's cache so
            # the compat layer costs one pass, not two.
            tree._postorder = nodes[1:]  # type: ignore[assignment]
            self._binary = tree
        return nodes

    @property
    def binary(self) -> BinaryTree:
        """The LC-RS tree as linked :class:`BinaryNode` objects (lazy)."""
        self._materialize_nodes()
        assert self._binary is not None
        return self._binary

    @property
    def binary_postorder(self) -> list[BinaryNode]:
        """Binary nodes in binary postorder (compat; lazy, same objects as
        :attr:`binary`)."""
        nodes = self._materialize_nodes()
        return nodes[1:]  # type: ignore[return-value]

    def general_postorder(self, node: BinaryNode) -> int:
        """1-based general-tree postorder number of ``node``'s general twin."""
        self._materialize_nodes()
        assert self._number_of is not None
        return self.general_post[self._number_of[id(node)]]

    def binary_number(self, node: BinaryNode) -> int:
        """1-based binary postorder number of ``node``."""
        self._materialize_nodes()
        assert self._number_of is not None
        return self._number_of[id(node)]

    def node_at_binary_number(self, number: int) -> BinaryNode:
        """Inverse of :meth:`binary_number` (1-based)."""
        nodes = self._materialize_nodes()
        node = nodes[number]
        assert node is not None
        return node
