"""Per-tree precomputation shared by the PartSJ probe and insert phases.

For every tree the join touches, :class:`TreeCache` materializes once:

- the LC-RS binary representation with a bijection to the general nodes;
- the binary postorder sequence (the traversal order of Algorithm 2 and of
  the probe loop, Algorithm 1 line 6);
- the *general-tree* postorder number of every binary node, which is the
  position identifier the two-layer index keys on.

Why general-tree postorder?  The postorder-pruning layer (paper Section
3.4) relies on "a node edit operation shifts a surviving node's postorder
identifier by at most one".  That statement is provable for the general
tree's postorder — insert/delete/rename all preserve the relative postorder
of surviving nodes, and each changes the predecessor count by at most one —
but *not* for the binary tree's postorder, where deleting one node can
displace a promoted subtree past an arbitrarily large sibling subtree.
Keying the index on general postorder keeps the paper's scheme while making
the conservative window (``postorder_filter="safe"``) provably correct; see
``repro.core.index`` for the window arithmetic.
"""

from __future__ import annotations

from typing import Optional

from repro.tree.binary import BinaryNode, BinaryTree
from repro.tree.node import Tree, TreeNode

__all__ = ["TreeCache"]


class TreeCache:
    """All derived structures PartSJ needs for one tree.

    Attributes
    ----------
    tree:
        The original general tree.
    binary:
        Its LC-RS representation (each binary node is the twin of exactly
        one general node, with the same label).
    binary_postorder:
        Binary nodes in binary postorder (children before parent in the
        LC-RS structure) — the traversal order of the partitioning
        algorithm and the probe loop.
    """

    __slots__ = (
        "tree",
        "binary",
        "binary_postorder",
        "_general_postorder_of",
        "_binary_number_of",
    )

    def __init__(self, tree: Tree):
        self.tree = tree
        general_post: dict[int, int] = {}
        for number, node in enumerate(tree.iter_postorder(), start=1):
            general_post[id(node)] = number

        # Build the LC-RS tree while keeping the general twin of every
        # binary node, so the general postorder number can be attached.
        binary_root = BinaryNode(tree.root.label)
        twin_general: dict[int, TreeNode] = {id(binary_root): tree.root}
        stack: list[tuple[TreeNode, BinaryNode]] = [(tree.root, binary_root)]
        while stack:
            general, binary = stack.pop()
            previous: Optional[BinaryNode] = None
            for child in general.children:
                twin = BinaryNode(child.label)
                twin_general[id(twin)] = child
                if previous is None:
                    binary.set_left(twin)
                else:
                    previous.set_right(twin)
                stack.append((child, twin))
                previous = twin

        self.binary = BinaryTree(binary_root)
        self.binary_postorder: list[BinaryNode] = self.binary.postorder()
        self._general_postorder_of: dict[int, int] = {
            id(bnode): general_post[id(twin_general[id(bnode)])]
            for bnode in self.binary_postorder
        }
        self._binary_number_of: dict[int, int] = {
            id(bnode): index
            for index, bnode in enumerate(self.binary_postorder, start=1)
        }

    @property
    def size(self) -> int:
        """Node count (identical for the general and binary representations)."""
        return len(self.binary_postorder)

    def general_postorder(self, node: BinaryNode) -> int:
        """1-based general-tree postorder number of ``node``'s general twin."""
        return self._general_postorder_of[id(node)]

    def binary_number(self, node: BinaryNode) -> int:
        """1-based binary postorder number of ``node``."""
        return self._binary_number_of[id(node)]

    def node_at_binary_number(self, number: int) -> BinaryNode:
        """Inverse of :meth:`binary_number` (1-based)."""
        return self.binary_postorder[number - 1]
