"""PartSJ core: partitioning, subgraphs, the two-layer index, and the join."""

from repro.core.index import InvertedSizeIndex, PostorderFilter, TwoLayerIndex
from repro.core.intern import DEFAULT_INTERNER, LabelInterner, pack_twig, unpack_twig
from repro.core.join import PartSJConfig, partsj_join
from repro.core.partition import (
    extract_partition,
    extract_random_partition,
    max_min_size,
    max_min_size_cached,
    min_partitionable_size,
    partitionable,
)
from repro.core.subgraph import MatchSemantics, Subgraph
from repro.core.treecache import TreeCache

__all__ = [
    "partsj_join",
    "PartSJConfig",
    "MatchSemantics",
    "PostorderFilter",
    "Subgraph",
    "TreeCache",
    "TwoLayerIndex",
    "InvertedSizeIndex",
    "LabelInterner",
    "DEFAULT_INTERNER",
    "pack_twig",
    "unpack_twig",
    "partitionable",
    "max_min_size",
    "max_min_size_cached",
    "extract_partition",
    "extract_random_partition",
    "min_partitionable_size",
]
