"""PartSJ core: partitioning, subgraphs, the two-layer index, and the join."""

from repro.core.index import InvertedSizeIndex, PostorderFilter, TwoLayerIndex
from repro.core.join import PartSJConfig, partsj_join
from repro.core.partition import (
    extract_partition,
    extract_random_partition,
    max_min_size,
    min_partitionable_size,
    partitionable,
)
from repro.core.subgraph import MatchSemantics, Subgraph
from repro.core.treecache import TreeCache

__all__ = [
    "partsj_join",
    "PartSJConfig",
    "MatchSemantics",
    "PostorderFilter",
    "Subgraph",
    "TreeCache",
    "TwoLayerIndex",
    "InvertedSizeIndex",
    "partitionable",
    "max_min_size",
    "extract_partition",
    "extract_random_partition",
    "min_partitionable_size",
]
