"""Subgraphs of a delta-partitioning and subgraph-to-tree matching.

A :class:`Subgraph` is one component of a delta-partitioning of an LC-RS
binary tree (paper Definition 1): a connected set of binary nodes plus the
*bridging edges* that connect it to the rest of the tree.  The subgraph is
stored *flat*: its root is a binary postorder number into the container's
:class:`~repro.core.treecache.TreeCache` arrays, and its member set is a
``bytearray`` bitmap indexed by binary postorder number — matching and
membership tests are pure integer-array walks, no node objects and no
``frozenset`` hashing.

For matching (paper Section 3.2, "s matches the subtree rooted at node N
of Ti"), each node slot of the subgraph falls into one of three cases:

- a **member edge** — the child is part of the subgraph: the probed tree
  must have a matching child there (recursively);
- a **dangling bridging edge** — the child exists in the container tree but
  belongs to another subgraph: under the paper's semantics the probed tree
  must have *some* child there (its content is irrelevant — Figure 7's "the
  grandchild of N is not relevant to this matching");
- an **empty slot** — no edge in the container tree: under the paper's
  semantics the probed tree must have no child there.

Match semantics
---------------
``MatchSemantics.PAPER`` enforces all three cases plus the incoming-edge
category of the subgraph root ("both s2 and N have a left incoming edge").

``MatchSemantics.SAFE`` only enforces member edges and labels.  This is the
provably sound variant: counting which *patterns* (nodes + labels +
internal edges) an edit operation can destroy shows a rename or delete
changes at most 1 subgraph pattern and an insert at most 2 — an insert
between ``Np`` and children ``c_{p+1}..c_{p+k}`` destroys at most the
incoming edge of ``c_{p+1}`` and the right-sibling edge out of ``c_{p+k}``,
each internal to at most one subgraph.  Hence ``tau`` operations change at
most ``2*tau`` of the ``2*tau + 1`` subgraphs and Lemma 2 holds.  Under
PAPER semantics a delete can additionally flip the incoming-edge category
of its first child and grow a right edge under its last child, touching up
to 3 subgraphs — so the strict filter can (rarely) miss results when
``tau >= 2``; the property-test suite measures this and EXPERIMENTS.md
reports it.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.core.intern import EPSILON, pack_twig
from repro.errors import InvalidParameterError
from repro.tree.binary import BinaryNode, EdgeKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.treecache import TreeCache

__all__ = ["Subgraph", "MatchSemantics", "EPSILON"]

_EDGE_KIND_OF_CODE = (EdgeKind.ROOT, EdgeKind.LEFT, EdgeKind.RIGHT)


class MatchSemantics(enum.Enum):
    """How strictly a subgraph is matched against a probe tree."""

    PAPER = "paper"  # Section 3.4 exactly: bridging edges + empty slots + incoming
    SAFE = "safe"  # labels and internal edges only; provably no false negatives

    @classmethod
    def coerce(cls, value: "MatchSemantics | str") -> "MatchSemantics":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise InvalidParameterError(
                f"unknown match semantics {value!r}; use 'paper' or 'safe'"
            ) from None


class Subgraph:
    """One component of a delta-partitioning of a container tree.

    Attributes
    ----------
    owner:
        Index of the container tree in the joined collection.
    cache:
        The container tree's :class:`TreeCache` (arrays + interner).
    root_number:
        Binary postorder number of the subgraph root in the container.
    member_bits:
        Bitmap over binary postorder numbers (1-based; ``member_bits[b]``
        truthy iff node ``b`` belongs to this subgraph).
    rank:
        1-based rank ``k`` of this subgraph when the partition is ordered by
        ascending ``postorder_id`` (the paper's ``s_1 .. s_delta``).
    postorder_id:
        ``p_k``: the configured postorder number of the subgraph root in
        the container tree (general-tree postorder by default).
    size:
        Number of member nodes.
    twig_ids:
        The root twig ``(label, left, right)`` as interned ids, epsilon
        (``0``) for missing / non-member children.
    twig_key:
        :func:`repro.core.intern.pack_twig` of :attr:`twig_ids` — the
        integer the two-layer index files this subgraph under.
    incoming_code:
        Incoming-edge category of the root: 0 root, 1 left, 2 right.
    """

    __slots__ = (
        "owner",
        "cache",
        "root_number",
        "member_bits",
        "rank",
        "postorder_id",
        "size",
        "twig_ids",
        "twig_key",
        "incoming_code",
        "_members",
    )

    def __init__(
        self,
        owner: int,
        cache: "TreeCache",
        root_number: int,
        member_bits: bytearray,
        rank: int,
        postorder_id: int,
    ):
        self.owner = owner
        self.cache = cache
        self.root_number = root_number
        self.member_bits = member_bits
        self.rank = rank
        self.postorder_id = postorder_id
        self.size = member_bits.count(1)
        labels = cache.labels
        l = cache.left[root_number]
        r = cache.right[root_number]
        left_id = labels[l] if l and member_bits[l] else 0
        right_id = labels[r] if r and member_bits[r] else 0
        self.twig_ids = (labels[root_number], left_id, right_id)
        self.twig_key = pack_twig(labels[root_number], left_id, right_id)
        self.incoming_code = cache.incoming_code(root_number)
        self._members: Optional[frozenset[int]] = None

    # -- compatibility views -------------------------------------------------

    @property
    def root(self) -> BinaryNode:
        """The root as a node object (compat; materializes the node layer)."""
        return self.cache.node_at_binary_number(self.root_number)

    @property
    def members(self) -> frozenset[int]:
        """Member binary postorder numbers as a frozenset (compat view)."""
        cached = self._members
        if cached is None:
            bits = self.member_bits
            cached = frozenset(b for b in range(1, len(bits)) if bits[b])
            self._members = cached
        return cached

    @property
    def incoming(self) -> EdgeKind:
        """Category of the root's incoming (bridging) edge."""
        return _EDGE_KIND_OF_CODE[self.incoming_code]

    @property
    def twig(self) -> tuple[str, str, str]:
        """The root twig as label strings (compat; epsilon = ``""``)."""
        label = self.cache.interner.label
        a, b, c = self.twig_ids
        return (label(a), label(b), label(c))

    def is_member(self, node: BinaryNode) -> bool:
        """True when ``node`` (of the container tree) is in this subgraph."""
        return bool(self.member_bits[self.cache.binary_number(node)])

    # -- matching ------------------------------------------------------------

    def matches_at_number(
        self, probe_cache: "TreeCache", probe_number: int, strict: bool
    ) -> bool:
        """Does this subgraph occur at node ``probe_number`` of ``probe_cache``?

        The hot-path matcher: both trees are walked through their flat
        arrays with an explicit integer stack.  Labels compare as interned
        ids, so both caches must share an interner (always true for caches
        built with the default).  ``strict`` selects PAPER semantics
        (dangling edges must exist, empty slots must be empty, incoming
        categories must agree).
        """
        if strict and probe_cache.incoming_code(probe_number) != self.incoming_code:
            return False
        my_labels = self.cache.labels
        my_left = self.cache.left
        my_right = self.cache.right
        labels = probe_cache.labels
        left = probe_cache.left
        right = probe_cache.right
        bits = self.member_bits
        stack = [self.root_number, probe_number]
        pop = stack.pop
        while stack:
            theirs = pop()
            mine = pop()
            if my_labels[mine] != labels[theirs]:
                return False
            child = my_left[mine]
            other = left[theirs]
            if child and bits[child]:
                if not other:
                    return False
                stack.append(child)
                stack.append(other)
            elif strict and (other if not child else not other):
                # Empty slot filled, or dangling bridging edge missing.
                return False
            child = my_right[mine]
            other = right[theirs]
            if child and bits[child]:
                if not other:
                    return False
                stack.append(child)
                stack.append(other)
            elif strict and (other if not child else not other):
                return False
        return True

    def matches_at(self, node: BinaryNode, semantics: MatchSemantics) -> bool:
        """Does this subgraph occur at ``node`` of a probe tree?

        Compatibility matcher over node objects (``node`` belongs to some
        *other* tree's binary representation, not necessarily cache-backed).
        The join's probe loop uses :meth:`matches_at_number` instead.
        """
        strict = semantics is MatchSemantics.PAPER
        if strict and node.incoming is not self.incoming:
            return False
        stack: list[tuple[BinaryNode, BinaryNode]] = [(self.root, node)]
        while stack:
            mine, theirs = stack.pop()
            if mine.label != theirs.label:
                return False
            for my_child, their_child in (
                (mine.left, theirs.left),
                (mine.right, theirs.right),
            ):
                if my_child is not None and self.is_member(my_child):
                    if their_child is None:
                        return False
                    stack.append((my_child, their_child))
                elif my_child is not None:
                    # Dangling bridging edge: the probe tree must have an
                    # edge here under strict semantics; its subtree content
                    # never matters.
                    if strict and their_child is None:
                        return False
                else:
                    if strict and their_child is not None:
                        return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Subgraph(owner={self.owner}, rank={self.rank}, "
            f"pk={self.postorder_id}, size={self.size}, twig={self.twig!r})"
        )
