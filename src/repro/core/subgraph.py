"""Subgraphs of a delta-partitioning and subgraph-to-tree matching.

A :class:`Subgraph` is one component of a delta-partitioning of an LC-RS
binary tree (paper Definition 1): a connected set of binary nodes plus the
*bridging edges* that connect it to the rest of the tree.  For matching
(paper Section 3.2, "s matches the subtree rooted at node N of Ti"), each
node slot of the subgraph falls into one of three cases:

- a **member edge** — the child is part of the subgraph: the probed tree
  must have a matching child there (recursively);
- a **dangling bridging edge** — the child exists in the container tree but
  belongs to another subgraph: under the paper's semantics the probed tree
  must have *some* child there (its content is irrelevant — Figure 7's "the
  grandchild of N is not relevant to this matching");
- an **empty slot** — no edge in the container tree: under the paper's
  semantics the probed tree must have no child there.

Match semantics
---------------
``MatchSemantics.PAPER`` enforces all three cases plus the incoming-edge
category of the subgraph root ("both s2 and N have a left incoming edge").

``MatchSemantics.SAFE`` only enforces member edges and labels.  This is the
provably sound variant: counting which *patterns* (nodes + labels +
internal edges) an edit operation can destroy shows a rename or delete
changes at most 1 subgraph pattern and an insert at most 2 — an insert
between ``Np`` and children ``c_{p+1}..c_{p+k}`` destroys at most the
incoming edge of ``c_{p+1}`` and the right-sibling edge out of ``c_{p+k}``,
each internal to at most one subgraph.  Hence ``tau`` operations change at
most ``2*tau`` of the ``2*tau + 1`` subgraphs and Lemma 2 holds.  Under
PAPER semantics a delete can additionally flip the incoming-edge category
of its first child and grow a right edge under its last child, touching up
to 3 subgraphs — so the strict filter can (rarely) miss results when
``tau >= 2``; the property-test suite measures this and EXPERIMENTS.md
reports it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.tree.binary import BinaryNode, EdgeKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.treecache import TreeCache

__all__ = ["Subgraph", "MatchSemantics", "EPSILON"]

EPSILON = ""  # dummy label for a missing/non-member binary child


class MatchSemantics(enum.Enum):
    """How strictly a subgraph is matched against a probe tree."""

    PAPER = "paper"  # Section 3.4 exactly: bridging edges + empty slots + incoming
    SAFE = "safe"  # labels and internal edges only; provably no false negatives

    @classmethod
    def coerce(cls, value: "MatchSemantics | str") -> "MatchSemantics":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown match semantics {value!r}; use 'paper' or 'safe'"
            ) from None


@dataclass
class Subgraph:
    """One component of a delta-partitioning of a container tree.

    Attributes
    ----------
    owner:
        Index of the container tree in the joined collection.
    root:
        The subgraph's root node inside the container's binary tree.
    members:
        Binary postorder numbers (container tree numbering) of the nodes in
        this subgraph.
    rank:
        1-based rank ``k`` of this subgraph when the partition is ordered by
        ascending ``postorder_id`` (the paper's ``s_1 .. s_delta``).
    postorder_id:
        ``p_k``: the general-tree postorder number of the subgraph root in
        the container tree.
    incoming:
        Category of the root's incoming (bridging) edge.
    cache:
        The container tree's :class:`TreeCache` (for membership tests).
    """

    owner: int
    root: BinaryNode
    members: frozenset[int]
    rank: int
    postorder_id: int
    incoming: EdgeKind
    cache: "TreeCache"
    twig: tuple[str, str, str] = field(init=False)

    def __post_init__(self) -> None:
        self.twig = (
            self.root.label,
            self._member_label(self.root.left),
            self._member_label(self.root.right),
        )

    def _member_label(self, child: BinaryNode | None) -> str:
        """Label for the twig key: epsilon for missing or non-member children."""
        if child is None:
            return EPSILON
        if self.cache.binary_number(child) not in self.members:
            return EPSILON  # dangling bridging edge: not part of the twig
        return child.label

    @property
    def size(self) -> int:
        """Number of member nodes."""
        return len(self.members)

    def is_member(self, node: BinaryNode) -> bool:
        """True when ``node`` (of the container tree) is in this subgraph."""
        return self.cache.binary_number(node) in self.members

    # -- matching ------------------------------------------------------------

    def matches_at(self, node: BinaryNode, semantics: MatchSemantics) -> bool:
        """Does this subgraph occur at ``node`` of a probe tree?

        ``node`` belongs to some *other* tree's binary representation.  The
        walk compares labels over member edges; PAPER semantics additionally
        require dangling edges to exist, empty slots to be empty, and the
        incoming-edge category of the root to agree.
        """
        strict = semantics is MatchSemantics.PAPER
        if strict and node.incoming is not self.incoming:
            return False
        stack: list[tuple[BinaryNode, BinaryNode]] = [(self.root, node)]
        while stack:
            mine, theirs = stack.pop()
            if mine.label != theirs.label:
                return False
            for my_child, their_child in (
                (mine.left, theirs.left),
                (mine.right, theirs.right),
            ):
                if my_child is not None and self.is_member(my_child):
                    if their_child is None:
                        return False
                    stack.append((my_child, their_child))
                elif my_child is not None:
                    # Dangling bridging edge: the probe tree must have an
                    # edge here under strict semantics; its subtree content
                    # never matters.
                    if strict and their_child is None:
                        return False
                else:
                    if strict and their_child is not None:
                        return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Subgraph(owner={self.owner}, rank={self.rank}, "
            f"pk={self.postorder_id}, size={self.size}, twig={self.twig!r})"
        )
