"""PartSJ: the partition-based tree similarity join (paper Algorithm 1).

Processing trees in ascending size order, each tree ``Ti``:

1. **Probe phase** — for every node ``N`` of ``Ti``'s binary representation
   and every size ``n`` in ``[|Ti| - tau, |Ti|]``, the two-layer index
   ``I_n`` is probed with ``N``'s postorder number and packed twig keys.
   The at most four search keys are computed *once per node* (the epsilon
   collapse is a static property of the node's children) and reused for
   every probed size.  Every returned subgraph ``s`` is structurally
   matched at ``N`` by an integer-array walk; a successful match makes
   ``(Ti, owner(s))`` a candidate (checked at most once per pair),
   verified with exact TED.
2. **Insert phase** — ``Ti`` is partitioned into ``delta = 2*tau + 1``
   subgraphs maximizing the minimum subgraph size, which are inserted into
   ``I_{|Ti|}`` (one index entry per subgraph).

The two phases are timed separately as ``JoinStats.probe_time`` and
``JoinStats.index_time``; ``candidate_time`` remains their sum, so the
paper's two-segment figures are unchanged while the breakdown is
available to the benchmark harness and the CLI.

Trees smaller than ``2*tau + 1`` nodes cannot be partitioned into ``delta``
non-empty subgraphs, and for them Lemma 2 gives no guarantee (every
subgraph could be touched); they are kept in a *small-tree pool* and joined
by direct verification.  The pool only ever holds trees of fewer than
``2*tau + 1`` nodes and only trees of at most ``3*tau`` nodes consult it,
so its cost is negligible (and zero for collections of non-tiny trees).

The configuration knobs (:class:`PartSJConfig`) select between the paper's
published filter variants and the provably-safe ones; see
:mod:`repro.core.subgraph` and :mod:`repro.core.index` for the analysis.

Sharding and the handoff-band invariant
---------------------------------------
The probe/insert loop is packaged as :class:`ShardDriver`, a *resumable
per-shard driver*: the serial join runs one driver over the whole
size-sorted order, and the multiprocess executor
(:mod:`repro.parallel.executor`) runs one driver per *shard* — a
contiguous run of the size-sorted order.  Sharding is sound because a
probing tree only ever looks **backwards** at index sizes
``[|Ti| - tau, |Ti|]``:

- A shard owning sorted positions ``[p_lo, p_hi]`` (owned size range
  ``[lo, hi]``) first bulk-inserts its *handoff band* — every earlier
  position whose size is ``>= lo - tau`` — via
  :meth:`ShardDriver.insert_only` (partition + index insert, or small-pool
  append, with **no probing**), then probes/inserts its owned trees in the
  usual ascending order.  The band is exactly wide enough that every
  partner a shard tree could have under the size filter is present in the
  shard's private index before the tree probes.
- A candidate pair is therefore *counted exactly once, by the shard
  owning the later tree of the sorted order* (the larger tree; for
  equal-size trees, the one later in the stable order): the earlier tree
  is band- or owned-inserted there, while no other shard ever probes the
  later tree.  Cross-shard pairs need no coordination and, with the
  deterministic ``"maxmin"`` partitioning, the merged candidate set —
  and every owned-tree counter — is identical to the serial run's.

One caveat: ``partition_strategy="random"`` draws each shard's random
cuts from a fresh per-driver stream (serial consumption order cannot be
replayed across shards), so under ``workers > 1`` the *candidate set*
may differ slightly from the serial run's.  The **result pairs and
distances are still bit-identical** — every sound configuration's filter
is complete for any partition — but random-partition ablation figures
should be swept at a fixed worker count.
"""

from __future__ import annotations

import random
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.baselines.common import (
    JoinPair,
    JoinResult,
    JoinStats,
    SizeSortedCollection,
    Verifier,
    check_join_inputs,
)
from repro.core.index import InvertedSizeIndex, PostorderFilter
from repro.core.intern import TWIG_LABEL_SHIFT, TWIG_LEFT_SHIFT, LabelInterner
from repro.core.partition import (
    extract_partition,
    extract_random_partition,
    max_min_size_cached,
    min_partitionable_size,
)
from repro.core.subgraph import MatchSemantics
from repro.core.treecache import TreeCache
from repro.errors import InvalidParameterError
from repro.obs.trace import NULL_TRACER, phase_timer
from repro.params import check_backend, check_workers
from repro.resilience.faults import FaultInjector
from repro.resilience.policy import RetryPolicy
from repro.tree.node import Tree

__all__ = ["PartSJConfig", "PreparedJoinState", "ShardDriver", "partsj_join"]


@dataclass(frozen=True)
class PartSJConfig:
    """Tuning knobs for :func:`partsj_join`.

    Attributes
    ----------
    semantics:
        Subgraph matching semantics: ``"safe"`` (default; provably exact)
        or ``"paper"`` (Section 3.4's strict matching).
    postorder_filter:
        Postorder-layer window: ``"safe"`` (default), ``"paper"``
        (``Delta' = tau - floor(k/2)``) or ``"off"``.
    partition_strategy:
        ``"maxmin"`` (default; Algorithm 3) or ``"random"`` (the ablation
        control).  Random partitioning is only meaningful with
        ``postorder_filter="off"`` or ``"safe"``, because the paper's
        window derivation assumes the greedy postorder cut structure.
    seed:
        RNG seed for the random partitioning strategy.
    postorder_numbering:
        Which postorder numbers the index keys on: ``"general"`` (default;
        a surviving node's general-tree postorder shifts by at most one per
        edit, which makes the safe window provably exact) or ``"binary"``
        (LC-RS postorder — the other plausible reading of the paper's
        Figure 7, under which no constant window is sound: a single delete
        can displace a promoted subtree past an arbitrarily large sibling).
    workers:
        Number of worker processes.  ``1`` (default) runs the serial
        engine in-process; ``> 1`` dispatches to the sharded executor of
        :mod:`repro.parallel.executor` (identical pair set and distances,
        see the module docstring's handoff-band invariant).
    retry:
        A :class:`repro.resilience.RetryPolicy` governing supervised
        parallel execution (attempts, per-task timeout, backoff, and the
        graceful-degradation switch).  ``None`` (default) uses the policy
        defaults; irrelevant with ``workers == 1``.
    fault_injector:
        A :class:`repro.resilience.FaultInjector` for chaos testing
        (``None`` falls back to the ``REPRO_FAULT_SPEC`` environment
        hook).  Injected faults never change results while degradation
        is enabled — only the failure counters in ``JoinStats.extra``.
    backend:
        Kernel backend for the probe, partition and banded-TED hot
        loops: ``"python"`` (the reference implementations),
        ``"numpy"`` (the vectorized kernels of :mod:`repro.kernels`;
        an error if numpy is not installed) or ``"auto"`` (default:
        numpy when importable, python otherwise).  Results are
        bit-identical either way; ``JoinStats.extra["backend"]``
        reports the backend that actually ran.
    """

    semantics: MatchSemantics | str = MatchSemantics.SAFE
    postorder_filter: PostorderFilter | str = PostorderFilter.SAFE
    partition_strategy: str = "maxmin"
    seed: int = 0
    postorder_numbering: str = "general"
    workers: int = 1
    retry: Optional["RetryPolicy"] = None
    fault_injector: Optional["FaultInjector"] = None
    backend: str = "auto"

    def resolved(self) -> "PartSJConfig":
        """Normalize string fields to enums, resolve the backend, validate."""
        from repro.kernels import resolve_backend

        if self.partition_strategy not in ("maxmin", "random"):
            raise InvalidParameterError(
                f"unknown partition strategy {self.partition_strategy!r}; "
                "use 'maxmin' or 'random'"
            )
        if self.postorder_numbering not in ("general", "binary"):
            raise InvalidParameterError(
                f"unknown postorder numbering {self.postorder_numbering!r}; "
                "use 'general' or 'binary'"
            )
        check_workers(self.workers)
        if self.retry is not None:
            self.retry.validated()
        return PartSJConfig(
            semantics=MatchSemantics.coerce(self.semantics),
            postorder_filter=PostorderFilter.coerce(self.postorder_filter),
            partition_strategy=self.partition_strategy,
            seed=self.seed,
            postorder_numbering=self.postorder_numbering,
            workers=self.workers,
            retry=self.retry,
            fault_injector=self.fault_injector,
            # "auto" resolves to the concrete backend here, so equal
            # resolved configs always name equal execution paths (the
            # session result cache keys on this frozen dataclass).
            backend=resolve_backend(check_backend(self.backend)),
        )

    @classmethod
    def paper(cls) -> "PartSJConfig":
        """The configuration matching the published filter exactly."""
        return cls(
            semantics=MatchSemantics.PAPER,
            postorder_filter=PostorderFilter.PAPER,
        )


@dataclass
class PreparedJoinState:
    """Prepared per-collection artifacts a :class:`ShardDriver` can reuse.

    Built (and cached per ``(tau, filter-config)``) by
    :class:`repro.session.TreeCollection`; ``partsj_join`` consumes it via
    its ``prepared=`` keyword so a warm session skips the preparation
    phase — sorting, cache construction and partitioning — and pays only
    probe + index-insert + verification.  Every field mirrors state the
    serial driver would otherwise build itself, computed in the identical
    order (ascending size-sorted, gamma hints chained, the random
    strategy's RNG consumed tree by tree), so results are bit-identical
    with or without it.

    Attributes
    ----------
    collection:
        The size-sorted view of the trees (tau-independent).
    interner:
        The collection-wide label interner all caches share.
    caches:
        ``original index -> TreeCache``; missing entries are built on
        demand into this dict, so later queries reuse them.
    partitions:
        ``original index -> list[Subgraph]`` for every partitionable tree
        (size ``>= 2*tau + 1``); small trees are absent and take the
        driver's small-pool path unchanged.
    gammas:
        ``original index -> gamma`` actually used by the stored partition
        (for the random strategy, the minimum subgraph size), keeping the
        driver's ``gamma_total`` counter identical to an unprepared run.
    """

    collection: SizeSortedCollection
    interner: LabelInterner
    caches: dict = field(default_factory=dict)
    partitions: dict = field(default_factory=dict)
    gammas: dict = field(default_factory=dict)


@dataclass
class _ProbeCounters:
    """Mutable per-join counters feeding ``JoinStats.extra``."""

    probe_hits: int = 0  # subgraphs returned by the index
    match_tests: int = 0  # structural matches attempted
    match_hits: int = 0  # structural matches that succeeded
    dedup_skips: int = 0  # probe hits skipped because the pair was checked
    small_pool_pairs: int = 0  # pairs verified via the small-tree pool
    partitioned_trees: int = 0
    small_trees: int = 0
    subgraphs_built: int = 0
    gamma_total: int = 0  # sum of chosen gammas (for average reporting)
    # Handoff-band overhead of the sharded executor: insert-only trees
    # re-partitioned at a shard boundary.  Always 0 in a serial run, and
    # excluded from the owned-tree counters above so those merge to the
    # exact serial values across shards.
    band_trees: int = 0
    band_subgraphs: int = 0

    def as_dict(self) -> dict:
        return {
            "probe_hits": self.probe_hits,
            "match_tests": self.match_tests,
            "match_hits": self.match_hits,
            "dedup_skips": self.dedup_skips,
            "small_pool_pairs": self.small_pool_pairs,
            "partitioned_trees": self.partitioned_trees,
            "small_trees": self.small_trees,
            "subgraphs_built": self.subgraphs_built,
            "gamma_total": self.gamma_total,
            "band_trees": self.band_trees,
            "band_subgraphs": self.band_subgraphs,
        }


class ShardDriver:
    """Resumable probe/insert driver over one ascending-size run of trees.

    One driver owns the per-shard join state of Algorithm 1 — the inverted
    size index, the label interner, the checked-pair set, the small-tree
    pool and the probe counters.  Callers feed it original tree indices
    **in ascending size-sorted order** (ties in the collection's stable
    order):

    - :meth:`probe` runs the probe phase of one tree and returns its
      candidate partners; the caller decides what to do with them (the
      serial join verifies inline, the sharded executor collects them for
      the parallel verification stage).
    - :meth:`insert` runs the insert phase of the same tree (partition +
      index insert, or small-pool append).  It must follow :meth:`probe`
      for that tree — the probe's :class:`TreeCache` is reused.
    - :meth:`insert_only` processes a *handoff-band* tree of the sharded
      executor: indexed (or pooled) without probing, so a later owned tree
      can find it, and counted separately (``band_trees`` /
      ``band_subgraphs``) so the owned-tree counters merge to the exact
      serial values.
    - :meth:`ingest` is the incremental probe-then-insert entry point the
      serial loop, the shard workers and the streaming engine
      (:mod:`repro.stream`) all share: one call runs both phases for one
      tree and hands back the candidates plus the partition subgraphs.

    The serial join is the one-shard special case: every tree is owned,
    the band is empty.

    Feeding order: ascending size order makes the driver *complete* on
    its own (every partner of a probing tree is already indexed — the
    batch invariant above).  The probe/insert machinery itself is
    order-agnostic: a tree arriving out of order still probes exactly
    the index sizes ``[|Ti| - tau, |Ti|]`` and still files its partition
    under its own size, which is what the streaming engine relies on —
    it pairs the driver with a reverse index
    (:class:`repro.stream.reverse.NodeTwigIndex`) to cover partners
    larger than a late-arriving tree.
    """

    def __init__(
        self,
        trees: Sequence[Tree],
        tau: int,
        config: Optional[PartSJConfig] = None,
        prepared: Optional[PreparedJoinState] = None,
    ):
        cfg = (config or PartSJConfig()).resolved()
        self.trees = trees
        self.tau = tau
        self.config = cfg
        self.semantics: MatchSemantics = cfg.semantics  # type: ignore[assignment]
        self.numbering = cfg.postorder_numbering
        self.index = InvertedSizeIndex(tau, cfg.postorder_filter)
        # One interner per driver: all caches (probe and stored sides)
        # share it, and the packed-key label budget is per shard.  A
        # prepared session hands in its collection-wide interner, cache
        # store and precomputed partitions instead; the driver then skips
        # cache construction and partitioning but runs the identical
        # probe/insert discipline (see PreparedJoinState).
        self.prepared = prepared
        self.interner = (
            prepared.interner if prepared is not None else LabelInterner()
        )
        self._caches = prepared.caches if prepared is not None else None
        self.counters = _ProbeCounters()
        self.checked: set[tuple[int, int]] = set()
        self.small_pool: list[tuple[int, int]] = []  # (original index, size)
        # The resolved backend ("python"/"numpy", never "auto") selects
        # the probe and partition kernels; per-driver numpy scratch is
        # created lazily so the python backend never imports numpy.
        self.backend = cfg.backend
        self._probe_scratch = None
        self._probe_kernel = None
        if self.backend == "numpy":
            from repro.kernels.probe import ProbeScratch, probe_index_numpy

            self._probe_scratch = ProbeScratch()
            self._probe_kernel = probe_index_numpy
        self.rng = random.Random(cfg.seed)
        self.delta = 2 * tau + 1
        self.min_size = min_partitionable_size(tau)
        self.gamma_hint: Optional[int] = None  # near-duplicates share gamma
        self.probe_time = 0.0
        self.index_time = 0.0
        self.band_time = 0.0
        self._probed_index: Optional[int] = None
        self._probed_cache: Optional[TreeCache] = None

    def probe(self, i: int) -> list[int]:
        """Probe phase for tree ``i``: candidate partner original indices."""
        tree = self.trees[i]
        n = tree.size
        tau = self.tau
        counters = self.counters
        checked = self.checked
        candidates: list[int] = []

        with phase_timer(self, "probe_time"):
            if n >= self.min_size:
                cache = self._cache_for(i)
                if self._probe_kernel is not None:
                    self._probe_kernel(
                        self.index, cache, i, n, tau, self.min_size,
                        self.semantics, checked, candidates, counters,
                        self.numbering, self._probe_scratch,
                        len(self.trees),
                    )
                else:
                    _probe_index(
                        self.index, cache, i, n, tau, self.min_size,
                        self.semantics, checked, candidates, counters,
                        self.numbering,
                    )
            else:
                cache = None
                counters.small_trees += 1

            # Small-pool partners: only relevant while |Ti| - tau can reach
            # the pool's size range [1, 2*tau].  The upper guard is vacuous
            # in a batch run (ascending order means pool trees are never
            # larger) but keeps the scan exact when the streaming engine
            # feeds trees out of size order.
            if self.small_pool and n - tau <= 2 * tau:
                for j, size_j in self.small_pool:
                    if n - tau <= size_j <= n + tau:
                        key = (j, i) if j < i else (i, j)
                        if key not in checked:
                            checked.add(key)
                            counters.small_pool_pairs += 1
                            candidates.append(j)
            self._probed_index = i
            self._probed_cache = cache
        return candidates

    def insert(self, i: int) -> Optional[list]:
        """Insert phase for tree ``i``; must follow ``probe(i)``.

        Returns the partition subgraphs just filed in the index, or
        ``None`` when the tree went to the small pool instead.  (The
        streaming engine registers the subgraphs — and their shared
        :class:`TreeCache` — in its reverse index; batch callers ignore
        the return value.)
        """
        if self._probed_index != i:
            raise InvalidParameterError(
                f"insert({i}) must follow probe({i}); last probed: "
                f"{self._probed_index}"
            )
        with phase_timer(self, "index_time"):
            cache = self._probed_cache
            if cache is not None:
                subgraphs = self._partition(cache, i, owned=True)
                self.index.insert_all(self.trees[i].size, subgraphs)
                self.counters.partitioned_trees += 1
                self.counters.subgraphs_built += len(subgraphs)
            else:
                subgraphs = None
                self.small_pool.append((i, self.trees[i].size))
            self._probed_index = None
            self._probed_cache = None
        return subgraphs

    def ingest(self, i: int) -> tuple[list[int], Optional[list]]:
        """Probe-then-insert for tree ``i`` in one call.

        The incremental entry point shared by the serial loop, the shard
        workers (:func:`repro.parallel.worker.run_shard`) and the
        streaming engine (:class:`repro.stream.StreamingJoin`): returns
        ``(candidates, subgraphs)`` where ``candidates`` are the probe
        phase's partner indices and ``subgraphs`` is the partition filed
        by the insert phase (``None`` for small-pool trees).
        Verification of the candidates is independent of the insert, so
        callers are free to verify inline, defer to a pool, or stream.
        """
        candidates = self.probe(i)
        subgraphs = self.insert(i)
        return candidates, subgraphs

    def insert_only(self, i: int) -> None:
        """Index a handoff-band tree without probing it (sharded executor).

        The tree becomes findable by later owned trees exactly as if it
        had been processed normally; its work is timed in ``band_time``
        and counted in the ``band_*`` counters, never in the owned-tree
        ones.
        """
        tree = self.trees[i]
        n = tree.size
        with phase_timer(self, "band_time"):
            if n >= self.min_size:
                cache = self._cache_for(i)
                subgraphs = self._partition(cache, i, owned=False)
                self.index.insert_all(n, subgraphs)
                self.counters.band_subgraphs += len(subgraphs)
            else:
                self.small_pool.append((i, n))
            self.counters.band_trees += 1

    def _cache_for(self, i: int) -> TreeCache:
        """Tree ``i``'s flat-array cache, shared with the session if any."""
        caches = self._caches
        if caches is None:
            return TreeCache(self.trees[i], self.interner)
        cache = caches.get(i)
        if cache is None:
            cache = TreeCache(self.trees[i], self.interner)
            caches[i] = cache
        return cache

    def _partition(self, cache: TreeCache, i: int, owned: bool):
        """Cut tree ``i`` into ``delta`` subgraphs per the configured strategy."""
        prepared = self.prepared
        if prepared is not None:
            subgraphs = prepared.partitions.get(i)
            if subgraphs is not None:
                if owned:
                    self.counters.gamma_total += prepared.gammas[i]
                return subgraphs
        if self.config.partition_strategy == "random":
            subgraphs = extract_random_partition(
                cache, i, self.delta, self.rng, self.numbering
            )
            if owned:
                self.counters.gamma_total += min(sub.size for sub in subgraphs)
        else:
            gamma = max_min_size_cached(cache, self.delta, hint=self.gamma_hint)
            self.gamma_hint = gamma
            subgraphs = extract_partition(
                cache, i, self.delta, gamma, self.numbering, check=False,
                backend=self.backend,
            )
            if owned:
                self.counters.gamma_total += gamma
        return subgraphs


def partsj_join(
    trees: Sequence[Tree],
    tau: int,
    config: Optional[PartSJConfig] = None,
    *,
    prepared: Optional[PreparedJoinState] = None,
    verifier: Optional[Verifier] = None,
    tracer=None,
) -> JoinResult:
    """The PartSJ similarity self-join (``PRT`` in the paper's figures).

    Parameters
    ----------
    trees:
        The collection; result pairs reference positions in this sequence.
    tau:
        The TED threshold.
    config:
        Filter variants; defaults to the provably-exact configuration.
        ``config.workers > 1`` runs the sharded multiprocess executor of
        :mod:`repro.parallel.executor` (identical pairs and distances).
    prepared:
        Session-prepared artifacts (:class:`PreparedJoinState`): the
        size-sorted order, shared interner/caches and per-tau partitions
        are consumed instead of rebuilt.  Results are bit-identical with
        or without it; only the preparation cost disappears.
    verifier:
        A pre-built verification engine (sessions pass one whose per-tree
        annotation and feature caches are shared across queries).
    tracer:
        A :class:`repro.obs.Tracer` to record phase spans on (``None``
        disables tracing at zero cost).  Tracing is coarse-grained —
        one ``partsj.loop`` span around the probe/insert/verify loop,
        plus synthetic ``partsj.probe`` / ``partsj.index`` /
        ``partsj.verify`` spans carrying the driver's and verifier's
        accumulated phase attribution — and never changes results,
        counters or timings recorded in ``JoinStats``.

    >>> a = Tree.from_bracket("{a{b}{c{d}{e}}{f}}")
    >>> b = Tree.from_bracket("{a{b}{c{d}{e}}{g}}")
    >>> [p.key() for p in partsj_join([a, b], 1).pairs]
    [(0, 1)]
    """
    check_join_inputs(trees, tau)
    cfg = (config or PartSJConfig()).resolved()
    tracer = tracer if tracer is not None else NULL_TRACER
    if cfg.workers > 1:
        from repro.parallel.executor import parallel_partsj_join

        return parallel_partsj_join(
            trees, tau, cfg, prepared=prepared, tracer=tracer
        )

    stats = JoinStats(method="PRT", tau=tau, tree_count=len(trees))
    collection = (
        prepared.collection if prepared is not None
        else SizeSortedCollection(trees)
    )
    if verifier is None:
        verifier = Verifier(trees, tau, backend=cfg.backend)
    driver = ShardDriver(trees, tau, cfg, prepared=prepared)
    pairs: list[JoinPair] = []

    with tracer.span("partsj.loop", tau=tau, trees=len(trees)) as sp:
        for position in range(len(collection)):
            i = collection.original_index(position)
            # Probe + insert through the shared incremental entry point.
            candidates, _ = driver.ingest(i)

            # Verification (the "TED computation" phase of Figures
            # 10/12/14).
            stats.candidates += len(candidates)
            for j in candidates:
                distance = verifier.verify(i, j)
                if distance is not None:
                    lo, hi = (i, j) if i < j else (j, i)
                    pairs.append(JoinPair(lo, hi, distance))
        sp.set("candidates", stats.candidates)
    # Phase attribution the driver accumulates anyway, as synthetic
    # spans — zero cost in the per-tree loop.
    tracer.record("partsj.probe", driver.probe_time,
                  probe_hits=driver.counters.probe_hits)
    tracer.record("partsj.index", driver.index_time,
                  subgraphs=driver.counters.subgraphs_built)
    tracer.record("partsj.verify", verifier.stats_time,
                  ted_calls=verifier.stats_ted_calls)

    stats.probe_time = driver.probe_time
    stats.index_time = driver.index_time
    stats.candidate_time = stats.probe_time + stats.index_time
    stats.ted_calls = verifier.stats_ted_calls
    stats.verify_time = verifier.stats_time
    stats.results = len(pairs)
    counters = driver.counters
    stats.pairs_considered = counters.probe_hits + counters.small_pool_pairs
    stats.extra = counters.as_dict()
    stats.extra["backend"] = driver.backend
    stats.extra["total_indexed_subgraphs"] = driver.index.total_subgraphs
    stats.extra["total_index_entries"] = driver.index.total_entries
    stats.extra.update(verifier.extra_stats())
    pairs.sort(key=lambda p: p.key())
    return JoinResult(pairs=pairs, stats=stats)


def _probe_index(
    index: InvertedSizeIndex,
    cache: TreeCache,
    i: int,
    n: int,
    tau: int,
    min_size: int,
    semantics: MatchSemantics,
    checked: set[tuple[int, int]],
    candidates: list[int],
    counters: _ProbeCounters,
    numbering: str,
) -> None:
    """Algorithm 1 lines 5-12: gather candidate partners for tree ``i``.

    The loop never touches node objects: labels, children and postorder
    numbers are read from the cache's flat arrays, and the packed twig
    search keys are built once per node, outside the per-size loop.
    """
    sizes = [
        size
        for size in range(max(min_size, n - tau), n + 1)
        if (size_index := index.for_size(size)) is not None and size_index.count
    ]
    if not sizes:
        return
    # The merged twig view is frozen while this tree probes (inserts happen
    # strictly after), so the bucket lookups and window bisects are inlined
    # here — the loop body is nothing but int arithmetic, dict gets and
    # list indexing.  A twig key absent from every probed size costs one
    # dict probe total, not one per size.
    merged = index.merged
    mode = index.postorder_filter
    off = mode is PostorderFilter.OFF
    strict_window = mode is PostorderFilter.PAPER
    labels = cache.labels
    left = cache.left
    right = cache.right
    positions = cache.general_post if numbering == "general" else range(n + 1)
    strict = semantics is MatchSemantics.PAPER
    label_shift = TWIG_LABEL_SHIFT
    left_shift = TWIG_LEFT_SHIFT
    probe_hits = 0
    match_tests = 0
    match_hits = 0
    dedup_skips = 0
    for b in range(1, n + 1):
        p = positions[b]
        label = labels[b]
        child = left[b]
        ll = labels[child] if child else 0
        child = right[b]
        rl = labels[child] if child else 0
        # The paper's four search keys (pack_twig layout, inlined),
        # deduplicated once per node: with a missing child the epsilon
        # variant coincides, so only the distinct packed keys survive.
        # (lab,ll,0) == full_key - rl, etc.
        full_key = (label << label_shift) | (ll << left_shift) | rl
        bare_key = label << label_shift
        if ll:
            if rl:
                twig_keys = (full_key, full_key - rl, bare_key | rl, bare_key)
            else:
                twig_keys = (full_key, bare_key)
        elif rl:
            twig_keys = (full_key, bare_key)
        else:
            twig_keys = (full_key,)
        lo = p - tau
        hi = p + tau
        for twig_key in twig_keys:
            by_size = merged.get(twig_key)
            if by_size is None:
                continue
            for size in sizes:
                bucket = by_size.get(size)
                if bucket is None:
                    continue
                entries = bucket.entries
                if off:
                    start = 0
                    stop = len(entries)
                else:
                    if bucket.dirty:
                        bucket._ensure_sorted()
                    posts = bucket.posts
                    start = bisect_left(posts, lo)
                    stop = bisect_right(posts, hi, start)
                    if start == stop:
                        continue
                for k in range(start, stop):
                    pk, half, subgraph = entries[k]
                    if strict_window and not -half <= p - pk <= half:
                        continue
                    probe_hits += 1
                    j = subgraph.owner
                    key = (j, i) if j < i else (i, j)
                    if key in checked:
                        dedup_skips += 1
                        continue
                    match_tests += 1
                    if subgraph.matches_at_number(cache, b, strict):
                        match_hits += 1
                        checked.add(key)
                        candidates.append(j)
    counters.probe_hits += probe_hits
    counters.match_tests += match_tests
    counters.match_hits += match_hits
    counters.dedup_skips += dedup_skips
