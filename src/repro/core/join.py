"""PartSJ: the partition-based tree similarity join (paper Algorithm 1).

Processing trees in ascending size order, each tree ``Ti``:

1. **Probe phase** — for every node ``N`` of ``Ti``'s binary representation
   and every size ``n`` in ``[|Ti| - tau, |Ti|]``, the two-layer index
   ``I_n`` is probed with ``N``'s postorder number and packed twig keys.
   The at most four search keys are computed *once per node* (the epsilon
   collapse is a static property of the node's children) and reused for
   every probed size.  Every returned subgraph ``s`` is structurally
   matched at ``N`` by an integer-array walk; a successful match makes
   ``(Ti, owner(s))`` a candidate (checked at most once per pair),
   verified with exact TED.
2. **Insert phase** — ``Ti`` is partitioned into ``delta = 2*tau + 1``
   subgraphs maximizing the minimum subgraph size, which are inserted into
   ``I_{|Ti|}`` (one index entry per subgraph).

The two phases are timed separately as ``JoinStats.probe_time`` and
``JoinStats.index_time``; ``candidate_time`` remains their sum, so the
paper's two-segment figures are unchanged while the breakdown is
available to the benchmark harness and the CLI.

Trees smaller than ``2*tau + 1`` nodes cannot be partitioned into ``delta``
non-empty subgraphs, and for them Lemma 2 gives no guarantee (every
subgraph could be touched); they are kept in a *small-tree pool* and joined
by direct verification.  The pool only ever holds trees of fewer than
``2*tau + 1`` nodes and only trees of at most ``3*tau`` nodes consult it,
so its cost is negligible (and zero for collections of non-tiny trees).

The configuration knobs (:class:`PartSJConfig`) select between the paper's
published filter variants and the provably-safe ones; see
:mod:`repro.core.subgraph` and :mod:`repro.core.index` for the analysis.
"""

from __future__ import annotations

import random
import time
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.baselines.common import (
    JoinPair,
    JoinResult,
    JoinStats,
    SizeSortedCollection,
    Verifier,
    check_join_inputs,
)
from repro.core.index import InvertedSizeIndex, PostorderFilter
from repro.core.intern import TWIG_LABEL_SHIFT, TWIG_LEFT_SHIFT, LabelInterner
from repro.core.partition import (
    extract_partition,
    extract_random_partition,
    max_min_size_cached,
    min_partitionable_size,
)
from repro.core.subgraph import MatchSemantics
from repro.core.treecache import TreeCache
from repro.errors import InvalidParameterError
from repro.tree.node import Tree

__all__ = ["PartSJConfig", "partsj_join"]


@dataclass(frozen=True)
class PartSJConfig:
    """Tuning knobs for :func:`partsj_join`.

    Attributes
    ----------
    semantics:
        Subgraph matching semantics: ``"safe"`` (default; provably exact)
        or ``"paper"`` (Section 3.4's strict matching).
    postorder_filter:
        Postorder-layer window: ``"safe"`` (default), ``"paper"``
        (``Delta' = tau - floor(k/2)``) or ``"off"``.
    partition_strategy:
        ``"maxmin"`` (default; Algorithm 3) or ``"random"`` (the ablation
        control).  Random partitioning is only meaningful with
        ``postorder_filter="off"`` or ``"safe"``, because the paper's
        window derivation assumes the greedy postorder cut structure.
    seed:
        RNG seed for the random partitioning strategy.
    postorder_numbering:
        Which postorder numbers the index keys on: ``"general"`` (default;
        a surviving node's general-tree postorder shifts by at most one per
        edit, which makes the safe window provably exact) or ``"binary"``
        (LC-RS postorder — the other plausible reading of the paper's
        Figure 7, under which no constant window is sound: a single delete
        can displace a promoted subtree past an arbitrarily large sibling).
    """

    semantics: MatchSemantics | str = MatchSemantics.SAFE
    postorder_filter: PostorderFilter | str = PostorderFilter.SAFE
    partition_strategy: str = "maxmin"
    seed: int = 0
    postorder_numbering: str = "general"

    def resolved(self) -> "PartSJConfig":
        """Normalize string fields to enums and validate."""
        if self.partition_strategy not in ("maxmin", "random"):
            raise InvalidParameterError(
                f"unknown partition strategy {self.partition_strategy!r}; "
                "use 'maxmin' or 'random'"
            )
        if self.postorder_numbering not in ("general", "binary"):
            raise InvalidParameterError(
                f"unknown postorder numbering {self.postorder_numbering!r}; "
                "use 'general' or 'binary'"
            )
        return PartSJConfig(
            semantics=MatchSemantics.coerce(self.semantics),
            postorder_filter=PostorderFilter.coerce(self.postorder_filter),
            partition_strategy=self.partition_strategy,
            seed=self.seed,
            postorder_numbering=self.postorder_numbering,
        )

    @classmethod
    def paper(cls) -> "PartSJConfig":
        """The configuration matching the published filter exactly."""
        return cls(
            semantics=MatchSemantics.PAPER,
            postorder_filter=PostorderFilter.PAPER,
        )


@dataclass
class _ProbeCounters:
    """Mutable per-join counters feeding ``JoinStats.extra``."""

    probe_hits: int = 0  # subgraphs returned by the index
    match_tests: int = 0  # structural matches attempted
    match_hits: int = 0  # structural matches that succeeded
    dedup_skips: int = 0  # probe hits skipped because the pair was checked
    small_pool_pairs: int = 0  # pairs verified via the small-tree pool
    partitioned_trees: int = 0
    small_trees: int = 0
    subgraphs_built: int = 0
    gamma_total: int = 0  # sum of chosen gammas (for average reporting)

    def as_dict(self) -> dict:
        return {
            "probe_hits": self.probe_hits,
            "match_tests": self.match_tests,
            "match_hits": self.match_hits,
            "dedup_skips": self.dedup_skips,
            "small_pool_pairs": self.small_pool_pairs,
            "partitioned_trees": self.partitioned_trees,
            "small_trees": self.small_trees,
            "subgraphs_built": self.subgraphs_built,
            "gamma_total": self.gamma_total,
        }


def partsj_join(
    trees: Sequence[Tree],
    tau: int,
    config: Optional[PartSJConfig] = None,
) -> JoinResult:
    """The PartSJ similarity self-join (``PRT`` in the paper's figures).

    Parameters
    ----------
    trees:
        The collection; result pairs reference positions in this sequence.
    tau:
        The TED threshold.
    config:
        Filter variants; defaults to the provably-exact configuration.

    >>> a = Tree.from_bracket("{a{b}{c{d}{e}}{f}}")
    >>> b = Tree.from_bracket("{a{b}{c{d}{e}}{g}}")
    >>> [p.key() for p in partsj_join([a, b], 1).pairs]
    [(0, 1)]
    """
    check_join_inputs(trees, tau)
    cfg = (config or PartSJConfig()).resolved()
    semantics: MatchSemantics = cfg.semantics  # type: ignore[assignment]
    stats = JoinStats(method="PRT", tau=tau, tree_count=len(trees))
    counters = _ProbeCounters()
    collection = SizeSortedCollection(trees)
    verifier = Verifier(trees, tau)
    index = InvertedSizeIndex(tau, cfg.postorder_filter)
    # One interner per join: all caches (probe and stored sides) share it,
    # and the packed-key label budget is per collection, not per process.
    interner = LabelInterner()
    rng = random.Random(cfg.seed)

    delta = 2 * tau + 1
    min_size = min_partitionable_size(tau)
    small_pool: list[tuple[int, int]] = []  # (original index, size)
    checked: set[tuple[int, int]] = set()
    pairs: list[JoinPair] = []
    gamma_hint: Optional[int] = None  # warm-start: near-duplicates share gamma

    for position in range(len(collection)):
        i = collection.original_index(position)
        tree = trees[i]
        n = tree.size

        start = time.perf_counter()
        candidates: list[int] = []  # original indices j to verify against i

        if n >= min_size:
            cache = TreeCache(tree, interner)
            _probe_index(
                index, cache, i, n, tau, min_size, semantics, checked,
                candidates, counters, cfg.postorder_numbering,
            )
        else:
            cache = None
            counters.small_trees += 1

        # Small-pool partners: only relevant while |Ti| - tau can reach the
        # pool's size range [1, 2*tau].
        if small_pool and n - tau <= 2 * tau:
            for j, size_j in small_pool:
                if size_j >= n - tau:
                    key = (j, i) if j < i else (i, j)
                    if key not in checked:
                        checked.add(key)
                        counters.small_pool_pairs += 1
                        candidates.append(j)
        stats.probe_time += time.perf_counter() - start

        # Verification (the "TED computation" phase of Figures 10/12/14).
        stats.candidates += len(candidates)
        for j in candidates:
            distance = verifier.verify(i, j)
            if distance is not None:
                lo, hi = (i, j) if i < j else (j, i)
                pairs.append(JoinPair(lo, hi, distance))

        # Insert phase: partition Ti and file its subgraphs.
        start = time.perf_counter()
        if cache is not None:
            if cfg.partition_strategy == "random":
                subgraphs = extract_random_partition(
                    cache, i, delta, rng, cfg.postorder_numbering
                )
                counters.gamma_total += min(sub.size for sub in subgraphs)
            else:
                gamma = max_min_size_cached(cache, delta, hint=gamma_hint)
                gamma_hint = gamma
                subgraphs = extract_partition(
                    cache, i, delta, gamma, cfg.postorder_numbering, check=False
                )
                counters.gamma_total += gamma
            index.insert_all(n, subgraphs)
            counters.partitioned_trees += 1
            counters.subgraphs_built += len(subgraphs)
        else:
            small_pool.append((i, n))
        stats.index_time += time.perf_counter() - start

    stats.candidate_time = stats.probe_time + stats.index_time
    stats.ted_calls = verifier.stats_ted_calls
    stats.verify_time = verifier.stats_time
    stats.results = len(pairs)
    stats.pairs_considered = counters.probe_hits + counters.small_pool_pairs
    stats.extra = counters.as_dict()
    stats.extra["total_indexed_subgraphs"] = index.total_subgraphs
    stats.extra["total_index_entries"] = index.total_entries
    stats.extra.update(verifier.extra_stats())
    pairs.sort(key=lambda p: p.key())
    return JoinResult(pairs=pairs, stats=stats)


def _probe_index(
    index: InvertedSizeIndex,
    cache: TreeCache,
    i: int,
    n: int,
    tau: int,
    min_size: int,
    semantics: MatchSemantics,
    checked: set[tuple[int, int]],
    candidates: list[int],
    counters: _ProbeCounters,
    numbering: str,
) -> None:
    """Algorithm 1 lines 5-12: gather candidate partners for tree ``i``.

    The loop never touches node objects: labels, children and postorder
    numbers are read from the cache's flat arrays, and the packed twig
    search keys are built once per node, outside the per-size loop.
    """
    sizes = [
        size
        for size in range(max(min_size, n - tau), n + 1)
        if (size_index := index.for_size(size)) is not None and size_index.count
    ]
    if not sizes:
        return
    # The merged twig view is frozen while this tree probes (inserts happen
    # strictly after), so the bucket lookups and window bisects are inlined
    # here — the loop body is nothing but int arithmetic, dict gets and
    # list indexing.  A twig key absent from every probed size costs one
    # dict probe total, not one per size.
    merged = index.merged
    mode = index.postorder_filter
    off = mode is PostorderFilter.OFF
    strict_window = mode is PostorderFilter.PAPER
    labels = cache.labels
    left = cache.left
    right = cache.right
    positions = cache.general_post if numbering == "general" else range(n + 1)
    strict = semantics is MatchSemantics.PAPER
    label_shift = TWIG_LABEL_SHIFT
    left_shift = TWIG_LEFT_SHIFT
    probe_hits = 0
    match_tests = 0
    match_hits = 0
    dedup_skips = 0
    for b in range(1, n + 1):
        p = positions[b]
        label = labels[b]
        child = left[b]
        ll = labels[child] if child else 0
        child = right[b]
        rl = labels[child] if child else 0
        # The paper's four search keys (pack_twig layout, inlined),
        # deduplicated once per node: with a missing child the epsilon
        # variant coincides, so only the distinct packed keys survive.
        # (lab,ll,0) == full_key - rl, etc.
        full_key = (label << label_shift) | (ll << left_shift) | rl
        bare_key = label << label_shift
        if ll:
            if rl:
                twig_keys = (full_key, full_key - rl, bare_key | rl, bare_key)
            else:
                twig_keys = (full_key, bare_key)
        elif rl:
            twig_keys = (full_key, bare_key)
        else:
            twig_keys = (full_key,)
        lo = p - tau
        hi = p + tau
        for twig_key in twig_keys:
            by_size = merged.get(twig_key)
            if by_size is None:
                continue
            for size in sizes:
                bucket = by_size.get(size)
                if bucket is None:
                    continue
                entries = bucket.entries
                if off:
                    start = 0
                    stop = len(entries)
                else:
                    if bucket.dirty:
                        bucket._ensure_sorted()
                    posts = bucket.posts
                    start = bisect_left(posts, lo)
                    stop = bisect_right(posts, hi, start)
                    if start == stop:
                        continue
                for k in range(start, stop):
                    pk, half, subgraph = entries[k]
                    if strict_window and not -half <= p - pk <= half:
                        continue
                    probe_hits += 1
                    j = subgraph.owner
                    key = (j, i) if j < i else (i, j)
                    if key in checked:
                        dedup_skips += 1
                        continue
                    match_tests += 1
                    if subgraph.matches_at_number(cache, b, strict):
                        match_hits += 1
                        checked.add(key)
                        candidates.append(j)
    counters.probe_hits += probe_hits
    counters.match_tests += match_tests
    counters.match_hits += match_hits
    counters.dedup_skips += dedup_skips
