"""Tree partitioning: Algorithms 2 and 3 of the paper, plus extraction.

- :func:`partitionable` — the linear-time greedy ``(delta, gamma)``-
  partitionable test (Algorithm 2).  Following a binary postorder, every
  time the not-yet-detached part of a subtree reaches ``gamma`` nodes a
  gamma-subtree is (virtually) detached.
- :func:`max_min_size` / :func:`max_min_size_cached` — binary search for
  the largest feasible ``gamma`` (Algorithm 3), searching
  ``[floor((n + delta - 1) / (2*delta - 1)), floor(n / delta)]``.
- :func:`extract_partition` — materializes the partition that the greedy
  test discovers: the first ``delta - 1`` gamma-subtrees are cut off and
  the residual tree (which contains the root and, by Lemma 3, has at least
  ``gamma`` nodes) becomes the last subgraph.
- :func:`extract_random_partition` — the ablation strategy (Section 4.3's
  closing remark): ``delta - 1`` uniformly random bridging edges.

All passes run over the flat ``left``/``right`` child-number arrays of
:class:`~repro.core.treecache.TreeCache` (children carry smaller binary
postorder numbers than their parent, so one ascending index loop is a
postorder traversal) and produce :class:`~repro.core.subgraph.Subgraph`
objects with bytearray member bitmaps.  Nothing here allocates node
objects or recursion frames, so trees of arbitrary depth and size are
cheap as well as safe.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.subgraph import Subgraph
from repro.core.treecache import TreeCache
from repro.errors import InvalidParameterError, NotPartitionableError
from repro.tree.binary import BinaryTree

__all__ = [
    "partitionable",
    "max_min_size",
    "max_min_size_cached",
    "extract_partition",
    "extract_random_partition",
    "min_partitionable_size",
]


def min_partitionable_size(tau: int) -> int:
    """Smallest tree size for which the Lemma 2 filter is applicable.

    A tree needs at least ``delta = 2*tau + 1`` nodes to be split into
    ``delta`` non-empty subgraphs; smaller trees go to the join's
    small-tree pool.
    """
    return 2 * tau + 1


def _check_delta_gamma(size: int, delta: int, gamma: Optional[int] = None) -> None:
    if delta < 1:
        raise InvalidParameterError(f"delta must be >= 1, got {delta}")
    if gamma is not None and gamma < 1:
        raise InvalidParameterError(f"gamma must be >= 1, got {gamma}")
    if delta > size:
        raise NotPartitionableError(
            f"cannot split a tree of {size} nodes into {delta} non-empty subgraphs"
        )


def _child_arrays(binary: BinaryTree) -> tuple[list[int], list[int], list[int]]:
    """Left/right child number arrays (plus internal-node numbers) of a
    node-object tree."""
    postorder = binary.postorder()
    # Identity -> postorder-number lookup; keys never ordered into output.
    number_of = {id(node): b for b, node in enumerate(postorder, start=1)}  # repro: allow[determinism]
    size = len(postorder)
    left = [0] * (size + 1)
    right = [0] * (size + 1)
    internal = []
    for b, node in enumerate(postorder, start=1):
        if node.left is not None:
            left[b] = number_of[id(node.left)]
        if node.right is not None:
            right[b] = number_of[id(node.right)]
        if left[b] or right[b]:
            internal.append(b)
    return left, right, internal


def _partitionable_flat(
    size: int,
    left: list[int],
    right: list[int],
    internal: list[int],
    delta: int,
    gamma: int,
) -> bool:
    """Algorithm 2 over child-number arrays: one ascending-index pass.

    ``remaining`` plays the role of the paper's ``size - detached``: the
    node count still attached beneath each node after the virtual
    detachments so far.  Binary leaves always carry ``remaining == 1``
    when ``gamma >= 2`` (they can never be detached), so the pass fills
    the array with ones at C speed and walks only the internal nodes.
    """
    if gamma * delta > size:
        return False
    if gamma <= 1:
        # Every node is its own gamma-subtree; delta <= size was checked.
        return True
    found = 0
    remaining = [1] * (size + 1)
    for b in internal:
        value = 1
        child = left[b]
        if child:
            value += remaining[child]
        child = right[b]
        if child:
            value += remaining[child]
        if value >= gamma:
            found += 1
            if found >= delta:
                return True
            value = 0  # gamma-subtree detached (virtually)
        remaining[b] = value
    return False


def partitionable(binary: BinaryTree, delta: int, gamma: int) -> bool:
    """Algorithm 2: can ``binary`` be cut into ``delta`` subgraphs of size
    ``>= gamma`` each?"""
    _check_delta_gamma(binary.size, delta, gamma)
    left, right, internal = _child_arrays(binary)
    return _partitionable_flat(binary.size, left, right, internal, delta, gamma)


def _max_min_size_flat(
    size: int,
    left: list[int],
    right: list[int],
    internal: list[int],
    delta: int,
    hint: Optional[int] = None,
) -> int:
    """Algorithm 3 over child-number arrays.

    The lower end of the search range,
    ``gamma_min = floor((n + delta - 1) / (2*delta - 1))``, is always
    feasible (each greedy gamma-subtree has size at most ``2*gamma - 1``
    because both of its child branches are smaller than ``gamma``); the
    upper end is ``floor(n / delta)``.  Binary search in between costs
    ``O(n log(n / delta))``.

    ``hint`` warm-starts the search (e.g. with the previous tree's result:
    a join processes trees in ascending size order, and near-duplicate
    trees share their gamma).  The first two probes are ``hint`` and
    ``hint + 1``, so a correct hint finishes in two greedy passes; a wrong
    hint just reshapes the bisection — the returned maximum is identical.
    """
    hi = size // delta
    lo = max(1, (size + delta - 1) // (2 * delta - 1))  # always feasible
    # A correct hint is confirmed by exactly two probes: hint feasible,
    # hint + 1 not.  Afterwards plain bisection takes over.
    hints = [] if hint is None else [hint, hint + 1]
    # Invariant: lo is feasible, everything above hi is infeasible.
    while lo < hi:
        mid = 0
        while hints:
            candidate = hints.pop(0)
            if lo < candidate <= hi:
                mid = candidate
                break
        if not mid:
            mid = lo + (hi - lo + 1) // 2
        if _partitionable_flat(size, left, right, internal, delta, mid):
            lo = mid
        else:
            hi = mid - 1
    return lo


def max_min_size(binary: BinaryTree, delta: int) -> int:
    """Algorithm 3: the largest ``gamma`` with ``binary`` ``(delta, gamma)``-
    partitionable.  The child arrays are built once and shared by every
    probe of the binary search."""
    size = binary.size
    _check_delta_gamma(size, delta)
    left, right, internal = _child_arrays(binary)
    return _max_min_size_flat(size, left, right, internal, delta)


def max_min_size_cached(
    cache: TreeCache, delta: int, hint: Optional[int] = None
) -> int:
    """:func:`max_min_size` reusing a cache's already-built child arrays."""
    _check_delta_gamma(cache.size, delta)
    return _max_min_size_flat(
        cache.size, cache.left, cache.right, cache.internal, delta, hint
    )


def _build_subgraphs(
    cache: TreeCache,
    owner: int,
    bitmaps: list[tuple[int, bytearray]],
    numbering: str,
) -> list[Subgraph]:
    """Wrap ``(root number, member bitmap)`` pairs as rank-ordered Subgraphs.

    ``numbering`` selects the postorder identifier attached to each
    subgraph root: ``"general"`` (general-tree postorder; the provable
    choice) or ``"binary"`` (LC-RS postorder; the other plausible reading
    of the paper's Figure 7).
    """
    if numbering not in ("general", "binary"):
        raise InvalidParameterError(
            f"unknown postorder numbering {numbering!r}; use 'general' or 'binary'"
        )
    general_post = cache.general_post
    subgraphs = [
        Subgraph(
            owner=owner,
            cache=cache,
            root_number=root,
            member_bits=bits,
            rank=0,  # assigned below, ordered by postorder_id
            postorder_id=general_post[root] if numbering == "general" else root,
        )
        for root, bits in bitmaps
    ]
    subgraphs.sort(key=lambda sub: sub.postorder_id)
    for rank, sub in enumerate(subgraphs, start=1):
        sub.rank = rank
    return subgraphs


def extract_partition(
    cache: TreeCache,
    owner: int,
    delta: int,
    gamma: Optional[int] = None,
    numbering: str = "general",
    check: bool = True,
    backend: str = "python",
) -> list[Subgraph]:
    """Cut the cached tree into ``delta`` subgraphs, sizes ``>= gamma``.

    With ``gamma=None`` the maximal feasible value from
    :func:`max_min_size_cached` is used (the paper's MaxMinSize
    partitioning).  The greedy pass detaches the first ``delta - 1``
    gamma-subtrees it finds; everything still attached (including the
    tree root) forms the last subgraph.

    ``check=False`` skips the feasibility validation of an explicit
    ``gamma`` — for callers (the join's insert phase) that just computed
    it with :func:`max_min_size_cached`, the extra greedy pass is pure
    overhead.

    ``backend="numpy"`` resolves span membership with the vectorized
    kernel of :mod:`repro.kernels.partition` (sliced ndarray fills and
    one broadcast equality) instead of per-span bytearray splices; the
    greedy cut discovery is sequential either way and the produced
    bitmaps are byte-identical.

    Returns subgraphs ordered by ascending root postorder id, with 1-based
    ``rank`` set accordingly.
    """
    size = cache.size
    _check_delta_gamma(size, delta, gamma)
    left, right = cache.left, cache.right
    if gamma is None:
        gamma = _max_min_size_flat(size, left, right, cache.internal, delta)
    elif check and not _partitionable_flat(
        size, left, right, cache.internal, delta, gamma
    ):
        raise NotPartitionableError(
            f"tree of {size} nodes is not ({delta}, {gamma})-partitionable"
        )

    # The greedy pass records each detached gamma-subtree as its binary
    # postorder span (root number, subtree size); membership is resolved
    # afterwards with slice fills instead of per-node bookkeeping.
    subtree_size = [1] * (size + 1)
    remaining = [1] * (size + 1)
    cut_spans: list[tuple[int, int]] = []
    cuts = 0
    # Leaves carry subtree_size == remaining == 1 from the fill above and,
    # for gamma >= 2, can never be detached — the greedy pass walks only
    # the internal nodes then.  gamma <= 1 (tiny trees) must visit leaves
    # too, since any single node forms a valid gamma-subtree.
    numbers = cache.internal if gamma > 1 else range(1, size + 1)
    for b in numbers:
        total = 1
        rem = 1
        child = left[b]
        if child:
            total += subtree_size[child]
            rem += remaining[child]
        child = right[b]
        if child:
            total += subtree_size[child]
            rem += remaining[child]
        subtree_size[b] = total
        if cuts < delta - 1 and rem >= gamma:
            cut_spans.append((b, total))
            cuts += 1
            rem = 0
        remaining[b] = rem

    if backend == "numpy":
        from repro.kernels import get_numpy
        from repro.kernels.partition import partition_bitmaps_numpy

        np = get_numpy()
        if np is not None:
            return _build_subgraphs(
                cache, owner,
                partition_bitmaps_numpy(np, size, cut_spans), numbering,
            )
    # Materialize member bitmaps from the spans.  Binary subtree spans are
    # laminar (nested or disjoint), and a node detached by several cuts
    # belongs to the *earliest* (= innermost, smallest root number) one —
    # so each cut's bitmap is its own contiguous span with every earlier
    # nested span punched out, all at bytes-slice speed.
    bitmaps: list[tuple[int, bytearray]] = []
    for index, (b, total) in enumerate(cut_spans):
        lo = b - total + 1
        bits = bytearray(size + 1)
        bits[lo : b + 1] = b"\x01" * total
        for b2, total2 in cut_spans[:index]:
            if lo <= b2 <= b:  # earlier span is nested: its nodes are not ours
                bits[b2 - total2 + 1 : b2 + 1] = bytes(total2)
        bitmaps.append((b, bits))
    # Residual component: everything not detached, rooted at the tree root
    # (always the last node in binary postorder).  With a feasible gamma no
    # cut ever lands on the root itself (the residual would be empty,
    # contradicting Lemma 3).
    residual = bytearray(size + 1)
    residual[1:] = b"\x01" * size
    for b2, total2 in cut_spans:
        residual[b2 - total2 + 1 : b2 + 1] = bytes(total2)
    bitmaps.append((size, residual))
    return _build_subgraphs(cache, owner, bitmaps, numbering)


def extract_random_partition(
    cache: TreeCache,
    owner: int,
    delta: int,
    rng: random.Random,
    numbering: str = "general",
) -> list[Subgraph]:
    """Ablation partitioning: ``delta - 1`` uniformly random bridging edges.

    Any ``delta - 1`` distinct edges split the tree into ``delta``
    components of size >= 1, with no balance guarantee — which is exactly
    what makes it a useful control for the MaxMinSize scheme (the paper
    reports MaxMinSize is 50%-300% faster).
    """
    size = cache.size
    _check_delta_gamma(size, delta)
    # An edge is identified by its child endpoint: sample delta-1 non-roots
    # (the root is always the last binary postorder number).
    cut_numbers = set(rng.sample(range(1, size), delta - 1))

    root_numbers = [size, *cut_numbers]
    bitmap_at: list[Optional[bytearray]] = [None] * (size + 1)
    for root in root_numbers:
        bitmap_at[root] = bytearray(size + 1)
    component_of = [0] * (size + 1)
    component_of[size] = size
    # Binary preorder over the arrays: a parent's component is always
    # assigned before its children's.
    left, right, parent = cache.left, cache.right, cache.parent
    stack = [size]
    while stack:
        b = stack.pop()
        comp = b if bitmap_at[b] is not None else component_of[parent[b]]
        component_of[b] = comp
        bitmap_at[comp][b] = 1  # type: ignore[index]
        child = right[b]
        if child:
            stack.append(child)
        child = left[b]
        if child:
            stack.append(child)
    bitmaps = [(root, bitmap_at[root]) for root in root_numbers]
    return _build_subgraphs(cache, owner, bitmaps, numbering)  # type: ignore[arg-type]
