"""Tree partitioning: Algorithms 2 and 3 of the paper, plus extraction.

- :func:`partitionable` — the linear-time greedy ``(delta, gamma)``-
  partitionable test (Algorithm 2).  Following a binary postorder, every
  time the not-yet-detached part of a subtree reaches ``gamma`` nodes a
  gamma-subtree is (virtually) detached.
- :func:`max_min_size` — binary search for the largest feasible ``gamma``
  (Algorithm 3), searching ``[floor((n + delta - 1) / (2*delta - 1)),
  floor(n / delta)]``.
- :func:`extract_partition` — materializes the partition that the greedy
  test discovers: the first ``delta - 1`` gamma-subtrees are cut off and
  the residual tree (which contains the root and, by Lemma 3, has at least
  ``gamma`` nodes) becomes the last subgraph.
- :func:`extract_random_partition` — the ablation strategy (Section 4.3's
  closing remark): ``delta - 1`` uniformly random bridging edges.

All functions are iterative (no recursion), so trees of arbitrary depth are
safe.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.subgraph import Subgraph
from repro.core.treecache import TreeCache
from repro.errors import InvalidParameterError, NotPartitionableError
from repro.tree.binary import BinaryNode, BinaryTree

__all__ = [
    "partitionable",
    "max_min_size",
    "extract_partition",
    "extract_random_partition",
    "min_partitionable_size",
]


def min_partitionable_size(tau: int) -> int:
    """Smallest tree size for which the Lemma 2 filter is applicable.

    A tree needs at least ``delta = 2*tau + 1`` nodes to be split into
    ``delta`` non-empty subgraphs; smaller trees go to the join's
    small-tree pool.
    """
    return 2 * tau + 1


def _check_delta_gamma(size: int, delta: int, gamma: Optional[int] = None) -> None:
    if delta < 1:
        raise InvalidParameterError(f"delta must be >= 1, got {delta}")
    if gamma is not None and gamma < 1:
        raise InvalidParameterError(f"gamma must be >= 1, got {gamma}")
    if delta > size:
        raise NotPartitionableError(
            f"cannot split a tree of {size} nodes into {delta} non-empty subgraphs"
        )


def partitionable(binary: BinaryTree, delta: int, gamma: int) -> bool:
    """Algorithm 2: can ``binary`` be cut into ``delta`` subgraphs of size
    ``>= gamma`` each?

    Runs in one postorder pass.  ``remaining`` plays the role of the
    paper's ``size - detached``: the node count still attached beneath each
    node after the virtual detachments so far.
    """
    _check_delta_gamma(binary.size, delta, gamma)
    if gamma * delta > binary.size:
        return False
    found = 0
    remaining: dict[int, int] = {}
    for node in binary.iter_postorder():
        value = 1
        if node.left is not None:
            value += remaining[id(node.left)]
        if node.right is not None:
            value += remaining[id(node.right)]
        if value >= gamma:
            found += 1
            if found >= delta:
                return True
            value = 0  # gamma-subtree detached (virtually)
        remaining[id(node)] = value
    return False


def max_min_size(binary: BinaryTree, delta: int) -> int:
    """Algorithm 3: the largest ``gamma`` with ``binary`` ``(delta, gamma)``-
    partitionable.

    The lower end of the search range,
    ``gamma_min = floor((n + delta - 1) / (2*delta - 1))``, is always
    feasible (each greedy gamma-subtree has size at most ``2*gamma - 1``
    because both of its child branches are smaller than ``gamma``); the
    upper end is ``floor(n / delta)``.  Binary search in between costs
    ``O(n log(n / delta))``.
    """
    size = binary.size
    _check_delta_gamma(size, delta)
    gamma_max = size // delta
    gamma_min = (size + delta - 1) // (2 * delta - 1)
    gamma_min = max(1, gamma_min)
    count = gamma_max - gamma_min + 1
    while count > 1:
        gamma_mid = gamma_min + count // 2
        if partitionable(binary, delta, gamma_mid):
            count -= count // 2
            gamma_min = gamma_mid
        else:
            count //= 2
    return gamma_min


def _finalize(
    cache: TreeCache,
    owner: int,
    component_of: list[int],
    roots: dict[int, BinaryNode],
    numbering: str = "general",
) -> list[Subgraph]:
    """Group member sets per component and build rank-ordered Subgraphs.

    ``numbering`` selects the postorder identifier attached to each
    subgraph root: ``"general"`` (general-tree postorder; the provable
    choice) or ``"binary"`` (LC-RS postorder; the other plausible reading
    of the paper's Figure 7).
    """
    if numbering not in ("general", "binary"):
        raise InvalidParameterError(
            f"unknown postorder numbering {numbering!r}; use 'general' or 'binary'"
        )
    number_of = (
        cache.general_postorder if numbering == "general" else cache.binary_number
    )
    members: dict[int, set[int]] = {comp: set() for comp in roots}
    for number in range(1, cache.size + 1):
        members[component_of[number]].add(number)
    subgraphs = [
        Subgraph(
            owner=owner,
            root=root,
            members=frozenset(members[comp]),
            rank=0,  # assigned below, ordered by postorder_id
            postorder_id=number_of(root),
            incoming=root.incoming,
            cache=cache,
        )
        for comp, root in roots.items()
    ]
    subgraphs.sort(key=lambda sub: sub.postorder_id)
    for rank, sub in enumerate(subgraphs, start=1):
        sub.rank = rank
    return subgraphs


def extract_partition(
    cache: TreeCache,
    owner: int,
    delta: int,
    gamma: Optional[int] = None,
    numbering: str = "general",
) -> list[Subgraph]:
    """Cut the cached tree into ``delta`` subgraphs, sizes ``>= gamma``.

    With ``gamma=None`` the maximal feasible value from
    :func:`max_min_size` is used (the paper's MaxMinSize partitioning).
    The greedy pass detaches the first ``delta - 1`` gamma-subtrees it
    finds; everything still attached (including the tree root) forms the
    last subgraph.

    Returns subgraphs ordered by ascending root postorder id, with 1-based
    ``rank`` set accordingly.
    """
    binary = cache.binary
    size = cache.size
    _check_delta_gamma(size, delta, gamma)
    if gamma is None:
        gamma = max_min_size(binary, delta)
    elif not partitionable(binary, delta, gamma):
        raise NotPartitionableError(
            f"tree of {size} nodes is not ({delta}, {gamma})-partitionable"
        )

    # component_of[b] = binary postorder number of the component root that
    # node number b belongs to; 0 = still attached to the residual tree.
    component_of = [0] * (size + 1)
    subtree_size: list[int] = [0] * (size + 1)
    remaining: list[int] = [0] * (size + 1)
    roots: dict[int, BinaryNode] = {}
    cuts = 0
    for number, node in enumerate(cache.binary_postorder, start=1):
        total = 1
        rem = 1
        if node.left is not None:
            child = cache.binary_number(node.left)
            total += subtree_size[child]
            rem += remaining[child]
        if node.right is not None:
            child = cache.binary_number(node.right)
            total += subtree_size[child]
            rem += remaining[child]
        subtree_size[number] = total
        if cuts < delta - 1 and rem >= gamma:
            # Detach this gamma-subtree: claim every still-attached node in
            # the (contiguous) binary postorder span of the subtree.
            for claimed in range(number - total + 1, number + 1):
                if component_of[claimed] == 0:
                    component_of[claimed] = number
            roots[number] = node
            cuts += 1
            rem = 0
        remaining[number] = rem

    # Residual component: everything unclaimed, rooted at the tree root.
    root_number = cache.binary_number(binary.root)
    for number in range(1, size + 1):
        if component_of[number] == 0:
            component_of[number] = root_number
    roots[root_number] = binary.root
    return _finalize(cache, owner, component_of, roots, numbering)


def extract_random_partition(
    cache: TreeCache,
    owner: int,
    delta: int,
    rng: random.Random,
    numbering: str = "general",
) -> list[Subgraph]:
    """Ablation partitioning: ``delta - 1`` uniformly random bridging edges.

    Any ``delta - 1`` distinct edges split the tree into ``delta``
    components of size >= 1, with no balance guarantee — which is exactly
    what makes it a useful control for the MaxMinSize scheme (the paper
    reports MaxMinSize is 50%-300% faster).
    """
    binary = cache.binary
    size = cache.size
    _check_delta_gamma(size, delta)
    # An edge is identified by its child endpoint: sample delta-1 non-roots.
    root_number = cache.binary_number(binary.root)
    candidates = [n for n in range(1, size + 1) if n != root_number]
    cut_numbers = set(rng.sample(candidates, delta - 1))

    roots: dict[int, BinaryNode] = {root_number: binary.root}
    component_of = [0] * (size + 1)
    # Preorder guarantees a parent's component is known before its children.
    for node in binary.iter_preorder():
        number = cache.binary_number(node)
        if number in cut_numbers or node.parent is None:
            component_of[number] = number
            roots[number] = node
        else:
            component_of[number] = component_of[cache.binary_number(node.parent)]
    return _finalize(cache, owner, component_of, roots, numbering)
