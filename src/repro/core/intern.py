"""Collection-wide label interning and packed integer twig keys.

The candidate-generation hot path (probe/insert of Algorithm 1) never
compares label *strings*: every label is interned once into a small
integer id, and the two-layer index keys on a single packed integer per
twig instead of a ``(str, str, str)`` tuple.  Integer equality and
integer hashing are both several times cheaper than tuple-of-string
hashing, and the ids double as direct indices into per-tree flat arrays
(:mod:`repro.core.treecache`).

Layout
------
- Id ``0`` is reserved for :data:`EPSILON` (the dummy label of a missing
  or non-member binary child, ``""``), so a twig id of zero always means
  "no edge / bridging edge" without a lookup.
- Ids are assigned densely in first-seen order and never exceed
  ``MAX_LABEL_ID`` (21 bits), which lets a whole twig ``(label, left,
  right)`` pack into one 63-bit integer via :func:`pack_twig` — a single
  small-int dict key on 64-bit CPython.

A process-wide :data:`DEFAULT_INTERNER` is shared by every
:class:`~repro.core.treecache.TreeCache` unless an explicit interner is
passed, so caches built independently (tests, the similarity searcher,
multiple joins in one process) always agree on ids.  The mapping is
append-only and tiny (one entry per distinct label ever seen), so the
shared default is safe.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError

__all__ = [
    "EPSILON",
    "EPSILON_ID",
    "MAX_LABEL_ID",
    "TWIG_LABEL_SHIFT",
    "TWIG_LEFT_SHIFT",
    "LabelInterner",
    "DEFAULT_INTERNER",
    "pack_twig",
    "unpack_twig",
    "search_keys",
]

EPSILON = ""  # dummy label for a missing/non-member binary child
EPSILON_ID = 0  # its interned id, reserved in every interner

_LABEL_BITS = 21
MAX_LABEL_ID = (1 << _LABEL_BITS) - 1  # 2_097_151 distinct labels

# Bit positions of the twig components inside a packed key.  The probe
# loops (join/search) hoist these into locals and build keys with inline
# shifts — import them from here so the layout has one source of truth.
TWIG_LABEL_SHIFT = 2 * _LABEL_BITS
TWIG_LEFT_SHIFT = _LABEL_BITS


class LabelInterner:
    """Append-only bijection between label strings and dense small ints.

    >>> interner = LabelInterner()
    >>> interner.intern("a"), interner.intern("b"), interner.intern("a")
    (1, 2, 1)
    >>> interner.label(2)
    'b'
    """

    __slots__ = ("_ids", "_labels", "get")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {EPSILON: EPSILON_ID}
        self._labels: list[str] = [EPSILON]
        # The id of a label if already interned, else None.  Bound directly
        # to the table's own ``get`` so the per-node hot loops skip a
        # Python-level call frame.
        self.get = self._ids.get

    def intern(self, label: str) -> int:
        """The id of ``label``, assigning the next free id on first sight."""
        ids = self._ids
        lid = ids.get(label)
        if lid is None:
            lid = len(self._labels)
            if lid > MAX_LABEL_ID:
                raise InvalidParameterError(
                    f"label interner overflow: more than {MAX_LABEL_ID} "
                    "distinct labels in one collection"
                )
            ids[label] = lid
            self._labels.append(label)
        return lid

    def label(self, lid: int) -> str:
        """Inverse of :meth:`intern` (raises ``IndexError`` for unknown ids)."""
        return self._labels[lid]

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: str) -> bool:
        return label in self._ids


#: Shared by every :class:`TreeCache` built without an explicit interner.
DEFAULT_INTERNER = LabelInterner()


def pack_twig(label_id: int, left_id: int, right_id: int) -> int:
    """Pack a twig ``(label, left, right)`` of interned ids into one int.

    The layout is ``label << 42 | left << 21 | right`` with 21 bits per
    component; ids are guaranteed to fit by :meth:`LabelInterner.intern`.
    The packed value is what the two-layer index hashes — one small-int
    key instead of a three-string tuple.

    >>> unpack_twig(pack_twig(5, 0, 7))
    (5, 0, 7)
    """
    return (label_id << TWIG_LABEL_SHIFT) | (left_id << TWIG_LEFT_SHIFT) | right_id


def unpack_twig(key: int) -> tuple[int, int, int]:
    """Inverse of :func:`pack_twig`."""
    return (
        (key >> TWIG_LABEL_SHIFT) & MAX_LABEL_ID,
        (key >> TWIG_LEFT_SHIFT) & MAX_LABEL_ID,
        key & MAX_LABEL_ID,
    )


def search_keys(label: int, left: int, right: int) -> tuple[int, ...]:
    """The paper's at-most-four probe keys for a node twig, deduplicated.

    A probe node searches its full twig plus the variants with either or
    both children replaced by epsilon; with a missing child (id 0) the
    epsilon variant coincides, so only the distinct packed keys survive.
    The join's innermost loop inlines this construction for speed
    (``partsj_join._probe_index``) — keep the two in sync.

    >>> [unpack_twig(k) for k in search_keys(3, 1, 2)]
    [(3, 1, 2), (3, 1, 0), (3, 0, 2), (3, 0, 0)]
    >>> [unpack_twig(k) for k in search_keys(3, 0, 2)]
    [(3, 0, 2), (3, 0, 0)]
    """
    full_key = (label << TWIG_LABEL_SHIFT) | (left << TWIG_LEFT_SHIFT) | right
    bare_key = label << TWIG_LABEL_SHIFT
    if left:
        if right:
            return (full_key, full_key - right, bare_key | right, bare_key)
        return (full_key, bare_key)
    if right:
        return (full_key, bare_key)
    return (full_key,)
