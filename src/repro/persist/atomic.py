"""Atomic write discipline shared by every on-disk artifact.

A crash (or a full disk) halfway through a plain ``open(path, "w")``
leaves a silently truncated file that later loads cleanly — the worst
failure mode a dataset or snapshot writer can have.  Every writer in
this library therefore goes through the same three-step discipline:

1. write the complete payload to a temporary file **in the same
   directory** as the target (same filesystem, so the rename is atomic);
2. flush and ``os.fsync`` the temporary file, so the bytes are durable
   before the name is;
3. ``os.replace`` it over the target — readers see either the old
   complete file or the new complete file, never a prefix — and fsync
   the directory (best effort; not all platforms allow it) so the
   rename itself survives a crash.

On any error the temporary file is removed and the target is untouched.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path
from typing import Iterator

__all__ = ["replace_on_success", "atomic_write_bytes", "fsync_file"]


def fsync_file(path: Path) -> None:
    """Flush ``path``'s content to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(directory: Path) -> None:
    # Durability of the rename itself; best effort because directories
    # cannot be opened on some platforms/filesystems (e.g. Windows).
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(fd)


@contextlib.contextmanager
def replace_on_success(path: str | Path) -> Iterator[Path]:
    """Yield a temporary path that atomically replaces ``path`` on success.

    The caller writes (and closes) the temporary file inside the
    ``with`` block; a clean exit fsyncs it and renames it over ``path``.
    An exception leaves ``path`` exactly as it was and removes the
    temporary file.  The temporary name keeps no meaningful suffix, so
    writers that choose behavior by suffix (e.g. gzip on ``.gz``) must
    decide from the *final* path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        yield tmp
        fsync_file(tmp)
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    finally:
        with contextlib.suppress(OSError):
            tmp.unlink()


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` with the full atomic discipline."""
    with replace_on_success(path) as tmp:
        with open(tmp, "wb") as handle:
            handle.write(data)
