"""Serializing :class:`~repro.session.TreeCollection` sessions.

What a prepared session owns is already almost flat — bracket strings,
an append-only label table, a size-sorted permutation, and per-tau
subgraphs that are ``(root_number, postorder_id, twig_key, bitmap)``
tuples over each tree's :class:`~repro.core.treecache.TreeCache` — so a
snapshot stores exactly those and *recomputes everything cheap* on
load.  The expensive work a warm load skips is the per-tree gamma
search and greedy partition extraction (the dominant cost of
``prepare``); what it deliberately re-runs is cheap and doubles as
verification:

- labels are re-interned **in stored order**, reproducing the exact id
  assignment, so packed twig keys compare equal across save/load;
- the size-sorted order is recomputed from the trees and compared
  against the stored permutation — a mismatch means the snapshot does
  not describe these trees;
- every subgraph's twig key is recomputed from its restored bitmap and
  compared against the stored key — defense in depth behind the
  container CRCs.

Any inconsistency raises a typed :class:`~repro.errors.PersistenceError`
subclass; ``TreeCollection.from_file`` turns that into a warning plus a
cold rebuild, so a damaged sidecar can never produce a wrong answer.

Section layout (inside the :mod:`repro.persist.container` envelope):

- ``meta``     JSON: tree count, whether trees are embedded, the prepared
  keys in preparation order.
- ``source``   JSON (optional): dataset file name, size and SHA-256 — the
  staleness check for sidecar auto-discovery.
- ``trees``    newline-joined bracket strings (optional: sidecars saved
  next to their dataset omit them).
- ``interner`` JSON: the label table minus the reserved epsilon.
- ``order``    JSON: the size-sorted permutation (original indices).
- ``prep:N``   one per prepared ``(tau, config)``: a JSON header (config
  fields, gammas, small-tree list, per-tree subgraph counts) followed by
  packed little-endian subgraph records.
"""

from __future__ import annotations

import hashlib
import json
import struct
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import (
    SnapshotFormatError,
    SnapshotIntegrityError,
    StaleSnapshotError,
)
from repro.obs.trace import NULL_TRACER
from repro.persist.container import read_container, write_container
from repro.tree.bracket import parse_bracket, to_bracket
from repro.tree.node import Tree

__all__ = [
    "SNAPSHOT_SUFFIX",
    "sidecar_path",
    "source_fingerprint",
    "save_collection",
    "load_collection",
]

#: Default sidecar name: ``forest.trees`` -> ``forest.trees.repro-idx``.
SNAPSHOT_SUFFIX = ".repro-idx"

# Per-subgraph record: root_number, postorder_id, bitmap length (u32 each)
# then the 63-bit packed twig key (u64); the member bitmap bytes follow.
_SUB = struct.Struct("<IIIQ")


def sidecar_path(dataset_path: str | Path) -> Path:
    """The auto-discovered snapshot path for a dataset file."""
    dataset_path = Path(dataset_path)
    return dataset_path.with_name(dataset_path.name + SNAPSHOT_SUFFIX)


def source_fingerprint(path: str | Path) -> dict:
    """Identity of a dataset file: name, byte count, SHA-256 of the bytes."""
    path = Path(path)
    data = path.read_bytes()
    return {
        "name": path.name,
        "bytes": len(data),
        "sha256": hashlib.sha256(data).hexdigest(),
    }


def _json_bytes(payload) -> bytes:
    # Stable bytes (sorted keys, no whitespace churn) so identical state
    # snapshots to identical files.
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def _config_fields(config) -> dict:
    """The preparation-keying config fields, as JSON-safe strings.

    ``backend`` is deliberately absent: the kernel backend never changes
    the prepared artifacts (both backends are bit-identical), and a
    snapshot written on a machine with numpy must load on one without
    it.  Loaded configs re-resolve ``backend="auto"`` per process.
    """
    return {
        "semantics": getattr(config.semantics, "value", config.semantics),
        "postorder_filter": getattr(
            config.postorder_filter, "value", config.postorder_filter
        ),
        "partition_strategy": config.partition_strategy,
        "seed": config.seed,
        "postorder_numbering": config.postorder_numbering,
    }


def _encode_prep(prep) -> bytes:
    """One prepared ``(tau, config)``: JSON header + packed subgraphs."""
    order = list(prep.partitions)  # insertion order == sorted order
    header = {
        "tau": prep.tau,
        "config": _config_fields(prep.config),
        "build_time": prep.build_time,
        "small": prep.small,
        "order": order,
        "gammas": [prep.gammas[i] for i in order],
        "counts": [len(prep.partitions[i]) for i in order],
        "search_index_built": prep._search_index is not None,
    }
    head = _json_bytes(header)
    out = bytearray()
    out += struct.pack("<I", len(head))
    out += head
    for i in order:
        for sub in prep.partitions[i]:
            bits = sub.member_bits
            out += _SUB.pack(
                sub.root_number, sub.postorder_id, len(bits), sub.twig_key
            )
            out += bytes(bits)
    return bytes(out)


def save_collection(
    collection,
    path: str | Path,
    include_trees: bool = True,
    source: Optional[str | Path] = None,
    tracer=None,
) -> Path:
    """Write ``collection`` (trees + every prepared tau) to ``path``.

    ``include_trees=False`` produces a sidecar that only makes sense next
    to its dataset file — pass ``source=`` so loading can verify the
    dataset has not changed since.  ``tracer`` (a
    :class:`repro.obs.Tracer`) records the save as one
    ``snapshot.save`` span.
    """
    from repro import __version__

    tracer = tracer if tracer is not None else NULL_TRACER
    path = Path(path)
    prepared = list(collection._prepared.values())
    with tracer.span("snapshot.save", path=str(path),
                     trees=len(collection), preps=len(prepared)):
        meta = {
            "trees": len(collection),
            "include_trees": bool(include_trees),
            "preps": [
                {"tau": prep.tau, "config": _config_fields(prep.config)}
                for prep in prepared
            ],
        }
        sections: list[tuple[str, bytes]] = [("meta", _json_bytes(meta))]
        if source is not None:
            sections.append(("source", _json_bytes(source_fingerprint(source))))
        if include_trees:
            payload = "\n".join(to_bracket(tree) for tree in collection.trees)
            sections.append(("trees", payload.encode("utf-8")))
        sections.append(
            ("interner", _json_bytes(collection.interner._labels[1:]))
        )
        sections.append(("order", _json_bytes(list(collection.sorted.order))))
        for position, prep in enumerate(prepared):
            sections.append((f"prep:{position}", _encode_prep(prep)))
        write_container(path, sections, library_version=__version__)
    return path


def _decode_prep(collection, name: str, payload: bytes, path: Path):
    """Rebuild one ``_PreparedTau`` from its section, verifying twig keys."""
    from repro.core.join import PartSJConfig
    from repro.core.subgraph import Subgraph
    from repro.session import _PreparedTau

    if len(payload) < 4:
        raise SnapshotFormatError(
            f"{path}: section {name!r} is too short to hold its header"
        )
    (head_len,) = struct.unpack_from("<I", payload, 0)
    if 4 + head_len > len(payload):
        raise SnapshotFormatError(
            f"{path}: section {name!r} header length {head_len} exceeds "
            "the section"
        )
    try:
        header = json.loads(payload[4:4 + head_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotFormatError(
            f"{path}: section {name!r} header is not valid JSON ({exc})"
        ) from exc
    tau = header["tau"]
    config = PartSJConfig(**header["config"]).resolved()
    order = header["order"]
    gammas_list = header["gammas"]
    counts = header["counts"]
    if not (len(order) == len(gammas_list) == len(counts)):
        raise SnapshotIntegrityError(
            f"{path}: section {name!r} header arrays disagree in length"
        )
    offset = 4 + head_len
    partitions: dict[int, list] = {}
    gammas: dict[int, int] = {}
    for i, gamma, count in zip(order, gammas_list, counts):
        if not 0 <= i < len(collection):
            raise SnapshotIntegrityError(
                f"{path}: section {name!r} references tree {i}, but the "
                f"collection has {len(collection)} trees"
            )
        cache = collection.cache(i)
        subgraphs = []
        for rank in range(1, count + 1):
            if offset + _SUB.size > len(payload):
                raise SnapshotFormatError(
                    f"{path}: section {name!r} ends inside a subgraph record"
                )
            root_number, postorder_id, bits_len, twig_key = _SUB.unpack_from(
                payload, offset
            )
            offset += _SUB.size
            if offset + bits_len > len(payload):
                raise SnapshotFormatError(
                    f"{path}: section {name!r} ends inside a subgraph bitmap"
                )
            bits = bytearray(payload[offset:offset + bits_len])
            offset += bits_len
            if bits_len != cache.size + 1 or not 1 <= root_number <= cache.size:
                raise SnapshotIntegrityError(
                    f"{path}: section {name!r} subgraph of tree {i} does not "
                    f"fit the tree (bitmap {bits_len} vs {cache.size + 1} "
                    f"slots, root {root_number})"
                )
            sub = Subgraph(i, cache, root_number, bits, rank, postorder_id)
            if sub.twig_key != twig_key:
                # The decisive consistency check: the key recomputed from
                # the restored bitmap and the re-interned labels must be
                # the key the original session indexed under.
                raise SnapshotIntegrityError(
                    f"{path}: section {name!r} tree {i} rank {rank}: "
                    f"reconstructed twig key {sub.twig_key:#x} != stored "
                    f"{twig_key:#x} — snapshot does not match these trees"
                )
            subgraphs.append(sub)
        partitions[i] = subgraphs
        gammas[i] = gamma
    if offset != len(payload):
        raise SnapshotFormatError(
            f"{path}: section {name!r} has {len(payload) - offset} trailing "
            "bytes after the last subgraph"
        )
    prep = _PreparedTau._restore(
        collection, tau, config,
        partitions=partitions, gammas=gammas, small=list(header["small"]),
        build_time=float(header.get("build_time", 0.0)),
    )
    if header.get("search_index_built"):
        prep.search_index()  # rebuild eagerly: it was warm when saved
    return prep


def load_collection(
    path: str | Path,
    trees: Optional[Sequence[Tree]] = None,
    expected_source: Optional[str | Path] = None,
    tracer=None,
):
    """Rebuild a :class:`~repro.session.TreeCollection` from ``path``.

    ``trees`` supplies the collection when the snapshot was saved
    without them (a sidecar); when given it overrides embedded trees.
    ``expected_source`` (a dataset path) enforces the staleness check:
    the snapshot must carry a matching source fingerprint or
    :class:`StaleSnapshotError` is raised.  ``tracer`` (a
    :class:`repro.obs.Tracer`) records the load as one
    ``snapshot.load`` span.

    Raises the :class:`~repro.errors.PersistenceError` family on any
    damage or mismatch; never returns a partially restored session.
    """
    from repro.session import TreeCollection

    tracer = tracer if tracer is not None else NULL_TRACER
    path = Path(path)
    with tracer.span("snapshot.load", path=str(path)) as _load_span:
        collection = _load_collection_inner(
            path, trees, expected_source, TreeCollection, _load_span
        )
    return collection


def _load_collection_inner(path, trees, expected_source, TreeCollection,
                           load_span):
    library_version, sections = read_container(path)
    try:
        meta = json.loads(sections["meta"].decode("utf-8"))
    except KeyError:
        raise SnapshotFormatError(f"{path}: snapshot has no 'meta' section")
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotFormatError(
            f"{path}: 'meta' section is not valid JSON ({exc})"
        ) from exc

    source = None
    if "source" in sections:
        source = json.loads(sections["source"].decode("utf-8"))
    if expected_source is not None:
        if source is None:
            raise StaleSnapshotError(
                f"{path}: snapshot records no source dataset, so it cannot "
                f"vouch for {expected_source}"
            )
        actual = source_fingerprint(expected_source)
        if actual["sha256"] != source.get("sha256"):
            raise StaleSnapshotError(
                f"{path}: source dataset {Path(expected_source).name} has "
                f"changed since this snapshot was saved (sha256 "
                f"{actual['sha256'][:12]}… vs recorded "
                f"{str(source.get('sha256'))[:12]}…)"
            )

    if trees is None:
        if "trees" not in sections:
            raise SnapshotFormatError(
                f"{path}: snapshot was saved without trees "
                "(include_trees=False); pass the collection via trees="
            )
        text = sections["trees"].decode("utf-8")
        trees = [parse_bracket(line) for line in text.splitlines() if line]
    else:
        trees = list(trees)
    if len(trees) != meta.get("trees"):
        raise SnapshotIntegrityError(
            f"{path}: snapshot describes {meta.get('trees')} trees, "
            f"got {len(trees)}"
        )

    collection = TreeCollection(trees)

    # Re-intern the stored label table in order: id assignment is
    # first-seen, so replaying the stored order reproduces every id and
    # therefore every packed twig key.
    try:
        labels = json.loads(sections["interner"].decode("utf-8"))
    except KeyError:
        raise SnapshotFormatError(f"{path}: snapshot has no 'interner' section")
    interner = collection.interner
    for label in labels:
        interner.intern(label)

    try:
        order = json.loads(sections["order"].decode("utf-8"))
    except KeyError:
        raise SnapshotFormatError(f"{path}: snapshot has no 'order' section")
    if list(collection.sorted.order) != order:
        raise SnapshotIntegrityError(
            f"{path}: stored size-sorted order does not match these trees — "
            "the snapshot belongs to a different collection"
        )

    restored = []
    for position in range(len(meta.get("preps", []))):
        name = f"prep:{position}"
        if name not in sections:
            raise SnapshotFormatError(
                f"{path}: meta lists {len(meta['preps'])} preparations but "
                f"section {name!r} is missing"
            )
        prep = _decode_prep(collection, name, sections[name], path)
        key = collection._prep_key(prep.tau, prep.config)
        collection._prepared[key] = prep
        restored.append(prep.tau)
    load_span.set("trees", len(trees))
    load_span.set("restored_taus", restored)

    collection._provenance = {
        "path": str(path),
        "library_version": library_version,
        "sections": list(sections),
        "restored_taus": restored,
        "source": source,
        "trees_embedded": "trees" in sections,
    }
    return collection
