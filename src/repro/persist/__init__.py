"""Crash-safe persistence: checksummed snapshots and a streaming WAL.

Three layers, smallest first:

- :mod:`repro.persist.atomic` — the temp + fsync + rename write
  discipline every artifact (and ``save_trees``) goes through.
- :mod:`repro.persist.container` — the versioned, magic-tagged,
  per-section-CRC32 snapshot container; :func:`inspect_container` is the
  diagnostics view the CLI's ``stats --snapshot`` prints.
- :mod:`repro.persist.snapshot` / :mod:`repro.persist.wal` — the
  :class:`~repro.session.TreeCollection` codec (save / load / sidecar
  auto-discovery) and the append-only write-ahead log behind
  :meth:`repro.stream.engine.StreamingJoin.recover`.

The public entry points live on the objects being persisted —
``TreeCollection.save`` / ``.load`` / ``.from_file(sidecar=...)`` and
``StreamingJoin(wal=...)`` / ``.recover`` — this package is the
machinery underneath.  Failure semantics in one line: explicit loads
raise typed :class:`~repro.errors.PersistenceError` subclasses;
implicit sidecar loads warn and fall back to a cold rebuild, never a
wrong answer.
"""

from repro.persist.atomic import atomic_write_bytes, replace_on_success
from repro.persist.container import (
    FORMAT_VERSION,
    inspect_container,
    read_container,
    write_container,
)
from repro.persist.snapshot import (
    SNAPSHOT_SUFFIX,
    load_collection,
    save_collection,
    sidecar_path,
    source_fingerprint,
)
from repro.persist.wal import WAL_FSYNC_POLICIES, StreamWAL, scan_wal

__all__ = [
    "FORMAT_VERSION",
    "SNAPSHOT_SUFFIX",
    "WAL_FSYNC_POLICIES",
    "StreamWAL",
    "atomic_write_bytes",
    "inspect_container",
    "load_collection",
    "read_container",
    "replace_on_success",
    "save_collection",
    "scan_wal",
    "sidecar_path",
    "source_fingerprint",
    "write_container",
]
