"""The snapshot container: a magic-tagged, versioned, per-section-CRC file.

Every persisted artifact except the append-only WAL uses this one
format, so a future database-backed collection can share it (ROADMAP:
"a persisted session and a database-backed collection should share one
storage format").  The layout is deliberately dumb — named byte sections
behind checksums — because the *sections* carry the schema:

``RPRSNAP\\x01`` magic (8 bytes)
``format_version``  u32 LE — bumped on incompatible layout changes
``library_version`` u16 length + utf-8 (provenance only, never checked)
``section_count``   u32 LE
then per section:
``name``    u16 length + utf-8
``payload`` u64 length + u32 CRC32 + bytes

The reader verifies **every** CRC before returning anything — a
snapshot is either wholly trustworthy or rejected, there is no partial
read — mirroring the per-envelope CRC discipline of
:func:`repro.resilience.faults.seal` at file granularity.  Structural
damage (bad magic, unknown version, truncation inside the framing)
raises :class:`~repro.errors.SnapshotFormatError`; a well-framed section
whose bytes fail their checksum raises
:class:`~repro.errors.SnapshotIntegrityError`.

:func:`inspect_container` is the forgiving sibling for diagnostics (the
CLI's ``stats --snapshot``): it reports format/library versions and
per-section sizes and CRC status without raising on checksum damage.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Iterable

from repro.errors import SnapshotFormatError, SnapshotIntegrityError
from repro.persist.atomic import atomic_write_bytes

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "write_container",
    "read_container",
    "inspect_container",
]

MAGIC = b"RPRSNAP\x01"
FORMAT_VERSION = 1

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

# Sanity bounds: a length field larger than these means the framing is
# garbage, not that someone really has a 2**63-byte section.
_MAX_NAME = 1 << 12


def encode_container(
    sections: Iterable[tuple[str, bytes]],
    library_version: str,
    format_version: int = FORMAT_VERSION,
) -> bytes:
    """The container bytes for ``sections`` (ordered name/payload pairs)."""
    out = bytearray()
    out += MAGIC
    out += _U32.pack(format_version)
    lib = library_version.encode("utf-8")
    out += _U16.pack(len(lib))
    out += lib
    items = list(sections)
    out += _U32.pack(len(items))
    for name, payload in items:
        encoded = name.encode("utf-8")
        out += _U16.pack(len(encoded))
        out += encoded
        out += _U64.pack(len(payload))
        out += _U32.pack(zlib.crc32(payload) & 0xFFFFFFFF)
        out += payload
    return bytes(out)


def write_container(
    path: str | Path,
    sections: Iterable[tuple[str, bytes]],
    library_version: str,
    format_version: int = FORMAT_VERSION,
) -> None:
    """Atomically write ``sections`` to ``path`` (temp + fsync + rename)."""
    atomic_write_bytes(
        path, encode_container(sections, library_version, format_version)
    )


class _Cursor:
    """Bounds-checked reads over the container bytes."""

    def __init__(self, data: bytes, path: Path):
        self.data = data
        self.pos = 0
        self.path = path

    def take(self, count: int, what: str) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise SnapshotFormatError(
                f"{self.path}: truncated snapshot — expected {count} bytes "
                f"of {what} at offset {self.pos}, file ends at {len(self.data)}"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u16(self, what: str) -> int:
        return _U16.unpack(self.take(2, what))[0]

    def u32(self, what: str) -> int:
        return _U32.unpack(self.take(4, what))[0]

    def u64(self, what: str) -> int:
        return _U64.unpack(self.take(8, what))[0]


def _read_frames(path: Path, data: bytes):
    """Yield ``(name, payload, crc_stored, crc_ok)`` after header checks."""
    cursor = _Cursor(data, path)
    magic = cursor.take(len(MAGIC), "magic")
    if magic != MAGIC:
        raise SnapshotFormatError(
            f"{path}: not a repro snapshot (magic {magic!r})"
        )
    format_version = cursor.u32("format version")
    if format_version != FORMAT_VERSION:
        raise SnapshotFormatError(
            f"{path}: snapshot format version {format_version} is not "
            f"supported (this library reads version {FORMAT_VERSION})"
        )
    lib_len = cursor.u16("library version length")
    library_version = cursor.take(lib_len, "library version").decode("utf-8")
    count = cursor.u32("section count")
    frames = []
    for position in range(count):
        name_len = cursor.u16(f"section {position} name length")
        if name_len > _MAX_NAME:
            raise SnapshotFormatError(
                f"{path}: section {position} name length {name_len} is "
                "implausible — framing is damaged"
            )
        name = cursor.take(name_len, f"section {position} name").decode(
            "utf-8", errors="replace"
        )
        payload_len = cursor.u64(f"section {name!r} payload length")
        crc_stored = cursor.u32(f"section {name!r} checksum")
        payload = cursor.take(payload_len, f"section {name!r} payload")
        crc_ok = (zlib.crc32(payload) & 0xFFFFFFFF) == crc_stored
        frames.append((name, payload, crc_stored, crc_ok))
    if cursor.pos != len(data):
        raise SnapshotFormatError(
            f"{path}: {len(data) - cursor.pos} trailing bytes after the "
            "last section — framing is damaged"
        )
    return format_version, library_version, frames


def read_container(path: str | Path) -> tuple[str, dict[str, bytes]]:
    """Read and fully verify a container.

    Returns ``(library_version, sections)`` where ``sections`` preserves
    write order.  Raises :class:`SnapshotFormatError` on structural
    damage and :class:`SnapshotIntegrityError` on the first checksum
    mismatch — nothing is returned from a damaged file.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise SnapshotFormatError(f"{path}: cannot read snapshot ({exc})") from exc
    _, library_version, frames = _read_frames(path, data)
    sections: dict[str, bytes] = {}
    for name, payload, crc_stored, crc_ok in frames:
        if not crc_ok:
            raise SnapshotIntegrityError(
                f"{path}: section {name!r} fails its CRC32 check "
                f"(stored {crc_stored:#010x}) — the snapshot is damaged"
            )
        sections[name] = payload
    return library_version, sections


def inspect_container(path: str | Path) -> dict:
    """Provenance of a snapshot without failing on checksum damage.

    Structural damage still raises :class:`SnapshotFormatError` (there
    is nothing meaningful to report from un-frameable bytes); checksum
    damage is reported per section under ``crc_ok``.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise SnapshotFormatError(f"{path}: cannot read snapshot ({exc})") from exc
    format_version, library_version, frames = _read_frames(path, data)
    return {
        "path": str(path),
        "bytes": len(data),
        "format_version": format_version,
        "library_version": library_version,
        "crc_ok": all(crc_ok for _, _, _, crc_ok in frames),
        "sections": [
            {"name": name, "bytes": len(payload), "crc_ok": crc_ok}
            for name, payload, _, crc_ok in frames
        ],
    }
