"""A per-record-CRC'd append-only write-ahead log for streaming ingest.

The streaming engine's durability story: every arrival is appended to
the log *before* it mutates engine state, so after a crash
:meth:`repro.stream.engine.StreamingJoin.recover` replays the log and
lands on a state **bit-identical to a batch join over the logged
prefix** — the engine's flush-point equivalence invariant extended
across process death.

Layout
------
``RPRWAL\\x01\\x01`` magic, then length-prefixed records::

    u32 payload length | u32 CRC32(payload) | payload

The first record is the JSON header (format, library version, tau, the
preparation-keying config fields); every later record is one arrival's
bracket string.  Appends never rewrite earlier bytes, so the only
damage a crash can cause is a **torn final record** — a short tail or a
half-written frame — which recovery detects (frame runs past EOF, or a
checksum mismatch on the *last* record) and drops.  A checksum mismatch
with valid data *after* it cannot come from a torn append: the log was
damaged at rest, and silently skipping the hole would replay a stream
with missing arrivals — that raises
:class:`~repro.errors.WALCorruptError` carrying salvage stats (records
and bytes of the intact prefix, offset of the damage).

Fsync policy
------------
``fsync="always"`` makes every arrival durable before :meth:`append`
returns (one ``fsync`` per record — the safe default is deliberately
not this, it costs ~a disk flush per tree).  ``"batch"`` (default)
flushes OS buffers per record but fsyncs only at :meth:`sync` points —
the engine calls it on ``flush()`` and ``close()`` — so a crash loses
at most the records since the last flush point.  ``"never"`` leaves
durability to the OS entirely (tests, throwaway runs).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Optional

from repro.errors import InvalidParameterError, SnapshotFormatError, WALCorruptError
from repro.obs.trace import NULL_TRACER

__all__ = ["WAL_MAGIC", "WAL_FSYNC_POLICIES", "StreamWAL", "scan_wal"]

WAL_MAGIC = b"RPRWAL\x01\x01"
WAL_FORMAT_VERSION = 1

WAL_FSYNC_POLICIES = ("always", "batch", "never")

_FRAME = struct.Struct("<II")


def _check_policy(fsync: str) -> str:
    if fsync not in WAL_FSYNC_POLICIES:
        raise InvalidParameterError(
            f"unknown WAL fsync policy {fsync!r}; choose from "
            f"{list(WAL_FSYNC_POLICIES)}"
        )
    return fsync


class StreamWAL:
    """The append side of the log (the engine's durability hook).

    Use :meth:`create` for a fresh stream (truncates, writes the
    header) or :meth:`recover`-driven :meth:`reopen` to continue a
    salvaged log.  Not thread-safe — the engine serializes arrivals.
    """

    def __init__(
        self,
        path: str | Path,
        handle,
        fsync: str,
        records: int,
        tracer=None,
    ):
        self.path = Path(path)
        self.fsync = _check_policy(fsync)
        self.records = records  # arrival records (header not counted)
        self.synced_records = records if handle is None else 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._handle = handle
        self._dirty = False

    @classmethod
    def create(
        cls,
        path: str | Path,
        tau: int,
        config,
        fsync: str = "batch",
        tracer=None,
    ) -> "StreamWAL":
        """Start a fresh log for a new stream (truncates ``path``)."""
        from repro import __version__
        from repro.persist.snapshot import _config_fields

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(path, "wb")
        handle.write(WAL_MAGIC)
        header = {
            "format": WAL_FORMAT_VERSION,
            "library_version": __version__,
            "tau": tau,
            "config": _config_fields(config),
        }
        payload = json.dumps(header, sort_keys=True).encode("utf-8")
        handle.write(_FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF))
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())  # the header is durable regardless of policy
        wal = cls(path, handle, fsync, records=0, tracer=tracer)
        wal.synced_records = 0
        return wal

    @classmethod
    def reopen(
        cls,
        path: str | Path,
        good_bytes: int,
        records: int,
        fsync: str = "batch",
        tracer=None,
    ) -> "StreamWAL":
        """Continue appending after recovery.

        Truncates the file to the salvaged prefix (dropping a torn tail)
        and positions at its end; ``records`` is the salvaged arrival
        count, so record accounting continues seamlessly.
        """
        handle = open(path, "r+b")
        handle.truncate(good_bytes)
        handle.seek(good_bytes)
        wal = cls(path, handle, fsync, records=records, tracer=tracer)
        wal.synced_records = records
        return wal

    def append(self, bracket: str) -> None:
        """Log one arrival (call *before* mutating engine state)."""
        payload = bracket.encode("utf-8")
        handle = self._handle
        handle.write(_FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF))
        handle.write(payload)
        self.records += 1
        if self.fsync == "always":
            handle.flush()
            os.fsync(handle.fileno())
            self.synced_records = self.records
        elif self.fsync == "batch":
            handle.flush()
            self._dirty = True
        else:
            self._dirty = True

    def sync(self) -> None:
        """Make everything appended so far durable (a flush point)."""
        if self._handle is None or not self._dirty:
            return
        with self.tracer.span("wal.sync", records=self.records,
                              fsync=self.fsync):
            self._handle.flush()
            if self.fsync != "never":
                os.fsync(self._handle.fileno())
                self.synced_records = self.records
            self._dirty = False

    def close(self) -> None:
        if self._handle is None:
            return
        try:
            self.sync()
        finally:
            self._handle.close()
            self._handle = None

    def describe(self) -> dict:
        """Counters for ``StreamStats.extra['wal']``."""
        return {
            "path": str(self.path),
            "fsync": self.fsync,
            "records": self.records,
            "synced_records": self.synced_records,
        }


def scan_wal(path: str | Path) -> dict:
    """Read a log, tolerating a torn tail; the replay side of recovery.

    Returns ``{"header": dict, "brackets": [str, ...], "salvage": {...}}``
    where ``salvage`` records ``records`` (complete arrivals),
    ``good_bytes`` (the intact prefix recovery may truncate to) and
    ``torn_bytes`` (length of the dropped tail, ``0`` for a clean log).

    Raises
    ------
    SnapshotFormatError
        Bad magic, unreadable header, or an unsupported format version.
    WALCorruptError
        Damage strictly before the final record (a checksum mismatch or
        impossible frame with valid data after it) — replaying past it
        would silently drop arrivals.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise SnapshotFormatError(f"{path}: cannot read WAL ({exc})") from exc
    if not data.startswith(WAL_MAGIC):
        raise SnapshotFormatError(
            f"{path}: not a repro WAL (magic {data[:len(WAL_MAGIC)]!r})"
        )

    # Frame the whole file first: records are (offset, end, payload, ok).
    frames = []
    pos = len(WAL_MAGIC)
    torn_at: Optional[int] = None
    while pos < len(data):
        if pos + _FRAME.size > len(data):
            torn_at = pos  # crash inside a frame prefix
            break
        length, crc = _FRAME.unpack_from(data, pos)
        end = pos + _FRAME.size + length
        if end > len(data):
            torn_at = pos  # crash inside a payload
            break
        payload = data[pos + _FRAME.size:end]
        frames.append((pos, end, payload, (zlib.crc32(payload) & 0xFFFFFFFF) == crc))
        pos = end

    if not frames:
        raise SnapshotFormatError(
            f"{path}: WAL has no complete header record"
        )

    # A checksum failure on any record *except the last complete one* is
    # mid-log damage; on the last (with nothing after it) it is a torn
    # final overwrite and treated like a short tail.
    bad = [index for index, frame in enumerate(frames) if not frame[3]]
    if bad:
        first_bad = bad[0]
        is_final = first_bad == len(frames) - 1 and torn_at is None
        if not is_final:
            offset, _, _, _ = frames[first_bad]
            raise WALCorruptError(
                f"{path}: record {first_bad} at byte {offset} fails its "
                "CRC32 check with valid records after it — the log is "
                "damaged mid-stream; refusing to replay past the hole",
                salvaged_records=max(first_bad - 1, 0),
                good_bytes=offset,
                offset=offset,
            )
        torn_at = frames[first_bad][0]
        frames = frames[:first_bad]

    if not frames:
        raise SnapshotFormatError(
            f"{path}: WAL header record is damaged beyond recovery"
        )

    head_payload = frames[0][2]
    try:
        header = json.loads(head_payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotFormatError(
            f"{path}: WAL header is not valid JSON ({exc})"
        ) from exc
    if header.get("format") != WAL_FORMAT_VERSION:
        raise SnapshotFormatError(
            f"{path}: WAL format version {header.get('format')} is not "
            f"supported (this library reads version {WAL_FORMAT_VERSION})"
        )

    brackets = [payload.decode("utf-8") for _, _, payload, _ in frames[1:]]
    good_bytes = frames[-1][1]
    return {
        "header": header,
        "brackets": brackets,
        "salvage": {
            "records": len(brackets),
            "good_bytes": good_bytes,
            "torn_bytes": len(data) - good_bytes if torn_at is not None else 0,
        },
    }
