"""Exporters: JSONL traces, Prometheus text exposition, span-tree rendering.

Three output formats, all dependency-free:

- :func:`write_jsonl` / :func:`read_jsonl` — one span object per line
  (the ``join --trace FILE`` artifact).  Each line is the
  :meth:`repro.obs.trace.Span.to_dict` shape::

      {"trace_id": "...", "span_id": "...", "parent_id": "..."|null,
       "name": "...", "start": <perf_counter>, "duration": <seconds>,
       "attrs": {...}}

  ``start`` offsets are per-process monotonic readings; spans relayed
  from worker processes carry ``attrs.pid`` and are only
  duration-comparable, not offset-comparable, with coordinator spans.
- :func:`render_prometheus` — the text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``name{labels} value`` samples,
  histograms as ``_bucket``/``_sum``/``_count`` with an ``+Inf``
  bucket).  This is the ``stats --metrics`` payload.
- :func:`format_span_tree` — a human-readable indented tree with
  durations and attributes (the ``trace`` CLI subcommand).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.errors import TraceFormatError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "render_prometheus",
    "format_span_tree",
    "span_roots",
]


def _as_dict(span) -> dict:
    return span.to_dict() if isinstance(span, Span) else dict(span)


def write_jsonl(spans: Iterable[Union[Span, dict]],
                path: Union[str, Path]) -> int:
    """Write spans (``Span`` objects or dicts) as JSON Lines.

    Returns the number of spans written.  Lines are sorted by recorded
    ``start`` within each process id so a streamed reader sees a
    roughly chronological file, but readers must not rely on order —
    parentage is explicit in every line.
    """
    rows = [_as_dict(span) for span in spans]
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
    return len(rows)


def read_jsonl(path: Union[str, Path]) -> list[dict]:
    """Parse a JSONL trace back into span dicts (blank lines skipped)."""
    spans = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{path}:{line_no}: not a JSON span line: {exc}"
                ) from None
            if not isinstance(row, dict) or "span_id" not in row:
                raise TraceFormatError(
                    f"{path}:{line_no}: span object missing 'span_id'"
                )
            spans.append(row)
    return spans


# -- Prometheus text exposition ----------------------------------------------

def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _render_labels(pairs: Sequence[tuple]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value == int(value) \
            and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, inst in sorted(family.series.items()):
            if family.kind == "histogram":
                cumulative = inst.cumulative()
                for bound, count in zip(inst.buckets, cumulative):
                    labels = _render_labels(
                        list(key) + [("le", _format_value(float(bound)))]
                    )
                    lines.append(
                        f"{family.name}_bucket{labels} {count}"
                    )
                inf_labels = _render_labels(list(key) + [("le", "+Inf")])
                lines.append(f"{family.name}_bucket{inf_labels} "
                             f"{cumulative[-1]}")
                lines.append(f"{family.name}_sum{_render_labels(key)} "
                             f"{_format_value(inst.sum)}")
                lines.append(f"{family.name}_count{_render_labels(key)} "
                             f"{inst.count}")
            else:
                lines.append(
                    f"{family.name}{_render_labels(key)} "
                    f"{_format_value(inst.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# -- human-readable span tree ------------------------------------------------

def span_roots(spans: Iterable[Union[Span, dict]]) -> tuple[list, dict]:
    """``(roots, children)`` of the span forest.

    ``children`` maps ``span_id`` to child span dicts; a span whose
    ``parent_id`` is unknown (or ``None``) is a root.  Raises
    ``ValueError`` on a parent cycle.
    """
    rows = [_as_dict(span) for span in spans]
    by_id = {row["span_id"]: row for row in rows}
    children: dict[Optional[str], list] = {}
    roots = []
    for row in rows:
        parent = row.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(row)
        else:
            roots.append(row)
    # Cycle check: walking every edge must visit every span exactly once.
    seen = 0
    stack = list(roots)
    while stack:
        row = stack.pop()
        seen += 1
        if seen > len(rows):
            raise TraceFormatError("span parent ids contain a cycle")
        stack.extend(children.get(row["span_id"], ()))
    if seen != len(rows):
        raise TraceFormatError("span parent ids contain a cycle")
    return roots, children


def _format_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return f"  [{inner}]"


def format_span_tree(spans: Iterable[Union[Span, dict]]) -> str:
    """An indented, duration-annotated rendering of the span forest."""
    roots, children = span_roots(spans)
    if not roots:
        return "(empty trace)"
    lines = []

    def order_key(row):
        start = row.get("start")
        return (0, start) if isinstance(start, (int, float)) else (1, 0)

    def walk(row, depth):
        duration = row.get("duration")
        dur = f"{duration * 1e3:10.3f} ms" if duration is not None else \
            "      open   "
        lines.append(
            f"{dur}  {'  ' * depth}{row['name']}"
            f"{_format_attrs(row.get('attrs') or {})}"
        )
        for child in sorted(children.get(row["span_id"], ()), key=order_key):
            walk(child, depth + 1)

    trace_ids = {row.get("trace_id") for row in roots}
    header = ", ".join(sorted(str(t) for t in trace_ids if t))
    if header:
        lines.append(f"trace {header}")
    for root in sorted(roots, key=order_key):
        walk(root, 0)
    return "\n".join(lines)
