"""Observability: structured tracing, metrics, exporters (PR 8).

The instrumentation spine for every execution tier:

- :mod:`repro.obs.trace` — zero-dependency span tracing on monotonic
  clocks (:class:`Tracer`, :data:`NULL_TRACER`), the shared
  :func:`phase_timer` accumulator, and span-dict relay for worker
  processes.
- :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters / gauges / fixed-bucket histograms that the frozen
  ``JoinStats`` / ``StreamStats`` contracts publish *into* (never
  mutate).
- :mod:`repro.obs.export` — JSONL trace files, Prometheus text
  exposition, and a human-readable span tree.

See the "Observability" section of :mod:`repro.api` for the span and
metric naming contract.
"""

from repro.obs.export import (
    format_span_tree,
    read_jsonl,
    render_prometheus,
    span_roots,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    publish_join_stats,
    publish_stream_stats,
    set_registry,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    new_trace_id,
    phase_timer,
    span_dict,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "new_trace_id",
    "span_dict",
    "phase_timer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "publish_join_stats",
    "publish_stream_stats",
    "write_jsonl",
    "read_jsonl",
    "render_prometheus",
    "format_span_tree",
    "span_roots",
]
