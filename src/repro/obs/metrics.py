"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The engine's statistics objects (:class:`~repro.baselines.common.JoinStats`,
:class:`~repro.stream.engine.StreamStats`) are frozen contracts — their
fields and values stay bit-identical whether or not metrics are on.
This module *publishes from* them instead of changing them: after a run,
:func:`publish_join_stats` / :func:`publish_stream_stats` fold the phase
timers, candidate funnel and failure accounting into a
:class:`MetricsRegistry` that :func:`repro.obs.export.render_prometheus`
turns into text exposition.

Metric names follow the Prometheus conventions (``repro_`` prefix,
``_total`` suffix on counters, ``_seconds`` on time histograms):

- ``repro_join_runs_total{method,tau}`` — joins published
- ``repro_join_candidates_total{method,tau}`` / ``repro_join_results_total``
  / ``repro_join_ted_calls_total`` — the candidate funnel
- ``repro_join_phase_seconds{phase}`` — histogram over candidate /
  verify / probe / index phase walls
- ``repro_join_counter_total{counter}`` — every integer counter from
  ``JoinStats.extra`` (probe_hits, match_tests, retries, ...)
- ``repro_stream_trees_total`` / ``repro_stream_results_total`` /
  ``repro_stream_quarantined_trees_total`` /
  ``repro_stream_quarantined_pairs_total`` — streaming funnel +
  quarantine accounting
- ``repro_stream_wall_seconds{phase=ingest|flush|probe|index|verify}``

A module-level default registry (:func:`get_registry`) serves the CLI
and the streaming service; tests build private registries.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Optional, Sequence

from repro.analysis.registry import STREAM_FORWARDED_COUNTERS
from repro.errors import InvalidParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "publish_join_stats",
    "publish_stream_stats",
    "DEFAULT_BUCKETS",
]

# Latency buckets in seconds: micro-phases up through multi-minute joins.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise InvalidParameterError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed upper-bound buckets (cumulative on render, per-bucket here)."""

    __slots__ = ("buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise InvalidParameterError(
                "histogram needs at least one bucket bound"
            )
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Per-bucket cumulative counts, ending with the +Inf total."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class _Family:
    """One metric name: kind, help text, and label-keyed series."""

    __slots__ = ("name", "kind", "help", "series")

    def __init__(self, name, kind, help_text):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.series: dict[tuple, object] = {}


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Thread-safe registry of metric families.

    ``counter(name, **labels)`` / ``gauge(...)`` / ``histogram(...)``
    return the live instrument for that label set, creating it on first
    use; re-registering a name with a different kind raises.
    """

    def __init__(self):
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _instrument(self, name, kind, help_text, labels, factory):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text)
                self._families[name] = family
            elif family.kind != kind:
                raise InvalidParameterError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"not {kind}"
                )
            elif help_text and not family.help:
                family.help = help_text
            key = _label_key(labels)
            series = family.series.get(key)
            if series is None:
                series = factory()
                family.series[key] = series
            return series

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._instrument(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._instrument(name, "gauge", help, labels, Gauge)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        return self._instrument(
            name, "histogram", help, labels, lambda: Histogram(buckets)
        )

    def families(self) -> list[_Family]:
        """Families in registration order (render order)."""
        with self._lock:
            return list(self._families.values())

    def snapshot(self) -> dict:
        """``{name: {label_tuple: value-or-histogram-summary}}`` for tests."""
        out = {}
        for family in self.families():
            series = {}
            for key, inst in family.series.items():
                if family.kind == "histogram":
                    series[key] = {"sum": inst.sum, "count": inst.count}
                else:
                    series[key] = inst.value
            out[family.name] = series
        return out

    def reset(self) -> None:
        with self._lock:
            self._families.clear()


_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (CLI, streaming service)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default (test hook); returns the old one."""
    global _default_registry
    with _default_lock:
        old, _default_registry = _default_registry, registry
    return old


# -- publishing from the frozen stats contracts ------------------------------

def publish_join_stats(stats, registry: Optional[MetricsRegistry] = None,
                       **extra_labels) -> MetricsRegistry:
    """Fold one ``JoinStats`` into metric families (stats unchanged)."""
    reg = registry if registry is not None else get_registry()
    labels = {"method": stats.method, "tau": stats.tau, **extra_labels}
    reg.counter("repro_join_runs_total",
                "Joins published to this registry", **labels).inc()
    reg.counter("repro_join_trees_total",
                "Trees joined", **labels).inc(stats.tree_count)
    reg.counter("repro_join_candidates_total",
                "Candidate pairs surviving filters", **labels
                ).inc(stats.candidates)
    reg.counter("repro_join_results_total",
                "Result pairs within tau", **labels).inc(stats.results)
    reg.counter("repro_join_ted_calls_total",
                "Tree edit distance computations", **labels
                ).inc(stats.ted_calls)
    reg.counter("repro_join_pairs_considered_total",
                "Pairs considered before filtering", **labels
                ).inc(stats.pairs_considered)
    for phase in ("candidate", "verify", "probe", "index"):
        wall = getattr(stats, f"{phase}_time")
        reg.histogram("repro_join_phase_seconds",
                      "Per-join phase wall clock",
                      phase=phase, **labels).observe(wall)
    for key, value in sorted((stats.extra or {}).items()):
        if isinstance(value, bool) or not isinstance(value, int):
            continue
        reg.counter("repro_join_counter_total",
                    "Integer counters from JoinStats.extra",
                    counter=key, **labels).inc(value)
    return reg


def publish_stream_stats(stats, registry: Optional[MetricsRegistry] = None,
                         **labels) -> MetricsRegistry:
    """Fold one ``StreamStats`` into metric families (stats unchanged)."""
    reg = registry if registry is not None else get_registry()
    reg.counter("repro_stream_snapshots_total",
                "Stream snapshots published", **labels).inc()
    reg.gauge("repro_stream_trees",
              "Trees ingested at publish time", **labels).set(stats.trees)
    reg.gauge("repro_stream_results",
              "Result pairs at publish time", **labels).set(stats.results)
    reg.gauge("repro_stream_pending_verification",
              "Candidate pairs awaiting background verification", **labels
              ).set(stats.pending_verification)
    reg.gauge("repro_stream_candidates",
              "Candidate pairs generated (forward + reverse)", **labels
              ).set(stats.candidates + stats.reverse_candidates)
    reg.gauge("repro_stream_index_entries",
              "Live two-layer index entries", **labels
              ).set(stats.index_entries)
    reg.counter("repro_stream_quarantined_trees_total",
                "Malformed arrivals quarantined", **labels
                ).inc(stats.quarantined_trees)
    quarantined_pairs = (stats.extra or {}).get("quarantined_pairs", 0)
    if isinstance(quarantined_pairs, (list, tuple)):
        quarantined_pairs = len(quarantined_pairs)
    reg.counter("repro_stream_quarantined_pairs_total",
                "Poison candidate pairs quarantined", **labels
                ).inc(int(quarantined_pairs))
    for phase in ("ingest", "verify"):
        reg.histogram("repro_stream_wall_seconds",
                      "Streaming phase wall clock",
                      phase=phase, **labels
                      ).observe(getattr(stats, f"{phase}_time"))
    extra = stats.extra or {}
    for key in STREAM_FORWARDED_COUNTERS:
        value = extra.get(key)
        if isinstance(value, int) and not isinstance(value, bool):
            reg.counter("repro_stream_counter_total",
                        "Verify-pool work and failure accounting",
                        counter=key, **labels).inc(value)
    return reg
