"""Zero-dependency span tracing on monotonic clocks.

A :class:`Tracer` records a tree of :class:`Span`\\ s for one query: each
``with tracer.span("name"):`` block captures a ``time.perf_counter``
interval, its parent (the innermost open span on this tracer), and a
dict of JSON-safe attributes.  Two properties keep the engine's hot
paths honest:

- **Disabled is free.**  :data:`NULL_TRACER` is a singleton whose
  ``span()`` returns one pre-allocated no-op context manager — no
  allocation, no clock read, no branch in the instrumented code beyond
  the call itself.  Every instrumented function defaults to it, so an
  untraced join runs the exact same statements as before PR 8.
- **Coarse-grained by construction.**  Instrumentation sits at phase /
  shard / chunk / flush granularity, never per tree or per candidate;
  the per-tree phase attribution the engine already accumulates
  (``probe_time`` / ``index_time`` / ``band_time``) is turned into
  *synthetic* spans after the fact via :meth:`Tracer.record`.  A traced
  join over N trees emits O(shards + chunks) spans, not O(N).

Worker processes cannot share the coordinator's tracer, so worker-side
code builds plain span *dicts* (:func:`span_dict`) and ships them back
inside the CRC'd result envelopes the resilience layer already uses;
the coordinator re-roots them under its own span tree with
:meth:`Tracer.graft`.  Worker clocks are their own ``perf_counter``
domains — relayed spans keep correct durations and ancestry, while
their absolute ``start`` offsets are only comparable within one
process (exporters carry the ``pid`` attribute so readers can tell).

Phase-timer helper
------------------
:func:`phase_timer` is the single source of truth for the
``start = perf_counter(); ...; obj.attr += perf_counter() - start``
pattern that used to be copy-pasted through ``core/join.py`` and every
baseline: ``with phase_timer(obj, "probe_time"): ...`` accumulates the
elapsed interval into ``obj.probe_time`` (works on objects and on
mutable dataclass instances alike).
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Iterable, Optional

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "new_trace_id",
    "span_dict",
    "phase_timer",
]


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (random, collision-negligible)."""
    return os.urandom(8).hex()


class Span:
    """One finished-or-open interval in a trace.

    ``start`` is a ``time.perf_counter`` reading — monotonic within the
    recording process, meaningless across processes.  ``duration`` is
    ``None`` while the span is open.
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "start", "duration", "attrs", "_tracer",
    )

    def __init__(self, name, trace_id, span_id, parent_id,
                 start=None, duration=None, attrs=None, _tracer=None):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.duration = duration
        self.attrs = attrs if attrs is not None else {}
        self._tracer = _tracer

    def set(self, key: str, value) -> None:
        """Attach a JSON-safe attribute to this span."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        if self._tracer is not None:
            self._tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        if self._tracer is not None:
            tracer = self._tracer
            if tracer._stack and tracer._stack[-1] is self:
                tracer._stack.pop()
            tracer.spans.append(self)
        return False

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = f"{self.duration:.6f}s" if self.duration is not None else "open"
        return f"Span({self.name!r}, {dur}, id={self.span_id})"


def span_dict(name: str, start: float, duration: float,
              span_id: str, parent_id: Optional[str] = None,
              **attrs) -> dict:
    """A plain span mapping for code with no tracer (worker processes).

    The dict shape matches :meth:`Span.to_dict` minus ``trace_id``
    (assigned by :meth:`Tracer.graft` on the coordinator).  ``pid`` is
    stamped automatically so exported traces show which clock domain
    the offsets belong to.
    """
    attrs.setdefault("pid", os.getpid())
    return {
        "trace_id": None,
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "start": start,
        "duration": duration,
        "attrs": attrs,
    }


class Tracer:
    """Records one query's span tree.

    ``spans`` holds finished spans in completion order; ``graft()``
    splices in relayed worker span dicts.  Not thread-safe — one tracer
    belongs to one query on one thread (worker processes relay dicts
    instead of sharing the tracer).
    """

    enabled = True

    def __init__(self, trace_id: Optional[str] = None):
        self.trace_id = trace_id or new_trace_id()
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._ids = itertools.count(1)
        self._pid = os.getpid()

    # -- recording --------------------------------------------------------

    def _next_id(self) -> str:
        return f"{self._pid:x}-{next(self._ids)}"

    @property
    def current_span_id(self) -> Optional[str]:
        return self._stack[-1].span_id if self._stack else None

    def span(self, name: str, **attrs) -> Span:
        """A context manager recording one interval under the open span."""
        return Span(
            name, self.trace_id, self._next_id(), self.current_span_id,
            attrs=dict(attrs) if attrs else {}, _tracer=self,
        )

    def record(self, name: str, duration: float,
               start: Optional[float] = None, **attrs) -> Span:
        """Append an already-measured interval as a synthetic span.

        This is how per-phase attribution the engine accumulates anyway
        (``probe_time`` etc.) becomes spans without touching hot loops.
        """
        span = Span(
            name, self.trace_id, self._next_id(), self.current_span_id,
            start=start, duration=duration,
            attrs=dict(attrs) if attrs else {},
        )
        self.spans.append(span)
        return span

    def graft(self, spans: Iterable[dict],
              parent_id: Optional[str] = None) -> int:
        """Splice relayed worker span dicts into this trace.

        Spans arriving without a parent (roots of the worker-side
        forest) are re-rooted under ``parent_id`` (default: the
        innermost open span); every span adopts this trace's id.
        Returns the number of spans grafted.
        """
        anchor = parent_id if parent_id is not None else self.current_span_id
        count = 0
        for raw in spans:
            span = Span(
                raw["name"], self.trace_id, raw["span_id"],
                raw.get("parent_id") or anchor,
                start=raw.get("start"), duration=raw.get("duration"),
                attrs=dict(raw.get("attrs") or {}),
            )
            self.spans.append(span)
            count += 1
        return count

    # -- inspection -------------------------------------------------------

    def finished(self) -> list[Span]:
        """Finished spans, completion order (parents after children)."""
        return list(self.spans)

    def to_dicts(self) -> list[dict]:
        return [span.to_dict() for span in self.spans]


class _NullSpan:
    """The do-nothing span: one shared instance, no clock, no state."""

    __slots__ = ()

    def set(self, key, value):
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every operation is a no-op returning constants."""

    enabled = False
    trace_id = None
    spans: list = []

    def span(self, name, **attrs):
        return _NULL_SPAN

    def record(self, name, duration, start=None, **attrs):
        return _NULL_SPAN

    def graft(self, spans, parent_id=None):
        return 0

    @property
    def current_span_id(self):
        return None

    def finished(self):
        return []

    def to_dicts(self):
        return []


NULL_TRACER = NullTracer()


class _PhaseTimer:
    """``with phase_timer(obj, attr):`` — accumulate elapsed into an attr."""

    __slots__ = ("_obj", "_attr", "_start")

    def __init__(self, obj, attr):
        self._obj = obj
        self._attr = attr

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        elapsed = time.perf_counter() - self._start
        setattr(self._obj, self._attr, getattr(self._obj, self._attr) + elapsed)
        return False


def phase_timer(obj, attr: str) -> _PhaseTimer:
    """Accumulate a ``perf_counter`` interval into ``obj.<attr>``.

    The one shared implementation of the engine's phase-attribution
    pattern; replaces hand-rolled ``start = perf_counter()`` blocks in
    the PartSJ driver and every baseline.
    """
    return _PhaseTimer(obj, attr)
