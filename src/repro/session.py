"""Prepared-once, query-many sessions: :class:`TreeCollection` and its plans.

The paper's pipeline (partition → two-layer index → verify) pays its
preparation cost once per *collection*; this module makes the public API
pay it once per collection too.  A :class:`TreeCollection` owns every
artifact that outlives a single call:

- the size-sorted order (:class:`~repro.baselines.common.SizeSortedCollection`),
- the collection-wide :class:`~repro.core.intern.LabelInterner` and the
  per-tree :class:`~repro.core.treecache.TreeCache` flat arrays,
- the tau-independent verification caches
  (:class:`~repro.baselines.common.VerifierCaches`: Zhang–Shasha
  annotations, feature bags),
- and, lazily per ``(tau, filter config)``, the partitions and two-layer
  index (:class:`_PreparedTau`) that both the join and the searcher
  consume.

Queries are *lazy builders*: :meth:`TreeCollection.join`,
:meth:`~TreeCollection.join_with` (R×S), :meth:`~TreeCollection.search`
and :meth:`~TreeCollection.stream` each return a :class:`QueryPlan` whose
:meth:`~QueryPlan.explain` describes the execution (method, filter
config, shard plan, index statistics) without running anything, and whose
:meth:`~QueryPlan.run` / :meth:`~QueryPlan.iter` execute it.  Repeated
queries reuse everything that is reusable: a second identical join is
served from the result cache, a join at a new tau re-partitions but
reuses caches and verification state, a search after a join at the same
tau reuses that tau's partitions outright.

Usage::

    col = TreeCollection.from_file("forest.trees")
    plan = col.join(tau=2)            # nothing computed yet
    plan.explain()                     # structured description
    result = plan.run()                # prepares tau=2, joins
    col.search(query, tau=2).run()     # reuses the tau=2 preparation
    col.join(tau=3).run()              # re-partitions only; caches warm

The legacy free functions (:func:`repro.api.similarity_join` and
friends) remain as thin shims over one-shot sessions and return
bit-identical results; sessions are how repeated work should be phrased.

Results are bit-identical to the unprepared engines because preparation
replays exactly what the serial driver would do, in the same order: trees
are partitioned in ascending size-sorted order, gamma hints chain across
trees, and the random strategy's RNG is seeded and consumed identically
(see :class:`repro.core.join.PreparedJoinState`).
"""

from __future__ import annotations

import dataclasses
import random
import time
import warnings
from typing import Iterable, Iterator, Optional, Sequence

from repro.baselines.common import (
    JoinPair,
    JoinResult,
    SizeSortedCollection,
    Verifier,
    VerifierCaches,
)
from repro.baselines.histogram_join import histogram_join
from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.set_join import set_join
from repro.baselines.str_join import str_join
from repro.core.index import InvertedSizeIndex
from repro.core.intern import LabelInterner
from repro.core.join import PartSJConfig, PreparedJoinState, partsj_join
from repro.core.partition import (
    extract_partition,
    extract_random_partition,
    max_min_size_cached,
    min_partitionable_size,
)
from repro.core.treecache import TreeCache
from repro.errors import InvalidParameterError
from repro.obs.metrics import publish_join_stats
from repro.obs.trace import NULL_TRACER
from repro.params import check_micro_batch, check_tau, check_workers
from repro.tree.node import Tree

__all__ = [
    "TreeCollection",
    "QueryPlan",
    "JoinPlan",
    "RSJoinPlan",
    "SearchPlan",
    "StreamPlan",
    "JOIN_METHOD_NAMES",
]

# Baseline implementations the join plan dispatches to; "partsj"/"prt"
# take the prepared-session path instead.  Keys mirror the historical
# ``repro.api.JOIN_METHODS`` registry exactly.
_BASELINE_IMPLS = {
    "str": str_join,
    "set": set_join,
    "histogram": histogram_join,
    "nested_loop": nested_loop_join,
    "rel": nested_loop_join,
}

# Every accepted method name (aliases included), as the public surface
# and error messages enumerate them.
JOIN_METHOD_NAMES = ("histogram", "nested_loop", "partsj", "prt", "rel", "set", "str")

_PARTSJ_NAMES = frozenset(("partsj", "prt"))


def _resolve_method(method: str) -> str:
    key = method.lower() if isinstance(method, str) else method
    if key not in JOIN_METHOD_NAMES:
        raise InvalidParameterError(
            f"unknown join method {method!r}; choose from "
            f"{sorted(JOIN_METHOD_NAMES)}"
        )
    return key


def _resolve_partsj_config(
    config: Optional[PartSJConfig],
    workers: int,
    options: dict,
) -> PartSJConfig:
    """The historical config/kwargs/workers composition rules, shared by
    session plans and the one-shot shims.

    ``config=`` and loose filter kwargs are mutually exclusive; ``workers``
    is an execution knob that composes with either.
    """
    if options and config is not None:
        raise InvalidParameterError(
            "pass either a PartSJConfig via config= or individual options, "
            "not both"
        )
    if config is None and options:
        config = PartSJConfig(**options)
    if workers != 1:
        config = dataclasses.replace(
            config or PartSJConfig(), workers=workers
        )
    return (config or PartSJConfig()).resolved()


def _observability_section(span_names: Sequence[str], metrics: str) -> dict:
    """The ``"observability"`` entry every plan's :meth:`explain` carries.

    ``span_names`` are the span names a traced ``run(trace=Tracer())``
    would emit for this plan's execution shape; ``metrics`` names the
    metric family prefix (and publish hook) the run's statistics feed.
    """
    return {
        "trace": "pass trace=repro.obs.Tracer() to run()",
        "span_names": list(span_names),
        "metrics": metrics,
    }


class _PreparedTau:
    """Per-``(tau, filter config)`` artifacts of one collection.

    Holds the partitions (and their gammas) of every partitionable tree,
    computed exactly as the serial join would; lazily also the fully
    populated two-layer index the searcher probes.  Cached by
    :meth:`TreeCollection.prepare`.
    """

    def __init__(self, collection: "TreeCollection", tau: int, config: PartSJConfig):
        started = time.perf_counter()
        self.collection = collection
        self.tau = tau
        self.config = config
        self.delta = 2 * tau + 1
        self.min_size = min_partitionable_size(tau)
        self.partitions: dict[int, list] = {}
        self.gammas: dict[int, int] = {}
        self.small: list[int] = []  # unpartitionable trees, sorted order
        rng = random.Random(config.seed)
        gamma_hint: Optional[int] = None
        sorted_col = collection.sorted
        trees = collection.trees
        for position in range(len(sorted_col)):
            i = sorted_col.original_index(position)
            if trees[i].size < self.min_size:
                self.small.append(i)
                continue
            cache = collection.cache(i)
            if config.partition_strategy == "random":
                subgraphs = extract_random_partition(
                    cache, i, self.delta, rng, config.postorder_numbering
                )
                gamma = min(sub.size for sub in subgraphs)
            else:
                gamma = max_min_size_cached(cache, self.delta, hint=gamma_hint)
                gamma_hint = gamma
                subgraphs = extract_partition(
                    cache, i, self.delta, gamma, config.postorder_numbering,
                    check=False,
                )
            self.partitions[i] = subgraphs
            self.gammas[i] = gamma
        self._search_index: Optional[InvertedSizeIndex] = None
        self._searcher = None
        self.build_time = time.perf_counter() - started

    @classmethod
    def _restore(
        cls,
        collection: "TreeCollection",
        tau: int,
        config: PartSJConfig,
        partitions: dict[int, list],
        gammas: dict[int, int],
        small: list[int],
        build_time: float,
    ) -> "_PreparedTau":
        """Rebuild from snapshot state, bypassing the partition loop.

        The caller (:mod:`repro.persist.snapshot`) supplies subgraphs
        reconstructed over the collection's own caches and verified
        against their stored twig keys, so the restored artifact is
        indistinguishable from a freshly computed one — same dict
        orders, same gamma values, same rank assignment.
        """
        prep = object.__new__(cls)
        prep.collection = collection
        prep.tau = tau
        prep.config = config
        prep.delta = 2 * tau + 1
        prep.min_size = min_partitionable_size(tau)
        prep.partitions = partitions
        prep.gammas = gammas
        prep.small = small
        prep._search_index = None
        prep._searcher = None
        prep.build_time = build_time
        return prep

    def join_state(self) -> PreparedJoinState:
        """The driver-consumable view (see :class:`PreparedJoinState`)."""
        col = self.collection
        return PreparedJoinState(
            collection=col.sorted,
            interner=col.interner,
            caches=col._caches,
            partitions=self.partitions,
            gammas=self.gammas,
        )

    def search_index(self) -> InvertedSizeIndex:
        """The fully populated two-layer index (built once, reused by
        every search at this tau)."""
        if self._search_index is None:
            col = self.collection
            index = InvertedSizeIndex(self.tau, self.config.postorder_filter)
            sorted_col = col.sorted
            for position in range(len(sorted_col)):
                i = sorted_col.original_index(position)
                subgraphs = self.partitions.get(i)
                if subgraphs is not None:
                    index.insert_all(col.trees[i].size, subgraphs)
            self._search_index = index
        return self._search_index

    def searcher(self):
        """A reusable :class:`repro.search.SimilaritySearcher` over this
        preparation (constructed once)."""
        if self._searcher is None:
            from repro.search import SimilaritySearcher

            self._searcher = SimilaritySearcher(
                self.collection, self.tau, self.config
            )
        return self._searcher

    def describe(self) -> dict:
        """Index statistics for :meth:`QueryPlan.explain`."""
        info = {
            "tau": self.tau,
            "partitioned_trees": len(self.partitions),
            "small_trees": len(self.small),
            "subgraphs": sum(len(s) for s in self.partitions.values()),
            "build_time": round(self.build_time, 6),
            "search_index_built": self._search_index is not None,
        }
        if self._search_index is not None:
            info["index_entries"] = self._search_index.total_entries
        return info


class TreeCollection:
    """A prepared, queryable collection of trees (the session object).

    Construct with :meth:`from_trees` or :meth:`from_file`; then build
    queries with :meth:`join`, :meth:`join_with`, :meth:`search` and
    :meth:`stream`.  All shared state — sorted order, interner, tree
    caches, per-tau partitions and indexes, verification caches, result
    cache — lives here and is reused across queries.

    The collection is immutable: the tree list is snapshotted at
    construction.  For growing collections use the streaming engine
    (:meth:`stream` / :class:`repro.stream.StreamingJoin`).

    >>> col = TreeCollection.from_trees(
    ...     [Tree.from_bracket(s) for s in ("{a{b}{c}}", "{a{b}}", "{x{y}}")]
    ... )
    >>> sorted(p.key() for p in col.join(1).run().pairs)
    [(0, 1)]
    >>> [h.index for h in col.search(Tree.from_bracket("{a{b}}"), 1).run()]
    [1]
    """

    def __init__(self, trees: Iterable[Tree]):
        trees = list(trees)
        for position, tree in enumerate(trees):
            if not isinstance(tree, Tree):
                raise InvalidParameterError(
                    f"trees[{position}] is {type(tree).__name__}, expected Tree"
                )
        self._trees: list[Tree] = trees
        self._sorted: Optional[SizeSortedCollection] = None
        self._interner: Optional[LabelInterner] = None
        self._caches: dict[int, TreeCache] = {}
        self._prepared: dict[tuple, _PreparedTau] = {}
        self._results: dict = {}
        self._verifier_caches = VerifierCaches()
        self._merged: dict[int, tuple] = {}  # id(other) -> (other, merged)
        self._provenance: Optional[dict] = None  # set by snapshot loads

    # -- construction --------------------------------------------------------

    @classmethod
    def from_trees(cls, trees: Iterable[Tree]) -> "TreeCollection":
        """A session over an in-memory collection (the list is copied)."""
        return cls(trees)

    @classmethod
    def from_file(cls, path, sidecar="auto") -> "TreeCollection":
        """A session over a dataset file (one bracket tree per line,
        ``.gz`` supported; see :mod:`repro.datasets.io`).

        ``sidecar`` controls snapshot auto-discovery: ``"auto"`` (the
        default) loads ``<path>.repro-idx`` next to the dataset when it
        exists, restoring every prepared tau saved there; a path loads
        that snapshot explicitly; ``None`` disables the lookup.  A
        snapshot that is corrupt, stale (the dataset changed since it
        was saved) or otherwise unusable is **never** trusted: the
        session warns and rebuilds cold instead, so a broken sidecar can
        cost preparation time but not correctness.
        """
        from repro.datasets.io import load_trees

        trees = load_trees(path)
        snapshot_path = None
        if sidecar == "auto":
            from repro.persist.snapshot import sidecar_path

            candidate = sidecar_path(path)
            if candidate.exists():
                snapshot_path = candidate
        elif sidecar is not None:
            snapshot_path = sidecar
        if snapshot_path is not None:
            from repro.errors import PersistenceError
            from repro.persist.snapshot import load_collection

            try:
                return load_collection(
                    snapshot_path, trees=trees, expected_source=path
                )
            except PersistenceError as exc:
                warnings.warn(
                    f"ignoring snapshot {snapshot_path}: {exc} — "
                    "rebuilding the session cold",
                    stacklevel=2,
                )
        return cls(trees)

    # -- persistence ---------------------------------------------------------

    def save(self, path, include_trees: bool = True, source=None):
        """Snapshot this session — trees and every prepared tau — to ``path``.

        The write is atomic (temp + fsync + rename) and every section is
        checksummed; see :mod:`repro.persist`.  ``include_trees=False``
        writes a *sidecar* (partitions, interner, order only) meant to
        live next to its dataset file — pass ``source=<dataset path>``
        so loads can verify the dataset has not changed since.  Returns
        the written path.
        """
        from repro.persist.snapshot import save_collection

        return save_collection(
            self, path, include_trees=include_trees, source=source
        )

    @classmethod
    def load(cls, path, trees: Optional[Sequence[Tree]] = None) -> "TreeCollection":
        """Rebuild a session from a :meth:`save` snapshot.

        Every section checksum is verified, labels are re-interned in
        their stored order (so packed twig keys are reproduced exactly),
        the size-sorted order is recomputed and compared, and every
        restored subgraph's twig key is recomputed against the stored
        one — a loaded session answers joins and searches bit-identically
        to the session that was saved.  Raises the
        :class:`~repro.errors.PersistenceError` family on any damage;
        use :meth:`from_file` for the warn-and-rebuild behavior.
        """
        from repro.persist.snapshot import load_collection

        return load_collection(path, trees=trees)

    @property
    def provenance(self) -> Optional[dict]:
        """Where this session came from, when loaded from a snapshot
        (path, format/library versions, sections, restored taus) —
        ``None`` for sessions built in-process."""
        return self._provenance

    def drop_caches(self, deep: bool = False) -> None:
        """Release derived state kept for query reuse.

        The default drops the result cache and the merged R×S sessions
        (the unbounded-growth candidates); ``deep=True`` additionally
        drops every prepared tau, tree cache and verification cache,
        returning the session to its just-constructed footprint.  The
        next query rebuilds whatever it needs — results are unaffected.
        """
        self._results.clear()
        self._merged.clear()
        if deep:
            self._prepared.clear()
            self._caches.clear()
            self._verifier_caches = VerifierCaches()

    # -- shared state --------------------------------------------------------

    @property
    def trees(self) -> list[Tree]:
        """The collection, indexed as every result pair references it."""
        return self._trees

    def __len__(self) -> int:
        return len(self._trees)

    def __getitem__(self, index: int) -> Tree:
        return self._trees[index]

    def __iter__(self) -> Iterator[Tree]:
        return iter(self._trees)

    def __repr__(self) -> str:
        prepared = sorted({key[0] for key in self._prepared})
        return (
            f"TreeCollection({len(self._trees)} trees, "
            f"prepared taus {prepared or '[]'})"
        )

    @property
    def sorted(self) -> SizeSortedCollection:
        """The size-sorted view (built once, tau-independent)."""
        if self._sorted is None:
            self._sorted = SizeSortedCollection(self._trees)
        return self._sorted

    @property
    def interner(self) -> LabelInterner:
        """The collection-wide label interner all caches share."""
        if self._interner is None:
            self._interner = LabelInterner()
        return self._interner

    def cache(self, i: int) -> TreeCache:
        """Tree ``i``'s flat-array cache (built on first use, kept)."""
        cache = self._caches.get(i)
        if cache is None:
            cache = TreeCache(self._trees[i], self.interner)
            self._caches[i] = cache
        return cache

    @property
    def verifier_caches(self) -> VerifierCaches:
        """Tau-independent verification caches shared by every query."""
        return self._verifier_caches

    # -- preparation ---------------------------------------------------------

    @staticmethod
    def _prep_key(tau: int, config: PartSJConfig) -> tuple:
        # Every filter field except the execution knob (workers) keys the
        # preparation.  semantics does not influence the partitions or
        # the index contents, but the cached searcher carries its
        # prep.config into query-time matching — sharing a prep across
        # semantics would silently answer a "safe" search with "paper"
        # strictness (or vice versa).
        # backend keys the prep too: the prepared searcher binds its
        # kernel dispatch (probe/verify) at build time, and the session
        # result cache reuses this key's config — "python" and "numpy"
        # runs must never serve each other's cached artifacts.
        return (
            tau,
            config.semantics,
            config.partition_strategy,
            config.seed,
            config.postorder_numbering,
            config.postorder_filter,
            config.backend,
        )

    def prepare(
        self, tau: int, config: Optional[PartSJConfig] = None
    ) -> _PreparedTau:
        """Partition the collection for ``tau`` (cached per filter config).

        Idempotent and lazy: the first call at a ``(tau, config)`` pays
        the partitioning pass; later joins and searches at the same key
        reuse it.  Returns the prepared artifact (mostly useful for its
        :meth:`_PreparedTau.describe` statistics).
        """
        prep, _ = self._prepare_entry(check_tau(tau), self._resolved(config))
        return prep

    def _resolved(self, config: Optional[PartSJConfig]) -> PartSJConfig:
        return (config or PartSJConfig()).resolved()

    def _prepare_entry(
        self, tau: int, config: PartSJConfig
    ) -> tuple[_PreparedTau, bool]:
        """``(prepared, fresh)`` where ``fresh`` is True when this call
        built it (the builder's cost then belongs to the running query)."""
        key = self._prep_key(tau, config)
        prep = self._prepared.get(key)
        if prep is not None:
            return prep, False
        prep = _PreparedTau(self, tau, config)
        self._prepared[key] = prep
        return prep, True

    def is_prepared(
        self, tau: int, config: Optional[PartSJConfig] = None
    ) -> bool:
        """Whether :meth:`prepare` already ran for this ``(tau, config)``."""
        return self._prep_key(tau, self._resolved(config)) in self._prepared

    def prepared_taus(self) -> list[int]:
        """Thresholds with at least one prepared artifact (ascending)."""
        return sorted({key[0] for key in self._prepared})

    def stats(self) -> dict:
        """Session-level statistics (for diagnostics and the CLI)."""
        sizes = self.sorted.sizes if self._trees else []
        stats = {
            "trees": len(self._trees),
            "size_min": sizes[0] if sizes else None,
            "size_max": sizes[-1] if sizes else None,
            "tree_caches": len(self._caches),
            "prepared": [prep.describe() for prep in self._prepared.values()],
            "cached_results": len(self._results),
            "verifier_annotations": len(self._verifier_caches.annotated),
            "merged_sessions": len(self._merged),
        }
        if self._provenance is not None:
            stats["snapshot"] = dict(self._provenance)
        return stats

    # -- query builders ------------------------------------------------------

    def join(
        self,
        tau: int,
        method: str = "partsj",
        workers: int = 1,
        config: Optional[PartSJConfig] = None,
        **options,
    ) -> "JoinPlan":
        """A lazy self-join plan: all pairs with ``TED <= tau``.

        Validation happens now; execution on :meth:`JoinPlan.run`.
        ``method``, ``workers``, ``config`` and method-specific
        ``options`` behave exactly as the historical
        :func:`repro.api.similarity_join` arguments.
        """
        return JoinPlan(self, tau, method, workers, config, options)

    def join_with(
        self,
        other: "TreeCollection | Sequence[Tree]",
        tau: int,
        method: str = "partsj",
        workers: int = 1,
        config: Optional[PartSJConfig] = None,
        **options,
    ) -> "RSJoinPlan":
        """A lazy R×S join plan against ``other`` (non-self join).

        Result pairs have ``pair.i`` indexing this collection and
        ``pair.j`` indexing ``other``.  The merged preparation is cached
        (keyed by the ``other`` object itself, whether a
        :class:`TreeCollection` or a plain sequence), so repeated R×S
        queries against the same ``other`` (at any tau) re-prepare
        nothing.
        """
        return RSJoinPlan(self, other, tau, method, workers, config, options)

    def search(
        self,
        query: Tree,
        tau: int,
        config: Optional[PartSJConfig] = None,
    ) -> "SearchPlan":
        """A lazy similarity-search plan: collection trees within ``tau``
        of ``query``.  Repeated searches at one tau share the prepared
        index and one verifier."""
        return SearchPlan(self, query, tau, config)

    def searcher(self, tau: int, config: Optional[PartSJConfig] = None):
        """A reusable searcher over this collection (prepared once).

        Equivalent to running :meth:`search` plans one by one, minus the
        plan objects; handy in a REPL or a service loop.
        """
        return self.prepare(tau, config).searcher()

    def stream(
        self,
        tau: int,
        config: Optional[PartSJConfig] = None,
        workers: int = 1,
        micro_batch: int = 1,
    ) -> "StreamPlan":
        """A lazy streaming re-play of this collection in arrival order.

        :meth:`StreamPlan.iter` yields verified pairs as they are found —
        exactly the pairs of :meth:`join` at the same tau, discovered
        incrementally; :meth:`StreamPlan.engine` instead hands back the
        live :class:`~repro.stream.StreamingJoin` after pre-loading the
        collection, for callers who want to keep ingesting.
        """
        return StreamPlan(
            self._trees, tau, config, workers, micro_batch, collection=self
        )

    # -- internals -----------------------------------------------------------

    # Merged sessions retained per right side; beyond this many distinct
    # right sides the oldest entry (and its prepared state) is dropped.
    _MERGED_CACHE_LIMIT = 8

    def _cached_merged_with(
        self, other: "TreeCollection | Sequence[Tree]"
    ) -> Optional["TreeCollection"]:
        """The cached merged session for ``other``, or ``None``.

        A hit requires the same right-side *object* with the same tree
        objects in it: a ``TreeCollection`` is immutable by contract, but
        a plain list can be mutated between queries, so its snapshot is
        re-validated by an O(n) identity scan — a stale merged session
        must never silently answer for trees it has not seen.
        """
        entry = self._merged.get(id(other))
        if entry is None or entry[0] is not other:
            return None
        snapshot = entry[1]
        if snapshot is not None and (
            len(snapshot) != len(other)
            or any(a is not b for a, b in zip(snapshot, other))
        ):
            del self._merged[id(other)]
            return None
        # True LRU: a hit moves the entry to the recently-used end, so
        # eviction (oldest-first insertion order) drops the right side
        # least recently queried, not least recently first seen.
        self._merged[id(other)] = self._merged.pop(id(other))
        return entry[2]

    def _merged_with(
        self, other: "TreeCollection | Sequence[Tree]"
    ) -> "TreeCollection":
        """The cached merged session behind R×S joins against ``other``.

        Keyed by the identity of the object the caller passed — a
        :class:`TreeCollection` or a plain sequence — with a strong
        reference held so the id stays valid; the cache is bounded so a
        churn of one-off right sides cannot grow it without limit.
        """
        merged = self._cached_merged_with(other)
        if merged is not None:
            return merged
        if isinstance(other, TreeCollection):
            right_trees, snapshot = other.trees, None
        else:
            right_trees = snapshot = list(other)
        merged = TreeCollection.from_trees(
            list(self._trees) + list(right_trees)
        )
        while len(self._merged) >= self._MERGED_CACHE_LIMIT:
            self._merged.pop(next(iter(self._merged)))
        self._merged[id(other)] = (other, snapshot, merged)
        return merged

    def _cached_result(self, key: Optional[tuple]):
        return self._results.get(key) if key is not None else None

    def _store_result(self, key: Optional[tuple], result) -> None:
        if key is not None:
            self._results[key] = result


class QueryPlan:
    """A validated, not-yet-executed query over a :class:`TreeCollection`.

    Subclasses implement :meth:`run` (execute, return the result),
    :meth:`iter` (element-wise iteration) and :meth:`explain` (a
    structured, side-effect-light description of what :meth:`run` would
    do).  Plans are cheap to build and reusable; running one twice
    returns the session's cached result where the query is cacheable.
    """

    kind = "query"

    def run(self):
        raise NotImplementedError

    def iter(self):
        return iter(self.run())

    def explain(self) -> dict:
        raise NotImplementedError

    def __repr__(self) -> str:
        try:
            detail = self.explain()
        except Exception:  # pragma: no cover - defensive repr
            detail = {}
        summary = ", ".join(
            f"{k}={detail[k]!r}" for k in ("method", "tau", "workers")
            if k in detail and detail[k] is not None
        )
        return f"{type(self).__name__}({summary})"


class JoinPlan(QueryPlan):
    """Self-join plan built by :meth:`TreeCollection.join`."""

    kind = "join"

    def __init__(
        self,
        collection: TreeCollection,
        tau: int,
        method: str,
        workers: int,
        config: Optional[PartSJConfig],
        options: dict,
    ):
        self.collection = collection
        self.tau = check_tau(tau)
        self.method = _resolve_method(method)
        self.workers = check_workers(workers)
        if self.method in _PARTSJ_NAMES:
            self.config = _resolve_partsj_config(config, self.workers, options)
            # The resolved config is authoritative for execution — a
            # PartSJConfig(workers=N) composes exactly like workers=N, so
            # explain() and the shard-plan gate must report it.
            self.workers = self.config.workers
            self.options: dict = {}
        else:
            if config is not None:
                raise InvalidParameterError(
                    f"config= is a PartSJ option; method {self.method!r} "
                    "takes its own keyword options"
                )
            self.config = None
            self.options = dict(options)

    def _cache_key(self) -> Optional[tuple]:
        if self.config is not None:
            return ("join", self.tau, "partsj", self.config)
        try:
            options = tuple(sorted(self.options.items()))
            hash(options)
        except TypeError:
            return None
        return ("join", self.tau, self.method, self.workers, options)

    def run(self, trace=None) -> JoinResult:
        """Execute (or fetch from the session's result cache).

        The returned :class:`~repro.baselines.common.JoinResult` may be
        served to later identical queries — treat it as read-only.

        ``trace`` (a :class:`repro.obs.Tracer`) records the execution as
        a span tree rooted at ``join``; a traced run bypasses the result
        cache *read* (a cache hit would execute nothing and emit no
        spans) but its result — bit-identical with tracing on or off —
        still lands in the cache.  Every executed run also publishes its
        :class:`~repro.baselines.common.JoinStats` into the process-wide
        metrics registry (:func:`repro.obs.publish_join_stats`).
        """
        col = self.collection
        tracer = trace if trace is not None else NULL_TRACER
        key = self._cache_key()
        if not tracer.enabled:
            cached = col._cached_result(key)
            if cached is not None:
                return cached
        method = "partsj" if self.config is not None else self.method
        with tracer.span("join", method=method, tau=self.tau,
                         workers=self.workers, trees=len(col)) as sp:
            if self.config is not None:
                result = self._run_partsj(tracer)
            else:
                impl = _BASELINE_IMPLS[self.method]
                options = dict(self.options)
                if self.workers != 1:
                    options["workers"] = self.workers
                result = impl(col.trees, self.tau, **options)
            sp.set("results", len(result.pairs))
        publish_join_stats(result.stats)
        col._store_result(key, result)
        return result

    def _run_partsj(self, tracer=NULL_TRACER) -> JoinResult:
        col = self.collection
        cfg = self.config
        if cfg.workers > 1:
            # Worker processes rebuild their shard-local caches and
            # partitions (prepared state cannot cross the pool boundary);
            # the executor consumes the prepared sorted order for shard
            # planning, and its serial fallbacks (tiny collections,
            # single-shard plans) run warm off the same state.  Reuse the
            # full per-tau partitions when this session already has them;
            # otherwise hand over a bare state rather than paying a
            # partitioning pass the workers would ignore.
            if col.is_prepared(self.tau, cfg):
                state = col.prepare(self.tau, cfg).join_state()
            else:
                state = PreparedJoinState(
                    collection=col.sorted,
                    interner=col.interner,
                    caches=col._caches,
                )
            return partsj_join(col.trees, self.tau, cfg, prepared=state,
                               tracer=tracer)
        prep, fresh = col._prepare_entry(self.tau, cfg)
        verifier = Verifier(col.trees, self.tau, caches=col.verifier_caches,
                            backend=cfg.backend)
        result = partsj_join(
            col.trees, self.tau, cfg,
            prepared=prep.join_state(), verifier=verifier, tracer=tracer,
        )
        # Keep the paper's two-phase accounting intact: a cold run did
        # the partitioning inside prepare(), so its cost is folded back
        # into the index-build phase; a warm run genuinely skipped it.
        if fresh:
            result.stats.index_time += prep.build_time
            result.stats.candidate_time += prep.build_time
        result.stats.extra["prep_time"] = round(prep.build_time, 6)
        result.stats.extra["prep_reused"] = not fresh
        return result

    def iter(self) -> Iterator[JoinPair]:
        return iter(self.run().pairs)

    def explain(self) -> dict:
        col = self.collection
        plan = {
            "kind": self.kind,
            "method": "partsj" if self.config is not None else self.method,
            "tau": self.tau,
            "workers": self.workers,
            "collection": {
                "trees": len(col),
                "size_min": col.sorted.sizes[0] if len(col) else None,
                "size_max": col.sorted.sizes[-1] if len(col) else None,
            },
            "cached_result": col._cached_result(self._cache_key()) is not None,
        }
        if self.config is not None:
            cfg = self.config
            plan["filter"] = {
                "semantics": getattr(cfg.semantics, "value", cfg.semantics),
                "postorder_filter": getattr(
                    cfg.postorder_filter, "value", cfg.postorder_filter
                ),
                "partition_strategy": cfg.partition_strategy,
                "postorder_numbering": cfg.postorder_numbering,
                "seed": cfg.seed,
                "backend": cfg.backend,
            }
            plan["small_tree_floor"] = min_partitionable_size(self.tau)
            plan["prepared"] = col.is_prepared(self.tau, cfg)
            if plan["prepared"]:
                plan["index"] = col.prepare(self.tau, cfg).describe()
            if self.workers > 1:
                from repro.parallel.sharding import plan_shards
                from repro.resilience import FaultInjector, RetryPolicy

                plan["shards"] = [
                    {
                        "shard": shard.shard_id,
                        "owned_trees": len(shard.owned),
                        "band_trees": len(shard.band),
                        "size_range": [shard.lo, shard.hi],
                        "est_cost": shard.est_cost,
                    }
                    for shard in plan_shards(col.sorted, self.tau, self.workers)
                ]
                # The failure policy this execution would run under: the
                # config's retry knobs (or the defaults) plus whether a
                # fault injector is active (config or REPRO_FAULT_SPEC).
                injector = (
                    cfg.fault_injector if cfg.fault_injector is not None
                    else FaultInjector.from_env()
                )
                plan["resilience"] = {
                    **(cfg.retry or RetryPolicy()).validated().describe(),
                    "fault_injection": injector is not None,
                }
        else:
            plan["options"] = dict(self.options)
        if self.config is not None and self.workers > 1:
            spans = (
                "join", "parallel.plan", "parallel.candidates", "shard:<n>",
                "partsj.band", "partsj.probe", "partsj.index",
                "verify.parallel", "verify.chunk",
            )
        elif self.config is not None:
            spans = (
                "join", "partsj.loop", "partsj.probe", "partsj.index",
                "partsj.verify",
            )
        else:
            spans = ("join",)
        plan["observability"] = _observability_section(
            spans, "repro_join_* (published via repro.obs.publish_join_stats)"
        )
        return plan


class RSJoinPlan(QueryPlan):
    """R×S join plan built by :meth:`TreeCollection.join_with`.

    Implements the paper's "directly applicable" construction: the two
    collections are merged, self-joined, and same-side pairs discarded.
    The merged session is cached on the left collection, so repeated R×S
    queries (any tau, any method) against the same right side prepare
    nothing twice.
    """

    kind = "rs_join"

    def __init__(
        self,
        left: TreeCollection,
        right: "TreeCollection | Sequence[Tree]",
        tau: int,
        method: str,
        workers: int,
        config: Optional[PartSJConfig],
        options: dict,
    ):
        self.left = left
        self.right = right  # kept as passed: it keys the merged cache
        # Validate eagerly with the same rules as a self-join plan.
        self._inner_args = (tau, method, workers, config, options)
        self._template = JoinPlan(left, tau, method, workers, config, options)

    @property
    def tau(self) -> int:
        return self._template.tau

    @property
    def workers(self) -> int:
        return self._template.workers

    def _inner_plan(self) -> JoinPlan:
        tau, method, workers, config, options = self._inner_args
        merged = self.left._merged_with(self.right)
        return JoinPlan(merged, tau, method, workers, config, dict(options))

    def run(self, trace=None) -> JoinResult:
        """All cross pairs ``(i, j)`` with ``TED(left[i], right[j]) <= tau``.

        ``trace`` is forwarded to the merged self-join's
        :meth:`JoinPlan.run` — the R×S post-filter adds no spans of its
        own.
        """
        inner = self._inner_plan().run(trace=trace)
        offset = len(self.left)
        cross: list[JoinPair] = []
        discarded = 0
        for pair in inner.pairs:
            # Merged-index pairs are canonical (i < j); a cross pair has
            # its low index in `left` and its high index in `right`.
            if pair.i < offset <= pair.j:
                cross.append(JoinPair(pair.i, pair.j - offset, pair.distance))
            else:
                discarded += 1
        # The inner result may be cached on the merged session — derive
        # the RS stats on a copy instead of mutating it.
        stats = dataclasses.replace(inner.stats)
        stats.extra = dict(inner.stats.extra)
        stats.method = f"{inner.stats.method}-RS"
        stats.results = len(cross)
        stats.extra["cross_pairs"] = len(cross)
        stats.extra["same_side_pairs_discarded"] = discarded
        cross.sort(key=lambda p: (p.i, p.j))
        return JoinResult(pairs=cross, stats=stats)

    def iter(self) -> Iterator[JoinPair]:
        return iter(self.run().pairs)

    def explain(self) -> dict:
        # explain() must not build the merged session (plans run nothing
        # until .run()): describe through it only when a previous run
        # already materialized it; otherwise report the not-yet-merged
        # shape from the validated template.
        merged = self.left._cached_merged_with(self.right)
        if merged is not None:
            tau, method, workers, config, options = self._inner_args
            plan = JoinPlan(
                merged, tau, method, workers, config, dict(options)
            ).explain()
        else:
            template = self._template
            plan = {
                "kind": self.kind,
                "method": (
                    "partsj" if template.config is not None else template.method
                ),
                "tau": template.tau,
                "workers": template.workers,
                "collection": {
                    "trees": len(self.left) + len(self.right),
                    "size_min": None,  # merged session not built yet
                    "size_max": None,
                },
                "prepared": False,
                "cached_result": False,
            }
            if template.config is not None:
                cfg = template.config
                plan["filter"] = {
                    "semantics": getattr(cfg.semantics, "value", cfg.semantics),
                    "postorder_filter": getattr(
                        cfg.postorder_filter, "value", cfg.postorder_filter
                    ),
                    "partition_strategy": cfg.partition_strategy,
                    "postorder_numbering": cfg.postorder_numbering,
                    "seed": cfg.seed,
                    "backend": cfg.backend,
                }
                plan["small_tree_floor"] = min_partitionable_size(template.tau)
            else:
                plan["options"] = dict(template.options)
        plan["kind"] = self.kind
        plan["left_trees"] = len(self.left)
        plan["right_trees"] = len(self.right)
        plan.setdefault("observability", _observability_section(
            ("join",),
            "repro_join_* (published via repro.obs.publish_join_stats)",
        ))
        return plan


class SearchPlan(QueryPlan):
    """Similarity-search plan built by :meth:`TreeCollection.search`."""

    kind = "search"

    def __init__(
        self,
        collection: TreeCollection,
        query: Tree,
        tau: int,
        config: Optional[PartSJConfig],
    ):
        if not isinstance(query, Tree):
            raise InvalidParameterError(
                f"query must be a Tree, got {type(query).__name__}"
            )
        self.collection = collection
        self.query = query
        self.tau = check_tau(tau)
        self.config = collection._resolved(config)

    def run(self, trace=None) -> list:
        """All collection trees with ``TED(query, tree) <= tau``, as
        :class:`repro.search.SearchHit` objects.  ``trace`` (a
        :class:`repro.obs.Tracer`) records the query as one ``search``
        span."""
        tracer = trace if trace is not None else NULL_TRACER
        with tracer.span("search", tau=self.tau,
                         query_size=self.query.size) as sp:
            hits = self.collection.prepare(
                self.tau, self.config
            ).searcher().search(self.query)
            sp.set("hits", len(hits))
        return hits

    def explain(self) -> dict:
        col = self.collection
        prepared = col.is_prepared(self.tau, self.config)
        plan = {
            "kind": self.kind,
            "method": "partsj-index",
            "tau": self.tau,
            "workers": 1,
            "query_size": self.query.size,
            "collection": {
                "trees": len(col),
                "size_min": col.sorted.sizes[0] if len(col) else None,
                "size_max": col.sorted.sizes[-1] if len(col) else None,
            },
            "prepared": prepared,
            "small_tree_floor": min_partitionable_size(self.tau),
        }
        if prepared:
            plan["index"] = col.prepare(self.tau, self.config).describe()
        plan["observability"] = _observability_section(
            ("search",), "none (session stats only)"
        )
        return plan


class StreamPlan(QueryPlan):
    """Streaming plan: re-play a source through the incremental engine.

    Built by :meth:`TreeCollection.stream` (source = the collection's
    trees in arrival order) or by the :func:`repro.api.stream_join` shim
    (source = any iterable, consumed lazily).  Preparation cannot be
    reused here by design — the streaming engine builds its own state
    incrementally — which :meth:`explain` reports honestly.
    """

    kind = "stream"

    def __init__(
        self,
        source: Iterable[Tree],
        tau: int,
        config: Optional[PartSJConfig] = None,
        workers: int = 1,
        micro_batch: int = 1,
        collection: Optional[TreeCollection] = None,
    ):
        self.source = source
        self.tau = check_tau(tau)
        self.config = config
        self.workers = check_workers(workers)
        self.micro_batch = check_micro_batch(micro_batch)
        self.collection = collection

    def iter(self, trace=None) -> Iterator[JoinPair]:
        """Yield verified pairs as they are found (lazy in the source).

        ``trace`` (a :class:`repro.obs.Tracer`) is handed to the
        streaming engine — it records ``stream.flush`` spans plus the
        background pool's relayed per-chunk spans."""
        return self._generate(trace)

    def _generate(self, trace=None) -> Iterator[JoinPair]:
        from repro.stream.engine import StreamingJoin

        with StreamingJoin(
            self.tau, config=self.config, workers=self.workers, tracer=trace
        ) as join:
            batch: list[Tree] = []
            for tree in self.source:
                batch.append(tree)
                if len(batch) >= self.micro_batch:
                    yield from join.add_many(batch)
                    batch.clear()
            if batch:
                yield from join.add_many(batch)
            yield from join.flush()

    def run(self, trace=None) -> list[JoinPair]:
        """Drain the stream; the pairs equal a batch join of the source."""
        return list(self.iter(trace=trace))

    def engine(self, trace=None):
        """A live :class:`~repro.stream.StreamingJoin` pre-loaded with the
        source — the warm-handoff path for callers who keep ingesting.
        Pairs found during pre-load are in ``engine.pairs``; the caller
        owns the engine's lifecycle (``close()`` / context manager).
        """
        from repro.stream.engine import StreamingJoin

        join = StreamingJoin(
            self.tau, config=self.config, workers=self.workers, tracer=trace
        )
        join.add_many(self.source)
        return join

    def explain(self) -> dict:
        return {
            "kind": self.kind,
            "method": "partsj-stream",
            "tau": self.tau,
            "workers": self.workers,
            "micro_batch": self.micro_batch,
            "source": (
                {"trees": len(self.collection)}
                if self.collection is not None
                else {"trees": None}  # lazy iterable; length unknown
            ),
            "prepared": False,  # the engine builds its own state incrementally
            "observability": _observability_section(
                ("stream.flush", "verify.stream_chunk", "wal.append",
                 "wal.sync"),
                "repro_stream_* (published via "
                "repro.obs.publish_stream_stats)",
            ),
        }
