"""Non-self (R x S) similarity joins.

The paper focuses on self-joins but notes (Section 1) that the solution
"is directly applicable for non-self joins".  This module provides that
form: given two collections ``left`` and ``right`` and a threshold
``tau``, report all cross pairs ``(i, j)`` with
``TED(left[i], right[j]) <= tau``.

Implementation: the two collections are concatenated and processed by the
chosen self-join method — every filter of the self-join (size window,
subgraph containment, string/branch bounds) applies unchanged to the
merged collection — and same-side pairs are discarded from the output.
This is exactly the paper's "directly applicable" construction.  Note the
filters still evaluate same-side pairs, so a candidate count from the
underlying self-join over-approximates the cross-join's; the returned
:class:`~repro.baselines.common.JoinStats` records both
(``extra["cross_pairs"]`` vs ``extra["same_side_pairs_discarded"]``).
"""

from __future__ import annotations

from typing import Sequence

from repro.api import similarity_join
from repro.baselines.common import JoinPair, JoinResult
from repro.tree.node import Tree

__all__ = ["similarity_join_rs", "RSJoinPair"]

# A cross pair: index into `left`, index into `right`, exact distance.
RSJoinPair = JoinPair


def similarity_join_rs(
    left: Sequence[Tree],
    right: Sequence[Tree],
    tau: int,
    method: str = "partsj",
    **options,
) -> JoinResult:
    """All pairs ``(i, j)`` with ``TED(left[i], right[j]) <= tau``.

    Parameters
    ----------
    left, right:
        The two collections.  Result pairs have ``pair.i`` indexing
        ``left`` and ``pair.j`` indexing ``right``.
    method, options:
        Forwarded to :func:`repro.api.similarity_join`.

    >>> left = [Tree.from_bracket("{a{b}{c}}")]
    >>> right = [Tree.from_bracket("{a{b}}"), Tree.from_bracket("{z}")]
    >>> [(p.i, p.j, p.distance) for p in similarity_join_rs(left, right, 1).pairs]
    [(0, 0, 1)]
    """
    merged = list(left) + list(right)
    offset = len(left)
    inner = similarity_join(merged, tau, method=method, **options)

    cross: list[JoinPair] = []
    discarded = 0
    for pair in inner.pairs:
        # Merged-index pairs are canonical (i < j); a cross pair has its
        # low index in `left` and its high index in `right`.
        if pair.i < offset <= pair.j:
            cross.append(JoinPair(pair.i, pair.j - offset, pair.distance))
        else:
            discarded += 1

    stats = inner.stats
    stats.method = f"{stats.method}-RS"
    stats.results = len(cross)
    stats.extra["cross_pairs"] = len(cross)
    stats.extra["same_side_pairs_discarded"] = discarded
    cross.sort(key=lambda p: (p.i, p.j))
    return JoinResult(pairs=cross, stats=stats)
