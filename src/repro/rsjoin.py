"""Non-self (R x S) similarity joins.

The paper focuses on self-joins but notes (Section 1) that the solution
"is directly applicable for non-self joins".  This module keeps the
historical one-shot entry point for that form as a thin shim over
:meth:`repro.session.TreeCollection.join_with`: the two collections are
merged, processed by the chosen self-join method — every filter of the
self-join (size window, subgraph containment, string/branch bounds)
applies unchanged to the merged collection — and same-side pairs are
discarded from the output.  Note the filters still evaluate same-side
pairs, so a candidate count from the underlying self-join
over-approximates the cross-join's; the returned
:class:`~repro.baselines.common.JoinStats` records both
(``extra["cross_pairs"]`` vs ``extra["same_side_pairs_discarded"]``).

For repeated R×S queries, prepare both sides once and reuse them::

    left_col = TreeCollection.from_trees(left)
    plan = left_col.join_with(right, tau)     # merged prep cached
    plan.run(); left_col.join_with(right, 3).run()  # no re-prepare
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.common import JoinPair, JoinResult
from repro.session import TreeCollection
from repro.tree.node import Tree

__all__ = ["similarity_join_rs", "RSJoinPair"]

# A cross pair: index into `left`, index into `right`, exact distance.
RSJoinPair = JoinPair


def similarity_join_rs(
    left: Sequence[Tree],
    right: Sequence[Tree],
    tau: int,
    method: str = "partsj",
    workers: int = 1,
    **options,
) -> JoinResult:
    """All pairs ``(i, j)`` with ``TED(left[i], right[j]) <= tau`` (shim).

    Parameters
    ----------
    left, right:
        The two collections.  Result pairs have ``pair.i`` indexing
        ``left`` and ``pair.j`` indexing ``right``.
    method:
        Any registered self-join method (default ``"partsj"``).
    workers:
        Worker process count (an integer >= 1; composes with ``config=``
        exactly as in :func:`repro.api.similarity_join`).
    options:
        Method-specific options, e.g. ``config=PartSJConfig.paper()``.

    >>> left = [Tree.from_bracket("{a{b}{c}}")]
    >>> right = [Tree.from_bracket("{a{b}}"), Tree.from_bracket("{z}")]
    >>> [(p.i, p.j, p.distance) for p in similarity_join_rs(left, right, 1).pairs]
    [(0, 0, 1)]
    """
    from repro.api import _warn_shim

    _warn_shim("similarity_join_rs")
    return (
        TreeCollection.from_trees(left)
        .join_with(right, tau, method=method, workers=workers, **options)
        .run()
    )
