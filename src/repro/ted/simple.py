"""Reference tree edit distance by memoized forest recursion.

This is the textbook recursive definition of TED over forests (delete the
rightmost root, insert the rightmost root, or match the two rightmost
roots), memoized on forest identity.  It is exponentially slower than
Zhang–Shasha on adversarial shapes but its one-to-one correspondence with
the mathematical definition makes it the *oracle* the optimized algorithms
are property-tested against on small trees.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.tree.node import Tree, TreeNode

__all__ = ["ted_reference"]

RenameCost = Callable[[str, str], int]


def _unit_rename(a: str, b: str) -> int:
    return 0 if a == b else 1


def ted_reference(
    t1: Tree,
    t2: Tree,
    rename_cost: Optional[RenameCost] = None,
) -> int:
    """Exact TED by memoized recursion; intended for trees of ~15 nodes.

    Parameters
    ----------
    t1, t2:
        The trees to compare.
    rename_cost:
        Optional rename cost function ``(label_a, label_b) -> int``;
        defaults to unit cost (0 if equal, else 1).  Insert and delete cost
        1 per node.
    """
    rename = rename_cost or _unit_rename
    sizes: dict[int, int] = {}

    def size_of(node: TreeNode) -> int:
        cached = sizes.get(id(node))
        if cached is None:
            cached = node.subtree_size()
            # Identity-keyed memo, never iterated — order cannot leak out.
            sizes[id(node)] = cached  # repro: allow[determinism]
        return cached

    def forest_size(forest: tuple[TreeNode, ...]) -> int:
        return sum(size_of(node) for node in forest)

    memo: dict[tuple[tuple[int, ...], tuple[int, ...]], int] = {}

    def dist(f1: tuple[TreeNode, ...], f2: tuple[TreeNode, ...]) -> int:
        if not f1:
            return forest_size(f2)
        if not f2:
            return forest_size(f1)
        key = (tuple(id(n) for n in f1), tuple(id(n) for n in f2))
        cached = memo.get(key)
        if cached is not None:
            return cached
        v = f1[-1]
        w = f2[-1]
        # Delete v: its children take its place as rightmost roots.
        best = dist(f1[:-1] + tuple(v.children), f2) + 1
        # Insert w symmetrically.
        alt = dist(f1, f2[:-1] + tuple(w.children)) + 1
        if alt < best:
            best = alt
        # Match v with w: solve the two decoupled subproblems.
        alt = (
            dist(tuple(v.children), tuple(w.children))
            + dist(f1[:-1], f2[:-1])
            + rename(v.label, w.label)
        )
        if alt < best:
            best = alt
        memo[key] = best
        return best

    return dist((t1.root,), (t2.root,))
