"""Tree edit distance algorithms, string edit distance, and TED bounds."""

from repro.ted.api import TED_ALGORITHMS, ted, ted_within
from repro.ted.bounds import (
    binary_branch_lower_bound,
    branch_bound_from_bags,
    composite_lower_bound,
    composite_lower_bound_from_bags,
    degree_bound_from_bags,
    degree_histogram_lower_bound,
    label_bound_from_bags,
    label_multiset_lower_bound,
    multiset_l1,
    size_lower_bound,
    traversal_string_lower_bound,
    trivial_upper_bound,
)
from repro.ted.cutoff import zhang_shasha_bounded
from repro.ted.rted import (
    MIRROR_SIZE_CUTOFF,
    decomposition_costs,
    mirror_tree,
    oriented_pair,
    ted_hybrid,
)
from repro.ted.simple import ted_reference
from repro.ted.string_edit import string_edit_distance, string_edit_within
from repro.ted.zhang_shasha import AnnotatedTree, zhang_shasha

__all__ = [
    "ted",
    "ted_within",
    "TED_ALGORITHMS",
    "zhang_shasha",
    "zhang_shasha_bounded",
    "AnnotatedTree",
    "ted_hybrid",
    "ted_reference",
    "mirror_tree",
    "oriented_pair",
    "MIRROR_SIZE_CUTOFF",
    "decomposition_costs",
    "string_edit_distance",
    "string_edit_within",
    "multiset_l1",
    "size_lower_bound",
    "label_multiset_lower_bound",
    "degree_histogram_lower_bound",
    "traversal_string_lower_bound",
    "binary_branch_lower_bound",
    "composite_lower_bound",
    "composite_lower_bound_from_bags",
    "label_bound_from_bags",
    "degree_bound_from_bags",
    "branch_bound_from_bags",
    "trivial_upper_bound",
]
