"""Tree edit distance algorithms, string edit distance, and TED bounds."""

from repro.ted.api import TED_ALGORITHMS, ted, ted_within
from repro.ted.bounds import (
    binary_branch_lower_bound,
    composite_lower_bound,
    degree_histogram_lower_bound,
    label_multiset_lower_bound,
    size_lower_bound,
    traversal_string_lower_bound,
    trivial_upper_bound,
)
from repro.ted.rted import decomposition_costs, mirror_tree, ted_hybrid
from repro.ted.simple import ted_reference
from repro.ted.string_edit import string_edit_distance, string_edit_within
from repro.ted.zhang_shasha import AnnotatedTree, zhang_shasha

__all__ = [
    "ted",
    "ted_within",
    "TED_ALGORITHMS",
    "zhang_shasha",
    "AnnotatedTree",
    "ted_hybrid",
    "ted_reference",
    "mirror_tree",
    "decomposition_costs",
    "string_edit_distance",
    "string_edit_within",
    "size_lower_bound",
    "label_multiset_lower_bound",
    "degree_histogram_lower_bound",
    "traversal_string_lower_bound",
    "binary_branch_lower_bound",
    "composite_lower_bound",
    "trivial_upper_bound",
]
