"""String edit distance, plain and banded (threshold-aware).

The STR baseline ([13] in the paper) lower-bounds the tree edit distance by
the string edit distance between preorder/postorder label sequences.  A
similarity join only needs to know whether that distance exceeds ``tau``,
so :func:`string_edit_within` evaluates a diagonal band of width
``2*tau + 1`` in ``O(tau * n)`` time and abandons early — the optimization
that makes STR's candidate generation competitive.

Sequences are sequences of hashable symbols (labels), not just characters.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["string_edit_distance", "string_edit_within"]


def string_edit_distance(a: Sequence[str], b: Sequence[str]) -> int:
    """Classic Levenshtein distance with unit costs, ``O(len(a)*len(b))``.

    >>> string_edit_distance("kitten", "sitting")
    3
    """
    if len(a) < len(b):  # iterate over the longer one, keep the row short
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, sym_a in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, sym_b in enumerate(b, start=1):
            current[j] = min(
                previous[j] + 1,  # delete sym_a
                current[j - 1] + 1,  # insert sym_b
                previous[j - 1] + (sym_a != sym_b),  # match / substitute
            )
        previous = current
    return previous[-1]


def string_edit_within(
    a: Sequence[str],
    b: Sequence[str],
    tau: int,
) -> Optional[int]:
    """Return the edit distance if it is ``<= tau``, else ``None``.

    Uses Ukkonen's banded dynamic program: cells farther than ``tau`` from
    the main diagonal can never contribute to a distance ``<= tau``, so only
    a band of ``2*tau + 1`` diagonals is filled.  If every cell of a row
    exceeds ``tau`` the computation stops early.

    >>> string_edit_within("kitten", "sitting", 3)
    3
    >>> string_edit_within("kitten", "sitting", 2) is None
    True
    """
    if tau < 0:
        return None
    la, lb = len(a), len(b)
    if abs(la - lb) > tau:
        return None
    if la == 0:
        return lb if lb <= tau else None
    if lb == 0:
        return la if la <= tau else None

    # big = sentinel larger than any distance we would accept.
    big = tau + 1
    # previous[j] holds row i-1; only j in [i-tau, i+tau] is meaningful.
    previous = [j if j <= tau else big for j in range(lb + 1)]
    for i in range(1, la + 1):
        lo = max(1, i - tau)
        hi = min(lb, i + tau)
        current = [big] * (lb + 1)
        if i - tau <= 0:
            current[lo - 1] = i  # column 0 inside the band
        row_min = current[lo - 1]
        for j in range(lo, hi + 1):
            best = previous[j - 1] + (a[i - 1] != b[j - 1])
            if previous[j] + 1 < best:
                best = previous[j] + 1
            if current[j - 1] + 1 < best:
                best = current[j - 1] + 1
            current[j] = best
            if best < row_min:
                row_min = best
        if row_min > tau:
            return None
        previous = current
    return previous[lb] if previous[lb] <= tau else None
