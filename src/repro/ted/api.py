"""Public entry points for tree edit distance computation.

``ted`` dispatches to one of the registered algorithms; ``ted_within`` is
the threshold-aware form every join uses for verification: it applies cheap
lower bounds first and only then runs the exact algorithm.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import InvalidParameterError
from repro.tree.node import Tree
from repro.ted.rted import ted_hybrid
from repro.ted.simple import ted_reference
from repro.ted.zhang_shasha import zhang_shasha

__all__ = ["ted", "ted_within", "TED_ALGORITHMS"]

RenameCost = Callable[[str, str], int]

TED_ALGORITHMS: dict[str, Callable[..., int]] = {
    "zhang_shasha": zhang_shasha,
    "rted": ted_hybrid,  # shape-adaptive hybrid; see repro.ted.rted
    "reference": ted_reference,
}


def ted(
    t1: Tree,
    t2: Tree,
    algorithm: str = "rted",
    rename_cost: Optional[RenameCost] = None,
) -> int:
    """Exact tree edit distance between two rooted ordered labeled trees.

    Parameters
    ----------
    t1, t2:
        The trees to compare.
    algorithm:
        One of ``"rted"`` (default; shape-adaptive, the paper's choice),
        ``"zhang_shasha"``, or ``"reference"`` (small trees only).
    rename_cost:
        Optional rename cost ``(label_a, label_b) -> int``; insert and
        delete always cost 1 (the paper's unit model).

    >>> ted(Tree.from_bracket("{a{b}{c}}"), Tree.from_bracket("{a{c}}"))
    1
    """
    try:
        impl = TED_ALGORITHMS[algorithm]
    except KeyError:
        raise InvalidParameterError(
            f"unknown TED algorithm {algorithm!r}; "
            f"choose from {sorted(TED_ALGORITHMS)}"
        ) from None
    return impl(t1, t2, rename_cost)


def ted_within(
    t1: Tree,
    t2: Tree,
    tau: int,
    algorithm: str = "rted",
    use_bounds: bool = True,
) -> Optional[int]:
    """Return ``TED(t1, t2)`` if it is ``<= tau``, else ``None``.

    With ``use_bounds`` (default) the O(n) composite lower bound screens the
    pair before the exact computation; the result is identical either way
    because the bounds are proven lower bounds.  For the Zhang–Shasha-based
    algorithms (``"rted"``, ``"zhang_shasha"``) the exact computation is the
    tau-banded DP of :mod:`repro.ted.cutoff`, which fills only the cells a
    ``<= tau`` distance can reach and stops as soon as the threshold is
    provably exceeded.

    >>> a, b = Tree.from_bracket("{a{b}}"), Tree.from_bracket("{a{b}{c}{d}}")
    >>> ted_within(a, b, 1) is None
    True
    >>> ted_within(a, b, 2)
    2
    """
    if tau < 0:
        raise InvalidParameterError(f"tau must be >= 0, got {tau}")
    if use_bounds:
        from repro.ted.bounds import composite_lower_bound

        if composite_lower_bound(t1, t2) > tau:
            return None
    if algorithm in ("zhang_shasha", "rted"):
        from repro.ted.cutoff import zhang_shasha_bounded
        from repro.ted.rted import MIRROR_SIZE_CUTOFF, oriented_pair

        if algorithm == "rted":
            # Orientation-adaptive, as ted_hybrid, but small pairs skip
            # the mirroring (the banded DP is cheap either way).
            a1, a2 = oriented_pair(t1, t2, size_cutoff=MIRROR_SIZE_CUTOFF)
        else:
            a1, a2 = t1, t2
        return zhang_shasha_bounded(a1, a2, tau)
    distance = ted(t1, t2, algorithm=algorithm)
    return distance if distance <= tau else None
