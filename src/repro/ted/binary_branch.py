"""Binary branches (Yang et al. [27]), the structure behind the SET baseline.

A *binary branch* of a tree is a one-level twig of its binary (LC-RS)
representation: a node together with its two binary children, where a
missing child is a dummy node with the empty label ``""`` (the paper's
epsilon).  A tree of ``n`` nodes has exactly ``n`` binary branches.  The
binary branch distance

``BIB(T1, T2) = |X1| + |X2| - 2 |X1 ∩ X2|``

(with bag semantics for the intersection) satisfies
``BIB(T1, T2) <= 5 * TED(T1, T2)``, giving the SET filter.

Note on the paper's Figure 3: the figure illustrates branches on trees that
are *already* binary and reads them off directly (yielding ``BIB = 6`` for
its example).  Yang et al.'s definition -- for which the ``5 * TED`` bound
is proven -- first applies the LC-RS transform to the input tree, which is
what this module does (the same example yields ``BIB = 4``; both values
respect the bound, ``TED = 3``).
"""

from __future__ import annotations

from collections import Counter

from repro.tree.lcrs import to_lcrs
from repro.tree.node import Tree

__all__ = [
    "EPSILON",
    "BranchBag",
    "binary_branches",
    "binary_branch_distance",
    "branch_bag_distance",
]

EPSILON = ""  # label of the dummy node for a missing binary child

BranchBag = Counter  # bag of (label, left_label, right_label) twigs


def binary_branches(tree: Tree) -> BranchBag:
    """The bag of binary branches of ``tree`` (paper Figure 3).

    Each element is the preordered label triple
    ``(label, left_child_label, right_child_label)`` over the LC-RS
    representation, with ``EPSILON`` for missing children.

    >>> bag = binary_branches(Tree.from_bracket("{a{b}{c}}"))
    >>> sorted(bag.elements())[0]
    ('a', 'b', '')
    """
    binary = to_lcrs(tree)
    bag: BranchBag = Counter()
    for node in binary.iter_postorder():
        left = node.left.label if node.left is not None else EPSILON
        right = node.right.label if node.right is not None else EPSILON
        bag[(node.label, left, right)] += 1
    return bag


def branch_bag_distance(bag1: BranchBag, bag2: BranchBag) -> int:
    """``|X1| + |X2| - 2 |X1 ∩ X2|`` with bag intersection.

    This form (rather than symmetric difference of sets) is what the paper
    defines; it equals the L1 distance between the bags' count vectors.
    """
    size1 = sum(bag1.values())
    size2 = sum(bag2.values())
    common = sum((bag1 & bag2).values())
    return size1 + size2 - 2 * common


def binary_branch_distance(t1: Tree, t2: Tree) -> int:
    """``BIB(T1, T2)`` computed from scratch.

    >>> t1 = Tree.from_bracket("{a{b}{a{c}}}")  # the trees of Figure 3
    >>> t2 = Tree.from_bracket("{a{b{a}{c}}}")
    >>> binary_branch_distance(t1, t2)  # <= 5 * TED = 15
    4
    """
    return branch_bag_distance(binary_branches(t1), binary_branches(t2))
