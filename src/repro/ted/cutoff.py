"""Threshold-aware (tau-banded) Zhang–Shasha with early exit.

The joins never need an *unbounded* tree edit distance: verification only
asks "is ``TED(T1, T2) <= tau``, and if so what is it?".
:func:`zhang_shasha_bounded` answers exactly that question while doing a
small fraction of the full DP's work:

- **Band.** In every keyroot forest DP, cell ``fd[x][y]`` is the distance
  between a postorder *prefix* of ``x`` nodes and one of ``y`` nodes.  Unit
  insertions/deletions change a forest's size by one, so
  ``fd[x][y] >= |x - y|`` and any cell with ``|x - y| > tau`` is provably
  ``> tau``; only the ``2*tau + 1`` diagonals around the main one are
  filled (``O(min(m, n) * tau)`` cells per keyroot pair instead of
  ``O(m * n)``).
- **Saturation.** Values that exceed ``tau`` are capped at the sentinel
  ``tau + 1``.  Capping is sound because the DP is monotone: a capped input
  can only flow into cells whose true value is also ``> tau``.
- **Early exit.** A tree mapping is postorder-monotone, so an edit script
  of cost ``c`` between two forests splits at every prefix ``x`` into a
  prefix-vs-prefix script plus a remainder, each of cost ``<= c``.  Hence
  if *every* cell of a row exceeds ``tau``, every later cell of that
  keyroot DP — including all tree-distance cells it would record — is
  ``> tau``, and the keyroot pair is abandoned on the spot.  Unwritten
  ``treedist`` entries default to the sentinel, which keeps later keyroot
  DPs sound.
- **Buffer reuse.** One forest-distance buffer sized for the largest
  keyroot pair is allocated per call and reused across all keyroot pairs
  (the classic formulation reallocates it ``|keyroots1| * |keyroots2|``
  times).  Stale out-of-band cells are never read: band-edge cells are
  re-initialised each row and the jump read ``fd[l(i)-li][l(j)-lj]`` is
  guarded by the same ``|x - y| <= tau`` test that defines the band.

The result is exact whenever the true distance is ``<= tau`` (property
tested against :func:`repro.ted.zhang_shasha.zhang_shasha` in
``tests/ted/test_cutoff.py``); otherwise ``None`` is returned.  The band
argument assumes unit insert/delete costs (the paper's model); a custom
``rename_cost`` with non-negative values is supported.

>>> from repro.tree.node import Tree
>>> a, b = Tree.from_bracket("{a{b}{c}}"), Tree.from_bracket("{a{b}}")
>>> zhang_shasha_bounded(a, b, 1)
1
>>> zhang_shasha_bounded(a, Tree.from_bracket("{x{y}{z}{w}}"), 2) is None
True
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.tree.node import Tree
from repro.ted.zhang_shasha import AnnotatedTree

__all__ = ["zhang_shasha_bounded"]

RenameCost = Callable[[str, str], int]


def _unit_rename(a: str, b: str) -> int:
    return 0 if a == b else 1


def zhang_shasha_bounded(
    t1: Tree | AnnotatedTree,
    t2: Tree | AnnotatedTree,
    tau: int,
    rename_cost: Optional[RenameCost] = None,
) -> Optional[int]:
    """Exact TED if it is ``<= tau``, else ``None`` (the ``> tau`` sentinel).

    Accepts plain trees or pre-computed :class:`AnnotatedTree` wrappers like
    :func:`repro.ted.zhang_shasha.zhang_shasha`; the verifier passes cached
    annotations so each tree is annotated once per join.

    >>> zhang_shasha_bounded(Tree.from_bracket("{a}"), Tree.from_bracket("{a}"), 0)
    0
    """
    if tau < 0:
        return None
    a1 = t1 if isinstance(t1, AnnotatedTree) else AnnotatedTree(t1)
    a2 = t2 if isinstance(t2, AnnotatedTree) else AnnotatedTree(t2)
    n1, n2 = a1.size, a2.size
    if abs(n1 - n2) > tau:
        return None
    rename = rename_cost or _unit_rename

    big = tau + 1  # sentinel: stands for every value > tau
    l1, l2 = a1.lmld, a2.lmld
    lab1, lab2 = a1.labels, a2.labels
    # Tree-distance cells the banded DP never writes are provably > tau
    # (their subtree sizes differ by more than tau, or their keyroot DP was
    # abandoned with the whole remaining row range > tau).
    treedist = [[big] * (n2 + 1) for _ in range(n1 + 1)]
    # The forest-distance buffer, allocated once at the size of the largest
    # keyroot pair (the root pair) and reused for every pair.  Both full
    # matrices cost Theta(n1*n2) sentinel fill per call; the fill runs at
    # C speed (list repetition) and stays negligible against the
    # Python-level DP loop for this repo's tree sizes, whereas band-offset
    # buffers would put extra index arithmetic in every cell visit.
    fd = [[big] * (n2 + 1) for _ in range(n1 + 1)]

    for i in a1.keyroots:
        li = l1[i]
        m = i - li + 2  # forest rows: prefixes of nodes li..i, plus empty
        for j in a2.keyroots:
            lj = l2[j]
            n = j - lj + 2
            # Row 0 (empty left forest): insertions only, banded + guard.
            fd0 = fd[0]
            fd0[0] = 0
            hi0 = tau if tau < n - 1 else n - 1
            for y in range(1, hi0 + 1):
                fd0[y] = y
            if hi0 + 1 <= n - 1:
                fd0[hi0 + 1] = big  # guard for row 1's `above` reads
            for x in range(1, m):
                lo = x - tau if x - tau > 1 else 1
                hi = x + tau if x + tau < n - 1 else n - 1
                if lo > hi:
                    # The whole row lies outside the band: every remaining
                    # cell of this keyroot pair is > tau.
                    break
                row = fd[x]
                above = fd[x - 1]
                node1 = li + x - 1
                l1x = l1[node1]
                label1 = lab1[node1]
                tdrow = treedist[node1]
                whole1 = l1x == li
                jump_row = l1x - li
                fdjump = fd[jump_row]
                if lo == 1:
                    # Column 0 (empty right forest) is a real cell while
                    # x <= tau, the left band guard afterwards.
                    row[0] = x if x <= tau else big
                else:
                    row[lo - 1] = big
                row_min = row[lo - 1]
                for y in range(lo, hi + 1):
                    node2 = lj + y - 1
                    l2y = l2[node2]
                    best = above[y] + 1  # delete node1
                    alt = row[y - 1] + 1  # insert node2
                    if alt < best:
                        best = alt
                    if whole1 and l2y == lj:
                        # Both prefixes are whole subtrees: rename case,
                        # and the cell is a tree distance to record.
                        alt = above[y - 1] + rename(label1, lab2[node2])
                        if alt < best:
                            best = alt
                        if best > tau:
                            best = big
                        row[y] = best
                        tdrow[node2] = best
                    else:
                        jump_col = l2y - lj
                        delta = jump_row - jump_col
                        if -tau <= delta <= tau:
                            # In-band jump cell: written this keyroot pair.
                            alt = fdjump[jump_col] + tdrow[node2]
                            if alt < best:
                                best = alt
                        # else: the jump cell is > tau (forest sizes differ
                        # by more than tau), so its branch cannot win.
                        if best > tau:
                            best = big
                        row[y] = best
                    if best < row_min:
                        row_min = best
                if hi + 1 <= n - 1:
                    row[hi + 1] = big  # guard for the next row's reads
                if row_min > tau:
                    # Early exit: no cell of this row can recover, so no
                    # later cell of this keyroot pair can either.
                    break
    result = treedist[n1][n2]
    return result if result <= tau else None
