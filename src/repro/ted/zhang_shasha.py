"""Zhang–Shasha tree edit distance ([29] in the paper).

The classic keyroot dynamic program: ``O(n1*n2*min(d1,l1)*min(d2,l2))`` time
(``O(n^4)`` worst case, ``O(n^2 log^2 n)`` for balanced trees) and
``O(n1*n2)`` space.  This is the workhorse TED used to verify candidate
pairs in every join method of this repository; the shape-adaptive wrapper in
:mod:`repro.ted.rted` builds on it.

Implementation notes
---------------------
Nodes are numbered 1..n in *general-tree postorder*.  ``l(i)`` is the
postorder number of the leftmost leaf of the subtree rooted at node ``i``.
The LR-keyroots are the nodes with the largest postorder number among all
nodes sharing their ``l`` value (the root plus every node with a left
sibling).  For each keyroot pair a forest-distance table is filled; tree
distances for all node pairs accumulate in ``treedist`` and the answer is
``treedist[n1][n2]``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.tree.node import Tree, TreeNode

__all__ = ["zhang_shasha", "AnnotatedTree"]

RenameCost = Callable[[str, str], int]


def _unit_rename(a: str, b: str) -> int:
    return 0 if a == b else 1


class AnnotatedTree:
    """Postorder arrays Zhang–Shasha needs, computed once per tree.

    Attributes
    ----------
    labels:
        ``labels[i]`` is the label of postorder node ``i`` (1-based;
        index 0 unused).
    lmld:
        ``lmld[i]`` is the postorder number of the leftmost leaf descendant
        of node ``i``.
    keyroots:
        Ascending postorder numbers of the LR-keyroots.
    """

    __slots__ = ("size", "labels", "lmld", "keyroots", "_keyroot_weight")

    def __init__(self, tree: Tree):
        order: list[TreeNode] = list(tree.iter_postorder())
        n = len(order)
        index_of = {node: i for i, node in enumerate(order, start=1)}
        labels: list[str] = [""] * (n + 1)
        lmld: list[int] = [0] * (n + 1)
        for i, node in enumerate(order, start=1):
            labels[i] = node.label
            if node.children:
                lmld[i] = lmld[index_of[node.children[0]]]
            else:
                lmld[i] = i
        # A node is a keyroot iff no later node shares its leftmost leaf,
        # i.e. it is the highest node on its leftmost-path.
        latest: dict[int, int] = {}
        for i in range(1, n + 1):
            latest[lmld[i]] = i
        keyroots = sorted(latest.values())
        self.size = n
        self.labels = labels
        self.lmld = lmld
        self.keyroots = keyroots
        self._keyroot_weight: Optional[int] = None

    def keyroot_weight(self) -> int:
        """Sum of keyroot subtree sizes: |subtree(k)| = k - lmld[k] + 1.

        The number of forest-distance cells Zhang–Shasha fills for a tree
        pair factorizes as ``weight(T1) * weight(T2)``; the hybrid in
        :mod:`repro.ted.rted` uses this to pick a decomposition orientation.
        Computed once and memoized — the verifier consults it for all four
        annotations of every candidate pair.
        """
        if self._keyroot_weight is None:
            self._keyroot_weight = sum(k - self.lmld[k] + 1 for k in self.keyroots)
        return self._keyroot_weight


def zhang_shasha(
    t1: Tree | AnnotatedTree,
    t2: Tree | AnnotatedTree,
    rename_cost: Optional[RenameCost] = None,
) -> int:
    """Exact tree edit distance between two rooted ordered labeled trees.

    Accepts plain trees or pre-computed :class:`AnnotatedTree` wrappers
    (joins annotate each tree once and reuse it across many verifications).

    >>> zhang_shasha(Tree.from_bracket("{a{b}{c}}"), Tree.from_bracket("{a{b}}"))
    1
    """
    a1 = t1 if isinstance(t1, AnnotatedTree) else AnnotatedTree(t1)
    a2 = t2 if isinstance(t2, AnnotatedTree) else AnnotatedTree(t2)
    rename = rename_cost or _unit_rename

    n1, n2 = a1.size, a2.size
    l1, l2 = a1.lmld, a2.lmld
    lab1, lab2 = a1.labels, a2.labels
    treedist = [[0] * (n2 + 1) for _ in range(n1 + 1)]

    for i in tuple(a1.keyroots):
        li = l1[i]
        m = i - li + 2  # forest rows: prefixes of nodes li..i, plus empty
        for j in tuple(a2.keyroots):
            lj = l2[j]
            n = j - lj + 2
            # fd[x][y]: distance between forest l1[i]..(li+x-1) and
            # forest l2[j]..(lj+y-1); x=0/y=0 are the empty forests.
            fd = [[0] * n for _ in range(m)]
            for x in range(1, m):
                fd[x][0] = fd[x - 1][0] + 1  # delete
            fd0 = fd[0]
            for y in range(1, n):
                fd0[y] = fd0[y - 1] + 1  # insert
            for x in range(1, m):
                row = fd[x]
                above = fd[x - 1]
                node1 = li + x - 1
                l1x = l1[node1]
                label1 = lab1[node1]
                tdrow = treedist[node1]
                for y in range(1, n):
                    node2 = lj + y - 1
                    if l1x == li and l2[node2] == lj:
                        # Both prefixes are whole subtrees: record treedist.
                        best = above[y] + 1
                        alt = row[y - 1] + 1
                        if alt < best:
                            best = alt
                        alt = above[y - 1] + rename(label1, lab2[node2])
                        if alt < best:
                            best = alt
                        row[y] = best
                        tdrow[node2] = best
                    else:
                        best = above[y] + 1
                        alt = row[y - 1] + 1
                        if alt < best:
                            best = alt
                        alt = (
                            fd[l1x - li][l2[node2] - lj]
                            + tdrow[node2]
                        )
                        if alt < best:
                            best = alt
                        row[y] = best
    return treedist[n1][n2]
