"""Lower (and trivial upper) bounds on the tree edit distance.

These are the filters the baseline joins are built from.  Every bound ``b``
satisfies ``b(T1, T2) <= TED(T1, T2)`` (property-tested against the exact
distance in ``tests/ted/test_bounds.py``):

- :func:`size_lower_bound` — each edit changes the size by at most 1.
- :func:`label_multiset_lower_bound` — a rename moves one label (2 units of
  L1 distance between label multisets), insert/delete add/remove one label
  (1 unit); so ``TED >= ceil(L1 / 2)`` (Kailing et al. [16]).
- :func:`degree_histogram_lower_bound` — an insert/delete moves at most one
  existing node across degree buckets (2 units) and adds/removes one entry
  (1 unit), so ``TED >= ceil(L1_degrees / 3)`` (in the spirit of [16]).
- :func:`traversal_string_lower_bound` — the string edit distance between
  preorder (and postorder) label sequences lower-bounds TED (Guha et
  al. [13]); the bound is the max of the two.
- :func:`binary_branch_lower_bound` — ``BIB(T1,T2) <= 5 * TED(T1,T2)``
  (Yang et al. [27]), so ``TED >= ceil(BIB / 5)``.

:func:`composite_lower_bound` takes the max of the cheap bounds, which the
exact-join verifier uses to skip TED computations.
"""

from __future__ import annotations

from collections import Counter

from repro.ted.binary_branch import binary_branch_distance
from repro.tree.node import Tree
from repro.ted.string_edit import string_edit_distance

__all__ = [
    "size_lower_bound",
    "label_multiset_lower_bound",
    "degree_histogram_lower_bound",
    "traversal_string_lower_bound",
    "binary_branch_lower_bound",
    "composite_lower_bound",
    "trivial_upper_bound",
]


def size_lower_bound(t1: Tree, t2: Tree) -> int:
    """``|size(T1) - size(T2)|``: the size filter of every join method."""
    return abs(t1.size - t2.size)


def _multiset_l1(c1: Counter, c2: Counter) -> int:
    keys = set(c1) | set(c2)
    return sum(abs(c1.get(k, 0) - c2.get(k, 0)) for k in keys)


def label_multiset_lower_bound(t1: Tree, t2: Tree) -> int:
    """``ceil(L1(label bags) / 2) <= TED``.

    Proof sketch: a rename changes the bag by one removal plus one addition
    (L1 moves by at most 2); insert/delete by one addition/removal (at most
    1).  Hence ``L1 <= 2 * TED``.
    """
    l1 = _multiset_l1(Counter(t1.labels()), Counter(t2.labels()))
    return (l1 + 1) // 2


def degree_histogram_lower_bound(t1: Tree, t2: Tree) -> int:
    """``ceil(L1(degree histograms) / 3) <= TED``.

    Proof sketch: a rename does not touch degrees.  Inserting ``Nx`` between
    ``Np`` and ``k`` of its children moves ``Np`` across buckets (L1 <= 2)
    and adds one entry for ``Nx`` (L1 <= 1); deletion is symmetric.  Hence
    ``L1 <= 3 * TED``.
    """
    h1 = Counter(node.degree for node in t1.iter_preorder())
    h2 = Counter(node.degree for node in t2.iter_preorder())
    return (_multiset_l1(h1, h2) + 2) // 3


def traversal_string_lower_bound(t1: Tree, t2: Tree) -> int:
    """``max(SED(pre), SED(post)) <= TED`` (Guha et al. [13]).

    This is the full (unbanded) bound; joins use the banded variant in
    :mod:`repro.ted.string_edit` instead.
    """
    pre = string_edit_distance(t1.preorder_labels(), t2.preorder_labels())
    post = string_edit_distance(t1.postorder_labels(), t2.postorder_labels())
    return max(pre, post)


def binary_branch_lower_bound(t1: Tree, t2: Tree) -> int:
    """``ceil(BIB(T1,T2) / 5) <= TED`` (Yang et al. [27])."""
    bib = binary_branch_distance(t1, t2)
    return (bib + 4) // 5


def composite_lower_bound(t1: Tree, t2: Tree) -> int:
    """Max of the O(n)-computable bounds (size, labels, degrees, branches)."""
    return max(
        size_lower_bound(t1, t2),
        label_multiset_lower_bound(t1, t2),
        degree_histogram_lower_bound(t1, t2),
        binary_branch_lower_bound(t1, t2),
    )


def trivial_upper_bound(t1: Tree, t2: Tree) -> int:
    """An always-valid upper bound on TED.

    Delete every non-root node of ``T1`` (``size-1`` ops), rename the root
    if needed, insert every non-root node of ``T2``.
    """
    rename = 0 if t1.root.label == t2.root.label else 1
    return (t1.size - 1) + rename + (t2.size - 1)
