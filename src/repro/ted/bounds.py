"""Lower (and trivial upper) bounds on the tree edit distance.

These are the filters the baseline joins are built from.  Every bound ``b``
satisfies ``b(T1, T2) <= TED(T1, T2)`` (property-tested against the exact
distance in ``tests/ted/test_bounds.py``):

- :func:`size_lower_bound` — each edit changes the size by at most 1.
- :func:`label_multiset_lower_bound` — a rename moves one label (2 units of
  L1 distance between label multisets), insert/delete add/remove one label
  (1 unit); so ``TED >= ceil(L1 / 2)`` (Kailing et al. [16]).
- :func:`degree_histogram_lower_bound` — an insert/delete moves at most one
  existing node across degree buckets (2 units) and adds/removes one entry
  (1 unit), so ``TED >= ceil(L1_degrees / 3)`` (in the spirit of [16]).
- :func:`traversal_string_lower_bound` — the string edit distance between
  preorder (and postorder) label sequences lower-bounds TED (Guha et
  al. [13]); the bound is the max of the two.
- :func:`binary_branch_lower_bound` — ``BIB(T1,T2) <= 5 * TED(T1,T2)``
  (Yang et al. [27]), so ``TED >= ceil(BIB / 5)``.

:func:`composite_lower_bound` takes the max of the cheap bounds, which the
exact-join verifier uses to skip TED computations.  The verifier caches the
per-tree bags each bound is an L1 distance over (see
``repro.baselines.common.TreeFeatures``) and evaluates the bounds via the
``*_bound_from_bags`` forms in O(distinct keys) per pair, instead of
re-traversing both trees.
"""

from __future__ import annotations

from collections import Counter

from repro.ted.binary_branch import binary_branches
from repro.tree.node import Tree
from repro.ted.string_edit import string_edit_distance

__all__ = [
    "multiset_l1",
    "size_lower_bound",
    "label_multiset_lower_bound",
    "label_bound_from_bags",
    "degree_histogram_lower_bound",
    "degree_bound_from_bags",
    "traversal_string_lower_bound",
    "binary_branch_lower_bound",
    "branch_bound_from_bags",
    "composite_lower_bound",
    "composite_lower_bound_from_bags",
    "trivial_upper_bound",
    "trivial_upper_bound_from_parts",
]


def size_lower_bound(t1: Tree, t2: Tree) -> int:
    """``|size(T1) - size(T2)|``: the size filter of every join method."""
    return abs(t1.size - t2.size)


def multiset_l1(c1: Counter, c2: Counter) -> int:
    """L1 distance between two bags, ``O(distinct keys)``."""
    keys = set(c1) | set(c2)
    return sum(abs(c1.get(k, 0) - c2.get(k, 0)) for k in keys)


_multiset_l1 = multiset_l1  # backwards-compatible alias


def label_multiset_lower_bound(t1: Tree, t2: Tree) -> int:
    """``ceil(L1(label bags) / 2) <= TED``.

    Proof sketch: a rename changes the bag by one removal plus one addition
    (L1 moves by at most 2); insert/delete by one addition/removal (at most
    1).  Hence ``L1 <= 2 * TED``.
    """
    return label_bound_from_bags(Counter(t1.labels()), Counter(t2.labels()))


def label_bound_from_bags(bag1: Counter, bag2: Counter) -> int:
    """:func:`label_multiset_lower_bound` over precomputed label bags."""
    return (multiset_l1(bag1, bag2) + 1) // 2


def degree_histogram_lower_bound(t1: Tree, t2: Tree) -> int:
    """``ceil(L1(degree histograms) / 3) <= TED``.

    Proof sketch: a rename does not touch degrees.  Inserting ``Nx`` between
    ``Np`` and ``k`` of its children moves ``Np`` across buckets (L1 <= 2)
    and adds one entry for ``Nx`` (L1 <= 1); deletion is symmetric.  Hence
    ``L1 <= 3 * TED``.
    """
    h1 = Counter(node.degree for node in t1.iter_preorder())
    h2 = Counter(node.degree for node in t2.iter_preorder())
    return degree_bound_from_bags(h1, h2)


def degree_bound_from_bags(bag1: Counter, bag2: Counter) -> int:
    """:func:`degree_histogram_lower_bound` over precomputed histograms."""
    return (multiset_l1(bag1, bag2) + 2) // 3


def branch_bound_from_bags(bag1: Counter, bag2: Counter) -> int:
    """:func:`binary_branch_lower_bound` over precomputed branch bags."""
    return (multiset_l1(bag1, bag2) + 4) // 5


def traversal_string_lower_bound(t1: Tree, t2: Tree) -> int:
    """``max(SED(pre), SED(post)) <= TED`` (Guha et al. [13]).

    This is the full (unbanded) bound; joins use the banded variant in
    :mod:`repro.ted.string_edit` instead.
    """
    pre = string_edit_distance(t1.preorder_labels(), t2.preorder_labels())
    post = string_edit_distance(t1.postorder_labels(), t2.postorder_labels())
    return max(pre, post)


def binary_branch_lower_bound(t1: Tree, t2: Tree) -> int:
    """``ceil(BIB(T1,T2) / 5) <= TED`` (Yang et al. [27])."""
    return branch_bound_from_bags(binary_branches(t1), binary_branches(t2))


def composite_lower_bound(t1: Tree, t2: Tree) -> int:
    """Max of the O(n)-computable bounds (size, labels, degrees, branches)."""
    return composite_lower_bound_from_bags(
        t1.size,
        t2.size,
        Counter(t1.labels()),
        Counter(t2.labels()),
        Counter(node.degree for node in t1.iter_preorder()),
        Counter(node.degree for node in t2.iter_preorder()),
        binary_branches(t1),
        binary_branches(t2),
    )


def composite_lower_bound_from_bags(
    size1: int,
    size2: int,
    labels1: Counter,
    labels2: Counter,
    degrees1: Counter,
    degrees2: Counter,
    branches1: Counter,
    branches2: Counter,
) -> int:
    """:func:`composite_lower_bound` over precomputed per-tree bags.

    Every input is computable once per tree (the verifier caches them), so
    a pair costs three multiset L1 distances — ``O(distinct keys)`` — with
    no tree traversal.  Threshold filters that want to stop at the first
    bound exceeding ``tau`` (and to exclude bounds a join's candidate
    screen already applied) chain the ``*_bound_from_bags`` functions
    directly, as ``Verifier.verify`` does.
    """
    return max(
        abs(size1 - size2),
        label_bound_from_bags(labels1, labels2),
        degree_bound_from_bags(degrees1, degrees2),
        branch_bound_from_bags(branches1, branches2),
    )


def trivial_upper_bound(t1: Tree, t2: Tree) -> int:
    """An always-valid upper bound on TED.

    Delete every non-root node of ``T1`` (``size-1`` ops), rename the root
    if needed, insert every non-root node of ``T2``.
    """
    return trivial_upper_bound_from_parts(
        t1.size, t2.size, t1.root.label == t2.root.label
    )


def trivial_upper_bound_from_parts(
    size1: int, size2: int, roots_equal: bool
) -> int:
    """:func:`trivial_upper_bound` from cached sizes and root labels.

    The single definition of the bound; the verifier's O(1) acceptance
    short-circuit calls this so it can never diverge from the tree form.
    """
    return (size1 - 1) + (0 if roots_equal else 1) + (size2 - 1)
