"""Shape-adaptive TED in the spirit of RTED ([20] in the paper).

RTED's contribution is to *choose a decomposition strategy from the tree
shapes* before running the distance computation, so that no single
adversarial shape (left combs, right combs) forces the worst case.  The
full RTED strategy computation (a dynamic program over per-subtree path
choices) is out of scope for this reproduction; we implement the same idea
one level up, which is the part that matters for join verification cost:

- Zhang–Shasha decomposes along *leftmost* paths; its cost is exactly
  ``weight(T1) * weight(T2)`` forest-distance cells, where ``weight`` sums
  keyroot subtree sizes.
- Mirroring both trees (reversing every child list) preserves the tree edit
  distance — the optimal edit script mirrors along — but turns leftmost
  paths into rightmost paths.

``ted_hybrid`` therefore evaluates the keyroot weight of both orientations
and runs Zhang–Shasha on the cheaper one.  On a left-comb pair this is the
difference between ``O(n^2)`` and ``O(n^4)`` cells, mirroring (pun intended)
RTED's robustness result.  DESIGN.md records this as an explicit
substitution for RTED.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.tree.node import Tree, TreeNode
from repro.ted.zhang_shasha import AnnotatedTree, zhang_shasha

__all__ = [
    "MIRROR_SIZE_CUTOFF",
    "ted_hybrid",
    "mirror_tree",
    "decomposition_costs",
    "choose_orientation",
    "oriented_pair",
]

RenameCost = Callable[[str, str], int]

# Below this size the orientation choice cannot matter enough to pay for
# mirroring both trees (mirror + annotation are O(n) each, and a tiny DP is
# cheap under either orientation).  Threshold-aware callers (the verifier,
# ted_within) pass it to oriented_pair; ted_hybrid keeps the pure choice.
MIRROR_SIZE_CUTOFF = 16


def mirror_tree(tree: Tree) -> Tree:
    """Return a copy of ``tree`` with every child list reversed.

    Mirroring is an involution and a TED isometry:
    ``TED(mirror(a), mirror(b)) == TED(a, b)`` because reversing children
    order maps edit scripts one-to-one.
    """
    def mirror(node: TreeNode) -> TreeNode:
        return TreeNode(node.label, [mirror(child) for child in reversed(node.children)])

    # Recursion depth equals tree depth; convert to iterative for deep trees.
    try:
        return Tree(mirror(tree.root))
    except RecursionError:  # pragma: no cover - only for pathological depth
        return _mirror_iterative(tree)


def _mirror_iterative(tree: Tree) -> Tree:
    twins: dict[int, TreeNode] = {}
    for node in tree.root.iter_postorder():
        # Identity lookup within one traversal, never iterated.
        twins[id(node)] = TreeNode(  # repro: allow[determinism]
            node.label, [twins[id(child)] for child in reversed(node.children)]
        )
    return Tree(twins[id(tree.root)])


def decomposition_costs(t1: Tree, t2: Tree) -> tuple[int, int]:
    """Estimated Zhang–Shasha cell counts for (left, right) decompositions.

    Returns the pair ``(left_cost, right_cost)`` where each cost is
    ``weight(T1) * weight(T2)`` under the corresponding orientation.
    """
    left = AnnotatedTree(t1).keyroot_weight() * AnnotatedTree(t2).keyroot_weight()
    right = (
        AnnotatedTree(mirror_tree(t1)).keyroot_weight()
        * AnnotatedTree(mirror_tree(t2)).keyroot_weight()
    )
    return left, right


def choose_orientation(
    a1: AnnotatedTree,
    a2: AnnotatedTree,
    mirrored: "Callable[[], tuple[AnnotatedTree, AnnotatedTree]]",
    size_cutoff: int = 0,
) -> tuple[AnnotatedTree, AnnotatedTree]:
    """The single definition of the orientation heuristic.

    Compares the keyroot-weight products of both orientations and returns
    the cheaper annotated pair; ``mirrored`` supplies the mirrored
    annotations only when actually needed (the verifier passes its cached
    getters).  With ``size_cutoff`` set, pairs of trees that are both
    smaller keep the leftmost orientation without ever mirroring.
    """
    if size_cutoff and a1.size < size_cutoff and a2.size < size_cutoff:
        return a1, a2
    left_cost = a1.keyroot_weight() * a2.keyroot_weight()
    b1, b2 = mirrored()
    if b1.keyroot_weight() * b2.keyroot_weight() < left_cost:
        return b1, b2
    return a1, a2


def oriented_pair(
    t1: Tree,
    t2: Tree,
    size_cutoff: int = 0,
) -> tuple[AnnotatedTree, AnnotatedTree]:
    """Annotations of ``(t1, t2)`` in the cheaper decomposition orientation."""
    return choose_orientation(
        AnnotatedTree(t1),
        AnnotatedTree(t2),
        lambda: (AnnotatedTree(mirror_tree(t1)), AnnotatedTree(mirror_tree(t2))),
        size_cutoff,
    )


def ted_hybrid(
    t1: Tree,
    t2: Tree,
    rename_cost: Optional[RenameCost] = None,
) -> int:
    """Exact TED, running Zhang–Shasha on the cheaper orientation.

    >>> a = Tree.from_bracket("{a{b{c{d}}}}")
    >>> ted_hybrid(a, Tree.from_bracket("{a{b{c}}}"))
    1
    """
    x1, x2 = oriented_pair(t1, t2)
    return zhang_shasha(x1, x2, rename_cost)
