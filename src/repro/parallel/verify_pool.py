"""Parallel verification: chunked candidate pairs through worker Verifiers.

Verification is embarrassingly parallel — each candidate pair's outcome
depends only on its two trees and ``tau`` — so *every* join method (PartSJ
and all four baselines) can hand its candidate list to
:func:`parallel_verify` and get back exactly the pairs and exact distances
a serial :class:`~repro.baselines.common.Verifier` would produce.  The
method-specific filter configuration (which bag bounds the candidate
screen already applied, whether the traversal bound is redundant) travels
as the ``options`` dict, which is passed verbatim to each worker's
``Verifier``.

Pairs are sorted into canonical order and cut into
``workers * CHUNKS_PER_WORKER`` chunks; results and counters merge
deterministically because per-pair outcomes are independent of batching.
The returned ``verify_time`` is the **sum of worker CPU seconds** (the
comparable quantity to a serial run's ``verify_time``);
``verify_wall_time`` in the stats dict is the elapsed stage time.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.baselines.common import JoinPair, Verifier
from repro.errors import InvalidParameterError
from repro.parallel import worker as _worker
from repro.tree.node import Tree

__all__ = ["CHUNKS_PER_WORKER", "chunk_pairs", "parallel_verify"]

# Chunks per worker: >1 so a chunk of expensive pairs (big trees, tight
# DPs) doesn't serialize the stage behind one process, small enough that
# per-chunk dispatch overhead stays negligible.
CHUNKS_PER_WORKER = 4

_ZERO_STATS = {
    "ted_calls": 0,
    "verify_time": 0.0,
    "lb_filtered": 0,
    "ub_accepted": 0,
    "ted_early_exits": 0,
    "verify_chunks": 0,
    "verify_wall_time": 0.0,
}


def chunk_pairs(
    pairs: Sequence[tuple[int, int]],
    workers: int,
    chunks_per_worker: int = CHUNKS_PER_WORKER,
) -> list[tuple[tuple[int, int], ...]]:
    """Cut ``pairs`` into at most ``workers * chunks_per_worker`` batches.

    Contiguous slicing of the (caller-ordered) pair list; every pair lands
    in exactly one chunk and empty chunks are never produced.
    """
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    if not pairs:
        return []
    chunk_count = min(len(pairs), max(1, workers * chunks_per_worker))
    size, leftover = divmod(len(pairs), chunk_count)
    chunks: list[tuple[tuple[int, int], ...]] = []
    cursor = 0
    for k in range(chunk_count):
        step = size + (1 if k < leftover else 0)
        chunks.append(tuple(pairs[cursor:cursor + step]))
        cursor += step
    return chunks


def _merge_chunk_results(
    outcomes: Sequence[tuple[list[tuple[int, int, int]], dict]],
    chunk_count: int,
    wall_time: float,
) -> tuple[list[JoinPair], dict]:
    pairs = [
        JoinPair(i, j, distance)
        for accepted, _ in outcomes
        for (i, j, distance) in accepted
    ]
    pairs.sort(key=lambda p: p.key())
    stats = dict(_ZERO_STATS)
    for _, delta in outcomes:
        for key in ("ted_calls", "lb_filtered", "ub_accepted", "ted_early_exits"):
            stats[key] += delta[key]
        stats["verify_time"] += delta["verify_time"]
    stats["verify_chunks"] = chunk_count
    stats["verify_wall_time"] = wall_time
    return pairs, stats


def parallel_verify(
    trees: Sequence[Tree],
    tau: int,
    pairs: Sequence[tuple[int, int]],
    workers: int,
    options: Optional[dict] = None,
    pool=None,
) -> tuple[list[JoinPair], dict]:
    """Verify candidate ``(i, j)`` pairs across worker processes.

    Parameters
    ----------
    trees:
        The full collection (workers receive it once, as bracket strings).
    tau:
        The join threshold.
    pairs:
        Candidate pairs of original indices, any orientation; duplicates
        (either orientation) are verified once.
    workers:
        Worker process count; ``1`` verifies inline with no pool at all.
    options:
        Keyword arguments for each worker's ``Verifier`` (e.g.
        ``{"traversal_bound": False}`` for the STR join).
    pool:
        An existing ``multiprocessing`` pool whose workers were
        initialized with :func:`repro.parallel.worker.init_worker` (the
        sharded executor shares its candidate-stage pool); when omitted a
        dedicated pool is created and torn down.

    Returns the accepted :class:`JoinPair` list in canonical order plus a
    stats dict (``ted_calls`` / ``verify_time`` / ``lb_filtered`` /
    ``ub_accepted`` / ``ted_early_exits`` / ``verify_chunks`` /
    ``verify_wall_time``).
    """
    started = time.perf_counter()
    # Canonicalize: one orientation per pair, deterministic chunk layout
    # regardless of how many shards (or which method) produced the list.
    ordered = sorted({(i, j) if i < j else (j, i) for i, j in pairs})
    if not ordered:
        return [], dict(_ZERO_STATS)

    if workers <= 1 and pool is None:
        # Serial fallback: same engine, in-process, no bracket round-trip.
        verifier = Verifier(trees, tau, **(options or {}))
        accepted = []
        for i, j in ordered:
            distance = verifier.verify(i, j)
            if distance is not None:
                accepted.append((i, j, distance))
        outcome = (accepted, {"verify_time": verifier.stats_time,
                              "ted_calls": verifier.stats_ted_calls,
                              **verifier.extra_stats()})
        return _merge_chunk_results([outcome], 1, time.perf_counter() - started)

    chunks = chunk_pairs(ordered, workers)
    if pool is not None:
        outcomes = pool.map(_worker.verify_chunk, chunks)
    else:
        from repro.parallel.executor import open_pool

        with open_pool(trees, tau, workers, verifier_options=options) as owned:
            outcomes = owned.map(_worker.verify_chunk, chunks)
    return _merge_chunk_results(
        outcomes, len(chunks), time.perf_counter() - started
    )


class StreamVerifyPool:
    """Background verification pool for streamed candidates.

    The batch pools above assume a complete collection shipped at pool
    start; a streaming join has no such collection, so this pool ships
    with each submission the bracket strings of exactly the trees its
    pairs reference.  Workers keep them in a per-process append-only
    store (:class:`repro.parallel.worker.GrowingTreeStore`) with one
    persistent :class:`~repro.baselines.common.Verifier`, so repeatedly
    referenced trees are parsed/annotated once per worker.

    Submissions run asynchronously; :meth:`poll` collects whatever has
    completed without blocking (the engine calls it on every arrival) and
    :meth:`drain` blocks until the pool is idle — the streaming *flush
    point*.  Because per-pair outcomes are independent of routing and
    batching, the union of collected triples is identical to inline
    verification of the same pairs, whatever the completion order.
    """

    def __init__(
        self,
        tau: int,
        workers: int,
        options: Optional[dict] = None,
    ):
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        import multiprocessing

        from repro.parallel.worker import init_stream_worker

        self.tau = tau
        self.workers = workers
        self._pool = multiprocessing.get_context().Pool(
            processes=workers,
            initializer=init_stream_worker,
            initargs=(tau, options),
        )
        self._inflight: list = []  # (AsyncResult, pair_count)
        # Master-side serialization cache: trees are immutable and
        # arrival-indexed, so a hot tree (a cluster member referenced by
        # many later submissions) pays to_bracket() exactly once.
        self._brackets: dict[int, str] = {}
        self._pending_pairs = 0
        self._chunks = 0
        self._stats = dict(_ZERO_STATS)
        self._closed = False

    @property
    def pending(self) -> int:
        """Submitted-but-uncollected candidate pairs (the queue depth)."""
        return self._pending_pairs

    def submit(
        self, pairs: Sequence[tuple[int, int]], trees: Sequence[Tree]
    ) -> None:
        """Queue candidate ``pairs`` for verification.

        ``trees`` is the live arrival-ordered collection; only the trees
        the pairs reference are serialized into the task payload.
        """
        if self._closed:
            raise InvalidParameterError("StreamVerifyPool is closed")
        if not pairs:
            return
        referenced = {index for pair in pairs for index in pair}
        cache = self._brackets
        for index in referenced:
            if index not in cache:
                cache[index] = trees[index].to_bracket()
        brackets = {index: cache[index] for index in referenced}
        result = self._pool.apply_async(
            _worker.verify_stream_chunk, ((brackets, tuple(pairs)),)
        )
        self._inflight.append((result, len(pairs)))
        self._pending_pairs += len(pairs)

    def _collect(self, outcome: tuple) -> list[tuple[int, int, int]]:
        accepted, delta = outcome
        for key in ("ted_calls", "lb_filtered", "ub_accepted", "ted_early_exits"):
            self._stats[key] += delta[key]
        self._stats["verify_time"] += delta["verify_time"]
        self._chunks += 1
        return accepted

    def poll(self) -> list[tuple[int, int, int]]:
        """Accepted triples of every completed submission; never blocks."""
        triples: list[tuple[int, int, int]] = []
        still_inflight = []
        for result, count in self._inflight:
            if result.ready():
                triples.extend(self._collect(result.get()))
                self._pending_pairs -= count
            else:
                still_inflight.append((result, count))
        self._inflight = still_inflight
        return triples

    def drain(self) -> list[tuple[int, int, int]]:
        """Block until every submission completes; return their triples."""
        triples: list[tuple[int, int, int]] = []
        for result, count in self._inflight:
            triples.extend(self._collect(result.get()))
            self._pending_pairs -= count
        self._inflight = []
        return triples

    def stats(self) -> dict:
        """Accumulated verification counters of the collected chunks."""
        stats = dict(self._stats)
        stats["verify_chunks"] = self._chunks
        stats.pop("verify_wall_time", None)
        return stats

    def close(self) -> None:
        """Release the worker processes (pending work is abandoned)."""
        if self._closed:
            return
        self._closed = True
        self._pool.terminate()
        self._pool.join()
