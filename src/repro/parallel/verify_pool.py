"""Parallel verification: chunked candidate pairs through worker Verifiers.

Verification is embarrassingly parallel — each candidate pair's outcome
depends only on its two trees and ``tau`` — so *every* join method (PartSJ
and all four baselines) can hand its candidate list to
:func:`parallel_verify` and get back exactly the pairs and exact distances
a serial :class:`~repro.baselines.common.Verifier` would produce.  The
method-specific filter configuration (which bag bounds the candidate
screen already applied, whether the traversal bound is redundant) travels
as the ``options`` dict, which is passed verbatim to each worker's
``Verifier``.

Pairs are sorted into canonical order and cut into
``workers * CHUNKS_PER_WORKER`` chunks; results and counters merge
deterministically because per-pair outcomes are independent of batching.
The returned ``verify_time`` is the **sum of worker CPU seconds** (the
comparable quantity to a serial run's ``verify_time``);
``verify_wall_time`` in the stats dict is the elapsed stage time.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.baselines.common import JoinPair, Verifier
from repro.errors import InvalidParameterError
from repro.obs.trace import NULL_TRACER
from repro.parallel import worker as _worker
from repro.resilience import (
    FaultInjector,
    InjectedFaultError,
    PoolSupervisor,
    RetryPolicy,
    shutdown_pool,
    unseal,
)
from repro.tree.node import Tree

__all__ = [
    "CHUNKS_PER_WORKER",
    "StreamVerifyPool",
    "chunk_pairs",
    "parallel_verify",
]

# Chunks per worker: >1 so a chunk of expensive pairs (big trees, tight
# DPs) doesn't serialize the stage behind one process, small enough that
# per-chunk dispatch overhead stays negligible.
CHUNKS_PER_WORKER = 4

# Dead-worker handling in StreamVerifyPool: wait() is sliced so the pool's
# worker pids can be health-checked between slices (a crashed worker's
# result never arrives — without this a timeout-less drain() would block
# forever), and a detected death grants queued completions a short grace
# before the in-flight submissions degrade.
_WAIT_SLICE = 0.05
_DEATH_GRACE = 0.25

_ZERO_STATS = {
    "ted_calls": 0,
    "verify_time": 0.0,
    "lb_filtered": 0,
    "ub_accepted": 0,
    "ted_early_exits": 0,
    "verify_chunks": 0,
    "verify_wall_time": 0.0,
}


def chunk_pairs(
    pairs: Sequence[tuple[int, int]],
    workers: int,
    chunks_per_worker: int = CHUNKS_PER_WORKER,
) -> list[tuple[tuple[int, int], ...]]:
    """Cut ``pairs`` into at most ``workers * chunks_per_worker`` batches.

    Contiguous slicing of the (caller-ordered) pair list; every pair lands
    in exactly one chunk and empty chunks are never produced.
    """
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    if not pairs:
        return []
    chunk_count = min(len(pairs), max(1, workers * chunks_per_worker))
    size, leftover = divmod(len(pairs), chunk_count)
    chunks: list[tuple[tuple[int, int], ...]] = []
    cursor = 0
    for k in range(chunk_count):
        step = size + (1 if k < leftover else 0)
        chunks.append(tuple(pairs[cursor:cursor + step]))
        cursor += step
    return chunks


def _merge_chunk_results(
    outcomes: Sequence[tuple[list[tuple[int, int, int]], dict]],
    chunk_count: int,
    wall_time: float,
) -> tuple[list[JoinPair], dict]:
    pairs = [
        JoinPair(i, j, distance)
        for accepted, _ in outcomes
        for (i, j, distance) in accepted
    ]
    pairs.sort(key=lambda p: p.key())
    stats = dict(_ZERO_STATS)
    for _, delta in outcomes:
        for key in ("ted_calls", "lb_filtered", "ub_accepted", "ted_early_exits"):
            stats[key] += delta[key]
        stats["verify_time"] += delta["verify_time"]
    stats["verify_chunks"] = chunk_count
    stats["verify_wall_time"] = wall_time
    return pairs, stats


def _graft_chunk_spans(tracer, outcomes) -> None:
    """Graft worker-relayed chunk spans (``delta["spans"]``) into a trace.

    No-op with tracing off; the spans never feed the stat merge either
    way (``_merge_chunk_results`` only reads the fixed counter keys).
    """
    if not tracer.enabled:
        return
    for outcome in outcomes:
        if outcome is None:
            continue
        _, delta = outcome
        spans = delta.get("spans")
        if spans:
            tracer.graft(spans)


def parallel_verify(
    trees: Sequence[Tree],
    tau: int,
    pairs: Sequence[tuple[int, int]],
    workers: int,
    options: Optional[dict] = None,
    pool=None,
    supervisor: Optional[PoolSupervisor] = None,
    tracer=None,
) -> tuple[list[JoinPair], dict]:
    """Verify candidate ``(i, j)`` pairs across worker processes.

    Parameters
    ----------
    trees:
        The full collection (workers receive it once, as bracket strings).
    tau:
        The join threshold.
    pairs:
        Candidate pairs of original indices, any orientation; duplicates
        (either orientation) are verified once.
    workers:
        Worker process count; ``1`` verifies inline with no pool at all.
    options:
        Keyword arguments for each worker's ``Verifier`` (e.g.
        ``{"traversal_bound": False}`` for the STR join).
    pool:
        An existing ``multiprocessing`` pool whose workers were
        initialized with :func:`repro.parallel.worker.init_worker`;
        dispatch over it is **unsupervised** (a bare ``pool.map``, kept
        for API compatibility).
    supervisor:
        A :class:`repro.resilience.PoolSupervisor` whose pool workers
        were initialized with ``init_worker`` (the sharded executor
        shares its candidate-stage supervisor).  When neither ``pool``
        nor ``supervisor`` is given and ``workers > 1``, a dedicated
        supervised pool is created and torn down — so every join
        method's verification stage retries and degrades the same way.

    Returns the accepted :class:`JoinPair` list in canonical order plus a
    stats dict (``ted_calls`` / ``verify_time`` / ``lb_filtered`` /
    ``ub_accepted`` / ``ted_early_exits`` / ``verify_chunks`` /
    ``verify_wall_time``).

    ``tracer`` (``None`` disables) records one ``verify.parallel`` span
    over the stage and grafts the worker-relayed per-chunk spans under
    it; pairs, distances and the stats dict are identical either way.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    started = time.perf_counter()
    # Canonicalize: one orientation per pair, deterministic chunk layout
    # regardless of how many shards (or which method) produced the list.
    ordered = sorted({(i, j) if i < j else (j, i) for i, j in pairs})
    if not ordered:
        return [], dict(_ZERO_STATS)

    if workers <= 1 and pool is None and supervisor is None:
        # Serial fallback: same engine, in-process, no bracket round-trip.
        with tracer.span("verify.parallel", workers=1,
                         pairs=len(ordered)):
            verifier = Verifier(trees, tau, **(options or {}))
            accepted = []
            for i, j in ordered:
                distance = verifier.verify(i, j)
                if distance is not None:
                    accepted.append((i, j, distance))
        outcome = (accepted, {"verify_time": verifier.stats_time,
                              "ted_calls": verifier.stats_ted_calls,
                              **verifier.extra_stats()})
        return _merge_chunk_results([outcome], 1, time.perf_counter() - started)

    chunks = chunk_pairs(ordered, workers)
    if pool is not None:
        with tracer.span("verify.parallel", workers=workers,
                         pairs=len(ordered), chunks=len(chunks)):
            outcomes = pool.map(_worker.verify_chunk, chunks)
            _graft_chunk_spans(tracer, outcomes)
        return _merge_chunk_results(
            outcomes, len(chunks), time.perf_counter() - started
        )

    def inline_chunk(chunk):
        # Degradation fallback: a fresh in-process Verifier; per-pair
        # outcomes and counter deltas match the worker's exactly (only
        # wall time differs), so merged totals stay serial-identical.
        return _worker.verify_pairs(
            Verifier(trees, tau, **(options or {})), chunk
        )

    tasks = [(f"verify:{k}", chunk) for k, chunk in enumerate(chunks)]
    if supervisor is not None:
        with tracer.span("verify.parallel", workers=workers,
                         pairs=len(ordered), chunks=len(chunks)):
            outcomes = supervisor.run(
                _worker.verify_chunk_task, tasks, inline_chunk
            )
            _graft_chunk_spans(tracer, outcomes)
        pairs_out, stats = _merge_chunk_results(
            outcomes, len(chunks), time.perf_counter() - started
        )
        return pairs_out, stats
    from repro.parallel.executor import _create_pool

    brackets = [tree.to_bracket() for tree in trees]
    injector = FaultInjector.from_env()
    owned = PoolSupervisor(
        lambda: _create_pool(brackets, tau, workers, None, options, injector),
    )
    with owned:
        with tracer.span("verify.parallel", workers=workers,
                         pairs=len(ordered), chunks=len(chunks)):
            outcomes = owned.run(
                _worker.verify_chunk_task, tasks, inline_chunk
            )
            _graft_chunk_spans(tracer, outcomes)
    pairs_out, stats = _merge_chunk_results(
        outcomes, len(chunks), time.perf_counter() - started
    )
    # A dedicated supervisor's failure accounting travels with the verify
    # stats (the executor path reports its shared supervisor itself).
    for key in ("retries", "worker_failures", "timeouts",
                "degraded_serial_tasks"):
        if owned.stats[key]:
            stats[key] = owned.stats[key]
    return pairs_out, stats


class StreamVerifyPool:
    """Background verification pool for streamed candidates.

    The batch pools above assume a complete collection shipped at pool
    start; a streaming join has no such collection, so this pool ships
    with each submission the bracket strings of exactly the trees its
    pairs reference.  Workers keep them in a per-process append-only
    store (:class:`repro.parallel.worker.GrowingTreeStore`) with one
    persistent :class:`~repro.baselines.common.Verifier`, so repeatedly
    referenced trees are parsed/annotated once per worker.

    Submissions run asynchronously; :meth:`poll` collects whatever has
    completed without blocking (the engine calls it on every arrival) and
    :meth:`drain` blocks until the pool is idle — the streaming *flush
    point*.  Because per-pair outcomes are independent of routing and
    batching, the union of collected triples is identical to inline
    verification of the same pairs, whatever the completion order.

    **Failure handling** — a submission whose worker crashes, raises,
    hangs past the policy's ``task_timeout``, or returns a corrupt
    envelope is *not* lost: it degrades to an in-process re-verification
    pair by pair (streaming favors latency over worker-level retries).
    A pair whose verification itself raises during that fallback is a
    *poison candidate*: it is quarantined — counted, logged, skipped —
    instead of aborting the batch.  A hang or crash also respawns the
    pool (a wedged worker would otherwise occupy a slot forever), which
    degrades the other in-flight submissions the same lossless way.
    """

    def __init__(
        self,
        tau: int,
        workers: int,
        options: Optional[dict] = None,
        policy: Optional[RetryPolicy] = None,
        injector: Optional[FaultInjector] = None,
        tracer=None,
    ):
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.tau = tau
        self.workers = workers
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._options = options
        self.policy = (policy or RetryPolicy()).validated()
        self._injector = (
            injector if injector is not None else FaultInjector.from_env()
        )
        self._pool = self._make_pool()
        self._known_pids = self._worker_pids()
        self._death_deadline: Optional[float] = None
        # (AsyncResult, pairs, task_id, deadline) per live submission.
        self._inflight: list = []
        # Master-side serialization cache: trees are immutable and
        # arrival-indexed, so a hot tree (a cluster member referenced by
        # many later submissions) pays to_bracket() exactly once.
        self._brackets: dict[int, str] = {}
        self._trees: Optional[Sequence[Tree]] = None
        self._fallback_verifier: Optional[Verifier] = None
        self._pending_pairs = 0
        self._chunks = 0
        self._seq = 0
        self._stats = dict(_ZERO_STATS)
        self._closed = False
        self.worker_failures = 0
        self.degraded_serial_tasks = 0
        self.quarantined_pairs = 0
        self.quarantine_log: list[dict] = []

    def _make_pool(self):
        from repro.parallel.executor import pool_context
        from repro.parallel.worker import init_stream_worker

        return pool_context().Pool(
            processes=self.workers,
            initializer=init_stream_worker,
            initargs=(self.tau, self._options, self._injector),
        )

    def _worker_pids(self) -> frozenset:
        return frozenset(
            p.pid for p in getattr(self._pool, "_pool", []) or []
        )

    def _check_worker_health(self, now: float) -> None:
        """Start the death-grace clock when the pool's pid set changes.

        A dead worker's in-flight result will never arrive; the pool
        repopulates the slot (changing the pid set), which is the only
        signal a plain ``multiprocessing.Pool`` gives.  The grace lets
        already-queued completions surface before degradation.
        """
        pids = self._worker_pids()
        if pids != self._known_pids:
            self._known_pids = pids
            if self._death_deadline is None:
                self._death_deadline = now + _DEATH_GRACE

    @property
    def pending(self) -> int:
        """Submitted-but-uncollected candidate pairs (the queue depth)."""
        return self._pending_pairs

    def submit(
        self, pairs: Sequence[tuple[int, int]], trees: Sequence[Tree]
    ) -> None:
        """Queue candidate ``pairs`` for verification.

        ``trees`` is the live arrival-ordered collection; only the trees
        the pairs reference are serialized into the task payload.
        """
        if self._closed:
            raise InvalidParameterError("StreamVerifyPool is closed")
        if not pairs:
            return
        self._trees = trees
        referenced = {index for pair in pairs for index in pair}
        cache = self._brackets
        for index in referenced:
            if index not in cache:
                cache[index] = trees[index].to_bracket()
        brackets = {index: cache[index] for index in referenced}
        task_id = f"stream:{self._seq}"
        self._seq += 1
        result = self._pool.apply_async(
            _worker.verify_stream_chunk_task,
            ((task_id, brackets, tuple(pairs)),),
        )
        timeout = self.policy.task_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        self._inflight.append((result, tuple(pairs), task_id, deadline))
        self._pending_pairs += len(pairs)

    def _collect(self, outcome: tuple) -> list[tuple[int, int, int]]:
        accepted, delta = outcome
        for key in ("ted_calls", "lb_filtered", "ub_accepted", "ted_early_exits"):
            self._stats[key] += delta[key]
        self._stats["verify_time"] += delta["verify_time"]
        if self._tracer.enabled and delta.get("spans"):
            self._tracer.graft(delta["spans"])
        self._chunks += 1
        return accepted

    def _degrade(self, pairs, task_id, error) -> list[tuple[int, int, int]]:
        """In-process re-verification of a failed submission.

        Poison pairs — those whose verification raises — are quarantined
        individually; every healthy pair still produces its exact
        outcome, so nothing but the poison itself is lost.
        """
        self.worker_failures += 1
        self.degraded_serial_tasks += 1
        if self._fallback_verifier is None:
            self._fallback_verifier = Verifier(
                self._trees, self.tau, **(self._options or {})
            )
        verifier = self._fallback_verifier
        injector = self._injector
        accepted: list[tuple[int, int, int]] = []
        healthy: list[tuple[int, int]] = []
        for i, j in pairs:
            # Pair fault ids are canonical (lo:hi) regardless of the
            # submission orientation (streaming submits new-vs-old).
            lo, hi = (i, j) if i < j else (j, i)
            try:
                if injector is not None:
                    injector.fire(f"pair:{lo}:{hi}", 1)
                healthy.append((i, j))
            except InjectedFaultError as exc:
                self._quarantine(lo, hi, exc)
        for i, j in healthy:
            try:
                triples, delta = _worker.verify_pairs(verifier, [(i, j)])
            except Exception as exc:
                self._quarantine(i, j, exc)
                continue
            accepted.extend(triples)
            for key in ("ted_calls", "lb_filtered", "ub_accepted",
                        "ted_early_exits"):
                self._stats[key] += delta[key]
            self._stats["verify_time"] += delta["verify_time"]
        self._chunks += 1
        return accepted

    def _quarantine(self, i: int, j: int, error: Exception) -> None:
        self.quarantined_pairs += 1
        if len(self.quarantine_log) < 32:
            self.quarantine_log.append(
                {"pair": [i, j], "error": str(error)}
            )

    def _respawn(self) -> list[tuple[int, int, int]]:
        """Replace the pool; degrade every submission it still held."""
        shutdown_pool(self._pool)
        self._pool = self._make_pool()
        self._known_pids = self._worker_pids()
        self._death_deadline = None
        triples: list[tuple[int, int, int]] = []
        for result, pairs, task_id, _ in self._inflight:
            if result.ready():
                # Its outcome survived the teardown — use it.
                triples.extend(self._settle(result, pairs, task_id))
            else:
                triples.extend(self._degrade(pairs, task_id, "pool respawned"))
                self._pending_pairs -= len(pairs)
        self._inflight = []
        return triples

    def _settle(self, result, pairs, task_id) -> list[tuple[int, int, int]]:
        """Collect one *ready* submission, degrading it on any failure."""
        try:
            outcome = unseal(result.get(), task_id)
        except Exception as exc:
            collected = self._degrade(pairs, task_id, exc)
        else:
            collected = self._collect(outcome)
        self._pending_pairs -= len(pairs)
        return collected

    def poll(self) -> list[tuple[int, int, int]]:
        """Accepted triples of every completed submission; never blocks.

        A submission past its deadline, or held by a worker that died
        (pid health-check), is treated as failed: it degrades in-process
        and the pool is respawned, taking the remaining in-flight
        submissions down the same degradation path — nothing is lost,
        nothing blocks.
        """
        now = time.monotonic()
        if self._inflight:
            self._check_worker_health(now)
        triples: list[tuple[int, int, int]] = []
        still_inflight = []
        failed = False
        for entry in self._inflight:
            result, pairs, task_id, deadline = entry
            if result.ready():
                triples.extend(self._settle(result, pairs, task_id))
            elif deadline is not None and now >= deadline:
                triples.extend(self._degrade(pairs, task_id, "task timeout"))
                self._pending_pairs -= len(pairs)
                failed = True
            else:
                still_inflight.append(entry)
        self._inflight = still_inflight
        if (
            self._death_deadline is not None
            and now >= self._death_deadline
            and self._inflight
        ):
            # A worker died and its grace ran out: whatever is still
            # pending cannot be trusted to arrive.
            failed = True
        if failed:
            triples.extend(self._respawn())
        elif not self._inflight:
            # Every submission settled; a stale death-grace clock (the
            # dead worker held nothing of ours) must not outlive it.
            self._death_deadline = None
        return triples

    def drain(self) -> list[tuple[int, int, int]]:
        """Block until every submission settles; return their triples.

        The wait is always bounded: a finite ``task_timeout`` caps each
        submission, and even without one the sliced wait health-checks
        the worker pids — a crashed worker's submission degrades
        in-process (and the pool respawns) instead of blocking forever.
        Only a genuinely *hung* worker with no ``task_timeout`` can
        stall drain; that detection fundamentally requires a deadline.
        """
        triples: list[tuple[int, int, int]] = []
        while self._inflight:
            result, pairs, task_id, deadline = self._inflight.pop(0)
            reason = "task timeout"
            while not result.ready():
                now = time.monotonic()
                if deadline is not None and now >= deadline:
                    break
                if (
                    self._death_deadline is not None
                    and now >= self._death_deadline
                ):
                    reason = "worker process died"
                    break
                self._check_worker_health(now)
                result.wait(_WAIT_SLICE)
            if result.ready():
                triples.extend(self._settle(result, pairs, task_id))
            else:
                triples.extend(self._degrade(pairs, task_id, reason))
                self._pending_pairs -= len(pairs)
                triples.extend(self._respawn())
        self._death_deadline = None
        return triples

    def stats(self) -> dict:
        """Accumulated verification counters of the collected chunks."""
        stats = dict(self._stats)
        stats["verify_chunks"] = self._chunks
        stats.pop("verify_wall_time", None)
        stats["verify_failures"] = self.worker_failures
        stats["degraded_serial_tasks"] = self.degraded_serial_tasks
        stats["quarantined_pairs"] = self.quarantined_pairs
        return stats

    def close(self) -> None:
        """Release the worker processes (pending work is abandoned).

        The terminate/join is bounded (:func:`repro.resilience.shutdown_pool`),
        so a wedged worker cannot hang engine close.
        """
        if self._closed:
            return
        self._closed = True
        shutdown_pool(self._pool)
