"""Shard planning for the multiprocess join executor.

The size-sorted probe/insert loop of Algorithm 1 only ever looks
*backwards*: tree ``Ti`` probes index sizes ``[|Ti| - tau, |Ti|]``.  The
size axis can therefore be cut into contiguous *shards* of the sorted
order, each processed by an independent :class:`~repro.core.join.ShardDriver`
in its own worker process, provided every shard first bulk-inserts its
**handoff band** — the maximal run of earlier trees whose size is within
``tau`` of the shard's smallest owned size.  Band trees are insert-only
(never probed by their band shard), so every candidate pair is discovered
exactly once, by the shard owning the later tree of the sorted order
(see the invariant write-up in :mod:`repro.core.join`).

Planning balances shards by *estimated probe cost*, computed from the
collection's cached size histogram
(:meth:`repro.baselines.common.SizeSortedCollection.size_histogram`):
probing one tree touches each of its nodes against ``tau + 1`` index
sizes and partitioning it is linear again, so a tree of size ``s`` is
charged ``s * (tau + 2)`` units.  Boundaries may fall *inside* a run of
equal-size trees — the handoff band simply includes the earlier trees of
the same size — which keeps the plan balanced even for degenerate
collections where every tree has the same size.

The ``ShardPlan -> ShardResult`` pair is the executor's worker protocol:
a plan is what crosses the process boundary going in (index lists plus
bounds — the trees themselves travel once, via the pool initializer), a
result is what comes back (candidate pairs plus the per-shard statistics
the executor merges deterministically).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.baselines.common import SizeSortedCollection

__all__ = [
    "ShardPlan",
    "ShardPlanner",
    "ShardResult",
    "estimated_probe_cost",
    "plan_shards",
]


def estimated_probe_cost(size: int, tau: int) -> int:
    """Planning cost of one tree: probe ``tau + 1`` sizes plus partition.

    Probing visits every node once per probed index size (``tau + 1`` of
    them) and the insert phase (MaxMinSize + extraction) is linear in the
    tree again; constant factors cancel in the balance, so the model is
    simply ``size * (tau + 2)``.
    """
    return size * (tau + 2)


@dataclass(frozen=True)
class ShardPlan:
    """One worker's slice of the size-sorted loop.

    Attributes
    ----------
    shard_id:
        Dense shard number, ``0`` = smallest sizes.
    start, stop:
        Owned sorted-position range ``[start, stop)`` in the collection's
        ascending order.
    band_start:
        First band sorted position; the band is ``[band_start, start)``
        and is empty for the first shard.
    lo, hi:
        Smallest / largest owned tree size (reporting; boundaries may
        split a run of equal sizes, in which case a neighbour shard owns
        trees of size ``lo`` too).
    owned:
        Original tree indices to probe+insert, ascending sorted order.
    band:
        Original tree indices to insert only (handoff band), ascending
        sorted order — every earlier tree whose size is ``>= lo - tau``.
    est_cost:
        Estimated probe cost of the owned trees (balance diagnostics).
    """

    shard_id: int
    start: int
    stop: int
    band_start: int
    lo: int
    hi: int
    owned: tuple[int, ...]
    band: tuple[int, ...]
    est_cost: int


@dataclass
class ShardResult:
    """What one shard worker sends back to the executor.

    ``candidates`` preserves the discovery order ``(probe_tree, partner)``
    of the shard's serial sub-loop; all timing fields are worker-process
    CPU seconds.  ``counters`` is the shard's
    ``_ProbeCounters.as_dict()`` — owned-tree counters sum to the exact
    serial values across shards, band counters measure the sharding
    overhead.  The executor merges the counter dict *generically* (every
    integer-valued key is summed), so a worker may add counters without
    an executor release in lockstep.

    ``spans`` relays the shard's observability spans
    (:func:`repro.obs.trace.span_dict` mappings) back through the CRC'd
    result envelope; the coordinator grafts them into its trace when
    tracing is enabled and drops them otherwise.  They never feed any
    ``JoinStats`` field, so results stay bit-identical either way.
    """

    shard_id: int
    candidates: list[tuple[int, int]]
    counters: dict
    probe_time: float
    index_time: float
    band_time: float
    wall_time: float
    indexed_subgraphs: int
    index_entries: int
    owned_count: int
    band_count: int
    lo: int
    hi: int
    spans: list = field(default_factory=list)

    def timing_summary(self) -> dict:
        """Per-shard timing dict surfaced in ``JoinStats.extra['shards']``."""
        return {
            "shard": self.shard_id,
            "size_range": [self.lo, self.hi],
            "owned_trees": self.owned_count,
            "band_trees": self.band_count,
            "candidates": len(self.candidates),
            "probe_time": round(self.probe_time, 6),
            "index_time": round(self.index_time, 6),
            "band_time": round(self.band_time, 6),
            "wall_time": round(self.wall_time, 6),
        }


def plan_shards(
    collection: "SizeSortedCollection",
    tau: int,
    workers: int,
) -> list[ShardPlan]:
    """Cut the size-sorted order into at most ``workers`` balanced shards.

    Walks the cached size histogram accumulating estimated probe cost and
    closes a shard whenever the running total reaches the next of the
    ``workers`` equal cost targets.  Every shard owns at least one tree;
    when the collection has fewer trees than ``workers`` the plan simply
    has fewer shards.  The concatenated ``owned`` runs reproduce the
    collection's sorted order exactly.
    """
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    if tau < 0:
        raise InvalidParameterError(f"tau must be >= 0, got {tau}")
    total_trees = len(collection)
    if total_trees == 0:
        return []
    histogram = collection.size_histogram()
    total_cost = sum(
        count * estimated_probe_cost(size, tau) for size, count in histogram
    )
    shard_count = min(workers, total_trees)
    target = total_cost / shard_count

    # Owned boundaries: positions [boundaries[k], boundaries[k+1]) per shard.
    boundaries = [0]
    accumulated = 0.0
    position = 0
    for size, count in histogram:
        per_tree = estimated_probe_cost(size, tau)
        remaining = count
        while remaining:
            shards_left = shard_count - len(boundaries)
            if shards_left <= 0:
                position += remaining
                break
            # Trees of this size still needed to reach the current target;
            # boundaries may split the run (the band covers the remainder).
            next_target = target * len(boundaries)
            deficit = next_target - accumulated
            take = max(1, min(remaining, round(deficit / per_tree)))
            accumulated += take * per_tree
            position += take
            remaining -= take
            if accumulated >= next_target - per_tree / 2:
                boundaries.append(position)
    if boundaries[-1] < total_trees:
        boundaries.append(total_trees)
    else:
        boundaries[-1] = total_trees

    sizes = collection.sizes
    order = collection.order
    plans: list[ShardPlan] = []
    for shard_id in range(len(boundaries) - 1):
        start, stop = boundaries[shard_id], boundaries[shard_id + 1]
        if start >= stop:
            continue  # degenerate boundary: never emit an empty shard
        lo = sizes[start]
        hi = sizes[stop - 1]
        band_start = bisect_left(sizes, lo - tau, 0, start)
        plans.append(
            ShardPlan(
                shard_id=len(plans),
                start=start,
                stop=stop,
                band_start=band_start,
                lo=lo,
                hi=hi,
                owned=tuple(order[start:stop]),
                band=tuple(order[band_start:start]),
                est_cost=sum(
                    estimated_probe_cost(sizes[p], tau) for p in range(start, stop)
                ),
            )
        )
    return plans


class ShardPlanner:
    """Re-plan hook for a collection that grows between plans.

    The streaming engine inserts trees one at a time; shard boundaries
    computed for one prefix drift out of balance as the size histogram
    grows.  ``ShardPlanner`` wraps :func:`plan_shards` with a per-worker-
    count cache keyed on the collection's mutation ``version``
    (:class:`~repro.baselines.common.SizeSortedCollection` bumps it on
    every :meth:`~repro.baselines.common.SizeSortedCollection.insert`):
    :meth:`plan` returns the cached plan while the collection is
    unchanged and transparently re-plans after it has grown, so callers
    can ask for fresh boundaries at any cadence without paying a
    planning pass per arrival.
    """

    def __init__(self, collection: "SizeSortedCollection", tau: int):
        if tau < 0:
            raise InvalidParameterError(f"tau must be >= 0, got {tau}")
        self.collection = collection
        self.tau = tau
        self.replans = 0  # planning passes actually executed
        self._plans: dict[int, list[ShardPlan]] = {}
        self._versions: dict[int, int] = {}

    def plan(self, workers: int) -> list[ShardPlan]:
        """Current shard plan for ``workers``, re-planned only when stale."""
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        version = getattr(self.collection, "version", 0)
        if workers not in self._plans or self._versions[workers] != version:
            self._plans[workers] = plan_shards(self.collection, self.tau, workers)
            self._versions[workers] = version
            self.replans += 1
        return self._plans[workers]

    def invalidate(self) -> None:
        """Drop every cached plan (the next :meth:`plan` re-plans)."""
        self._plans.clear()
        self._versions.clear()
