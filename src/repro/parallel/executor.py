"""The sharded multiprocess join executor (PartSJ across worker processes).

Execution model — two stages over one worker pool:

1. **Candidate generation**: the size-sorted loop is cut into cost-
   balanced shards (:func:`repro.parallel.sharding.plan_shards`); each
   worker runs a private :class:`~repro.core.join.ShardDriver` over its
   handoff band (insert-only) and owned trees, returning the shard's
   candidate pairs and counters.  The handoff-band invariant (see
   :mod:`repro.core.join`) guarantees the union of shard candidate sets
   equals the serial engine's, with no duplicates across shards.
2. **Verification**: the deduplicated, canonically ordered pairs are
   chunked through the same pool's persistent per-process ``Verifier``
   (:func:`repro.parallel.verify_pool.parallel_verify`).

Results are **bit-identical** to the serial engine at every ``workers``
setting: the same pair set with the same exact distances, sorted in the
same canonical order.  Statistics merge deterministically — with the
default deterministic partitioning the owned-tree counters sum to the
exact serial values (``partition_strategy="random"`` keeps the results
identical but may shift candidate counts; see :mod:`repro.core.join`),
timing fields are summed worker CPU seconds (``wall_time`` of the
harness captures the actual speedup), and the per-shard breakdown is
surfaced in ``JoinStats.extra["shards"]``.

Both stages run under **supervised dispatch**
(:class:`repro.resilience.PoolSupervisor`): a crashed, hung, raising, or
corrupt-result worker fails only its task, which is retried on a
respawned pool under the config's :class:`~repro.resilience.RetryPolicy`
and finally re-executed serially in-process (graceful degradation) — the
bit-identical guarantee holds even with workers killed mid-flight.  The
failure accounting lands in ``JoinStats.extra`` (``retries``,
``worker_failures``, ``timeouts``, ``degraded_serial_tasks``,
``fault_events``).

The executor falls back to the serial engine when there is nothing to
parallelize (``workers == 1``, fewer than two trees, or a plan with a
single shard) — pool startup is pure overhead there.
"""

from __future__ import annotations

import multiprocessing
import time
from contextlib import contextmanager
from dataclasses import replace
from typing import Optional, Sequence

from repro.baselines.common import (
    JoinResult,
    JoinStats,
    SizeSortedCollection,
    check_join_inputs,
)
from repro.core.join import PartSJConfig, partsj_join
from repro.obs.trace import NULL_TRACER
from repro.parallel.sharding import ShardResult, plan_shards
from repro.parallel.verify_pool import parallel_verify
from repro.parallel.worker import execute_shard, init_worker, run_shard_task
from repro.resilience import (
    FaultInjector,
    PoolSupervisor,
    RetryPolicy,
    shutdown_pool,
)
from repro.tree.node import Tree

__all__ = ["merge_counters", "open_pool", "parallel_partsj_join",
           "pool_context"]

# Explicit start method rather than the platform default: "fork" where
# the platform offers it (cheap startup; our initargs — bracket strings
# and frozen config dataclasses — are equally spawn-safe, so the choice
# is a performance one, not a correctness one), "spawn" otherwise
# (macOS defaults and Windows have no safe fork).
_START_METHOD = (
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)


def pool_context():
    """The multiprocessing context every repro pool is created from."""
    return multiprocessing.get_context(_START_METHOD)

def merge_counters(shard_results: Sequence[ShardResult]) -> dict:
    """Sum the shards' integer-valued counters, generically over keys.

    Every key of every shard's counter dict whose value is an ``int``
    (``bool`` excluded) is summed — a counter introduced by a worker
    build merges without an executor edit, and a key only some shards
    report still sums correctly.  Non-integer values are skipped (they
    have no meaningful cross-shard sum).
    """
    merged: dict[str, int] = {}
    for result in shard_results:
        for key, value in result.counters.items():
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            merged[key] = merged.get(key, 0) + value
    return merged


def _create_pool(
    brackets: Sequence[str],
    tau: int,
    workers: int,
    config: Optional[PartSJConfig],
    verifier_options: Optional[dict],
    injector: Optional[FaultInjector],
):
    return pool_context().Pool(
        processes=workers,
        initializer=init_worker,
        initargs=(brackets, tau, config, verifier_options, injector),
    )


@contextmanager
def open_pool(
    trees: Sequence[Tree],
    tau: int,
    workers: int,
    config: Optional[PartSJConfig] = None,
    verifier_options: Optional[dict] = None,
    injector: Optional[FaultInjector] = None,
):
    """A worker pool whose processes hold the collection (see worker.py).

    The collection crosses the process boundary once, as bracket strings,
    via the pool initializer; subsequent task payloads are index lists
    only.  Closes and joins the pool on exit; on error it is terminated
    and the join is **bounded** (:func:`repro.resilience.shutdown_pool`),
    so a wedged worker cannot hang cleanup forever.
    """
    brackets = [tree.to_bracket() for tree in trees]
    pool = _create_pool(brackets, tau, workers, config, verifier_options, injector)
    try:
        yield pool
    except BaseException:
        shutdown_pool(pool)
        raise
    else:
        pool.close()
        pool.join()


def _merge_candidates(
    shard_results: Sequence[ShardResult],
) -> list[tuple[int, int]]:
    """Union of shard candidate pairs, canonical orientation, deduplicated.

    The handoff-band invariant makes cross-shard duplicates impossible;
    the dict pass is a cheap structural guarantee that verification work
    never depends on it.
    """
    merged: dict[tuple[int, int], None] = {}
    for result in shard_results:
        for i, j in result.candidates:
            merged[(i, j) if i < j else (j, i)] = None
    return sorted(merged)


def parallel_partsj_join(
    trees: Sequence[Tree],
    tau: int,
    config: Optional[PartSJConfig] = None,
    *,
    prepared=None,
    tracer=None,
) -> JoinResult:
    """PartSJ over ``config.workers`` processes; serial-identical results.

    ``prepared`` (a :class:`repro.core.join.PreparedJoinState`) lets a
    session reuse its size-sorted view for shard planning and keeps the
    serial fallbacks warm; the per-shard caches and partitions stay
    process-local — they cannot cross the pool boundary.

    ``tracer`` (a :class:`repro.obs.Tracer`; ``None`` disables) records a
    ``parallel.candidates`` span over the shard stage with each shard's
    relayed worker spans grafted under it, and hands itself to
    :func:`~repro.parallel.verify_pool.parallel_verify` for the
    verification stage.  Tracing never changes pairs, distances or any
    ``JoinStats`` field.
    """
    check_join_inputs(trees, tau)
    cfg = (config or PartSJConfig()).resolved()
    tracer = tracer if tracer is not None else NULL_TRACER
    workers = cfg.workers
    serial_cfg = replace(cfg, workers=1)
    if workers <= 1 or len(trees) < 2:
        return partsj_join(trees, tau, serial_cfg, prepared=prepared,
                           tracer=tracer)

    plan_start = time.perf_counter()
    collection = (
        prepared.collection if prepared is not None
        else SizeSortedCollection(trees)
    )
    plans = plan_shards(collection, tau, workers)
    plan_time = time.perf_counter() - plan_start
    if len(plans) <= 1:
        return partsj_join(trees, tau, serial_cfg, prepared=prepared,
                           tracer=tracer)
    tracer.record("parallel.plan", plan_time, shards=len(plans))

    policy = (cfg.retry or RetryPolicy()).validated()
    injector = (
        cfg.fault_injector if cfg.fault_injector is not None
        else FaultInjector.from_env()
    )
    brackets = [tree.to_bracket() for tree in trees]
    stats = JoinStats(method="PRT", tau=tau, tree_count=len(trees))
    # Worker verifiers (and the in-process degradation fallbacks) run the
    # same resolved kernel backend as the shard drivers, so a parallel
    # join is backend-uniform end to end.
    verifier_options = {"backend": cfg.backend}
    supervisor = PoolSupervisor(
        lambda: _create_pool(
            brackets, tau, workers, serial_cfg, verifier_options, injector
        ),
        policy,
    )
    with supervisor:
        stage_start = time.perf_counter()
        with tracer.span("parallel.candidates", workers=workers,
                         shards=len(plans)) as stage_span:
            shard_results: list[ShardResult] = supervisor.run(
                run_shard_task,
                [(f"shard:{plan.shard_id}", plan) for plan in plans],
                # Degradation fallback: the same pure shard computation, in
                # this process over the real trees (no fault injection).
                lambda plan: execute_shard(trees, tau, serial_cfg, plan),
            )
            candidate_pairs = _merge_candidates(shard_results)
            stage_span.set("candidates", len(candidate_pairs))
            if tracer.enabled:
                for result in shard_results:
                    tracer.graft(result.spans)
        candidate_wall = time.perf_counter() - stage_start
        pairs, verify_stats = parallel_verify(
            trees, tau, candidate_pairs, workers, options=verifier_options,
            supervisor=supervisor, tracer=tracer,
        )

    counters = merge_counters(shard_results)
    stats.candidates = len(candidate_pairs)
    stats.probe_time = sum(r.probe_time for r in shard_results)
    stats.index_time = sum(r.index_time + r.band_time for r in shard_results)
    stats.candidate_time = stats.probe_time + stats.index_time
    stats.ted_calls = verify_stats["ted_calls"]
    stats.verify_time = verify_stats["verify_time"]
    stats.results = len(pairs)
    stats.pairs_considered = counters["probe_hits"] + counters["small_pool_pairs"]
    stats.extra = counters
    # merge_counters sums ints only; the backend is uniform across shards.
    stats.extra["backend"] = cfg.backend
    # Serial-equivalent index totals: owned subgraphs only (one index entry
    # per subgraph); the per-shard totals below include the handoff-band
    # duplicates, i.e. the sharding overhead.
    stats.extra["total_indexed_subgraphs"] = counters["subgraphs_built"]
    stats.extra["total_index_entries"] = counters["subgraphs_built"]
    stats.extra["shard_index_entries"] = sum(r.index_entries for r in shard_results)
    for key in ("lb_filtered", "ub_accepted", "ted_early_exits"):
        stats.extra[key] = verify_stats[key]
    stats.extra["workers"] = workers
    # Resilience accounting: every supervised failure, retry and serial
    # degradation across both stages (see repro.resilience.supervisor).
    stats.extra.update(supervisor.stats)
    stats.extra["shards"] = [r.timing_summary() for r in shard_results]
    stats.extra["band_time"] = round(sum(r.band_time for r in shard_results), 6)
    stats.extra["plan_time"] = round(plan_time, 6)
    stats.extra["candidate_wall_time"] = round(candidate_wall, 6)
    stats.extra["verify_wall_time"] = round(verify_stats["verify_wall_time"], 6)
    stats.extra["verify_chunks"] = verify_stats["verify_chunks"]
    # parallel_verify already returns canonical (i, j)-sorted pairs.
    return JoinResult(pairs=pairs, stats=stats)
