"""The sharded multiprocess join executor (PartSJ across worker processes).

Execution model — two stages over one worker pool:

1. **Candidate generation**: the size-sorted loop is cut into cost-
   balanced shards (:func:`repro.parallel.sharding.plan_shards`); each
   worker runs a private :class:`~repro.core.join.ShardDriver` over its
   handoff band (insert-only) and owned trees, returning the shard's
   candidate pairs and counters.  The handoff-band invariant (see
   :mod:`repro.core.join`) guarantees the union of shard candidate sets
   equals the serial engine's, with no duplicates across shards.
2. **Verification**: the deduplicated, canonically ordered pairs are
   chunked through the same pool's persistent per-process ``Verifier``
   (:func:`repro.parallel.verify_pool.parallel_verify`).

Results are **bit-identical** to the serial engine at every ``workers``
setting: the same pair set with the same exact distances, sorted in the
same canonical order.  Statistics merge deterministically — with the
default deterministic partitioning the owned-tree counters sum to the
exact serial values (``partition_strategy="random"`` keeps the results
identical but may shift candidate counts; see :mod:`repro.core.join`),
timing fields are summed worker CPU seconds (``wall_time`` of the
harness captures the actual speedup), and the per-shard breakdown is
surfaced in ``JoinStats.extra["shards"]``.

The executor falls back to the serial engine when there is nothing to
parallelize (``workers == 1``, fewer than two trees, or a plan with a
single shard) — pool startup is pure overhead there.
"""

from __future__ import annotations

import multiprocessing
import time
from contextlib import contextmanager
from dataclasses import replace
from typing import Optional, Sequence

from repro.baselines.common import (
    JoinResult,
    JoinStats,
    SizeSortedCollection,
    check_join_inputs,
)
from repro.core.join import PartSJConfig, partsj_join
from repro.parallel.sharding import ShardResult, plan_shards
from repro.parallel.verify_pool import parallel_verify
from repro.parallel.worker import init_worker, run_shard
from repro.tree.node import Tree

__all__ = ["open_pool", "parallel_partsj_join"]

# Counter keys of _ProbeCounters.as_dict() summed across shards.
_COUNTER_KEYS = (
    "probe_hits",
    "match_tests",
    "match_hits",
    "dedup_skips",
    "small_pool_pairs",
    "partitioned_trees",
    "small_trees",
    "subgraphs_built",
    "gamma_total",
    "band_trees",
    "band_subgraphs",
)


@contextmanager
def open_pool(
    trees: Sequence[Tree],
    tau: int,
    workers: int,
    config: Optional[PartSJConfig] = None,
    verifier_options: Optional[dict] = None,
):
    """A worker pool whose processes hold the collection (see worker.py).

    The collection crosses the process boundary once, as bracket strings,
    via the pool initializer; subsequent task payloads are index lists
    only.  Closes (or on error terminates) and joins the pool on exit.
    """
    brackets = [tree.to_bracket() for tree in trees]
    context = multiprocessing.get_context()
    pool = context.Pool(
        processes=workers,
        initializer=init_worker,
        initargs=(brackets, tau, config, verifier_options),
    )
    try:
        yield pool
        pool.close()
    except BaseException:
        pool.terminate()
        raise
    finally:
        pool.join()


def _merge_candidates(
    shard_results: Sequence[ShardResult],
) -> list[tuple[int, int]]:
    """Union of shard candidate pairs, canonical orientation, deduplicated.

    The handoff-band invariant makes cross-shard duplicates impossible;
    the dict pass is a cheap structural guarantee that verification work
    never depends on it.
    """
    merged: dict[tuple[int, int], None] = {}
    for result in shard_results:
        for i, j in result.candidates:
            merged[(i, j) if i < j else (j, i)] = None
    return sorted(merged)


def parallel_partsj_join(
    trees: Sequence[Tree],
    tau: int,
    config: Optional[PartSJConfig] = None,
    *,
    prepared=None,
) -> JoinResult:
    """PartSJ over ``config.workers`` processes; serial-identical results.

    ``prepared`` (a :class:`repro.core.join.PreparedJoinState`) lets a
    session reuse its size-sorted view for shard planning and keeps the
    serial fallbacks warm; the per-shard caches and partitions stay
    process-local — they cannot cross the pool boundary.
    """
    check_join_inputs(trees, tau)
    cfg = (config or PartSJConfig()).resolved()
    workers = cfg.workers
    serial_cfg = replace(cfg, workers=1)
    if workers <= 1 or len(trees) < 2:
        return partsj_join(trees, tau, serial_cfg, prepared=prepared)

    plan_start = time.perf_counter()
    collection = (
        prepared.collection if prepared is not None
        else SizeSortedCollection(trees)
    )
    plans = plan_shards(collection, tau, workers)
    plan_time = time.perf_counter() - plan_start
    if len(plans) <= 1:
        return partsj_join(trees, tau, serial_cfg, prepared=prepared)

    stats = JoinStats(method="PRT", tau=tau, tree_count=len(trees))
    with open_pool(trees, tau, workers, config=serial_cfg) as pool:
        stage_start = time.perf_counter()
        shard_results: list[ShardResult] = pool.map(run_shard, plans)
        candidate_pairs = _merge_candidates(shard_results)
        candidate_wall = time.perf_counter() - stage_start
        pairs, verify_stats = parallel_verify(
            trees, tau, candidate_pairs, workers, pool=pool
        )

    counters = {key: 0 for key in _COUNTER_KEYS}
    for result in shard_results:
        for key in _COUNTER_KEYS:
            counters[key] += result.counters[key]
    stats.candidates = len(candidate_pairs)
    stats.probe_time = sum(r.probe_time for r in shard_results)
    stats.index_time = sum(r.index_time + r.band_time for r in shard_results)
    stats.candidate_time = stats.probe_time + stats.index_time
    stats.ted_calls = verify_stats["ted_calls"]
    stats.verify_time = verify_stats["verify_time"]
    stats.results = len(pairs)
    stats.pairs_considered = counters["probe_hits"] + counters["small_pool_pairs"]
    stats.extra = counters
    # Serial-equivalent index totals: owned subgraphs only (one index entry
    # per subgraph); the per-shard totals below include the handoff-band
    # duplicates, i.e. the sharding overhead.
    stats.extra["total_indexed_subgraphs"] = counters["subgraphs_built"]
    stats.extra["total_index_entries"] = counters["subgraphs_built"]
    stats.extra["shard_index_entries"] = sum(r.index_entries for r in shard_results)
    for key in ("lb_filtered", "ub_accepted", "ted_early_exits"):
        stats.extra[key] = verify_stats[key]
    stats.extra["workers"] = workers
    stats.extra["shards"] = [r.timing_summary() for r in shard_results]
    stats.extra["band_time"] = round(sum(r.band_time for r in shard_results), 6)
    stats.extra["plan_time"] = round(plan_time, 6)
    stats.extra["candidate_wall_time"] = round(candidate_wall, 6)
    stats.extra["verify_wall_time"] = round(verify_stats["verify_wall_time"], 6)
    stats.extra["verify_chunks"] = verify_stats["verify_chunks"]
    # parallel_verify already returns canonical (i, j)-sorted pairs.
    return JoinResult(pairs=pairs, stats=stats)
