"""``repro.parallel``: the sharded multiprocess join executor.

Scales the size-sorted join loop across worker processes while keeping
results bit-identical to the serial engine:

- :mod:`~repro.parallel.sharding` — cost-balanced shard planning over the
  collection's size histogram, with the tau-wide handoff band that makes
  shards independent (``ShardPlan`` / ``ShardResult`` protocol);
- :mod:`~repro.parallel.executor` — pool lifecycle, the two-stage
  candidate-generation + verification run, deterministic stats merge;
- :mod:`~repro.parallel.verify_pool` — chunked parallel verification
  usable by every join method, not just PartSJ, plus the background
  ``StreamVerifyPool`` the streaming engine hands its candidates to;
- :mod:`~repro.parallel.worker` — per-process state (lazily parsed
  collection, persistent ``Verifier``; for streaming, an append-only
  ``GrowingTreeStore``) and the task functions.

The streaming hooks: :class:`~repro.parallel.sharding.ShardPlanner`
re-plans shard boundaries lazily as a growing collection's size
histogram changes, and :class:`~repro.parallel.verify_pool.StreamVerifyPool`
verifies streamed candidates in the background (see :mod:`repro.stream`).

Entry points: ``similarity_join(..., workers=N)``,
``PartSJConfig(workers=N)``, ``StreamingJoin(..., workers=N)``, or the
CLI's ``--workers``.
"""

from repro.parallel.executor import open_pool, parallel_partsj_join
from repro.parallel.sharding import (
    ShardPlan,
    ShardPlanner,
    ShardResult,
    estimated_probe_cost,
    plan_shards,
)
from repro.parallel.verify_pool import (
    StreamVerifyPool,
    chunk_pairs,
    parallel_verify,
)

__all__ = [
    "ShardPlan",
    "ShardPlanner",
    "ShardResult",
    "estimated_probe_cost",
    "plan_shards",
    "open_pool",
    "parallel_partsj_join",
    "chunk_pairs",
    "parallel_verify",
    "StreamVerifyPool",
]
