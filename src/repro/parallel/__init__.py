"""``repro.parallel``: the sharded multiprocess join executor.

Scales the size-sorted join loop across worker processes while keeping
results bit-identical to the serial engine:

- :mod:`~repro.parallel.sharding` — cost-balanced shard planning over the
  collection's size histogram, with the tau-wide handoff band that makes
  shards independent (``ShardPlan`` / ``ShardResult`` protocol);
- :mod:`~repro.parallel.executor` — pool lifecycle, the two-stage
  candidate-generation + verification run, deterministic stats merge;
- :mod:`~repro.parallel.verify_pool` — chunked parallel verification
  usable by every join method, not just PartSJ;
- :mod:`~repro.parallel.worker` — per-process state (lazily parsed
  collection, persistent ``Verifier``) and the task functions.

Entry points: ``similarity_join(..., workers=N)``,
``PartSJConfig(workers=N)``, or the CLI's ``--workers``.
"""

from repro.parallel.executor import open_pool, parallel_partsj_join
from repro.parallel.sharding import (
    ShardPlan,
    ShardResult,
    estimated_probe_cost,
    plan_shards,
)
from repro.parallel.verify_pool import chunk_pairs, parallel_verify

__all__ = [
    "ShardPlan",
    "ShardResult",
    "estimated_probe_cost",
    "plan_shards",
    "open_pool",
    "parallel_partsj_join",
    "chunk_pairs",
    "parallel_verify",
]
