"""Per-process state and task functions for the parallel join workers.

Worker processes receive the collection **once**, through the pool
initializer, as bracket-notation strings (compact, picklable, and
identical under fork and spawn start methods); trees are re-parsed lazily
— a candidate-generation worker only ever materializes its shard plus
handoff band, a verification worker only the trees named by its pair
chunks.  Task payloads then stay small: a :class:`~.sharding.ShardPlan`
going in, a :class:`~.sharding.ShardResult` (or verified chunk) coming
back.

The verification engine (:class:`repro.baselines.common.Verifier`) is
created once per process on first use and kept for the rest of the pool's
life, so its per-tree annotation and feature caches amortize across
chunks exactly as they do across candidates in a serial run.
"""

from __future__ import annotations

import itertools
import os
import time
from collections.abc import Sequence
from typing import Optional

from repro.baselines.common import Verifier
from repro.core.join import PartSJConfig, ShardDriver
from repro.errors import InvalidInputTypeError, WorkerStateError
from repro.obs.trace import span_dict
from repro.parallel.sharding import ShardPlan, ShardResult
from repro.resilience.faults import FaultInjector, corrupt_envelope, seal
from repro.tree.bracket import parse_bracket
from repro.tree.node import Tree

__all__ = [
    "LazyTreeList",
    "execute_shard",
    "init_worker",
    "init_stream_worker",
    "run_shard",
    "run_shard_task",
    "verify_chunk",
    "verify_chunk_task",
    "verify_pairs",
    "verify_stream_chunk",
    "verify_stream_chunk_task",
]


# Worker-side span ids: unique per (process, counter).  Span capture is
# unconditional — a handful of dicts per shard/chunk, relayed inside the
# sealed result envelope — and the coordinator drops them when tracing
# is off, so no trace flag needs to cross the pool boundary.
_SPAN_SEQ = itertools.count(1)


def _span_id(prefix: str) -> str:
    return f"{prefix}-{os.getpid():x}-{next(_SPAN_SEQ)}"


class LazyTreeList(Sequence):
    """A tree collection parsed on demand from bracket strings.

    Quacks enough like ``Sequence[Tree]`` for :class:`ShardDriver` and
    :class:`Verifier`, which only ever index by integer; a worker thus
    pays parsing cost only for the trees its tasks actually touch.
    """

    __slots__ = ("_brackets", "_trees")

    def __init__(self, brackets: Sequence[str]):
        self._brackets = brackets
        self._trees: list[Optional[Tree]] = [None] * len(brackets)

    def __len__(self) -> int:
        return len(self._brackets)

    def __getitem__(self, index: int) -> Tree:
        if not isinstance(index, int):
            raise InvalidInputTypeError(
                "LazyTreeList supports integer indexing only"
            )
        tree = self._trees[index]
        if tree is None:
            tree = self._trees[index] = parse_bracket(self._brackets[index])
        return tree


class _WorkerState:
    """Everything a worker process holds between tasks."""

    def __init__(
        self,
        brackets: Sequence[str],
        tau: int,
        config: Optional[PartSJConfig],
        verifier_options: Optional[dict],
        injector: Optional[FaultInjector] = None,
    ):
        self.trees = LazyTreeList(brackets)
        self.tau = tau
        self.config = config
        self.verifier_options = verifier_options or {}
        self.injector = injector
        self._verifier: Optional[Verifier] = None

    @property
    def verifier(self) -> Verifier:
        if self._verifier is None:
            self._verifier = Verifier(self.trees, self.tau, **self.verifier_options)
        return self._verifier


_STATE: Optional[_WorkerState] = None


def init_worker(
    brackets: Sequence[str],
    tau: int,
    config: Optional[PartSJConfig] = None,
    verifier_options: Optional[dict] = None,
    injector: Optional[FaultInjector] = None,
) -> None:
    """Pool initializer: install the collection in this worker process."""
    global _STATE
    _STATE = _WorkerState(brackets, tau, config, verifier_options, injector)


def _require_state() -> _WorkerState:
    if _STATE is None:  # pragma: no cover - misuse guard
        raise WorkerStateError(
            "worker state not initialized; the pool must be created with "
            "initializer=init_worker"
        )
    return _STATE


def execute_shard(
    trees: Sequence,
    tau: int,
    config: Optional[PartSJConfig],
    plan: ShardPlan,
) -> ShardResult:
    """Candidate generation for one shard, against any tree sequence.

    Band trees are insert-only and strictly precede the owned trees in
    the sorted order, so one linear pass over ``band`` then ``owned``
    reproduces the serial loop's state for every owned probe (the
    handoff-band invariant of :mod:`repro.core.join`).  The driver's
    output is a pure function of ``(trees, tau, config, plan)``, so the
    same shard re-executed anywhere — a retried worker, or the parent
    process during graceful degradation — yields the identical result.
    """
    started = time.perf_counter()
    driver = ShardDriver(trees, tau, config)
    for i in plan.band:
        driver.insert_only(i)
    candidates: list[tuple[int, int]] = []
    for i in plan.owned:
        found, _ = driver.ingest(i)
        for j in found:
            candidates.append((i, j))
    wall_time = time.perf_counter() - started
    # Observability relay: one shard span plus its phase attribution,
    # shipped back through the sealed envelope (see ShardResult.spans).
    shard_span = _span_id(f"shard{plan.shard_id}")
    spans = [
        span_dict(
            f"shard:{plan.shard_id}", started, wall_time, shard_span,
            owned=len(plan.owned), band=len(plan.band),
            candidates=len(candidates),
        ),
        span_dict("partsj.band", started, driver.band_time,
                  _span_id("band"), parent_id=shard_span,
                  band_trees=driver.counters.band_trees),
        span_dict("partsj.probe", started, driver.probe_time,
                  _span_id("probe"), parent_id=shard_span,
                  probe_hits=driver.counters.probe_hits),
        span_dict("partsj.index", started, driver.index_time,
                  _span_id("index"), parent_id=shard_span,
                  subgraphs=driver.counters.subgraphs_built),
    ]
    return ShardResult(
        shard_id=plan.shard_id,
        candidates=candidates,
        counters=driver.counters.as_dict(),
        probe_time=driver.probe_time,
        index_time=driver.index_time,
        band_time=driver.band_time,
        wall_time=wall_time,
        indexed_subgraphs=driver.index.total_subgraphs,
        index_entries=driver.index.total_entries,
        owned_count=len(plan.owned),
        band_count=len(plan.band),
        lo=plan.lo,
        hi=plan.hi,
        spans=spans,
    )


def run_shard(plan: ShardPlan) -> ShardResult:
    """:func:`execute_shard` over this worker's installed collection."""
    state = _require_state()
    return execute_shard(state.trees, state.tau, state.config, plan)


def run_shard_task(task: tuple) -> tuple:
    """Supervised shard task: ``(task_id, attempt, plan)`` → sealed result.

    Entry point of :class:`repro.resilience.PoolSupervisor` dispatch —
    applies any injected fault for this ``(task, attempt)``, runs the
    shard, and seals the result with an integrity CRC so the supervisor
    can detect corruption in transit.
    """
    task_id, attempt, plan = task
    state = _require_state()
    if state.injector is not None:
        state.injector.fire(task_id, attempt)
    envelope = seal(run_shard(plan))
    if state.injector is not None and state.injector.corrupts(task_id, attempt):
        envelope = corrupt_envelope(envelope)
    return envelope


def verify_pairs(
    verifier: Verifier, pairs: Sequence[tuple[int, int]]
) -> tuple[list[tuple[int, int, int]], dict]:
    """Verify ``pairs`` on ``verifier``; return accepted triples + deltas.

    The one shared verification loop of every execution path — batch
    worker chunks, streamed chunks, and the parent-side degradation
    fallbacks — so per-pair outcomes (and the stat deltas) are identical
    wherever a chunk ends up running.
    """
    calls_before = verifier.stats_ted_calls
    time_before = verifier.stats_time
    lb_before = verifier.stats_lb_filtered
    ub_before = verifier.stats_ub_accepted
    early_before = verifier.stats_ted_early_exits
    accepted: list[tuple[int, int, int]] = []
    for i, j in pairs:
        distance = verifier.verify(i, j)
        if distance is not None:
            lo, hi = (i, j) if i < j else (j, i)
            accepted.append((lo, hi, distance))
    stats = {
        "ted_calls": verifier.stats_ted_calls - calls_before,
        "verify_time": verifier.stats_time - time_before,
        "lb_filtered": verifier.stats_lb_filtered - lb_before,
        "ub_accepted": verifier.stats_ub_accepted - ub_before,
        "ted_early_exits": verifier.stats_ted_early_exits - early_before,
    }
    return accepted, stats


def verify_chunk(
    chunk: Sequence[tuple[int, int]],
) -> tuple[list[tuple[int, int, int]], dict]:
    """Verify one batch of candidate pairs (runs inside a worker process).

    Returns the accepted ``(i, j, distance)`` triples (``i < j``) and the
    chunk's verification-stat deltas; per-pair outcomes are independent of
    batching, so any chunking of the same pair set merges to identical
    totals.  The delta additionally carries this chunk's observability
    span under ``"spans"`` — relayed through the sealed envelope, grafted
    by the coordinator when tracing is on, ignored by the stat merge
    either way (it never reaches ``JoinStats``).
    """
    state = _require_state()
    started = time.perf_counter()
    accepted, delta = verify_pairs(state.verifier, chunk)
    delta["spans"] = [
        span_dict("verify.chunk", started, time.perf_counter() - started,
                  _span_id("vchunk"), pairs=len(chunk),
                  ted_calls=delta["ted_calls"]),
    ]
    return accepted, delta


def verify_chunk_task(task: tuple) -> tuple:
    """Supervised verify task: ``(task_id, attempt, chunk)`` → sealed result."""
    task_id, attempt, chunk = task
    state = _require_state()
    if state.injector is not None:
        state.injector.fire(task_id, attempt)
    envelope = seal(verify_chunk(chunk))
    if state.injector is not None and state.injector.corrupts(task_id, attempt):
        envelope = corrupt_envelope(envelope)
    return envelope


# ---------------------------------------------------------------------------
# Streaming verification workers
# ---------------------------------------------------------------------------
#
# A streaming join cannot ship "the collection" through the pool
# initializer — it does not exist yet when the pool starts.  Instead each
# task carries the bracket strings of exactly the trees its pairs
# reference; the worker files them in a per-process append-only store, so
# a tree revisited by later chunks (a near-duplicate cluster member, say)
# is parsed once and its Verifier caches stay warm for the pool's life.


class GrowingTreeStore(Sequence):
    """An append-only, lazily parsed tree store indexed by arrival position.

    The streaming counterpart of :class:`LazyTreeList`: brackets arrive
    incrementally (with each task) instead of all at once, and indices
    may be sparse from any single worker's point of view — a worker only
    ever holds the trees its own chunks referenced.
    """

    __slots__ = ("_brackets", "_trees")

    def __init__(self) -> None:
        self._brackets: dict[int, str] = {}
        self._trees: dict[int, Tree] = {}

    def update(self, brackets: dict[int, str]) -> None:
        """File newly shipped brackets (never overwrites an earlier one)."""
        for index, bracket in brackets.items():
            self._brackets.setdefault(index, bracket)

    def __len__(self) -> int:
        return len(self._brackets)

    def __getitem__(self, index: int) -> Tree:
        if not isinstance(index, int):
            raise InvalidInputTypeError(
                "GrowingTreeStore supports integer indexing only"
            )
        tree = self._trees.get(index)
        if tree is None:
            tree = self._trees[index] = parse_bracket(self._brackets[index])
        return tree


class _StreamWorkerState:
    """Per-process state of a streaming verification worker."""

    def __init__(
        self,
        tau: int,
        verifier_options: Optional[dict],
        injector: Optional[FaultInjector] = None,
    ):
        self.store = GrowingTreeStore()
        self.verifier = Verifier(self.store, tau, **(verifier_options or {}))
        self.injector = injector


_STREAM_STATE: Optional[_StreamWorkerState] = None


def init_stream_worker(
    tau: int,
    verifier_options: Optional[dict] = None,
    injector: Optional[FaultInjector] = None,
) -> None:
    """Pool initializer for streaming verification workers."""
    global _STREAM_STATE
    _STREAM_STATE = _StreamWorkerState(tau, verifier_options, injector)


def verify_stream_chunk(
    task: tuple[dict[int, str], Sequence[tuple[int, int]]],
) -> tuple[list[tuple[int, int, int]], dict]:
    """Verify one streamed candidate chunk (runs inside a worker process).

    ``task`` is ``(brackets, pairs)``: the bracket strings of every tree
    the pairs reference plus the pairs themselves.  Returns the accepted
    ``(i, j, distance)`` triples (``i < j``) and this chunk's
    verification-stat deltas — per-pair outcomes are independent of
    batching and of which worker ran them, so any routing of the same
    pair set merges to results identical to inline verification.
    """
    if _STREAM_STATE is None:  # pragma: no cover - misuse guard
        raise WorkerStateError(
            "stream worker state not initialized; the pool must be created "
            "with initializer=init_stream_worker"
        )
    brackets, pairs = task
    state = _STREAM_STATE
    state.store.update(brackets)
    started = time.perf_counter()
    accepted, delta = verify_pairs(state.verifier, pairs)
    delta["spans"] = [
        span_dict("verify.stream_chunk", started,
                  time.perf_counter() - started, _span_id("schunk"),
                  pairs=len(pairs), ted_calls=delta["ted_calls"]),
    ]
    return accepted, delta


def verify_stream_chunk_task(task: tuple) -> tuple:
    """Supervised streamed-verify task → sealed result.

    ``task`` is ``(task_id, brackets, pairs)``; streamed submissions are
    never re-dispatched to a pool (a failed one degrades straight to the
    parent-side fallback), so the attempt number is always 1.
    """
    task_id, brackets, pairs = task
    if _STREAM_STATE is None:  # pragma: no cover - misuse guard
        raise WorkerStateError(
            "stream worker state not initialized; the pool must be created "
            "with initializer=init_stream_worker"
        )
    injector = _STREAM_STATE.injector
    if injector is not None:
        injector.fire(task_id, 1)
    envelope = seal(verify_stream_chunk((brackets, pairs)))
    if injector is not None and injector.corrupts(task_id, 1):
        envelope = corrupt_envelope(envelope)
    return envelope
