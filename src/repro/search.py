"""Similarity search: one query tree against a collection (paper Section 1).

``similarity_search(query, trees, tau)`` returns all collection trees within
TED ``tau`` of the query.  The implementation reuses the PartSJ machinery in
the search direction the paper describes for its index: the *query* is
partitioned into ``2*tau + 1`` subgraphs, and a collection tree can only be
similar if (a) its size is within ``tau`` of the query's and (b) when the
query is the size-wise larger side, at least one subgraph of the candidate
would survive — here evaluated directly by matching each collection tree's
partition against the query (Lemma 2 with the candidate as ``T_B1``).

For one-off searches this filter pays off once the collection is reused:
:class:`SimilaritySearcher` partitions and indexes the collection per
``tau`` lazily and can then serve many queries.

The candidate-generation steps are factored into overridable hooks
(``_forward_candidates`` / ``_upper_candidates`` / ``_size_window``):
:class:`repro.stream.searcher.StreamSearcher` reuses the search loop
verbatim over a :class:`~repro.stream.engine.StreamingJoin`'s live index
— the warm-index service path, which additionally *filters* the
larger-than-query side through the reverse node-twig index instead of
this module's verify-the-window fallback.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.baselines.common import Verifier
from repro.core.index import InvertedSizeIndex, probe_all_packed
from repro.core.intern import LabelInterner, search_keys
from repro.core.join import PartSJConfig
from repro.core.partition import (
    extract_partition,
    max_min_size_cached,
    min_partitionable_size,
)
from repro.core.subgraph import MatchSemantics
from repro.core.treecache import TreeCache
from repro.errors import InvalidParameterError
from repro.tree.node import Tree

__all__ = ["SearchHit", "SimilaritySearcher", "similarity_search"]


@dataclass(frozen=True)
class SearchHit:
    """One search result: collection index and exact distance."""

    index: int
    distance: int


class SimilaritySearcher:
    """Reusable searcher over a fixed collection.

    Parameters
    ----------
    trees:
        The collection to search.
    tau:
        The TED threshold all queries will use.
    config:
        PartSJ filter configuration (defaults to the exact-safe one).
    """

    def __init__(
        self,
        trees: Sequence[Tree],
        tau: int,
        config: Optional[PartSJConfig] = None,
    ):
        if tau < 0:
            raise InvalidParameterError(f"tau must be >= 0, got {tau}")
        self.trees = trees
        self.tau = tau
        self.config = (config or PartSJConfig()).resolved()
        self._index = InvertedSizeIndex(tau, self.config.postorder_filter)
        self._min_size = min_partitionable_size(tau)
        self._small: list[int] = []  # indices of unpartitionable trees
        self._sizes_sorted: list[tuple[int, int]] = sorted(
            (tree.size, i) for i, tree in enumerate(trees)
        )
        # One interner per searcher bounds the packed-key label budget to
        # this collection; queries intern into the same table.
        self._interner = LabelInterner()
        delta = 2 * tau + 1
        gamma_hint = None  # warm-start: near-duplicate trees share gamma
        for i, tree in enumerate(trees):
            if tree.size >= self._min_size:
                cache = TreeCache(tree, interner=self._interner)
                gamma = max_min_size_cached(cache, delta, hint=gamma_hint)
                gamma_hint = gamma
                subgraphs = extract_partition(
                    cache, i, delta, gamma, self.config.postorder_numbering,
                    check=False,
                )
                self._index.insert_all(tree.size, subgraphs)
            else:
                self._small.append(i)

    def _size_window(self, size: int) -> list[int]:
        """Indices of collection trees with size within ``tau`` of ``size``."""
        lo = bisect.bisect_left(self._sizes_sorted, (size - self.tau, -1))
        hi = bisect.bisect_right(self._sizes_sorted, (size + self.tau, len(self.trees)))
        return [i for _, i in self._sizes_sorted[lo:hi]]

    def _forward_candidates(self, cache: TreeCache, candidates: set[int]) -> None:
        """Probe the query's nodes against the indexed partitions.

        Finds collection trees small enough that their partition must
        leave a subgraph inside the query (``|Tj| <= |query|``, Lemma 2
        with the collection tree as the partitioned side).
        """
        tau = self.tau
        n = cache.size
        semantics: MatchSemantics = self.config.semantics  # type: ignore[assignment]
        probe_sizes = [
            self._index.for_size(size)
            for size in range(max(self._min_size, n - tau), n + 1)
        ]
        probe_sizes = [idx for idx in probe_sizes if idx is not None and idx.count]
        if not probe_sizes:
            return
        labels, left, right = cache.labels, cache.left, cache.right
        general = self.config.postorder_numbering == "general"
        general_post = cache.general_post
        strict = semantics is MatchSemantics.PAPER
        for b in range(1, n + 1):
            p = general_post[b] if general else b
            child = left[b]
            ll = labels[child] if child else 0
            child = right[b]
            rl = labels[child] if child else 0
            twig_keys = search_keys(labels[b], ll, rl)
            for subgraph in probe_all_packed(probe_sizes, p, twig_keys):
                if subgraph.owner in candidates:
                    continue
                if subgraph.matches_at_number(cache, b, strict):
                    candidates.add(subgraph.owner)

    def _upper_candidates(self, cache: TreeCache, candidates: set[int]) -> None:
        """Candidates the query-side probe cannot prune.

        For the batch searcher these are taken unfiltered from the size
        window: collection trees *larger* than the query (the roles of
        Lemma 2 are reversed and this index has no reverse layer) and
        trees too small to partition.  The streaming searcher overrides
        this with a reverse-index filter (:mod:`repro.stream.searcher`).
        """
        n = cache.size
        for i in self._size_window(n):
            if self.trees[i].size > n or self.trees[i].size < self._min_size:
                candidates.add(i)

    def search(self, query: Tree) -> list[SearchHit]:
        """All collection trees with ``TED(query, tree) <= tau``."""
        candidates: set[int] = set()
        cache = TreeCache(query, interner=self._interner)
        self._forward_candidates(cache, candidates)
        self._upper_candidates(cache, candidates)

        verifier = Verifier(list(self.trees) + [query], self.tau)
        query_index = len(self.trees)
        hits = []
        for i in sorted(candidates):
            distance = verifier.verify(i, query_index)
            if distance is not None:
                hits.append(SearchHit(index=i, distance=distance))
        return hits


def similarity_search(
    query: Tree,
    trees: Sequence[Tree],
    tau: int,
    config: Optional[PartSJConfig] = None,
) -> list[SearchHit]:
    """One-shot similarity search (builds a searcher and discards it).

    >>> trees = [Tree.from_bracket(s) for s in ("{a{b}{c}}", "{x{y{z}}}")]
    >>> [h.index for h in similarity_search(Tree.from_bracket("{a{b}}"), trees, 1)]
    [0]
    """
    return SimilaritySearcher(trees, tau, config).search(query)
