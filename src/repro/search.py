"""Similarity search: one query tree against a collection (paper Section 1).

``similarity_search(query, trees, tau)`` returns all collection trees within
TED ``tau`` of the query.  The implementation reuses the PartSJ machinery in
the search direction the paper describes for its index: the *query* is
partitioned into ``2*tau + 1`` subgraphs, and a collection tree can only be
similar if (a) its size is within ``tau`` of the query's and (b) when the
query is the size-wise larger side, at least one subgraph of the candidate
would survive — here evaluated directly by matching each collection tree's
partition against the query (Lemma 2 with the candidate as ``T_B1``).

:class:`SimilaritySearcher` consumes a prepared
:class:`repro.session.TreeCollection`: the sorted order, interner, tree
caches, per-tau partitions and the fully populated two-layer index all
come from the session's ``prepare(tau, config)`` artifact, so a searcher
over an already-joined collection builds nothing, and many searchers
(one per tau) share one collection's caches.  Passing a plain tree
sequence still works — a one-shot session is created behind the scenes —
and :func:`similarity_search` stays as the one-call shim over exactly
that.

The candidate-generation steps are factored into overridable hooks
(``_forward_candidates`` / ``_upper_candidates`` / ``_size_window``):
:class:`repro.stream.searcher.StreamSearcher` reuses the search loop
verbatim over a :class:`~repro.stream.engine.StreamingJoin`'s live index
— the warm-index service path, which additionally *filters* the
larger-than-query side through the reverse node-twig index instead of
this module's verify-the-window fallback.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.baselines.common import Verifier, VerifierCaches
from repro.core.index import probe_all_packed
from repro.core.intern import search_keys
from repro.core.join import PartSJConfig
from repro.core.subgraph import MatchSemantics
from repro.core.treecache import TreeCache
from repro.params import check_tau
from repro.tree.node import Tree

__all__ = ["SearchHit", "SimilaritySearcher", "similarity_search"]


@dataclass(frozen=True)
class SearchHit:
    """One search result: collection index and exact distance."""

    index: int
    distance: int


class _QueryLocalDict:
    """A verifier-cache view that keeps one key private per search.

    Collection-tree entries read from and write through to the session's
    shared dict (so annotation/feature work accumulates across queries at
    O(1) per access), while the query's borrowed index — ``len(trees)``,
    which every search reuses — lives in a per-search slot that never
    touches shared state.  Supports exactly the operations
    :class:`~repro.baselines.common.Verifier` performs: ``get`` and item
    assignment.
    """

    __slots__ = ("_shared", "_query_index", "_query_value")

    def __init__(self, shared: dict, query_index: int):
        self._shared = shared
        self._query_index = query_index
        self._query_value = None

    def get(self, key, default=None):
        if key == self._query_index:
            value = self._query_value
            return value if value is not None else default
        return self._shared.get(key, default)

    def __setitem__(self, key, value) -> None:
        if key == self._query_index:
            self._query_value = value
        else:
            self._shared[key] = value


class _QueryLocalCaches:
    """Per-search :class:`VerifierCaches` facade over the shared ones."""

    __slots__ = ("annotated", "mirrored", "features")

    def __init__(self, shared: VerifierCaches, query_index: int):
        self.annotated = _QueryLocalDict(shared.annotated, query_index)
        self.mirrored = _QueryLocalDict(shared.mirrored, query_index)
        self.features = _QueryLocalDict(shared.features, query_index)


class SimilaritySearcher:
    """Reusable searcher over a prepared collection.

    Parameters
    ----------
    trees:
        The collection to search: a :class:`repro.session.TreeCollection`
        (its ``prepare(tau, config)`` artifacts — partitions, two-layer
        index, interner, caches — are consumed, not rebuilt) or a plain
        tree sequence (a one-shot session is created internally).
    tau:
        The TED threshold all queries will use.
    config:
        PartSJ filter configuration (defaults to the exact-safe one).
    """

    # Overridden per instance when constructed from a session; the
    # streaming subclass (which skips this constructor) inherits None and
    # keeps its historical per-search verifier behavior.
    _verifier_caches = None

    def __init__(
        self,
        trees: "Sequence[Tree]",
        tau: int,
        config: Optional[PartSJConfig] = None,
    ):
        # Deferred import: the session module imports this one.
        from repro.session import TreeCollection

        check_tau(tau)
        if isinstance(trees, TreeCollection):
            collection = trees
        else:
            collection = TreeCollection.from_trees(trees)
        prep = collection.prepare(tau, config)
        self.collection = collection
        self.trees = collection.trees
        self.tau = tau
        self.config = prep.config
        self._index = prep.search_index()
        self._min_size = prep.min_size
        self._small: list[int] = list(prep.small)  # unpartitionable trees
        # Ascending (size, original index); the batch hooks bisect it.
        self._sizes_sorted: list[tuple[int, int]] = list(
            zip(collection.sorted.sizes, collection.sorted.order)
        )
        # The collection-wide interner; queries intern into the same table.
        self._interner = collection.interner
        self._verifier_caches = collection.verifier_caches

    def _size_window(self, size: int) -> list[int]:
        """Indices of collection trees with size within ``tau`` of ``size``."""
        lo = bisect.bisect_left(self._sizes_sorted, (size - self.tau, -1))
        hi = bisect.bisect_right(self._sizes_sorted, (size + self.tau, len(self.trees)))
        return [i for _, i in self._sizes_sorted[lo:hi]]

    def _forward_candidates(self, cache: TreeCache, candidates: set[int]) -> None:
        """Probe the query's nodes against the indexed partitions.

        Finds collection trees small enough that their partition must
        leave a subgraph inside the query (``|Tj| <= |query|``, Lemma 2
        with the collection tree as the partitioned side).
        """
        tau = self.tau
        n = cache.size
        semantics: MatchSemantics = self.config.semantics  # type: ignore[assignment]
        probe_sizes = [
            self._index.for_size(size)
            for size in range(max(self._min_size, n - tau), n + 1)
        ]
        probe_sizes = [idx for idx in probe_sizes if idx is not None and idx.count]
        if not probe_sizes:
            return
        labels, left, right = cache.labels, cache.left, cache.right
        general = self.config.postorder_numbering == "general"
        general_post = cache.general_post
        strict = semantics is MatchSemantics.PAPER
        for b in range(1, n + 1):
            p = general_post[b] if general else b
            child = left[b]
            ll = labels[child] if child else 0
            child = right[b]
            rl = labels[child] if child else 0
            twig_keys = search_keys(labels[b], ll, rl)
            for subgraph in probe_all_packed(probe_sizes, p, twig_keys):
                if subgraph.owner in candidates:
                    continue
                if subgraph.matches_at_number(cache, b, strict):
                    candidates.add(subgraph.owner)

    def _upper_candidates(self, cache: TreeCache, candidates: set[int]) -> None:
        """Candidates the query-side probe cannot prune.

        For the batch searcher these are taken unfiltered from the size
        window: collection trees *larger* than the query (the roles of
        Lemma 2 are reversed and this index has no reverse layer) and
        trees too small to partition.  The streaming searcher overrides
        this with a reverse-index filter (:mod:`repro.stream.searcher`).
        """
        n = cache.size
        for i in self._size_window(n):
            if self.trees[i].size > n or self.trees[i].size < self._min_size:
                candidates.add(i)

    def search(self, query: Tree) -> list[SearchHit]:
        """All collection trees with ``TED(query, tree) <= tau``."""
        candidates: set[int] = set()
        cache = TreeCache(query, interner=self._interner)
        self._forward_candidates(cache, candidates)
        self._upper_candidates(cache, candidates)

        shared = self._verifier_caches
        query_index = len(self.trees)
        if shared is None:
            caches = None
        else:
            # The query borrows index len(trees), which every search
            # reuses — route it to a per-search slot while collection
            # entries keep reading/writing the shared dicts directly.
            caches = _QueryLocalCaches(shared, query_index)
        verifier = Verifier(
            list(self.trees) + [query], self.tau, caches=caches,
            backend=self.config.backend,
        )
        hits = []
        for i in sorted(candidates):
            distance = verifier.verify(i, query_index)
            if distance is not None:
                hits.append(SearchHit(index=i, distance=distance))
        return hits


def similarity_search(
    query: Tree,
    trees: Sequence[Tree],
    tau: int,
    config: Optional[PartSJConfig] = None,
) -> list[SearchHit]:
    """One-shot similarity search (a shim: prepares a session, discards it).

    For many queries over one collection, prepare once instead:
    ``TreeCollection.from_trees(trees).searcher(tau)`` (or per-query
    ``col.search(query, tau).run()``).

    >>> trees = [Tree.from_bracket(s) for s in ("{a{b}{c}}", "{x{y{z}}}")]
    >>> [h.index for h in similarity_search(Tree.from_bracket("{a{b}}"), trees, 1)]
    [0]
    """
    from repro.api import _warn_shim
    from repro.session import TreeCollection

    _warn_shim("similarity_search")
    return (
        TreeCollection.from_trees(trees).search(query, tau, config=config).run()
    )
