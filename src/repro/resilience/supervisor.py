"""Supervised task dispatch over a respawnable multiprocessing pool.

:class:`PoolSupervisor` replaces bare ``pool.map`` in the parallel
execution tiers.  For each batch of tasks it:

1. dispatches every task asynchronously (``apply_async``) and collects
   results as they complete, verifying each sealed envelope's CRC
   (:func:`repro.resilience.faults.unseal`);
2. watches for failures — a remote exception, a corrupt envelope, a
   per-task timeout (:class:`~repro.resilience.policy.RetryPolicy`), or a
   **dead worker** (the pool's worker pids are health-checked every poll;
   a pid change means a process died mid-task and its result will never
   arrive);
3. on any failure, terminates and **respawns the pool** (a crashed worker
   may have corrupted the shared queues; a hung one permanently occupies
   a slot), then retries the failed tasks with deterministic backoff;
4. after a task's attempts are exhausted, falls back to **graceful
   degradation**: the task's ``fallback`` callable re-executes it
   serially in the parent process — fault injection does not apply there,
   so a join completes with bit-identical results no matter what was
   injected.  With ``RetryPolicy(degradation=False)`` the failure
   escapes as :class:`~repro.errors.WorkerFailureError` or
   :class:`~repro.errors.TaskTimeoutError` instead.

Every event is accounted in :attr:`PoolSupervisor.stats` — ``retries``,
``worker_failures``, ``timeouts``, ``degraded_serial_tasks`` and a
``fault_events`` trail — which the executors surface through
``JoinStats.extra``.

Determinism: task payloads are pure functions of their arguments, so
whichever path a task completes through (first try, retry on a fresh
pool, or serial degradation) its result is identical; the supervisor
reassembles results in the original task order.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, Sequence

from repro.errors import TaskTimeoutError, WorkerFailureError
from repro.resilience.faults import unseal
from repro.resilience.policy import RetryPolicy

__all__ = ["PoolSupervisor", "shutdown_pool"]

# Seconds between completion polls while a batch is in flight.
_POLL_INTERVAL = 0.02

# Grace after a worker death before the still-unfinished tasks of the
# batch are declared lost: completions that were already in the result
# queue get collected, while the task that died mid-flight cannot finish
# and should not be waited on for a full timeout.
_DEATH_GRACE = 0.25

# Bound on pool.join() during shutdown; past it the workers get SIGKILL.
_JOIN_TIMEOUT = 5.0


def shutdown_pool(pool, join_timeout: float = _JOIN_TIMEOUT) -> None:
    """Terminate ``pool`` and join it with a bound.

    ``Pool.join()`` has no timeout and a worker wedged in uninterruptible
    code can ignore the SIGTERM that ``terminate()`` sends, hanging
    cleanup forever.  The join therefore runs in a daemon thread; if it
    misses the deadline the surviving workers are SIGKILLed and the join
    retried (and, in the worst case, abandoned to the daemon thread).
    """
    pool.terminate()
    joiner = threading.Thread(target=pool.join, daemon=True)
    joiner.start()
    joiner.join(join_timeout)
    if joiner.is_alive():
        for process in getattr(pool, "_pool", []) or []:
            try:
                process.kill()
            except Exception:
                pass
        joiner.join(join_timeout)


class PoolSupervisor:
    """Retry/timeout/degradation supervision over a worker pool.

    Parameters
    ----------
    pool_factory:
        Zero-argument callable returning a **fresh, initialized** pool;
        called once up front and again after every failure (respawn).
    policy:
        The :class:`RetryPolicy`; ``None`` uses the defaults.
    """

    def __init__(
        self,
        pool_factory: Callable[[], object],
        policy: Optional[RetryPolicy] = None,
    ):
        self._factory = pool_factory
        self.policy = (policy or RetryPolicy()).validated()
        self._pool = None
        self.stats = {
            "retries": 0,
            "worker_failures": 0,
            "timeouts": 0,
            "degraded_serial_tasks": 0,
            "pool_respawns": 0,
            "fault_events": [],
        }

    # -- lifecycle -----------------------------------------------------------

    @property
    def pool(self):
        if self._pool is None:
            self._pool = self._factory()
        return self._pool

    def _respawn(self) -> None:
        if self._pool is not None:
            shutdown_pool(self._pool)
            self._pool = None
            self.stats["pool_respawns"] += 1
        # Recreated lazily by the next dispatch.

    def close(self) -> None:
        if self._pool is not None:
            shutdown_pool(self._pool)
            self._pool = None

    def __enter__(self) -> "PoolSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- supervised dispatch -------------------------------------------------

    def _worker_pids(self) -> frozenset:
        processes = getattr(self._pool, "_pool", None)
        if not processes:
            return frozenset()
        return frozenset(p.pid for p in processes)

    def _record(self, task_id: str, attempt: int, reason: str, detail: str):
        self.stats["fault_events"].append(
            {
                "task": task_id,
                "attempt": attempt,
                "reason": reason,
                "detail": detail,
            }
        )
        if reason == "timeout":
            self.stats["timeouts"] += 1
        else:
            self.stats["worker_failures"] += 1

    def _round(
        self,
        func: Callable,
        batch: Sequence[tuple],  # (task_id, arg, attempt)
        results: dict,
    ) -> list[tuple]:
        """Dispatch one attempt of every task in ``batch``; return failures.

        A failure is ``(task_id, arg, attempt, reason)`` with ``reason``
        in ``{"timeout", "crash", "corrupt", "error"}``.  Successful
        payloads land in ``results`` keyed by task id.
        """
        pool = self.pool
        timeout = self.policy.task_timeout
        now = time.monotonic()
        deadline = None if timeout is None else now + timeout
        inflight = {}
        for task_id, arg, attempt in batch:
            handle = pool.apply_async(func, ((task_id, attempt, arg),))
            inflight[task_id] = (handle, arg, attempt)
        failures: list[tuple] = []
        known_pids = self._worker_pids()
        death_deadline = None
        while inflight:
            progressed = False
            for task_id in list(inflight):
                handle, arg, attempt = inflight[task_id]
                if not handle.ready():
                    continue
                progressed = True
                del inflight[task_id]
                try:
                    results[task_id] = unseal(handle.get(), task_id)
                except WorkerFailureError as exc:
                    self._record(task_id, attempt, "corrupt", str(exc))
                    failures.append((task_id, arg, attempt, "corrupt"))
                except Exception as exc:
                    self._record(task_id, attempt, "error", repr(exc))
                    failures.append((task_id, arg, attempt, "error"))
            if not inflight:
                break
            now = time.monotonic()
            pids = self._worker_pids()
            if pids != known_pids:
                # A worker died (the pool repopulates, changing the pid
                # set).  Whichever task it was running is lost; give the
                # rest a short grace to surface queued completions, then
                # fail everything still pending.
                known_pids = pids
                if death_deadline is None:
                    death_deadline = now + _DEATH_GRACE
            expired = (
                (deadline is not None and now >= deadline)
                or (death_deadline is not None and now >= death_deadline)
            )
            if expired and not progressed:
                reason = (
                    "timeout"
                    if deadline is not None and now >= deadline
                    else "crash"
                )
                for task_id, (handle, arg, attempt) in inflight.items():
                    self._record(
                        task_id, attempt, reason,
                        "task did not complete before the batch was failed",
                    )
                    failures.append((task_id, arg, attempt, reason))
                inflight.clear()
                break
            if not progressed:
                time.sleep(_POLL_INTERVAL)
        return failures

    def run(
        self,
        func: Callable,
        tasks: Sequence[tuple],  # (task_id, arg)
        fallback: Callable,
    ) -> list:
        """Execute ``func`` over ``tasks`` with supervision.

        ``func`` runs in a worker process and receives one argument —
        the tuple ``(task_id, attempt, arg)`` — returning a **sealed**
        envelope (:func:`repro.resilience.faults.seal`).  ``fallback``
        runs in *this* process and receives ``arg``, returning the bare
        payload; it is the graceful-degradation path.

        Returns the payloads in the order of ``tasks``.
        """
        policy = self.policy
        results: dict = {}
        queue = [(task_id, arg, 1) for task_id, arg in tasks]
        exhausted: list[tuple] = []
        while queue:
            failures = self._round(func, queue, results)
            if not failures:
                break
            # A failed round leaves the pool suspect (dead workers, wedged
            # slots, possibly corrupted queues): replace it before any
            # retry — or before the caller's next batch — touches it.
            self._respawn()
            queue = []
            retry_delay = 0.0
            for task_id, arg, attempt, reason in failures:
                if attempt >= policy.max_attempts:
                    exhausted.append((task_id, arg, reason))
                else:
                    self.stats["retries"] += 1
                    queue.append((task_id, arg, attempt + 1))
                    retry_delay = max(
                        retry_delay, policy.delay(task_id, attempt)
                    )
            if queue and retry_delay > 0:
                time.sleep(retry_delay)
        for task_id, arg, reason in exhausted:
            if not policy.degradation:
                message = (
                    f"task {task_id} failed after {policy.max_attempts} "
                    f"attempt(s) ({reason}) and degradation is disabled"
                )
                if reason == "timeout":
                    raise TaskTimeoutError(message)
                raise WorkerFailureError(message)
            results[task_id] = fallback(arg)
            self.stats["degraded_serial_tasks"] += 1
        return [results[task_id] for task_id, _ in tasks]
