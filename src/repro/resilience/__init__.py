"""Fault tolerance for the parallel and streaming execution tiers.

The package bundles three pieces, threaded through
:mod:`repro.parallel` and :mod:`repro.stream`:

- :class:`RetryPolicy` — attempts, per-task timeouts, exponential
  backoff with deterministic seeded jitter, and the graceful-degradation
  switch (:mod:`repro.resilience.policy`);
- :class:`FaultInjector` — deterministic crash / hang / corrupt / poison
  faults keyed on task ids, settable programmatically (on
  :class:`repro.core.join.PartSJConfig`) or through the
  ``REPRO_FAULT_SPEC`` environment hook
  (:mod:`repro.resilience.faults`);
- :class:`PoolSupervisor` — supervised dispatch over a respawnable
  worker pool: detect, retry, degrade, account
  (:mod:`repro.resilience.supervisor`).

The invariant all of it preserves: ``similarity_join(workers=N)`` and
the streaming engine return **bit-identical results** under any injected
(or real) worker failure, as long as graceful degradation is enabled —
the failure surface moves into statistics, not into results.
"""

from repro.resilience.faults import (
    FAULT_SPEC_ENV,
    FaultInjector,
    FaultRule,
    InjectedFaultError,
    seal,
    unseal,
)
from repro.resilience.policy import RetryPolicy
from repro.resilience.supervisor import PoolSupervisor, shutdown_pool

__all__ = [
    "FAULT_SPEC_ENV",
    "FaultInjector",
    "FaultRule",
    "InjectedFaultError",
    "PoolSupervisor",
    "RetryPolicy",
    "seal",
    "shutdown_pool",
    "unseal",
]
