"""Deterministic fault injection and end-to-end result integrity.

The chaos-testing half of the resilience layer: a :class:`FaultInjector`
carries a set of :class:`FaultRule` entries keyed on supervised task ids
(``shard:2``, ``verify:0``, ``stream:5``, ``pair:3:7`` — glob patterns
allowed) and fires the configured fault when a matching task executes.
It is a frozen dataclass, so it travels to worker processes through pool
initializers and can sit on :class:`repro.core.join.PartSJConfig` without
breaking the session cache keys.

Fault kinds
-----------
- ``crash``  — the worker process exits hard (``os._exit``), simulating
  an OOM kill or segfault; the supervisor sees a dead pid / lost result.
- ``hang``   — the worker sleeps (default far past any timeout),
  simulating a wedged task; detected by the per-task timeout.
- ``corrupt`` — the task runs normally but its sealed result envelope is
  corrupted in transit; detected by the CRC integrity check.
- ``poison`` — raises :class:`InjectedFaultError` (a remote exception for
  task ids, a quarantine trigger for ``pair:i:j`` ids in the streaming
  inline fallback).

Rules select an attempt with ``@n`` (1-based; omitted = every attempt),
so ``shard:*@1=crash`` crashes every shard's first try — the retry then
succeeds — while ``shard:0=crash`` defeats every retry and forces the
serial degradation path.

Spec strings (``REPRO_FAULT_SPEC`` or :meth:`FaultInjector.from_spec`)
are comma-separated ``task[@attempt]=kind[:arg]`` entries, e.g.::

    REPRO_FAULT_SPEC="shard:0@1=crash,verify:*@1=hang:30"

Result envelopes
----------------
Supervised task functions return ``seal(payload)`` — the payload plus a
CRC of its pickled form — and the supervisor re-derives the CRC on
receipt (:func:`unseal`).  A mismatch means the bytes that crossed the
process boundary are not the bytes the worker produced; the task is
treated as failed and retried.  The ``corrupt`` fault flips the payload
*after* sealing, exercising exactly this path.
"""

from __future__ import annotations

import fnmatch
import io
import os
import pickle
import time
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import InvalidParameterError, ReproError, WorkerFailureError

__all__ = [
    "FAULT_SPEC_ENV",
    "FaultInjector",
    "FaultRule",
    "InjectedFaultError",
    "seal",
    "unseal",
]

FAULT_SPEC_ENV = "REPRO_FAULT_SPEC"

_KINDS = ("crash", "hang", "corrupt", "poison")

# Default hang duration: far beyond any sane task timeout, but finite so
# an unsupervised (timeout-less) test run eventually unwedges itself.
_DEFAULT_HANG = 3600.0

# Marker replacing a corrupted envelope payload.  Any value whose pickled
# CRC cannot match the sealed one would do; a distinctive string makes
# failures self-describing in logs.
_CORRUPTED = "\x00repro-corrupted-payload"


class InjectedFaultError(ReproError):
    """Raised by ``poison`` fault rules (chaos testing only)."""


@dataclass(frozen=True)
class FaultRule:
    """One injected fault: which task, which attempt, what happens."""

    task: str
    kind: str
    attempt: Optional[int] = None  # None = every attempt (1-based otherwise)
    arg: float = 0.0  # hang duration in seconds (0 = default)

    def matches(self, task_id: str, attempt: int) -> bool:
        if self.attempt is not None and self.attempt != attempt:
            return False
        return fnmatch.fnmatchcase(task_id, self.task)


@dataclass(frozen=True)
class FaultInjector:
    """A deterministic set of fault rules applied by task id and attempt."""

    rules: tuple[FaultRule, ...] = ()

    @classmethod
    def from_spec(cls, spec: str) -> "FaultInjector":
        """Parse ``task[@attempt]=kind[:arg]`` entries (comma-separated)."""
        rules = []
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            try:
                target, _, effect = entry.partition("=")
                if not effect:
                    raise InvalidParameterError("missing '=kind'")
                task, at, attempt_text = target.partition("@")
                attempt = int(attempt_text) if at else None
                if attempt is not None and attempt < 1:
                    raise InvalidParameterError("attempt numbers are 1-based")
                kind, colon, arg_text = effect.partition(":")
                kind = kind.strip()
                if kind not in _KINDS:
                    raise InvalidParameterError(
                        f"unknown fault kind {kind!r}; use one of {_KINDS}"
                    )
                arg = float(arg_text) if colon else 0.0
            except ValueError as exc:
                raise InvalidParameterError(
                    f"bad fault spec entry {entry!r}: {exc}"
                ) from None
            rules.append(FaultRule(task.strip(), kind, attempt, arg))
        return cls(rules=tuple(rules))

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultInjector"]:
        """The ``REPRO_FAULT_SPEC`` hook; ``None`` when unset or empty."""
        spec = (environ if environ is not None else os.environ).get(
            FAULT_SPEC_ENV, ""
        )
        return cls.from_spec(spec) if spec.strip() else None

    def rule_for(self, task_id: str, attempt: int) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.matches(task_id, attempt):
                return rule
        return None

    def fire(self, task_id: str, attempt: int) -> None:
        """Apply any side-effecting fault for this execution (in-worker).

        ``crash`` never returns; ``hang`` sleeps; ``poison`` raises.
        ``corrupt`` is a no-op here — it acts on the sealed envelope via
        :meth:`corrupts` after the task has produced its real result.
        """
        rule = self.rule_for(task_id, attempt)
        if rule is None:
            return
        if rule.kind == "crash":
            os._exit(13)
        elif rule.kind == "hang":
            time.sleep(rule.arg or _DEFAULT_HANG)
        elif rule.kind == "poison":
            raise InjectedFaultError(
                f"injected poison fault for task {task_id} (attempt {attempt})"
            )

    def corrupts(self, task_id: str, attempt: int) -> bool:
        rule = self.rule_for(task_id, attempt)
        return rule is not None and rule.kind == "corrupt"


# ---------------------------------------------------------------------------
# Result envelopes
# ---------------------------------------------------------------------------

def _crc(payload) -> int:
    # Identity-blind pickling (no memo): the worker computes this CRC on
    # the original payload, the supervisor on the unpickled copy, and
    # object sharing is not preserved across that round-trip (e.g. an
    # attrs-dict key that is the same interned string as a dataclass
    # field name in the worker).  Disabling memoization makes the bytes
    # a pure function of the payload's *values*; payloads are acyclic.
    buffer = io.BytesIO()
    pickler = pickle.Pickler(buffer, protocol=4)
    pickler.fast = True
    pickler.dump(payload)
    return zlib.crc32(buffer.getvalue())


def seal(payload) -> tuple:
    """Wrap a task result with an integrity CRC (computed worker-side)."""
    return (payload, _crc(payload))


def corrupt_envelope(envelope: tuple) -> tuple:
    """Simulate in-transit corruption: payload changes, CRC does not."""
    return (_CORRUPTED, envelope[1])


def unseal(envelope: tuple, task_id: str):
    """Verify and unwrap a sealed result; corrupt envelopes raise.

    Raises :class:`~repro.errors.WorkerFailureError` when the payload's
    re-derived CRC does not match the sealed one — the supervisor treats
    it like any other worker failure (retry, then degrade).
    """
    try:
        payload, crc = envelope
        ok = _crc(payload) == crc
    except Exception:
        ok = False
        payload = None
    if not ok:
        raise WorkerFailureError(
            f"task {task_id} returned a corrupt result envelope"
        )
    return payload
