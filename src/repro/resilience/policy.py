"""Retry policy: attempts, timeouts, and deterministic backoff.

:class:`RetryPolicy` is the single knob bundle the supervised execution
tiers (:mod:`repro.parallel` and :mod:`repro.stream`) consult when a task
fails — a worker process dies, hangs past its timeout, raises, or returns
a corrupt result.  It is a frozen (hashable, picklable) dataclass so it
can ride on :class:`repro.core.join.PartSJConfig` and participate in the
session layer's prepare/result cache keys.

Backoff is exponential with **deterministic seeded jitter**: the jitter
fraction for ``(task_id, attempt)`` is derived from a CRC of the policy
seed and the task identity, never from wall-clock entropy, so two runs of
the same workload under the same injected faults sleep the same delays —
chaos tests stay reproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import InvalidParameterError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How supervised parallel execution reacts to task failures.

    Attributes
    ----------
    max_attempts:
        Total tries per task (first run included).  ``1`` disables
        retries: a failed task degrades (or escapes) immediately.
    task_timeout:
        Per-task wall-clock budget in seconds; ``None`` (the default)
        waits forever.  Crashed workers are still detected without a
        timeout (the supervisor health-checks worker pids), but a *hung*
        worker can only be detected by a finite timeout.
    backoff_base:
        Delay before the first retry, in seconds.
    backoff_factor:
        Multiplier applied per further attempt (exponential backoff).
    jitter:
        Maximum extra delay as a fraction of the backoff delay; the
        realized fraction is drawn deterministically from ``seed`` and
        the failing task's identity (see :meth:`delay`).
    seed:
        Seed of the deterministic jitter stream.
    degradation:
        When ``True`` (default) a task whose attempts are exhausted is
        re-executed serially in-process — the join still completes with
        bit-identical results.  When ``False`` the failure escapes as
        :class:`~repro.errors.WorkerFailureError` /
        :class:`~repro.errors.TaskTimeoutError`.
    """

    max_attempts: int = 3
    task_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    degradation: bool = True

    def validated(self) -> "RetryPolicy":
        """Range-check every field; returns ``self`` for call chaining."""
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be an integer >= 1, got {self.max_attempts!r}"
            )
        if self.task_timeout is not None and not self.task_timeout > 0:
            raise InvalidParameterError(
                f"task_timeout must be > 0 or None, got {self.task_timeout!r}"
            )
        if self.backoff_base < 0:
            raise InvalidParameterError(
                f"backoff_base must be >= 0, got {self.backoff_base!r}"
            )
        if self.backoff_factor < 1:
            raise InvalidParameterError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if self.jitter < 0:
            raise InvalidParameterError(
                f"jitter must be >= 0, got {self.jitter!r}"
            )
        return self

    def delay(self, task_id: str, attempt: int) -> float:
        """Backoff before retrying ``task_id`` after failed ``attempt``.

        ``attempt`` is 1-based (the first execution is attempt 1).  The
        jitter fraction is ``crc32(seed | task | attempt) / 2**32`` —
        stable across processes and runs, unlike ``hash()`` (randomized
        per process) or ``random`` (shared global state).
        """
        base = self.backoff_base * self.backoff_factor ** max(0, attempt - 1)
        token = f"{self.seed}|{task_id}|{attempt}".encode()
        fraction = zlib.crc32(token) / 2**32
        return base * (1.0 + self.jitter * fraction)

    def describe(self) -> dict:
        """JSON-ready summary for ``QueryPlan.explain()`` payloads."""
        return {
            "max_attempts": self.max_attempts,
            "task_timeout": self.task_timeout,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "jitter": self.jitter,
            "degradation": self.degradation,
        }
