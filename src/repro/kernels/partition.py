"""Numpy partition kernel: span fills as sliced ndarray assignments.

:func:`repro.core.partition.extract_partition` materializes its greedy
cuts in two steps: a sequential pass over the internal nodes (inherently
order-dependent — each detachment zeroes the running ``remaining`` count
its ancestors see — and kept in python), then a *membership resolution*
step that turns the recorded ``(root, size)`` binary-postorder spans into
per-subgraph bitmaps with slice fills and nested-span punch-outs.

This kernel replaces the second step.  Binary subtree spans are laminar,
and a node detached by several cuts belongs to the earliest (innermost)
one — so painting the spans over an owner array in *reverse* order makes
exactly the innermost span win, and one broadcast equality against the
cut indices yields every bitmap at once:

    owner[lo_k : b_k + 1] = k   for k = ncuts-1 .. 0   (residual = ncuts)
    rows = (owner == arange(ncuts + 1)[:, None])

The rows convert back to the ``bytearray`` bitmaps
:class:`~repro.core.subgraph.Subgraph` requires (0/1 bytes, slot 0
unused), byte-for-byte what the reference splices produce.

The random ablation strategy keeps its python path: its component
assignment is a preorder walk with per-node parent lookups, not a span
fill, and it is not on the MaxMinSize hot path.
"""

from __future__ import annotations

__all__ = ["partition_bitmaps_numpy"]


def partition_bitmaps_numpy(np, size, cut_spans):
    """``[(root, bytearray bitmap)]`` for the cuts plus the residual.

    Mirrors the splice loop in ``extract_partition`` exactly: one entry
    per cut span in recorded order, then the residual rooted at the tree
    root (binary postorder number ``size``).
    """
    ncuts = len(cut_spans)
    owner = np.full(size + 1, ncuts, dtype=np.int64)
    owner[0] = -1  # slot 0 is unused in every bitmap
    for k in range(ncuts - 1, -1, -1):
        b, total = cut_spans[k]
        owner[b - total + 1 : b + 1] = k
    rows = (owner == np.arange(ncuts + 1, dtype=np.int64)[:, None]).astype(
        np.uint8
    )
    bitmaps = [
        (b, bytearray(rows[k].tobytes()))
        for k, (b, total) in enumerate(cut_spans)
    ]
    bitmaps.append((size, bytearray(rows[ncuts].tobytes())))
    return bitmaps
