"""Numpy tau-banded Zhang–Shasha: each band row as vector mins.

The reference DP (:func:`repro.ted.cutoff.zhang_shasha_bounded`) visits
the ``2*tau + 1`` in-band cells of each forest row one at a time.  This
kernel evaluates a whole row at once:

- **delete / rename / jump** read only the previous row, earlier rows
  (``fd[jump_row]``) and tree distances recorded by *earlier keyroot
  pairs*, so they are three gathers/shifted slices;
- **insert** (``row[y-1] + 1``) is the one within-row dependency; with
  ``g(y) = row[y] - y`` it is ``g(y) = min(c(y) - y, g(y - 1))`` — a
  prefix minimum (``np.minimum.accumulate``) seeded with the band's
  boundary cell;
- saturation at ``tau + 1`` commutes with the row evaluation (a cell
  ``<= tau`` never depends on a capped input — the same monotonicity
  argument that makes saturation sound in the reference), so one final
  ``np.minimum(row, big)`` reproduces the reference's per-cell capping
  bit for bit;
- the row minimum (boundary included) drives the identical per-keyroot-
  pair early exit, and rename-case cells record into ``treedist`` via
  one masked scatter.  Rename cells (``l2(node2) == lj``) and jump cells
  are disjoint in ``node2``, so jump gathers never see a same-row write.

Row vectorization would only pay once the band is wide — and measured
(``benchmarks/bench_kernels.py``, recorded in ``BENCH_PR9.json``), the
per-row ndarray dispatch still exceeds the scalar loop's cost at every
band up to 289, so :data:`NUMPY_TED_MIN_BAND` sits above every
benchmarked band and :class:`BandedTed` dispatches realistic calls —
and any custom ``rename_cost`` — to the reference implementation.
Either path returns the same exact distances (property-tested with the
crossover pinned to 0).
"""

from __future__ import annotations

from typing import Optional

from repro.kernels import get_numpy
from repro.ted.cutoff import zhang_shasha_bounded
from repro.ted.zhang_shasha import AnnotatedTree
from repro.tree.node import Tree

__all__ = ["BandedTed", "NUMPY_TED_MIN_BAND"]

# Band width (2*tau + 1) below which the scalar DP wins.  Tests pin it to
# 0 to force the vector path at every tau; results are identical at any
# value — this is purely a speed crossover.  Measured (BENCH_PR9.json):
# the row-sliced formulation never beats the scalar loop on CPython at
# any band up to 289 (0.05-0.15x — per-row ufunc dispatch and fancy-index
# copies dominate the 2*tau+1-cell rows), so the crossover sits above
# every benchmarked band and the vector path is effectively reserved for
# property testing until a batched numba/C kernel replaces the per-row
# dispatch (see ROADMAP).
NUMPY_TED_MIN_BAND = 512


def _min_band() -> int:
    # Read at call time so tests (and tuning callers) can patch the
    # module constant without re-instantiating verifiers.
    return NUMPY_TED_MIN_BAND


class BandedTed:
    """Callable drop-in for :func:`zhang_shasha_bounded`, numpy-backed.

    One instance per verifier: it interns labels to int codes and caches
    per-annotation ``(lmld, label-code)`` arrays keyed by annotation
    identity (the annotation object is retained in the cache entry, so an
    id is never reused while cached).  The verifier already caches
    annotations per tree, so each tree converts once.
    """

    __slots__ = ("np", "_codes", "_views")

    def __init__(self, np_module=None):
        self.np = np_module if np_module is not None else get_numpy()
        self._codes: dict[str, int] = {}
        self._views: dict[int, tuple] = {}

    def _view(self, annotation: AnnotatedTree):
        """``(lmld array, label-code array)`` for one annotation, cached."""
        key = id(annotation)
        cached = self._views.get(key)
        if cached is not None:
            return cached[1], cached[2]
        np = self.np
        codes = self._codes
        setdefault = codes.setdefault
        lab = np.fromiter(
            (setdefault(s, len(codes)) for s in annotation.labels),
            dtype=np.int64,
            count=annotation.size + 1,
        )
        lmld = np.asarray(annotation.lmld, dtype=np.int64)
        self._views[key] = (annotation, lmld, lab)
        return lmld, lab

    def __call__(
        self,
        t1: Tree | AnnotatedTree,
        t2: Tree | AnnotatedTree,
        tau: int,
        rename_cost=None,
    ) -> Optional[int]:
        if rename_cost is not None or 2 * tau + 1 < _min_band():
            # Custom costs keep the reference semantics verbatim; narrow
            # bands are faster scalar (see module docstring).
            return zhang_shasha_bounded(t1, t2, tau, rename_cost)
        if tau < 0:
            return None
        a1 = t1 if isinstance(t1, AnnotatedTree) else AnnotatedTree(t1)
        a2 = t2 if isinstance(t2, AnnotatedTree) else AnnotatedTree(t2)
        if abs(a1.size - a2.size) > tau:
            return None
        return self._banded(a1, a2, tau)

    def _banded(self, a1: AnnotatedTree, a2: AnnotatedTree, tau: int):
        np = self.np
        n1, n2 = a1.size, a2.size
        big = tau + 1
        l1, l2 = a1.lmld, a2.lmld  # python lists for the scalar reads
        l2_arr, lab2 = self._view(a2)
        lab1 = self._view(a1)[1]
        treedist = np.full((n1 + 1, n2 + 1), big, dtype=np.int64)
        fd = np.full((n1 + 1, n2 + 1), big, dtype=np.int64)
        ys_all = np.arange(n2 + 1, dtype=np.int64)

        for i in a1.keyroots:
            li = l1[i]
            m = i - li + 2
            for j in a2.keyroots:
                lj = l2[j]
                n = j - lj + 2
                # Row 0: insertions only, banded, with the band-edge guard.
                fd[0, 0] = 0
                hi0 = tau if tau < n - 1 else n - 1
                if hi0 >= 1:
                    fd[0, 1 : hi0 + 1] = ys_all[1 : hi0 + 1]
                if hi0 + 1 <= n - 1:
                    fd[0, hi0 + 1] = big
                # Per-column data for y = 1..n-1 (index y-1): node2, its
                # jump column, whether the column is a whole subtree.
                node2s_full = np.arange(lj, j + 1, dtype=np.int64)
                jump_cols_full = l2_arr[node2s_full] - lj
                whole2_full = jump_cols_full == 0
                for x in range(1, m):
                    lo = x - tau if x - tau > 1 else 1
                    hi = x + tau if x + tau < n - 1 else n - 1
                    if lo > hi:
                        break
                    row = fd[x]
                    above = fd[x - 1]
                    node1 = li + x - 1
                    l1x = l1[node1]
                    whole1 = l1x == li
                    jump_row = l1x - li
                    if lo == 1:
                        boundary = x if x <= tau else big
                        row[0] = boundary
                    else:
                        boundary = big
                        row[lo - 1] = big
                    span = slice(lo - 1, hi)  # y-1 for y in [lo, hi]
                    node2s = node2s_full[span]
                    # Non-insert candidates, all from finalized state.
                    best = above[lo : hi + 1] + 1  # delete node1
                    if whole1:
                        rename = above[lo - 1 : hi] + (
                            lab2[node2s] != lab1[node1]
                        )
                        wmask = whole2_full[span]
                        np.minimum(
                            best, np.where(wmask, rename, big), out=best
                        )
                    else:
                        wmask = None
                    jump_cols = jump_cols_full[span]
                    in_band = np.abs(jump_row - jump_cols) <= tau
                    if wmask is not None:
                        in_band &= ~wmask
                    jump = fd[jump_row][jump_cols] + treedist[node1][node2s]
                    np.minimum(best, np.where(in_band, jump, big), out=best)
                    # Insert chain: prefix min of best - y, seeded with
                    # the boundary cell, then re-add y and saturate.
                    shifted = best - ys_all[lo : hi + 1]
                    seed = boundary - (lo - 1)
                    if seed < shifted[0]:
                        shifted[0] = seed
                    values = (
                        np.minimum.accumulate(shifted) + ys_all[lo : hi + 1]
                    )
                    np.minimum(values, big, out=values)
                    row[lo : hi + 1] = values
                    if wmask is not None:
                        treedist[node1][node2s[wmask]] = values[wmask]
                    if hi + 1 <= n - 1:
                        row[hi + 1] = big
                    if boundary > tau and values.min() > tau:
                        break
        result = int(treedist[n1, n2])
        return result if result <= tau else None
