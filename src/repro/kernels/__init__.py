"""Optional compiled flat-array kernels behind a selectable backend.

PR 2 laid every hot structure out as parallel 1-based int lists, bytearray
bitmaps and 63-bit packed twig keys — a layout one conversion away from
C speed.  This package supplies that conversion: numpy-vectorized variants
of the three loops every tier (serial join, shard workers, streaming
ingest, verify pools) funnels through —

- :mod:`repro.kernels.probe` — the probe/bucket walk of
  :func:`repro.core.join._probe_index` (postorder-window intersection and
  owner dedup over whole buckets via ``searchsorted``/boolean masks);
- :mod:`repro.kernels.partition` — the partition span fills of
  :func:`repro.core.partition.extract_partition` (2-D ndarray slice
  assignments instead of per-span bytearray splices);
- :mod:`repro.kernels.ted` — the tau-banded Zhang–Shasha DP of
  :func:`repro.ted.cutoff.zhang_shasha_bounded` (each band row evaluated
  as vector mins over shifted slices, with the same tau+1 saturation and
  row-minimum early exit).

**Backend contract.**  A backend name is one of :data:`BACKENDS`:

- ``"python"`` — the pure-python reference implementations, always
  available; the ground truth every kernel is property-tested against.
- ``"numpy"`` — the vectorized kernels; selecting it without numpy
  installed raises :class:`~repro.errors.InvalidParameterError`.
- ``"auto"`` — resolves to ``"numpy"`` when numpy imports, silently to
  ``"python"`` otherwise.  The repository never depends on numpy; it is
  an optional accelerator (``pip install repro[fast]``).

Whatever the backend, results are **bit-identical**: pairs, distances,
candidate counts and every deterministic ``JoinStats`` counter.  The only
observable differences are timings and ``JoinStats.extra["backend"]`` /
``explain()["filters"]["backend"]``, which report the backend that
actually ran.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import InvalidParameterError

__all__ = [
    "BACKENDS",
    "numpy_available",
    "get_numpy",
    "resolve_backend",
]

BACKENDS = ("auto", "python", "numpy")

# Cached probe result: None = not probed yet, False = import failed,
# otherwise the module itself.  ``_reset_numpy_probe`` is a test hook so
# the numpy-absent fallback can be exercised on a machine that has numpy
# (monkeypatch the import, reset, resolve).
_NUMPY: Optional[object] = None


def numpy_available() -> bool:
    """Whether the numpy backend can run in this interpreter (cached)."""
    return get_numpy() is not None


def get_numpy():
    """The numpy module, or ``None`` when it cannot be imported."""
    global _NUMPY
    if _NUMPY is None:
        try:
            import numpy  # noqa: F401 — optional accelerator

            _NUMPY = numpy
        except Exception:  # pragma: no cover - exercised via monkeypatch
            _NUMPY = False
    return _NUMPY if _NUMPY is not False else None


def _reset_numpy_probe() -> None:
    """Forget the cached import probe (test hook)."""
    global _NUMPY
    _NUMPY = None


def resolve_backend(backend: str) -> str:
    """Resolve a backend name to the concrete backend that will run.

    ``"auto"`` becomes ``"numpy"`` when numpy imports and ``"python"``
    otherwise; explicit names are validated (``"numpy"`` without numpy
    installed is an :class:`InvalidParameterError`, not a silent
    downgrade — a caller who pinned the backend wants to know).
    """
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; use one of {', '.join(BACKENDS)}"
        )
    if backend == "auto":
        return "numpy" if numpy_available() else "python"
    if backend == "numpy" and not numpy_available():
        raise InvalidParameterError(
            "backend='numpy' requested but numpy is not importable; "
            "install the optional accelerator (pip install repro[fast]) "
            "or use backend='auto' to fall back to pure python"
        )
    return backend
