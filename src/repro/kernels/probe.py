"""Numpy probe kernel: bucket-window intersection over whole buckets.

The reference loop (:func:`repro.core.join._probe_index`) visits every
index entry of every probed bucket window one at a time: a window bisect,
then per entry a paper-window test, a checked-set lookup and possibly a
bitmap match walk.  On duplicate-heavy collections — normalized corpora
where thousands of trees are near-copies — a probing node's window holds
hundreds of entries, almost all of which resolve to "pair already
checked".  This kernel keeps the outer loop (nodes × twig keys × sizes:
dict gets and int arithmetic, already cheap) and vectorizes the
per-window work:

- the paper's strict window (``|p - pk| <= half``) is one boolean mask
  over the bucket's cached postorder/half-width arrays;
- the checked-pair dedup is one gather from a per-driver ``seen`` byte
  buffer indexed by owner (sound because no pair involving the probing
  tree exists in ``checked`` when its probe starts — the batch loop, the
  shard workers and the streaming engine all insert/reverse-probe
  strictly *after* the forward probe), and the skipped-entry count is
  one ``sum()``;
- only the surviving entries — typically a handful — fall through to the
  per-entry :meth:`~repro.core.subgraph.Subgraph.matches_at_number` walk,
  in the reference loop's exact ascending order, so the candidate list,
  the checked set and every counter come out bit-identical.

Windows smaller than :data:`SMALL_WINDOW` run the scalar reference body
instead — ndarray dispatch and fancy-indexing setup exceed the loop cost
there (measured in ``benchmarks/bench_kernels.py``: the crossover sits
around a hundred entries on CPython + numpy; see ``BENCH_PR9.json``) —
so sparse workloads never regress.

The ``seen`` buffer is a ``bytearray`` (python scalar reads/writes stay
C-speed in the scalar body) wrapped zero-copy by ``np.frombuffer`` for
the vector gathers.  Bucket arrays (postorders, half-widths, owners as
one int row each) are cached on the bucket (``_TwigBucket.arrays``) and
invalidated by the index on every insert/re-sort, mirroring the existing
``posts`` cache.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.core.index import InvertedSizeIndex, PostorderFilter
from repro.core.intern import TWIG_LABEL_SHIFT, TWIG_LEFT_SHIFT
from repro.core.subgraph import MatchSemantics
from repro.core.treecache import TreeCache
from repro.kernels import get_numpy

__all__ = ["ProbeScratch", "probe_index_numpy", "SMALL_WINDOW"]

# Below this many window entries the scalar reference body runs: the
# fixed cost of slicing/masking/gathering ndarrays exceeds a python loop
# until windows reach the order of a hundred entries (measured, see
# module docstring).  Any value keeps results bit-identical; this is
# purely a speed crossover.
SMALL_WINDOW = 96


class ProbeScratch:
    """Per-driver reusable buffers for the numpy probe kernel.

    ``seen[j]`` mirrors "the pair (probing tree, j) is in ``checked``"
    for the duration of one probe; it is reset via the touched-owner
    list afterwards (O(candidates), not O(trees)).  The buffer grows
    geometrically so the streaming engine's ever-growing collection
    never reallocates per arrival.
    """

    __slots__ = ("np", "seen", "seen_np")

    def __init__(self, np_module=None):
        self.np = np_module if np_module is not None else get_numpy()
        self.seen = bytearray(0)
        self.seen_np = self.np.frombuffer(self.seen, dtype=self.np.uint8)

    def ensure(self, count: int) -> None:
        """Grow the ``seen`` buffer (and its ndarray view) to ``count``."""
        if len(self.seen) < count:
            self.seen = bytearray(max(count, 2 * len(self.seen)))
            self.seen_np = self.np.frombuffer(self.seen, dtype=self.np.uint8)


def _bucket_arrays(bucket, np):
    """Cached ``(posts, halves, owners)`` int64 rows of one bucket."""
    arrays = bucket.arrays
    if arrays is None:
        entries = bucket.entries
        count = len(entries)
        posts = np.empty(count, dtype=np.int64)
        halves = np.empty(count, dtype=np.int64)
        owners = np.empty(count, dtype=np.int64)
        for k, (pk, half, subgraph) in enumerate(entries):
            posts[k] = pk
            halves[k] = half
            owners[k] = subgraph.owner
        arrays = (posts, halves, owners)
        bucket.arrays = arrays
    return arrays


def probe_index_numpy(
    index: InvertedSizeIndex,
    cache: TreeCache,
    i: int,
    n: int,
    tau: int,
    min_size: int,
    semantics: MatchSemantics,
    checked: set,
    candidates: list,
    counters,
    numbering: str,
    scratch: ProbeScratch,
    tree_count: int,
) -> None:
    """Drop-in replacement for :func:`repro.core.join._probe_index`.

    Same candidate list (order included), same ``checked`` mutations,
    same counter totals — property-tested in ``tests/kernels/``.
    """
    sizes = [
        size
        for size in range(max(min_size, n - tau), n + 1)
        if (size_index := index.for_size(size)) is not None and size_index.count
    ]
    if not sizes:
        return
    np = scratch.np
    scratch.ensure(tree_count)
    seen = scratch.seen
    seen_np = scratch.seen_np
    touched: list[int] = []
    merged = index.merged
    mode = index.postorder_filter
    off = mode is PostorderFilter.OFF
    strict_window = mode is PostorderFilter.PAPER
    labels = cache.labels
    left = cache.left
    right = cache.right
    positions = cache.general_post if numbering == "general" else range(n + 1)
    strict = semantics is MatchSemantics.PAPER
    label_shift = TWIG_LABEL_SHIFT
    left_shift = TWIG_LEFT_SHIFT
    probe_hits = 0
    match_tests = 0
    match_hits = 0
    dedup_skips = 0
    for b in range(1, n + 1):
        p = positions[b]
        label = labels[b]
        child = left[b]
        ll = labels[child] if child else 0
        child = right[b]
        rl = labels[child] if child else 0
        # Identical key construction and dedup to the reference loop
        # (see _probe_index): only the distinct packed keys survive.
        full_key = (label << label_shift) | (ll << left_shift) | rl
        bare_key = label << label_shift
        if ll:
            if rl:
                twig_keys = (full_key, full_key - rl, bare_key | rl, bare_key)
            else:
                twig_keys = (full_key, bare_key)
        elif rl:
            twig_keys = (full_key, bare_key)
        else:
            twig_keys = (full_key,)
        lo = p - tau
        hi = p + tau
        for twig_key in twig_keys:
            by_size = merged.get(twig_key)
            if by_size is None:
                continue
            for size in sizes:
                bucket = by_size.get(size)
                if bucket is None:
                    continue
                entries = bucket.entries
                if off:
                    start = 0
                    stop = len(entries)
                else:
                    if bucket.dirty:
                        bucket._ensure_sorted()
                    posts = bucket.posts
                    start = bisect_left(posts, lo)
                    stop = bisect_right(posts, hi, start)
                    if start == stop:
                        continue
                if stop - start < SMALL_WINDOW:
                    # Scalar reference body: cheaper than ndarray
                    # dispatch on short windows, byte-for-byte the same
                    # behaviour (seen mirrors checked for pairs with i).
                    for k in range(start, stop):
                        pk, half, subgraph = entries[k]
                        if strict_window and not -half <= p - pk <= half:
                            continue
                        probe_hits += 1
                        j = subgraph.owner
                        key = (j, i) if j < i else (i, j)
                        if key in checked:
                            dedup_skips += 1
                            continue
                        match_tests += 1
                        if subgraph.matches_at_number(cache, b, strict):
                            match_hits += 1
                            checked.add(key)
                            seen[j] = 1
                            touched.append(j)
                            candidates.append(j)
                    continue
                posts_a, halves_a, owners_a = _bucket_arrays(bucket, np)
                if strict_window:
                    diff = p - posts_a[start:stop]
                    mask = (diff <= halves_a[start:stop]) & (
                        diff >= -halves_a[start:stop]
                    )
                    hits = np.flatnonzero(mask)
                    if not hits.size:
                        continue
                    probe_hits += hits.size
                    window_owners = owners_a[start:stop][hits]
                    entry_numbers = hits + start
                else:
                    probe_hits += stop - start
                    window_owners = owners_a[start:stop]
                    entry_numbers = None
                already = seen_np[window_owners]
                skipped = int(already.sum())
                dedup_skips += skipped
                if skipped == window_owners.shape[0]:
                    continue
                if entry_numbers is None:
                    fresh = np.flatnonzero(already == 0) + start
                else:
                    fresh = entry_numbers[already == 0]
                # Ascending entry order, exactly the reference loop; a
                # same-window entry whose owner matched above it is a
                # dedup skip (seen re-check), a failed match leaves the
                # owner unseen so its later entries still test.
                for k in fresh.tolist():
                    subgraph = entries[k][2]
                    j = subgraph.owner
                    if seen[j]:
                        dedup_skips += 1
                        continue
                    match_tests += 1
                    if subgraph.matches_at_number(cache, b, strict):
                        match_hits += 1
                        checked.add((j, i) if j < i else (i, j))
                        seen[j] = 1
                        touched.append(j)
                        candidates.append(j)
    for j in touched:
        seen[j] = 0
    counters.probe_hits += probe_hits
    counters.match_tests += match_tests
    counters.match_hits += match_hits
    counters.dedup_skips += dedup_skips
