"""repro: a reproduction of *Scaling Similarity Joins over Tree-Structured
Data* (Tang, Cai, Mamoulis; VLDB 2015).

The package implements the paper's PartSJ partition-based tree similarity
join, the tree edit distance (TED) stack it verifies with, the STR/SET
baselines it is evaluated against, dataset generators mirroring the paper's
workloads, and a benchmark harness regenerating every figure of its
evaluation section.

Quick start::

    from repro import Tree, TreeCollection, ted

    col = TreeCollection.from_file("forest.trees")  # prepared once
    result = col.join(tau=2).run()                  # PartSJ (the paper's PRT)
    for pair in result.pairs:
        print(pair.i, pair.j, pair.distance)
    print(result.stats.summary())
    hits = col.search(query, tau=2).run()           # reuses the preparation

One-off calls can use the legacy shims (``similarity_join``,
``similarity_join_rs``, ``similarity_search``, ``stream_join``) — each is
a thin wrapper over a one-shot session with bit-identical results.

See DESIGN.md for the architecture and EXPERIMENTS.md for the reproduction
results, including two filter-correctness findings about the published
pruning scheme.
"""

from repro.api import JOIN_METHODS, similarity_join, stream_join
from repro.baselines import (
    JoinPair,
    JoinResult,
    JoinStats,
    histogram_join,
    nested_loop_join,
    set_join,
    str_join,
)
from repro.core import (
    InvertedSizeIndex,
    MatchSemantics,
    PartSJConfig,
    PostorderFilter,
    partsj_join,
)
from repro.datasets import (
    SyntheticParams,
    TreeGenerator,
    generate_forest,
    load_trees,
    save_trees,
    sentiment_like,
    swissprot_like,
    treebank_like,
)
from repro.errors import (
    EditOperationError,
    IngestError,
    InvalidInputTypeError,
    InvalidParameterError,
    NotPartitionableError,
    PersistenceError,
    ReproError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    StaleSnapshotError,
    TaskTimeoutError,
    TraceFormatError,
    TreeFormatError,
    WALCorruptError,
    WorkerFailureError,
    WorkerStateError,
)
from repro.obs import (
    MetricsRegistry,
    Span,
    Tracer,
    format_span_tree,
    get_registry,
    publish_join_stats,
    publish_stream_stats,
    read_jsonl,
    render_prometheus,
    write_jsonl,
)
from repro.resilience import FaultInjector, RetryPolicy
from repro.rsjoin import similarity_join_rs
from repro.search import SearchHit, SimilaritySearcher, similarity_search
from repro.session import (
    JoinPlan,
    QueryPlan,
    RSJoinPlan,
    SearchPlan,
    StreamPlan,
    TreeCollection,
)
from repro.stream import StreamingJoin, StreamJoinService, StreamStats
from repro.ted import ted, ted_within
from repro.tree import Tree, TreeNode, collection_stats, tree_stats

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # data model
    "Tree",
    "TreeNode",
    "tree_stats",
    "collection_stats",
    # distances
    "ted",
    "ted_within",
    # sessions (prepare once, query many)
    "TreeCollection",
    "QueryPlan",
    "JoinPlan",
    "RSJoinPlan",
    "SearchPlan",
    "StreamPlan",
    # joins
    "similarity_join",
    "similarity_join_rs",
    "stream_join",
    "StreamingJoin",
    "StreamJoinService",
    "StreamStats",
    "JOIN_METHODS",
    "partsj_join",
    "PartSJConfig",
    "MatchSemantics",
    "PostorderFilter",
    "InvertedSizeIndex",
    "nested_loop_join",
    "str_join",
    "set_join",
    "histogram_join",
    "JoinPair",
    "JoinResult",
    "JoinStats",
    # search
    "similarity_search",
    "SimilaritySearcher",
    "SearchHit",
    # datasets
    "SyntheticParams",
    "TreeGenerator",
    "generate_forest",
    "swissprot_like",
    "treebank_like",
    "sentiment_like",
    "save_trees",
    "load_trees",
    # observability (tracing / metrics / exporters; see repro.obs)
    "Tracer",
    "Span",
    "MetricsRegistry",
    "get_registry",
    "publish_join_stats",
    "publish_stream_stats",
    "write_jsonl",
    "read_jsonl",
    "render_prometheus",
    "format_span_tree",
    # resilience (fault-tolerant execution; see repro.resilience)
    "RetryPolicy",
    "FaultInjector",
    # persistence errors (save/load/WAL; see repro.persist)
    "PersistenceError",
    "SnapshotFormatError",
    "SnapshotIntegrityError",
    "StaleSnapshotError",
    "WALCorruptError",
    # errors
    "ReproError",
    "TreeFormatError",
    "InvalidParameterError",
    "InvalidInputTypeError",
    "TraceFormatError",
    "EditOperationError",
    "NotPartitionableError",
    "WorkerFailureError",
    "WorkerStateError",
    "TaskTimeoutError",
    "IngestError",
]
