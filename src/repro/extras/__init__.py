"""Extensions beyond the paper's evaluation: alternative distances."""

from repro.extras.pqgram import DUMMY, pqgram_distance, pqgram_profile

__all__ = ["pqgram_profile", "pqgram_distance", "DUMMY"]
