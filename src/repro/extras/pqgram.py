"""pq-grams (Augsten et al. [3, 5]): an alternative tree distance.

Listed in the paper's related work as one of the approximate measures TED
competes with.  A *pq-gram* is a small fixed-shape subtree: an anchor node
with its ``p - 1`` nearest ancestors (the *stem*) and ``q`` consecutive
children (the *base*); missing positions are filled with a dummy label
``*``.  The pq-gram distance between two trees is the (normalized)
symmetric difference between their pq-gram profiles.

Unlike the bounds in :mod:`repro.ted.bounds`, the pq-gram distance is *not*
a lower bound of unit-cost TED — it approximates a fanout-weighted TED —
so joins in this library never use it for exact filtering.  It is provided
for approximate/duplicate-detection workflows (see
``examples/xml_near_duplicates.py``).
"""

from __future__ import annotations

from collections import Counter

from repro.errors import InvalidParameterError
from repro.tree.node import Tree, TreeNode

__all__ = ["pqgram_profile", "pqgram_distance", "DUMMY"]

DUMMY = "*"


def pqgram_profile(tree: Tree, p: int = 2, q: int = 3) -> Counter:
    """The bag of pq-grams of ``tree``.

    Each pq-gram is a tuple of ``p + q`` labels: the anchor's ``p - 1``
    ancestors (root-padded with ``*``), the anchor, then ``q`` consecutive
    children (leaf- and edge-padded with ``*``).

    >>> profile = pqgram_profile(Tree.from_bracket("{a{b}}"), p=1, q=1)
    >>> sorted(profile.elements())
    [('a', 'b'), ('b', '*')]
    """
    if p < 1 or q < 1:
        raise InvalidParameterError(f"p and q must be >= 1, got p={p}, q={q}")
    profile: Counter = Counter()
    root_stem = (DUMMY,) * (p - 1) + (tree.root.label,)
    stack: list[tuple[TreeNode, tuple[str, ...]]] = [(tree.root, root_stem)]
    while stack:
        node, stem = stack.pop()
        if node.is_leaf:
            profile[stem + (DUMMY,) * q] += 1
            continue
        # Slide a q-window over the children, padded q-1 wide on both ends.
        padded = [DUMMY] * (q - 1) + [c.label for c in node.children] + [DUMMY] * (q - 1)
        for start in range(len(padded) - q + 1):
            profile[stem + tuple(padded[start:start + q])] += 1
        for child in node.children:
            stack.append((child, stem[1:] + (child.label,)))
    return profile


def pqgram_distance(
    t1: Tree,
    t2: Tree,
    p: int = 2,
    q: int = 3,
    normalized: bool = True,
) -> float:
    """pq-gram distance between two trees.

    With ``normalized`` (the usual definition) the value is
    ``1 - 2*|P1 ∩ P2| / (|P1| + |P2|)`` in ``[0, 1]``; otherwise the raw
    bag symmetric-difference size is returned.

    >>> t = Tree.from_bracket("{a{b}{c}}")
    >>> pqgram_distance(t, t)
    0.0
    """
    profile1 = pqgram_profile(t1, p, q)
    profile2 = pqgram_profile(t2, p, q)
    size1 = sum(profile1.values())
    size2 = sum(profile2.values())
    common = sum((profile1 & profile2).values())
    if not normalized:
        return float(size1 + size2 - 2 * common)
    if size1 + size2 == 0:
        return 0.0
    return 1.0 - (2.0 * common) / (size1 + size2)
