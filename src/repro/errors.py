"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch a single base class.  Input
validation errors (malformed bracket strings, invalid parameters, illegal
edit operations) each get a dedicated subclass because callers frequently
want to distinguish "the data is broken" from "the request is broken".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TreeFormatError(ReproError, ValueError):
    """A serialized tree (bracket notation, XML, dataset file) is malformed."""


class InvalidParameterError(ReproError, ValueError):
    """An algorithm parameter is out of its documented domain.

    Examples: a negative similarity threshold ``tau``, a partition count
    ``delta < 1``, or a size constraint ``gamma < 1``.
    """


class EditOperationError(ReproError, ValueError):
    """A node edit operation cannot be applied to the given tree.

    Raised for e.g. deleting the root of a single-node tree, inserting under
    a non-existent parent, or referencing children that are not consecutive.
    """


class NotPartitionableError(ReproError):
    """A tree cannot be split into the requested number of subgraphs."""
