"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch a single base class.  Input
validation errors (malformed bracket strings, invalid parameters, illegal
edit operations) each get a dedicated subclass because callers frequently
want to distinguish "the data is broken" from "the request is broken".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TreeFormatError(ReproError, ValueError):
    """A serialized tree (bracket notation, XML, dataset file) is malformed."""


class InvalidParameterError(ReproError, ValueError):
    """An algorithm parameter is out of its documented domain.

    Examples: a negative similarity threshold ``tau``, a partition count
    ``delta < 1``, or a size constraint ``gamma < 1``.
    """


class EditOperationError(ReproError, ValueError):
    """A node edit operation cannot be applied to the given tree.

    Raised for e.g. deleting the root of a single-node tree, inserting under
    a non-existent parent, or referencing children that are not consecutive.
    """


class NotPartitionableError(ReproError):
    """A tree cannot be split into the requested number of subgraphs."""


class WorkerFailureError(ReproError):
    """A worker process died, raised, or returned a corrupt result.

    During supervised parallel execution each such event is normally
    *swallowed into stats* (``JoinStats.extra["worker_failures"]``): the
    task is retried under the active :class:`repro.resilience.RetryPolicy`
    and, once the policy is exhausted, re-executed serially in-process
    (``degraded_serial_tasks``).  This error only **escapes** to the
    caller when the policy is exhausted *and* graceful degradation is
    disabled (``RetryPolicy(degradation=False)``).
    """


class TaskTimeoutError(ReproError):
    """A supervised parallel task exceeded its per-task timeout.

    Like :class:`WorkerFailureError`, a timeout is normally swallowed:
    the wedged pool is respawned, the task retried, and finally degraded
    to serial in-process execution — all accounted in ``JoinStats.extra``.
    It escapes only when the retry policy is exhausted and degradation is
    disabled (``RetryPolicy(degradation=False)``).
    """


class IngestError(ReproError):
    """A streaming ingest item (tree line / payload) is malformed.

    With ``on_error="fail"`` (the default of the streaming ingest paths)
    this escapes to the caller, carrying the offending line number where
    one exists.  With ``on_error="skip"`` it is swallowed into the
    quarantine channel instead: the item is dropped, counted in
    ``StreamStats.quarantined_trees``, and ingestion continues.
    """
