"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch a single base class.  Input
validation errors (malformed bracket strings, invalid parameters, illegal
edit operations) each get a dedicated subclass because callers frequently
want to distinguish "the data is broken" from "the request is broken".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TreeFormatError(ReproError, ValueError):
    """A serialized tree (bracket notation, XML, dataset file) is malformed."""


class InvalidParameterError(ReproError, ValueError):
    """An algorithm parameter is out of its documented domain.

    Examples: a negative similarity threshold ``tau``, a partition count
    ``delta < 1``, or a size constraint ``gamma < 1``.
    """


class InvalidInputTypeError(ReproError, TypeError):
    """An argument has the wrong *type* entirely.

    Examples: a ``Tree`` constructed around something that is not a
    ``TreeNode``, or indexing a lazy tree list with a non-integer.
    Subclasses :class:`TypeError` so callers using the builtin keep
    working.
    """


class TraceFormatError(ReproError, ValueError):
    """A span trace (JSONL export file or span table) is malformed.

    Raised by the trace readers in :mod:`repro.obs.export` for lines
    that are not JSON span objects and for span forests whose parent
    ids do not form a tree.  Subclasses :class:`ValueError` so callers
    using the builtin keep working.
    """


class EditOperationError(ReproError, ValueError):
    """A node edit operation cannot be applied to the given tree.

    Raised for e.g. deleting the root of a single-node tree, inserting under
    a non-existent parent, or referencing children that are not consecutive.
    """


class NotPartitionableError(ReproError):
    """A tree cannot be split into the requested number of subgraphs."""


class WorkerFailureError(ReproError):
    """A worker process died, raised, or returned a corrupt result.

    During supervised parallel execution each such event is normally
    *swallowed into stats* (``JoinStats.extra["worker_failures"]``): the
    task is retried under the active :class:`repro.resilience.RetryPolicy`
    and, once the policy is exhausted, re-executed serially in-process
    (``degraded_serial_tasks``).  This error only **escapes** to the
    caller when the policy is exhausted *and* graceful degradation is
    disabled (``RetryPolicy(degradation=False)``).
    """


class WorkerStateError(ReproError, RuntimeError):
    """A pool worker was used before its initializer installed state.

    A misuse guard: worker task functions require the pool to have been
    created with the matching ``initializer=``.  Subclasses
    :class:`RuntimeError` so callers using the builtin keep working.
    """


class TaskTimeoutError(ReproError):
    """A supervised parallel task exceeded its per-task timeout.

    Like :class:`WorkerFailureError`, a timeout is normally swallowed:
    the wedged pool is respawned, the task retried, and finally degraded
    to serial in-process execution — all accounted in ``JoinStats.extra``.
    It escapes only when the retry policy is exhausted and degradation is
    disabled (``RetryPolicy(degradation=False)``).
    """


class IngestError(ReproError):
    """A streaming ingest item (tree line / payload) is malformed.

    With ``on_error="fail"`` (the default of the streaming ingest paths)
    this escapes to the caller, carrying the offending line number where
    one exists.  With ``on_error="skip"`` it is swallowed into the
    quarantine channel instead: the item is dropped, counted in
    ``StreamStats.quarantined_trees``, and ingestion continues.
    """


class PersistenceError(ReproError):
    """Base class for snapshot/WAL storage errors (:mod:`repro.persist`).

    The session-level loaders never let these reach a caller who asked
    for *data*: ``TreeCollection.from_file`` catches them, warns, and
    falls back to a cold rebuild — a broken sidecar may cost time, never
    correctness.  They escape only from the explicit persistence entry
    points (``TreeCollection.load``, ``StreamingJoin.recover``, the
    container readers), where the caller named a file that must be valid.
    """


class SnapshotFormatError(PersistenceError):
    """A snapshot file is not readable as a snapshot at all.

    Wrong magic, a format version this library does not speak, or a file
    truncated inside the framing — the structural failures, as opposed to
    a well-framed section whose bytes fail their checksum
    (:class:`SnapshotIntegrityError`).
    """


class SnapshotIntegrityError(PersistenceError):
    """A snapshot section's bytes do not match their recorded CRC32,
    or decoded content fails a load-time consistency check (e.g. a
    reconstructed twig key differs from the stored one).  The snapshot
    was written intact and damaged afterwards — bit rot, torn overwrite,
    manual edit."""


class StaleSnapshotError(PersistenceError):
    """A sidecar snapshot no longer matches its source dataset file.

    The snapshot records a digest of the dataset it was prepared from;
    on load the digest is recomputed and compared.  A mismatch means the
    dataset changed after the index was saved — answering from the stale
    index could silently miss or invent results, so the loader refuses
    (and ``from_file`` falls back to a cold rebuild instead).
    """


class WALCorruptError(PersistenceError):
    """A write-ahead log is damaged *before* its final record.

    A torn final record (the single record a crash mid-append can leave
    behind) is expected damage and silently dropped during recovery;
    corruption with valid data after it means the log was damaged at
    rest and replaying past the hole would silently skip arrivals.  The
    salvage attributes describe the usable prefix: ``salvaged_records``
    complete records before the corruption, spanning ``good_bytes``
    bytes, with the damage found at byte ``offset``.
    """

    def __init__(self, message: str, *, salvaged_records: int = 0,
                 good_bytes: int = 0, offset: int = 0):
        super().__init__(message)
        self.salvaged_records = salvaged_records
        self.good_bytes = good_bytes
        self.offset = offset
