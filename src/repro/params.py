"""Centralized parameter validation shared by every public entry point.

Every way into the library — :class:`repro.session.TreeCollection` query
builders, the legacy one-shot shims (:func:`repro.api.similarity_join`,
:func:`repro.rsjoin.similarity_join_rs`, :func:`repro.search.similarity_search`,
:func:`repro.api.stream_join`), the streaming engine, the CLI — validates
the common knobs here, so the accepted domains and the error messages are
identical everywhere:

- ``tau``: the TED threshold, an integer ``>= 0``;
- ``workers``: the worker process count, an integer ``>= 1``;
- ``micro_batch``: the streaming ingest batch, an integer ``>= 1``;
- ``backend``: the kernel backend name, one of
  :data:`repro.kernels.BACKENDS` (``"auto"``, ``"python"``, ``"numpy"``).

The check functions return the validated value so call sites can validate
and bind in one expression.  All failures raise
:class:`~repro.errors.InvalidParameterError` (never a bare ``ValueError``),
keeping CLI exit codes and library ``except`` clauses uniform.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError

__all__ = ["check_tau", "check_workers", "check_micro_batch", "check_backend"]


def check_tau(tau: int) -> int:
    """Validate a TED threshold: an integer ``>= 0``."""
    if isinstance(tau, bool) or not isinstance(tau, int):
        raise InvalidParameterError(
            f"tau must be an integer >= 0, got {tau!r}"
        )
    if tau < 0:
        raise InvalidParameterError(f"tau must be >= 0, got {tau}")
    return tau


def check_workers(workers: int) -> int:
    """Validate a worker process count: an integer ``>= 1``."""
    if (
        isinstance(workers, bool)
        or not isinstance(workers, int)
        or workers < 1
    ):
        raise InvalidParameterError(
            f"workers must be an integer >= 1, got {workers!r}"
        )
    return workers


def check_backend(backend: str) -> str:
    """Validate a kernel backend name (membership only, no resolution).

    :func:`repro.kernels.resolve_backend` additionally resolves
    ``"auto"`` and enforces numpy availability; this check exists so
    entry points can reject typos before any work happens.
    """
    from repro.kernels import BACKENDS

    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; use one of {', '.join(BACKENDS)}"
        )
    return backend


def check_micro_batch(micro_batch: int) -> int:
    """Validate a streaming micro-batch size: an integer ``>= 1``."""
    if (
        isinstance(micro_batch, bool)
        or not isinstance(micro_batch, int)
        or micro_batch < 1
    ):
        raise InvalidParameterError(
            f"micro_batch must be >= 1, got {micro_batch!r}"
        )
    return micro_batch
