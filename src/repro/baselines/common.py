"""Shared plumbing for all join methods: results, statistics, verification.

Every join in this repository — PartSJ and the baselines — reports its
outcome through the same :class:`JoinResult` / :class:`JoinStats` types so
the benchmark harness can print the paper's figures uniformly:

- *candidate generation time* vs *TED computation time* (the two bar
  segments of Figures 10/12/14);
- *number of candidates* (the series of Figures 11/13/14) — a candidate is
  a pair that survived the method's filter and was handed to exact TED
  verification.

:class:`Verifier` is the *threshold-aware verification engine* shared by
all methods.  TED computation dominates every join's runtime (the "TED
computation" bars of Figures 10/12/14), so the verifier never runs an
unbounded distance computation on a candidate.  Instead each pair walks a
cheap-to-expensive pipeline:

1. **Trivial upper bound** (O(1) from cached features): if deleting one
   tree and inserting the other already costs ``<= tau``, the pair is
   accepted without touching the DP machinery (counter ``ub_accepted``).
2. **Composite lower bound** (O(distinct keys) from cached per-tree bags —
   label multiset, degree histogram, binary branches) plus the banded
   traversal-string bound: any bound ``> tau`` rejects the pair with no
   DP at all (counter ``lb_filtered``).
3. **tau-banded exact DP**: survivors run
   :func:`repro.ted.cutoff.zhang_shasha_bounded`, which fills only the
   ``2*tau + 1`` diagonals of each keyroot forest DP and abandons the
   computation as soon as no cell can recover (counter
   ``ted_early_exits`` when the ``> tau`` sentinel comes back).

The per-tree feature vectors (:class:`TreeFeatures`) and Zhang–Shasha
annotations (both orientations, built lazily — small trees skip the mirror
entirely) are cached, so a tree joined against many candidates is
traversed a constant number of times regardless of its candidate count.
The counters surface in ``JoinStats.extra`` for every join method via
:meth:`Verifier.extra_stats`, giving the figure scripts a verification
breakdown.  Results are bit-identical to unconditional exact verification
(``threshold_aware=False`` restores it) because every bound is proven and
the banded DP is exact within ``tau``.
"""

from __future__ import annotations

import time
from bisect import bisect_left, bisect_right
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.errors import InvalidParameterError
from repro.params import check_tau
from repro.ted.binary_branch import binary_branches
from repro.ted.bounds import (
    branch_bound_from_bags,
    degree_bound_from_bags,
    label_bound_from_bags,
    trivial_upper_bound_from_parts,
)
from repro.ted.cutoff import zhang_shasha_bounded
from repro.ted.rted import MIRROR_SIZE_CUTOFF, choose_orientation, mirror_tree
from repro.ted.string_edit import string_edit_within
from repro.ted.zhang_shasha import AnnotatedTree, zhang_shasha
from repro.tree.node import Tree

__all__ = [
    "JoinPair",
    "JoinStats",
    "JoinResult",
    "TreeFeatures",
    "Verifier",
    "VerifierCaches",
    "DeferredVerification",
    "SizeSortedCollection",
    "check_join_inputs",
]


@dataclass(frozen=True)
class JoinPair:
    """One join result: tree indices ``i < j`` and their exact distance."""

    i: int
    j: int
    distance: int

    def key(self) -> tuple[int, int]:
        return (self.i, self.j)


@dataclass
class JoinStats:
    """Counters and phase timings for one join execution."""

    method: str
    tau: int
    tree_count: int
    candidates: int = 0  # pairs sent to exact TED verification
    results: int = 0  # pairs with TED <= tau
    ted_calls: int = 0  # exact TED computations performed
    pairs_considered: int = 0  # pairs examined by the filter phase
    candidate_time: float = 0.0  # seconds in candidate generation (probe + index)
    verify_time: float = 0.0  # seconds in TED verification
    # Candidate generation split: time probing existing index structures for
    # candidates vs. time building/inserting them (PartSJ's insert phase).
    # Filter-only baselines do all their candidate work in the probe phase,
    # so for them probe_time == candidate_time and index_time == 0.
    probe_time: float = 0.0
    index_time: float = 0.0
    # Method-specific counters.  Every join additionally merges the
    # verifier's breakdown here: ``lb_filtered`` (candidates rejected by a
    # lower bound, no DP), ``ub_accepted`` (candidates accepted by the
    # trivial upper bound) and ``ted_early_exits`` (banded DPs that stopped
    # at the > tau sentinel).
    extra: dict = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.candidate_time + self.verify_time

    def summary(self) -> str:
        """One-line human-readable summary."""
        if self.index_time > 0:
            cand = (
                f"cand {self.candidate_time:.3f}s "
                f"(probe {self.probe_time:.3f}s + index {self.index_time:.3f}s)"
            )
        else:
            cand = f"cand {self.candidate_time:.3f}s"
        return (
            f"{self.method}(tau={self.tau}, n={self.tree_count}): "
            f"{self.results} results, {self.candidates} candidates, "
            f"{self.ted_calls} TED calls, "
            f"{cand} + ted {self.verify_time:.3f}s"
        )


@dataclass
class JoinResult:
    """Pairs plus statistics returned by every join method."""

    pairs: list[JoinPair]
    stats: JoinStats

    def pair_set(self) -> set[tuple[int, int]]:
        """The result as a set of ``(i, j)`` index pairs (``i < j``)."""
        return {pair.key() for pair in self.pairs}

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[JoinPair]:
        return iter(self.pairs)


def check_join_inputs(trees: Sequence[Tree], tau: int) -> None:
    """Validate common join arguments (tau via :mod:`repro.params`)."""
    check_tau(tau)
    for position, tree in enumerate(trees):
        if not isinstance(tree, Tree):
            raise InvalidParameterError(
                f"trees[{position}] is {type(tree).__name__}, expected Tree"
            )


class TreeFeatures:
    """Per-tree vectors behind the verifier's O(distinct-keys) filters.

    Everything :func:`repro.ted.bounds.composite_lower_bound` and the
    traversal-string bound need, each computed at most once per tree: the
    label bag, the degree histogram, the binary-branch bag, and the
    pre/postorder label tuples.  A candidate pair is then screened with
    multiset L1 distances and (optionally) two banded string DPs — no
    tree walk.

    Every part is built lazily on first access, so a consumer pays only
    for what it reads: the SET join's candidate screen touches just
    ``branch_bag``, the histogram join just the label/degree bags, and a
    verifier with ``traversal_bound=False`` never materializes the
    traversal tuples.  Joins share the verifier's per-tree cache instead
    of rebuilding bags.
    """

    __slots__ = (
        "tree",
        "size",
        "root_label",
        "_label_bag",
        "_degree_bag",
        "_branch_bag",
        "_preorder",
        "_postorder",
    )

    def __init__(self, tree: Tree):
        self.tree = tree
        self.size = tree.size
        self.root_label = tree.root.label
        self._label_bag: Optional[Counter] = None
        self._degree_bag: Optional[Counter] = None
        self._branch_bag: Optional[Counter] = None
        self._preorder: Optional[tuple] = None
        self._postorder: Optional[tuple] = None

    def _scan_bags(self) -> None:
        label_bag: Counter = Counter()
        degree_bag: Counter = Counter()
        for node in self.tree.iter_preorder():
            label_bag[node.label] += 1
            degree_bag[node.degree] += 1
        self._label_bag = label_bag
        self._degree_bag = degree_bag

    @property
    def label_bag(self) -> Counter:
        if self._label_bag is None:
            self._scan_bags()
        return self._label_bag

    @property
    def degree_bag(self) -> Counter:
        if self._degree_bag is None:
            self._scan_bags()
        return self._degree_bag

    @property
    def branch_bag(self) -> Counter:
        if self._branch_bag is None:
            self._branch_bag = binary_branches(self.tree)
        return self._branch_bag

    @property
    def preorder(self) -> tuple:
        if self._preorder is None:
            self._preorder = tuple(self.tree.preorder_labels())
        return self._preorder

    @property
    def postorder(self) -> tuple:
        if self._postorder is None:
            self._postorder = tuple(self.tree.postorder_labels())
        return self._postorder

    def trivial_upper_bound(self, other: "TreeFeatures") -> int:
        """Delete everything below one root, rename it, insert the other."""
        return trivial_upper_bound_from_parts(
            self.size, other.size, self.root_label == other.root_label
        )


class VerifierCaches:
    """Tau-independent per-tree verification caches, shareable across runs.

    Everything a :class:`Verifier` memoizes per tree — Zhang–Shasha
    annotations (both orientations) and :class:`TreeFeatures` — depends
    only on the tree, never on the threshold.  A prepared session
    (:class:`repro.session.TreeCollection`) therefore keeps one instance
    per collection and hands it to every query's verifier: a tree
    annotated for the first ``tau=1`` join is not re-annotated by a later
    ``tau=3`` join or search over the same collection.  Keys are original
    tree indices, so the caches are only valid for verifiers over the
    same tree sequence.
    """

    __slots__ = ("annotated", "mirrored", "features")

    def __init__(self) -> None:
        self.annotated: dict[int, AnnotatedTree] = {}
        self.mirrored: dict[int, AnnotatedTree] = {}
        self.features: dict[int, TreeFeatures] = {}


class Verifier:
    """Threshold-aware exact-TED verification engine (see module docstring).

    Parameters
    ----------
    trees:
        The collection, indexed by original position.
    tau:
        The join threshold; :meth:`verify` reports distances ``<= tau``.
    threshold_aware:
        With the default ``True``, candidates run the bound pipeline and
        the tau-banded DP.  ``False`` restores the unconditional full
        Zhang–Shasha of the original verifier (the microbenchmark
        baseline); the accepted pair set is identical either way.
    traversal_bound:
        Include the banded pre/postorder string-edit lower bound in the
        filter chain.  The STR join disables it because its candidates
        already passed exactly that filter (the per-tree traversal tuples
        are then not even materialized).
    bag_bounds:
        Which bag lower bounds to include in the filter chain: ``True``
        (all of labels / degrees / branches), ``False`` (none), or an
        iterable naming a subset.  Joins disable exactly the checks their
        own candidate screen already applied — the nested-loop join with
        bounds passes ``False``, the histogram join keeps only
        ``("branches",)``, the SET join only ``("labels", "degrees")``.
    exact_distances:
        With the default ``True``, accepted pairs always carry their exact
        distance (upper-bound acceptances re-derive it with a DP banded at
        the even tighter ``upper``).  ``False`` lets an upper-bound
        acceptance return the bound itself with no DP at all — membership
        is still exact, the reported distance may overestimate.
    caches:
        A :class:`VerifierCaches` to read and populate instead of private
        per-verifier dicts.  Sessions share one per collection so the
        per-tree annotation/feature work amortizes across queries at
        different thresholds; the accepted pairs and distances are
        unaffected.
    backend:
        Kernel backend for the tau-banded DP: ``"python"`` (the
        reference :func:`~repro.ted.cutoff.zhang_shasha_bounded`),
        ``"numpy"`` (:class:`repro.ted` rows vectorized via
        :class:`repro.kernels.ted.BandedTed`, which itself falls back to
        the scalar DP below its band-width crossover) or ``"auto"``.
        Accepted pairs and reported distances are identical either way;
        :attr:`backend` holds the resolved name for stats reporting.
    """

    def __init__(
        self,
        trees: Sequence[Tree],
        tau: int,
        threshold_aware: bool = True,
        traversal_bound: bool = True,
        bag_bounds: "bool | Sequence[str]" = True,
        exact_distances: bool = True,
        caches: Optional[VerifierCaches] = None,
        backend: str = "auto",
    ):
        if bag_bounds is True:
            bag_bounds = ("labels", "degrees", "branches")
        elif bag_bounds is False:
            bag_bounds = ()
        self._trees = trees
        self._tau = tau
        self._threshold_aware = threshold_aware
        self._traversal_bound = traversal_bound
        self._bag_bounds = frozenset(bag_bounds)
        self._exact_distances = exact_distances
        from repro.kernels import resolve_backend
        from repro.params import check_backend

        self.backend = resolve_backend(check_backend(backend))
        if self.backend == "numpy":
            from repro.kernels.ted import BandedTed

            self._bounded = BandedTed()
        else:
            self._bounded = zhang_shasha_bounded
        if caches is None:
            caches = VerifierCaches()
        self._annotated = caches.annotated
        self._mirrored = caches.mirrored
        self._features = caches.features
        self.stats_ted_calls = 0
        self.stats_time = 0.0
        self.stats_lb_filtered = 0
        self.stats_ub_accepted = 0
        self.stats_ted_early_exits = 0

    def _annotation(self, index: int) -> AnnotatedTree:
        cached = self._annotated.get(index)
        if cached is None:
            cached = AnnotatedTree(self._trees[index])
            self._annotated[index] = cached
        return cached

    def _mirror_annotation(self, index: int) -> AnnotatedTree:
        cached = self._mirrored.get(index)
        if cached is None:
            cached = AnnotatedTree(mirror_tree(self._trees[index]))
            self._mirrored[index] = cached
        return cached

    def features(self, index: int) -> TreeFeatures:
        """The cached :class:`TreeFeatures` of tree ``index``."""
        cached = self._features.get(index)
        if cached is None:
            cached = TreeFeatures(self._trees[index])
            self._features[index] = cached
        return cached

    def _oriented(self, i: int, j: int) -> tuple[AnnotatedTree, AnnotatedTree]:
        """The cheaper decomposition orientation, as :mod:`repro.ted.rted`.

        Delegates to :func:`repro.ted.rted.choose_orientation` with the
        per-tree annotation caches: mirrors are built lazily and, below
        ``MIRROR_SIZE_CUTOFF``, not at all.
        """
        return choose_orientation(
            self._annotation(i),
            self._annotation(j),
            lambda: (self._mirror_annotation(i), self._mirror_annotation(j)),
            MIRROR_SIZE_CUTOFF,
        )

    def distance(self, i: int, j: int) -> int:
        """Exact TED between trees ``i`` and ``j`` (orientation-adaptive)."""
        start = time.perf_counter()
        x1, x2 = self._oriented(i, j)
        value = zhang_shasha(x1, x2)
        self.stats_ted_calls += 1
        self.stats_time += time.perf_counter() - start
        return value

    def verify(self, i: int, j: int) -> Optional[int]:
        """Exact distance if ``<= tau`` else ``None``.

        This is the hot path of every join: the bound pipeline described
        in the module docstring, then the tau-banded DP.
        """
        tau = self._tau
        if not self._threshold_aware:
            value = self.distance(i, j)
            return value if value <= tau else None
        start = time.perf_counter()
        try:
            f1 = self.features(i)
            f2 = self.features(j)
            upper = f1.trivial_upper_bound(f2)
            if upper <= tau:
                # The pair cannot miss; skip the whole filter chain.
                self.stats_ub_accepted += 1
                if not self._exact_distances:
                    return upper
                value = self._bounded(
                    self._annotation(i), self._annotation(j), upper
                )
                self.stats_ted_calls += 1
                return value  # TED <= upper, so the band cannot cut it off
            # The composite lower bound of repro.ted.bounds, evaluated
            # stepwise from the cached bags (cheapest first, stopping at
            # the first bound > tau); checks whose L1 the join's own
            # candidate screen already applied are excluded via bag_bounds.
            if abs(f1.size - f2.size) > tau:
                self.stats_lb_filtered += 1
                return None
            bags = self._bag_bounds
            if (
                ("labels" in bags
                 and label_bound_from_bags(f1.label_bag, f2.label_bag) > tau)
                or ("degrees" in bags
                    and degree_bound_from_bags(f1.degree_bag, f2.degree_bag) > tau)
                or ("branches" in bags
                    and branch_bound_from_bags(f1.branch_bag, f2.branch_bag) > tau)
            ):
                self.stats_lb_filtered += 1
                return None
            if self._traversal_bound and (
                string_edit_within(f1.preorder, f2.preorder, tau) is None
                or string_edit_within(f1.postorder, f2.postorder, tau) is None
            ):
                self.stats_lb_filtered += 1
                return None
            x1, x2 = self._oriented(i, j)
            self.stats_ted_calls += 1
            value = self._bounded(x1, x2, tau)
            if value is None:
                self.stats_ted_early_exits += 1
            return value
        finally:
            self.stats_time += time.perf_counter() - start

    def extra_stats(self) -> dict:
        """The verification breakdown joins merge into ``JoinStats.extra``."""
        return {
            "lb_filtered": self.stats_lb_filtered,
            "ub_accepted": self.stats_ub_accepted,
            "ted_early_exits": self.stats_ted_early_exits,
        }


class DeferredVerification:
    """Candidate sink for a join running with ``workers > 1``.

    Every join method shares the same parallel shape: its candidate loop
    stays serial (it is method-specific and cheap relative to TED), but
    instead of verifying inline it collects the pairs here and resolves
    them through the shared verification pool at the end
    (:func:`repro.parallel.verify_pool.parallel_verify`).  ``options`` are
    the join's usual :class:`Verifier` keyword arguments, so each worker
    applies exactly the bound pipeline the serial run would have.

    :meth:`resolve` fills the verification side of ``stats`` (``ted_calls``,
    ``verify_time`` as summed worker CPU seconds, the verifier breakdown
    counters, plus ``workers`` / ``verify_chunks`` / ``verify_wall_time``)
    and returns the accepted pairs — exact distances, canonical order,
    identical to inline verification.
    """

    def __init__(self, workers: int, options: Optional[dict] = None):
        self.workers = workers
        self.options = options
        self.pairs: list[tuple[int, int]] = []

    def add(self, i: int, j: int) -> None:
        self.pairs.append((i, j))

    def resolve(
        self, trees: Sequence[Tree], tau: int, stats: JoinStats
    ) -> list[JoinPair]:
        # Local import: repro.parallel builds on this module.
        from repro.parallel.verify_pool import parallel_verify

        verified, verify_stats = parallel_verify(
            trees, tau, self.pairs, self.workers, options=self.options
        )
        stats.ted_calls = verify_stats["ted_calls"]
        stats.verify_time = verify_stats["verify_time"]
        for key in ("lb_filtered", "ub_accepted", "ted_early_exits"):
            stats.extra[key] = verify_stats[key]
        stats.extra["workers"] = self.workers
        stats.extra["verify_chunks"] = verify_stats["verify_chunks"]
        stats.extra["verify_wall_time"] = round(
            verify_stats["verify_wall_time"], 6
        )
        # Supervised-dispatch failure accounting (present only when the
        # verify stage actually saw worker failures; see repro.resilience).
        for key in ("retries", "worker_failures", "timeouts",
                    "degraded_serial_tasks"):
            if key in verify_stats:
                stats.extra[key] = verify_stats[key]
        return verified


class SizeSortedCollection:
    """Trees sorted ascending by size, remembering original indices.

    All joins process trees in this order (Algorithm 1, line 3): for the
    probe tree ``Ti``, only previously seen trees within the size window
    ``[|Ti| - tau, |Ti|]`` can be join partners.

    The collection is *incrementally growable*: :meth:`insert` appends a
    tree to the wrapped list and splices it into the sorted order, the
    hoisted ``sizes`` and the cached size histogram **in place**, so a
    streaming consumer (:class:`repro.stream.StreamingJoin`) never
    rebuilds or re-sorts.  Equal sizes keep the batch constructor's
    stable tie-break (ascending original index) because an inserted tree
    always carries the largest index so far and lands *after* its
    equal-size run.  ``version`` counts mutations; consumers holding
    derived state (e.g. :class:`repro.parallel.sharding.ShardPlanner`)
    compare it to detect staleness.
    """

    def __init__(self, trees: Sequence[Tree]):
        self.order: list[int] = sorted(range(len(trees)), key=lambda k: trees[k].size)
        self.trees = trees
        # Ascending sizes, hoisted once; every tau window reuses them.
        self.sizes: list[int] = [trees[k].size for k in self.order]
        self._histogram: Optional[list[tuple[int, int]]] = None
        self.version = 0

    def __len__(self) -> int:
        return len(self.order)

    def insert(self, tree: Tree) -> int:
        """Append ``tree`` to the wrapped list and splice the sorted views.

        Returns the tree's original index (``len(trees) - 1`` after the
        append).  The wrapped ``trees`` must be a list this collection is
        allowed to grow — the streaming engine owns such a list; batch
        joins never call this.  The cached histogram is updated in place
        (not invalidated), so a caller interleaving
        :meth:`size_histogram` with inserts always sees coherent counts.
        """
        if not isinstance(tree, Tree):
            raise InvalidParameterError(
                f"insert expects a Tree, got {type(tree).__name__}"
            )
        trees = self.trees
        if not isinstance(trees, list):
            raise InvalidParameterError(
                "SizeSortedCollection.insert requires the collection to wrap "
                f"a mutable list, not {type(trees).__name__}"
            )
        index = len(trees)
        trees.append(tree)
        size = tree.size
        # bisect_right: after the equal-size run, preserving the stable
        # (size, original index) order of the batch constructor.
        position = bisect_right(self.sizes, size)
        self.order.insert(position, index)
        self.sizes.insert(position, size)
        if self._histogram is not None:
            histogram = self._histogram
            run = bisect_left(histogram, (size,))
            if run < len(histogram) and histogram[run][0] == size:
                histogram[run] = (size, histogram[run][1] + 1)
            else:
                histogram.insert(run, (size, 1))
        self.version += 1
        return index

    def size_histogram(self) -> list[tuple[int, int]]:
        """Ascending ``(size, count)`` runs of the sorted collection.

        Computed once and cached; shard planning
        (:func:`repro.parallel.sharding.plan_shards`) and collection
        statistics read it instead of re-scanning ``sizes``.  The cache
        stays coherent under :meth:`insert`, which updates the affected
        run in place.
        """
        if self._histogram is None:
            histogram: list[tuple[int, int]] = []
            sizes = self.sizes
            run_start = 0
            for k in range(1, len(sizes) + 1):
                if k == len(sizes) or sizes[k] != sizes[run_start]:
                    histogram.append((sizes[run_start], k - run_start))
                    run_start = k
            self._histogram = histogram
        return self._histogram

    def tree_at(self, position: int) -> Tree:
        """Tree at sorted position ``position``."""
        return self.trees[self.order[position]]

    def original_index(self, position: int) -> int:
        return self.order[position]

    def iter_window_pairs(self, tau: int) -> Iterator[tuple[int, int]]:
        """Yield sorted-position pairs ``(earlier, later)`` within the window.

        A pair is yielded iff ``size(later) - size(earlier) <= tau``
        (sizes are sorted, so the window is contiguous); every unordered
        pair passing the size filter is produced exactly once.
        """
        sizes = self.sizes
        start = 0
        for later in range(len(self.order)):
            while sizes[later] - sizes[start] > tau:
                start += 1
            for earlier in range(start, later):
                yield earlier, later

    def make_pair(self, pos_a: int, pos_b: int, distance: int) -> JoinPair:
        """Build a :class:`JoinPair` in canonical (i < j) orientation."""
        i = self.original_index(pos_a)
        j = self.original_index(pos_b)
        if i > j:
            i, j = j, i
        return JoinPair(i, j, distance)
