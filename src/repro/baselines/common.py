"""Shared plumbing for all join methods: results, statistics, verification.

Every join in this repository — PartSJ and the baselines — reports its
outcome through the same :class:`JoinResult` / :class:`JoinStats` types so
the benchmark harness can print the paper's figures uniformly:

- *candidate generation time* vs *TED computation time* (the two bar
  segments of Figures 10/12/14);
- *number of candidates* (the series of Figures 11/13/14) — a candidate is
  a pair that survived the method's filter and was handed to exact TED
  verification.

:class:`Verifier` performs the exact-TED verification step shared by all
methods.  It caches per-tree Zhang–Shasha annotations (both orientations)
so a tree joined against many candidates is annotated once, and it picks
the cheaper decomposition orientation per pair as :mod:`repro.ted.rted`
does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.errors import InvalidParameterError
from repro.ted.rted import mirror_tree
from repro.ted.zhang_shasha import AnnotatedTree, zhang_shasha
from repro.tree.node import Tree

__all__ = [
    "JoinPair",
    "JoinStats",
    "JoinResult",
    "Verifier",
    "SizeSortedCollection",
    "check_join_inputs",
]


@dataclass(frozen=True)
class JoinPair:
    """One join result: tree indices ``i < j`` and their exact distance."""

    i: int
    j: int
    distance: int

    def key(self) -> tuple[int, int]:
        return (self.i, self.j)


@dataclass
class JoinStats:
    """Counters and phase timings for one join execution."""

    method: str
    tau: int
    tree_count: int
    candidates: int = 0  # pairs sent to exact TED verification
    results: int = 0  # pairs with TED <= tau
    ted_calls: int = 0  # exact TED computations performed
    pairs_considered: int = 0  # pairs examined by the filter phase
    candidate_time: float = 0.0  # seconds in candidate generation
    verify_time: float = 0.0  # seconds in TED verification
    extra: dict = field(default_factory=dict)  # method-specific counters

    @property
    def total_time(self) -> float:
        return self.candidate_time + self.verify_time

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.method}(tau={self.tau}, n={self.tree_count}): "
            f"{self.results} results, {self.candidates} candidates, "
            f"{self.ted_calls} TED calls, "
            f"cand {self.candidate_time:.3f}s + ted {self.verify_time:.3f}s"
        )


@dataclass
class JoinResult:
    """Pairs plus statistics returned by every join method."""

    pairs: list[JoinPair]
    stats: JoinStats

    def pair_set(self) -> set[tuple[int, int]]:
        """The result as a set of ``(i, j)`` index pairs (``i < j``)."""
        return {pair.key() for pair in self.pairs}

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[JoinPair]:
        return iter(self.pairs)


def check_join_inputs(trees: Sequence[Tree], tau: int) -> None:
    """Validate common join arguments."""
    if tau < 0:
        raise InvalidParameterError(f"tau must be >= 0, got {tau}")
    for position, tree in enumerate(trees):
        if not isinstance(tree, Tree):
            raise InvalidParameterError(
                f"trees[{position}] is {type(tree).__name__}, expected Tree"
            )


class Verifier:
    """Exact-TED verification service with per-tree annotation caching.

    Parameters
    ----------
    trees:
        The collection, indexed by original position.
    tau:
        The join threshold; :meth:`verify` reports distances ``<= tau``.
    """

    def __init__(self, trees: Sequence[Tree], tau: int):
        self._trees = trees
        self._tau = tau
        self._annotated: dict[int, AnnotatedTree] = {}
        self._mirrored: dict[int, AnnotatedTree] = {}
        self.stats_ted_calls = 0
        self.stats_time = 0.0

    def _annotation(self, index: int) -> AnnotatedTree:
        cached = self._annotated.get(index)
        if cached is None:
            cached = AnnotatedTree(self._trees[index])
            self._annotated[index] = cached
        return cached

    def _mirror_annotation(self, index: int) -> AnnotatedTree:
        cached = self._mirrored.get(index)
        if cached is None:
            cached = AnnotatedTree(mirror_tree(self._trees[index]))
            self._mirrored[index] = cached
        return cached

    def distance(self, i: int, j: int) -> int:
        """Exact TED between trees ``i`` and ``j`` (orientation-adaptive)."""
        start = time.perf_counter()
        a1 = self._annotation(i)
        a2 = self._annotation(j)
        left_cost = a1.keyroot_weight() * a2.keyroot_weight()
        b1 = self._mirror_annotation(i)
        b2 = self._mirror_annotation(j)
        right_cost = b1.keyroot_weight() * b2.keyroot_weight()
        if right_cost < left_cost:
            value = zhang_shasha(b1, b2)
        else:
            value = zhang_shasha(a1, a2)
        self.stats_ted_calls += 1
        self.stats_time += time.perf_counter() - start
        return value

    def verify(self, i: int, j: int) -> Optional[int]:
        """Exact distance if ``<= tau`` else ``None``."""
        value = self.distance(i, j)
        return value if value <= self._tau else None


class SizeSortedCollection:
    """Trees sorted ascending by size, remembering original indices.

    All joins process trees in this order (Algorithm 1, line 3): for the
    probe tree ``Ti``, only previously seen trees within the size window
    ``[|Ti| - tau, |Ti|]`` can be join partners.
    """

    def __init__(self, trees: Sequence[Tree]):
        self.order: list[int] = sorted(range(len(trees)), key=lambda k: trees[k].size)
        self.trees = trees

    def __len__(self) -> int:
        return len(self.order)

    def tree_at(self, position: int) -> Tree:
        """Tree at sorted position ``position``."""
        return self.trees[self.order[position]]

    def original_index(self, position: int) -> int:
        return self.order[position]

    def iter_window_pairs(self, tau: int) -> Iterator[tuple[int, int]]:
        """Yield sorted-position pairs ``(earlier, later)`` within the window.

        A pair is yielded iff ``size(later) - size(earlier) <= tau``
        (sizes are sorted, so the window is contiguous); every unordered
        pair passing the size filter is produced exactly once.
        """
        sizes = [self.tree_at(p).size for p in range(len(self.order))]
        start = 0
        for later in range(len(self.order)):
            while sizes[later] - sizes[start] > tau:
                start += 1
            for earlier in range(start, later):
                yield earlier, later

    def make_pair(self, pos_a: int, pos_b: int, distance: int) -> JoinPair:
        """Build a :class:`JoinPair` in canonical (i < j) orientation."""
        i = self.original_index(pos_a)
        j = self.original_index(pos_b)
        if i > j:
            i, j = j, i
        return JoinPair(i, j, distance)
