"""Histogram-filter join in the spirit of Kailing et al. [16].

An extra baseline beyond the paper's experimental section (listed in its
related work): pairs are screened by three O(n) histogram lower bounds —
size, label multiset, and degree histogram — before exact verification.
Cheap but looser than STR, it is useful as a sanity baseline in the bench
harness and exercises :mod:`repro.ted.bounds` at scale.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.common import (
    DeferredVerification,
    JoinResult,
    JoinStats,
    SizeSortedCollection,
    Verifier,
    check_join_inputs,
)
from repro.obs.trace import phase_timer
from repro.ted.bounds import multiset_l1 as _multiset_l1
from repro.tree.node import Tree

__all__ = ["histogram_join"]


def histogram_join(
    trees: Sequence[Tree], tau: int, workers: int = 1, backend: str = "auto"
) -> JoinResult:
    """Similarity self-join with label and degree histogram filters.

    ``workers > 1`` verifies candidates in parallel through the shared
    verification pool (identical pairs and distances); ``backend``
    selects the verification DP kernel (identical results, reported in
    ``stats.extra["backend"]``).

    >>> a = Tree.from_bracket("{a{b}{c}}")
    >>> b = Tree.from_bracket("{a{b}}")
    >>> [p.key() for p in histogram_join([a, b], 1).pairs]
    [(0, 1)]
    """
    check_join_inputs(trees, tau)
    stats = JoinStats(method="HST", tau=tau, tree_count=len(trees))
    collection = SizeSortedCollection(trees)
    # The verifier skips the label/degree bounds this screen applies and
    # still adds the binary-branch and traversal bounds the screen lacks.
    # One options dict feeds both the inline and the worker-side verifiers.
    verifier_options = {"bag_bounds": ("branches",), "backend": backend}
    verifier = Verifier(trees, tau, **verifier_options)
    stats.extra["backend"] = verifier.backend
    deferred = (
        DeferredVerification(workers, options=verifier_options)
        if workers > 1 else None
    )

    # The histogram filters read the verifier's per-tree feature cache:
    # each label/degree bag is built lazily on first touch and shared.
    feats = [verifier.features(k) for k in range(len(trees))]

    pruned_labels = 0
    pruned_degrees = 0
    pairs = []
    for pos_a, pos_b in collection.iter_window_pairs(tau):
        stats.pairs_considered += 1
        i = collection.original_index(pos_a)
        j = collection.original_index(pos_b)

        with phase_timer(stats, "candidate_time"):
            label_ok = (
                _multiset_l1(feats[i].label_bag, feats[j].label_bag) <= 2 * tau
            )
            degree_ok = label_ok and (
                _multiset_l1(feats[i].degree_bag, feats[j].degree_bag)
                <= 3 * tau
            )
        if not label_ok:
            pruned_labels += 1
            continue
        if not degree_ok:
            pruned_degrees += 1
            continue

        stats.candidates += 1
        if deferred is not None:
            deferred.add(i, j)
            continue
        distance = verifier.verify(i, j)
        if distance is not None:
            pairs.append(collection.make_pair(pos_a, pos_b, distance))

    stats.probe_time = stats.candidate_time  # filter-only: no insert phase
    if deferred is not None:
        pairs.extend(deferred.resolve(trees, tau, stats))
    else:
        stats.ted_calls = verifier.stats_ted_calls
        stats.verify_time = verifier.stats_time
        stats.extra.update(verifier.extra_stats())
    stats.results = len(pairs)
    stats.extra["pruned_by_labels"] = pruned_labels
    stats.extra["pruned_by_degrees"] = pruned_degrees
    pairs.sort(key=lambda p: p.key())
    return JoinResult(pairs=pairs, stats=stats)
