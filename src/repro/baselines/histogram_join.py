"""Histogram-filter join in the spirit of Kailing et al. [16].

An extra baseline beyond the paper's experimental section (listed in its
related work): pairs are screened by three O(n) histogram lower bounds —
size, label multiset, and degree histogram — before exact verification.
Cheap but looser than STR, it is useful as a sanity baseline in the bench
harness and exercises :mod:`repro.ted.bounds` at scale.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Sequence

from repro.baselines.common import (
    JoinResult,
    JoinStats,
    SizeSortedCollection,
    Verifier,
    check_join_inputs,
)
from repro.tree.node import Tree

__all__ = ["histogram_join"]


def _multiset_l1(c1: Counter, c2: Counter) -> int:
    keys = set(c1) | set(c2)
    return sum(abs(c1.get(k, 0) - c2.get(k, 0)) for k in keys)


def histogram_join(trees: Sequence[Tree], tau: int) -> JoinResult:
    """Similarity self-join with label and degree histogram filters.

    >>> a = Tree.from_bracket("{a{b}{c}}")
    >>> b = Tree.from_bracket("{a{b}}")
    >>> [p.key() for p in histogram_join([a, b], 1).pairs]
    [(0, 1)]
    """
    check_join_inputs(trees, tau)
    stats = JoinStats(method="HST", tau=tau, tree_count=len(trees))
    collection = SizeSortedCollection(trees)
    verifier = Verifier(trees, tau)

    start = time.perf_counter()
    label_bags = [Counter(tree.labels()) for tree in trees]
    degree_bags = [
        Counter(node.degree for node in tree.iter_preorder()) for tree in trees
    ]
    stats.candidate_time += time.perf_counter() - start

    pruned_labels = 0
    pruned_degrees = 0
    pairs = []
    for pos_a, pos_b in collection.iter_window_pairs(tau):
        stats.pairs_considered += 1
        i = collection.original_index(pos_a)
        j = collection.original_index(pos_b)

        start = time.perf_counter()
        label_ok = _multiset_l1(label_bags[i], label_bags[j]) <= 2 * tau
        degree_ok = label_ok and (
            _multiset_l1(degree_bags[i], degree_bags[j]) <= 3 * tau
        )
        stats.candidate_time += time.perf_counter() - start
        if not label_ok:
            pruned_labels += 1
            continue
        if not degree_ok:
            pruned_degrees += 1
            continue

        stats.candidates += 1
        distance = verifier.verify(i, j)
        if distance is not None:
            pairs.append(collection.make_pair(pos_a, pos_b, distance))

    stats.ted_calls = verifier.stats_ted_calls
    stats.verify_time = verifier.stats_time
    stats.results = len(pairs)
    stats.extra["pruned_by_labels"] = pruned_labels
    stats.extra["pruned_by_degrees"] = pruned_degrees
    pairs.sort(key=lambda p: p.key())
    return JoinResult(pairs=pairs, stats=stats)
