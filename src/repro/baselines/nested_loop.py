"""Brute-force exact join: the ground truth (series REL in the figures).

Every pair passing the size filter is verified with exact TED.  An optional
lower-bound screen (enabled by default) skips provably-dissimilar pairs
without affecting the result set; it precomputes the label, degree, and
binary-branch bags once per tree so the per-pair work is three multiset L1
distances.  Disable it with ``use_bounds=False`` to measure the unassisted
nested loop.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.common import (
    DeferredVerification,
    JoinResult,
    JoinStats,
    SizeSortedCollection,
    Verifier,
    check_join_inputs,
)
from repro.obs.trace import phase_timer
from repro.ted.bounds import multiset_l1 as _multiset_l1
from repro.tree.node import Tree

__all__ = ["nested_loop_join"]


def nested_loop_join(
    trees: Sequence[Tree],
    tau: int,
    use_bounds: bool = True,
    workers: int = 1,
    backend: str = "auto",
) -> JoinResult:
    """Exact similarity self-join by nested loops over the size window.

    Parameters
    ----------
    trees:
        The collection; results reference positions in this sequence.
    tau:
        TED threshold.
    use_bounds:
        Screen pairs with precomputed lower bounds (label bags ``L1/2``,
        degree histograms ``L1/3``, binary branch bags ``L1/5``) before
        exact TED.  The result set is identical either way.
    workers:
        With ``workers > 1`` candidates are verified in parallel through
        the shared verification pool (identical pairs and distances).
    backend:
        Kernel backend for the banded verification DP (see
        :class:`~repro.baselines.common.Verifier`); identical results,
        reported in ``stats.extra["backend"]``.

    >>> a = Tree.from_bracket("{a{b}{c}}")
    >>> b = Tree.from_bracket("{a{b}}")
    >>> [p.key() for p in nested_loop_join([a, b], 1).pairs]
    [(0, 1)]
    """
    check_join_inputs(trees, tau)
    stats = JoinStats(method="NL", tau=tau, tree_count=len(trees))
    collection = SizeSortedCollection(trees)
    # When this join screens with the bag bounds itself, the verifier skips
    # its identical checks — every candidate handed over already passed.
    # One options dict feeds both the inline and the worker-side verifiers.
    verifier_options = {"bag_bounds": not use_bounds, "backend": backend}
    verifier = Verifier(trees, tau, **verifier_options)
    stats.extra["backend"] = verifier.backend
    deferred = (
        DeferredVerification(workers, options=verifier_options)
        if workers > 1 else None
    )

    feats = []
    if use_bounds:
        # The screen reads the verifier's per-tree feature cache (each
        # bag is built lazily on first touch and shared thereafter).
        feats = [verifier.features(k) for k in range(len(trees))]

    pairs = []
    for pos_a, pos_b in collection.iter_window_pairs(tau):
        stats.pairs_considered += 1
        i = collection.original_index(pos_a)
        j = collection.original_index(pos_b)
        if use_bounds:
            with phase_timer(stats, "candidate_time"):
                fi, fj = feats[i], feats[j]
                pruned = (
                    _multiset_l1(fi.label_bag, fj.label_bag) > 2 * tau
                    or _multiset_l1(fi.degree_bag, fj.degree_bag) > 3 * tau
                    or _multiset_l1(fi.branch_bag, fj.branch_bag) > 5 * tau
                )
            if pruned:
                continue
        stats.candidates += 1
        if deferred is not None:
            deferred.add(i, j)
            continue
        distance = verifier.verify(i, j)
        if distance is not None:
            pairs.append(collection.make_pair(pos_a, pos_b, distance))
    stats.probe_time = stats.candidate_time  # filter-only: no insert phase
    if deferred is not None:
        pairs.extend(deferred.resolve(trees, tau, stats))
    else:
        stats.ted_calls = verifier.stats_ted_calls
        stats.verify_time = verifier.stats_time
        stats.extra.update(verifier.extra_stats())
    stats.results = len(pairs)
    pairs.sort(key=lambda p: p.key())
    return JoinResult(pairs=pairs, stats=stats)
