"""Baseline join methods: brute force (REL), STR, SET, histogram filters."""

from repro.baselines.binary_branch import (
    EPSILON,
    binary_branch_distance,
    binary_branches,
    branch_bag_distance,
)
from repro.baselines.common import (
    JoinPair,
    JoinResult,
    JoinStats,
    SizeSortedCollection,
    TreeFeatures,
    Verifier,
)
from repro.baselines.histogram_join import histogram_join
from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.set_join import set_join
from repro.baselines.str_join import str_join

__all__ = [
    "JoinPair",
    "JoinResult",
    "JoinStats",
    "SizeSortedCollection",
    "TreeFeatures",
    "Verifier",
    "nested_loop_join",
    "str_join",
    "set_join",
    "histogram_join",
    "binary_branches",
    "binary_branch_distance",
    "branch_bag_distance",
    "EPSILON",
]
