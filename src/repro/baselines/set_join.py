"""SET: the binary branch baseline (Yang et al. [27]).

Each tree is transformed once into its bag of binary branches (a
``tau``-insensitive transformation — the paper stresses this as SET's
weakness).  A pair within the size window is a candidate iff

``BIB(T1, T2) = |X1| + |X2| - 2 |X1 ∩ X2| <= 5 * tau``

because ``BIB <= 5 * TED``.  Candidate generation is cheap (bag
intersection is linear in bag size) but the filter is loose, so — as in
Figures 10/11 — SET's runtime is dominated by exact TED verification and
its candidate count grows quickly with ``tau``.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.binary_branch import branch_bag_distance
from repro.baselines.common import (
    DeferredVerification,
    JoinResult,
    JoinStats,
    SizeSortedCollection,
    Verifier,
    check_join_inputs,
)
from repro.obs.trace import phase_timer
from repro.tree.node import Tree

__all__ = ["set_join"]


def set_join(
    trees: Sequence[Tree], tau: int, workers: int = 1, backend: str = "auto"
) -> JoinResult:
    """Similarity self-join with the binary branch filter.

    ``workers > 1`` verifies candidates in parallel through the shared
    verification pool (identical pairs and distances); ``backend``
    selects the verification DP kernel (identical results, reported in
    ``stats.extra["backend"]``).

    >>> a = Tree.from_bracket("{a{b}{c}}")
    >>> b = Tree.from_bracket("{a{b}}")
    >>> [p.key() for p in set_join([a, b], 1).pairs]
    [(0, 1)]
    """
    check_join_inputs(trees, tau)
    stats = JoinStats(method="SET", tau=tau, tree_count=len(trees))
    collection = SizeSortedCollection(trees)
    # The verifier skips the branch bound this screen applies (bib <= 5*tau
    # is the same bag L1) and still adds the label/degree/traversal bounds.
    # One options dict feeds both the inline and the worker-side verifiers.
    verifier_options = {"bag_bounds": ("labels", "degrees"),
                        "backend": backend}
    verifier = Verifier(trees, tau, **verifier_options)
    stats.extra["backend"] = verifier.backend
    deferred = (
        DeferredVerification(workers, options=verifier_options)
        if workers > 1 else None
    )

    # Branch bags come from the verifier's shared per-tree feature cache
    # (only the branch part is materialized; the rest stays lazy).
    with phase_timer(stats, "candidate_time"):
        bags = [verifier.features(k).branch_bag for k in range(len(trees))]

    budget = 5 * tau
    pruned = 0
    pairs = []
    for pos_a, pos_b in collection.iter_window_pairs(tau):
        stats.pairs_considered += 1
        i = collection.original_index(pos_a)
        j = collection.original_index(pos_b)

        with phase_timer(stats, "candidate_time"):
            bib = branch_bag_distance(bags[i], bags[j])
        if bib > budget:
            pruned += 1
            continue

        stats.candidates += 1
        if deferred is not None:
            deferred.add(i, j)
            continue
        distance = verifier.verify(i, j)
        if distance is not None:
            pairs.append(collection.make_pair(pos_a, pos_b, distance))

    stats.probe_time = stats.candidate_time  # filter-only: no insert phase
    if deferred is not None:
        pairs.extend(deferred.resolve(trees, tau, stats))
    else:
        stats.ted_calls = verifier.stats_ted_calls
        stats.verify_time = verifier.stats_time
        stats.extra.update(verifier.extra_stats())
    stats.results = len(pairs)
    stats.extra["pruned_by_bib"] = pruned
    pairs.sort(key=lambda p: p.key())
    return JoinResult(pairs=pairs, stats=stats)
