"""Binary branches: re-export of :mod:`repro.ted.binary_branch`.

The implementation lives in the TED layer because the binary branch
distance is a TED lower bound (used by :mod:`repro.ted.bounds`); this
module keeps the historically natural import path
``repro.baselines.binary_branch`` working for the SET baseline.
"""

from repro.ted.binary_branch import (
    EPSILON,
    BranchBag,
    binary_branch_distance,
    binary_branches,
    branch_bag_distance,
)

__all__ = [
    "EPSILON",
    "BranchBag",
    "binary_branches",
    "binary_branch_distance",
    "branch_bag_distance",
]
