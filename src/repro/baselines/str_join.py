"""STR: the traversal-string baseline (Guha et al. [13], as adapted in [18]).

The string edit distance between the preorder label sequences of two trees
— and likewise between the postorder sequences — lower-bounds their TED
(paper Section 2, Figure 3 discussion).  STR therefore:

1. applies the size filter (sizes within ``tau``);
2. computes the *banded* preorder string edit distance with threshold
   ``tau`` and prunes if it exceeds ``tau``;
3. ditto for the postorder sequences;
4. verifies survivors with exact TED.

Steps 1-3 are the "candidate generation" phase of Figures 10/12/14; the
banded computation (``O(tau * n)`` per pair) is why STR's candidate
generation dominates its runtime at small ``tau``, exactly as the paper
observes.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.common import (
    DeferredVerification,
    JoinResult,
    JoinStats,
    SizeSortedCollection,
    Verifier,
    check_join_inputs,
)
from repro.obs.trace import phase_timer
from repro.ted.string_edit import string_edit_distance, string_edit_within
from repro.tree.node import Tree

__all__ = ["str_join"]


def str_join(
    trees: Sequence[Tree],
    tau: int,
    banded: bool = True,
    workers: int = 1,
    backend: str = "auto",
) -> JoinResult:
    """Similarity self-join with the traversal-string filter.

    Parameters
    ----------
    banded:
        With the default ``True``, string edit distances are computed with
        the ``O(tau * n)`` banded early-exit DP — an optimization over the
        paper's STR, whose candidate-generation phase pays the full
        ``O(n^2)`` DP per window pair (the behaviour behind its enormous
        candidate-generation bars in Figure 10).  ``banded=False``
        reproduces the paper-faithful cost profile; the candidate and
        result sets are identical either way.
    workers:
        With ``workers > 1`` candidates are verified in parallel through
        :func:`repro.parallel.verify_pool.parallel_verify` (identical
        pairs and distances).
    backend:
        Kernel backend for the banded verification DP (see
        :class:`~repro.baselines.common.Verifier`); identical results,
        reported in ``stats.extra["backend"]``.

    >>> a = Tree.from_bracket("{a{b}{c}}")
    >>> b = Tree.from_bracket("{a{b}}")
    >>> [p.key() for p in str_join([a, b], 1).pairs]
    [(0, 1)]
    """
    check_join_inputs(trees, tau)
    stats = JoinStats(method="STR", tau=tau, tree_count=len(trees))
    stats.extra["banded"] = banded
    collection = SizeSortedCollection(trees)
    # STR candidates already passed the banded pre/postorder string filter,
    # so the verifier skips its own traversal-string bound.  One options
    # dict feeds both the inline verifier and the worker-side ones, so the
    # serial and parallel paths can never run different bound pipelines.
    verifier_options = {"traversal_bound": False, "backend": backend}
    verifier = Verifier(trees, tau, **verifier_options)
    stats.extra["backend"] = verifier.backend
    deferred = (
        DeferredVerification(workers, options=verifier_options)
        if workers > 1 else None
    )

    # Traversal strings are computed once per tree, not once per pair.
    with phase_timer(stats, "candidate_time"):
        preorders = [tree.preorder_labels() for tree in trees]
        postorders = [tree.postorder_labels() for tree in trees]

    pruned_pre = 0
    pruned_post = 0
    pairs = []
    for pos_a, pos_b in collection.iter_window_pairs(tau):
        stats.pairs_considered += 1
        i = collection.original_index(pos_a)
        j = collection.original_index(pos_b)

        with phase_timer(stats, "candidate_time"):
            if banded:
                pre_ok = (
                    string_edit_within(preorders[i], preorders[j], tau)
                    is not None
                )
                post_ok = pre_ok and (
                    string_edit_within(postorders[i], postorders[j], tau)
                    is not None
                )
            else:
                pre_ok = string_edit_distance(preorders[i], preorders[j]) <= tau
                post_ok = pre_ok and (
                    string_edit_distance(postorders[i], postorders[j]) <= tau
                )
        if not pre_ok:
            pruned_pre += 1
            continue
        if not post_ok:
            pruned_post += 1
            continue

        stats.candidates += 1
        if deferred is not None:
            deferred.add(i, j)
            continue
        distance = verifier.verify(i, j)
        if distance is not None:
            pairs.append(collection.make_pair(pos_a, pos_b, distance))

    stats.probe_time = stats.candidate_time  # filter-only: no insert phase
    if deferred is not None:
        pairs.extend(deferred.resolve(trees, tau, stats))
    else:
        stats.ted_calls = verifier.stats_ted_calls
        stats.verify_time = verifier.stats_time
        stats.extra.update(verifier.extra_stats())
    stats.results = len(pairs)
    stats.extra["pruned_by_preorder"] = pruned_pre
    stats.extra["pruned_by_postorder"] = pruned_post
    pairs.sort(key=lambda p: p.key())
    return JoinResult(pairs=pairs, stats=stats)
