"""Top-level convenience API: one entry point for every join method.

``similarity_join(trees, tau, method=...)`` dispatches to the method
registry; library users who just want "the fast one" can ignore everything
else and call it with the defaults (PartSJ with the provably-exact filter
configuration).  ``stream_join(trees, tau)`` is the incremental
counterpart: it consumes any iterable (including a generator that is
still producing) and yields verified pairs as they are found.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.baselines.common import JoinPair, JoinResult
from repro.baselines.histogram_join import histogram_join
from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.set_join import set_join
from repro.baselines.str_join import str_join
from repro.core.join import PartSJConfig, partsj_join
from repro.errors import InvalidParameterError
from repro.tree.node import Tree

__all__ = ["similarity_join", "stream_join", "JOIN_METHODS"]


def _partsj(trees: Sequence[Tree], tau: int, **options) -> JoinResult:
    config = options.pop("config", None)
    # workers is an execution knob, not a filter variant: it composes with
    # an explicit config instead of conflicting with it.
    workers = options.pop("workers", None)
    if options and config is not None:
        raise InvalidParameterError(
            "pass either a PartSJConfig via config= or individual options, not both"
        )
    if config is None:
        config = PartSJConfig(**options) if options else None
    if workers is not None and workers != 1:
        config = replace(config or PartSJConfig(), workers=workers)
    return partsj_join(trees, tau, config)


def _nested_loop(trees: Sequence[Tree], tau: int, **options) -> JoinResult:
    return nested_loop_join(trees, tau, **options)


JOIN_METHODS: dict[str, Callable[..., JoinResult]] = {
    "partsj": _partsj,  # the paper's PRT
    "prt": _partsj,  # figure-series alias
    "str": lambda trees, tau, **o: str_join(trees, tau, **o),
    "set": lambda trees, tau, **o: set_join(trees, tau, **o),
    "histogram": lambda trees, tau, **o: histogram_join(trees, tau, **o),
    "nested_loop": _nested_loop,  # ground truth (REL)
    "rel": _nested_loop,
}


def similarity_join(
    trees: Sequence[Tree],
    tau: int,
    method: str = "partsj",
    workers: int = 1,
    **options,
) -> JoinResult:
    """Similarity self-join: all pairs with ``TED <= tau``.

    Parameters
    ----------
    trees:
        The collection.  Result pairs are ``(i, j, distance)`` with
        ``i < j`` indexing into this sequence.
    tau:
        The TED threshold (>= 0).
    method:
        ``"partsj"`` (default), ``"str"``, ``"set"``, ``"histogram"``, or
        ``"nested_loop"``.  All methods return the identical result set;
        they differ in filtering strategy and therefore speed.
    workers:
        Worker process count (default ``1`` = serial, in-process).  Every
        method verifies candidates through the parallel pool; PartSJ
        additionally shards candidate generation itself
        (:mod:`repro.parallel`).  Results are bit-identical at every
        setting.
    options:
        Method-specific options, e.g. ``config=PartSJConfig.paper()`` or
        ``semantics="paper"`` for PartSJ, ``use_bounds=False`` for the
        nested loop.

    >>> trees = [Tree.from_bracket(s) for s in ("{a{b}{c}}", "{a{b}}", "{x{y}}")]
    >>> sorted(p.key() for p in similarity_join(trees, 1))
    [(0, 1)]
    """
    try:
        impl = JOIN_METHODS[method.lower()]
    except KeyError:
        raise InvalidParameterError(
            f"unknown join method {method!r}; choose from {sorted(JOIN_METHODS)}"
        ) from None
    if not isinstance(workers, int) or workers < 1:
        raise InvalidParameterError(
            f"workers must be an integer >= 1, got {workers!r}"
        )
    if workers != 1:
        options["workers"] = workers
    return impl(trees, tau, **options)


def stream_join(
    trees: Iterable[Tree],
    tau: int,
    config: Optional[PartSJConfig] = None,
    workers: int = 1,
    micro_batch: int = 1,
) -> Iterator[JoinPair]:
    """Incremental similarity self-join over a stream of trees.

    Consumes ``trees`` lazily — an exhausted list, a generator still
    reading from disk, a socket — and yields verified
    :class:`~repro.baselines.common.JoinPair` objects **as they are
    found**, where pair indices are arrival positions.  When the iterable
    is exhausted (and pending verification drained), the yielded pairs
    are exactly those of ``similarity_join(list(trees), tau)`` — and the
    same holds at every intermediate flush point, so a consumer can stop
    early with a correct join of the prefix it has seen.

    Parameters
    ----------
    trees:
        The arriving collection, in arrival order.
    tau:
        The TED threshold.
    config:
        PartSJ filter configuration (defaults to the provably-exact one).
    workers:
        ``1`` verifies inline (each yielded pair involves the most recent
        arrival); ``> 1`` verifies in a background pool, so pairs may be
        yielded a few arrivals after both their trees were ingested.
    micro_batch:
        Ingest this many trees between yield points (``>= 1``).  Larger
        batches amortize per-arrival overhead at the cost of result
        latency.

    >>> from repro.tree.node import Tree
    >>> trees = [Tree.from_bracket(s) for s in ("{a{b}{c}}", "{a{b}}", "{x{y}}")]
    >>> [(p.i, p.j) for p in stream_join(iter(trees), 1)]
    [(0, 1)]
    """
    if micro_batch < 1:
        raise InvalidParameterError(
            f"micro_batch must be >= 1, got {micro_batch}"
        )
    if tau < 0:
        raise InvalidParameterError(f"tau must be >= 0, got {tau}")
    return _stream_join(trees, tau, config, workers, micro_batch)


def _stream_join(trees, tau, config, workers, micro_batch):
    # The generator half of stream_join: the eager wrapper above raises
    # parameter errors at call time, not at the first next().
    from repro.stream.engine import StreamingJoin

    with StreamingJoin(tau, config=config, workers=workers) as join:
        batch: list[Tree] = []
        for tree in trees:
            batch.append(tree)
            if len(batch) >= micro_batch:
                yield from join.add_many(batch)
                batch.clear()
        if batch:
            yield from join.add_many(batch)
        yield from join.flush()


def join_methods() -> list[str]:
    """The registered method names (aliases included)."""
    return sorted(JOIN_METHODS)
