"""Top-level convenience API: one entry point for every join method.

``similarity_join(trees, tau, method=...)`` dispatches to the method
registry; library users who just want "the fast one" can ignore everything
else and call it with the defaults (PartSJ with the provably-exact filter
configuration).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Sequence

from repro.baselines.common import JoinResult
from repro.baselines.histogram_join import histogram_join
from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.set_join import set_join
from repro.baselines.str_join import str_join
from repro.core.join import PartSJConfig, partsj_join
from repro.errors import InvalidParameterError
from repro.tree.node import Tree

__all__ = ["similarity_join", "JOIN_METHODS"]


def _partsj(trees: Sequence[Tree], tau: int, **options) -> JoinResult:
    config = options.pop("config", None)
    # workers is an execution knob, not a filter variant: it composes with
    # an explicit config instead of conflicting with it.
    workers = options.pop("workers", None)
    if options and config is not None:
        raise InvalidParameterError(
            "pass either a PartSJConfig via config= or individual options, not both"
        )
    if config is None:
        config = PartSJConfig(**options) if options else None
    if workers is not None and workers != 1:
        config = replace(config or PartSJConfig(), workers=workers)
    return partsj_join(trees, tau, config)


def _nested_loop(trees: Sequence[Tree], tau: int, **options) -> JoinResult:
    return nested_loop_join(trees, tau, **options)


JOIN_METHODS: dict[str, Callable[..., JoinResult]] = {
    "partsj": _partsj,  # the paper's PRT
    "prt": _partsj,  # figure-series alias
    "str": lambda trees, tau, **o: str_join(trees, tau, **o),
    "set": lambda trees, tau, **o: set_join(trees, tau, **o),
    "histogram": lambda trees, tau, **o: histogram_join(trees, tau, **o),
    "nested_loop": _nested_loop,  # ground truth (REL)
    "rel": _nested_loop,
}


def similarity_join(
    trees: Sequence[Tree],
    tau: int,
    method: str = "partsj",
    workers: int = 1,
    **options,
) -> JoinResult:
    """Similarity self-join: all pairs with ``TED <= tau``.

    Parameters
    ----------
    trees:
        The collection.  Result pairs are ``(i, j, distance)`` with
        ``i < j`` indexing into this sequence.
    tau:
        The TED threshold (>= 0).
    method:
        ``"partsj"`` (default), ``"str"``, ``"set"``, ``"histogram"``, or
        ``"nested_loop"``.  All methods return the identical result set;
        they differ in filtering strategy and therefore speed.
    workers:
        Worker process count (default ``1`` = serial, in-process).  Every
        method verifies candidates through the parallel pool; PartSJ
        additionally shards candidate generation itself
        (:mod:`repro.parallel`).  Results are bit-identical at every
        setting.
    options:
        Method-specific options, e.g. ``config=PartSJConfig.paper()`` or
        ``semantics="paper"`` for PartSJ, ``use_bounds=False`` for the
        nested loop.

    >>> trees = [Tree.from_bracket(s) for s in ("{a{b}{c}}", "{a{b}}", "{x{y}}")]
    >>> sorted(p.key() for p in similarity_join(trees, 1))
    [(0, 1)]
    """
    try:
        impl = JOIN_METHODS[method.lower()]
    except KeyError:
        raise InvalidParameterError(
            f"unknown join method {method!r}; choose from {sorted(JOIN_METHODS)}"
        ) from None
    if not isinstance(workers, int) or workers < 1:
        raise InvalidParameterError(
            f"workers must be an integer >= 1, got {workers!r}"
        )
    if workers != 1:
        options["workers"] = workers
    return impl(trees, tau, **options)


def join_methods() -> list[str]:
    """The registered method names (aliases included)."""
    return sorted(JOIN_METHODS)
