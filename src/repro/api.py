"""One-shot convenience shims over :mod:`repro.session` sessions.

The canonical API is the *prepared-once, query-many* session object::

    from repro import TreeCollection

    col = TreeCollection.from_file("forest.trees")
    result = col.join(tau=2).run()          # prepares tau=2, joins
    col.search(query, tau=2).run()          # reuses that preparation
    col.join(tau=3).run()                   # re-partitions only
    for pair in col.stream(tau=2).iter():   # incremental re-play
        ...

Every query builder returns a :class:`repro.session.QueryPlan` with
``.explain()`` (structured plan: method, filter config, shard plan, index
statistics) and ``.run()`` / ``.iter()``.  Preparation — parsing,
interning, size-sorting, partitioning, index building, per-tree
verification caches — happens once per collection (per tau where
tau-dependent) and is shared by joins, R×S joins, searches and repeated
queries.

This module keeps the historical free functions alive as *thin shims*,
each building a one-shot session per call and returning bit-identical
results:

- :func:`similarity_join` — self-join via any registered method;
- :func:`stream_join` — incremental join over a (possibly still
  producing) iterable, yielding pairs as they verify;
- (:func:`repro.rsjoin.similarity_join_rs` and
  :func:`repro.search.similarity_search` are the R×S and search shims.)

Use the shims for one-off calls and scripts; use sessions whenever the
same collection is queried more than once — the shims themselves say so
through a once-per-process :class:`DeprecationWarning`.  All parameter
validation (``tau``, ``workers``, ``micro_batch``) is centralized in
:mod:`repro.params`, so shims and sessions accept and reject exactly the
same inputs.

Failure semantics
-----------------
Every multi-process execution path (``workers > 1`` joins, R×S joins,
search preparation, streaming verification) runs under **supervised
dispatch** (:mod:`repro.resilience`).  The contract, in order of
escalation:

1. **Detect** — each dispatched task carries a per-task deadline
   (``RetryPolicy.task_timeout``) and the supervisor health-checks worker
   pids; a crashed, hung, raising, or corrupt-result worker (result
   envelopes are CRC-checked) fails only its own task.
2. **Retry** — failed tasks are re-dispatched on a respawned pool up to
   ``RetryPolicy.max_attempts`` times, with deterministic exponential
   backoff (seeded jitter, so runs are reproducible).
3. **Degrade** — tasks that exhaust the policy are re-executed serially
   in-process (``RetryPolicy.degradation``, on by default).  Degraded
   execution uses the same pure per-shard/per-chunk computation, so
   results stay **bit-identical to the serial engine** no matter how
   many workers die.  With ``degradation=False`` the error escapes as
   :class:`~repro.errors.WorkerFailureError` or
   :class:`~repro.errors.TaskTimeoutError`.

All swallowed failures are accounted for in ``JoinStats.extra``
(``retries``, ``worker_failures``, ``timeouts``,
``degraded_serial_tasks``, ``pool_respawns``) and surfaced by
``QueryPlan.explain()`` under ``"resilience"``.  Knobs live on
:class:`~repro.core.join.PartSJConfig` (``retry=RetryPolicy(...)``,
``fault_injector=FaultInjector(...)`` — deterministic fault injection
for tests, also settable via the ``REPRO_FAULT_SPEC`` environment
variable).  Streaming ingest adds its own channel: malformed input is
rejected (``on_error="fail"``) or quarantined with counts in
``StreamStats.quarantined_trees`` (``on_error="skip"``), and poison
candidate pairs are quarantined individually during degraded stream
verification.

Durability semantics
--------------------
Prepared sessions and streaming state survive process death
(:mod:`repro.persist`):

- ``TreeCollection.save(path)`` snapshots a session — trees (optional),
  interner, size order, every prepared tau — into a versioned container
  whose every section carries a CRC32, written atomically (temp file +
  fsync + rename): a crash mid-save leaves the previous snapshot intact,
  and a later reader sees either the old complete file or the new one,
  never a blend.  ``TreeCollection.load(path)`` verifies every checksum
  *and* recomputes the derived state it restores (interner ids, sorted
  order, twig keys) against the stored values; any mismatch raises a
  :class:`~repro.errors.PersistenceError` subclass.  A loaded session
  answers joins, searches and streams **bit-identically** to the one
  that was saved.
- ``TreeCollection.from_file(path)`` auto-discovers a
  ``<path>.repro-idx`` sidecar.  The implicit path is *never trusted
  into wrongness*: a corrupt, truncated, version-mismatched or stale
  (the dataset changed since the save — detected by content digest)
  sidecar produces a warning and a cold rebuild, so the worst a broken
  snapshot can cost is preparation time, never a wrong answer.
- ``StreamingJoin(wal=path)`` appends every arrival to a per-record-CRC
  write-ahead log *before* indexing it.  The fsync policy bounds the
  loss window: ``"always"`` fsyncs per arrival (a crashed process loses
  nothing acknowledged), ``"batch"`` (default) fsyncs at every
  ``flush()``/``close()`` (a crash loses at most the arrivals since the
  last flush), ``"never"`` leaves flushing to the OS.
  ``StreamingJoin.recover(path)`` replays the log through the normal
  ingest path to a state bit-identical to a batch join over the logged
  prefix, tolerating a torn final record (the one kind of damage a
  mid-append crash can cause) and refusing — with salvage statistics on
  :class:`~repro.errors.WALCorruptError` — to replay past a mid-log
  hole, which would silently drop arrivals.

Observability
-------------
Every execution tier is instrumented (:mod:`repro.obs`), with one
invariant: **observability never changes results**.  Pairs, distances
and every ``JoinStats`` / ``StreamStats`` field are bit-identical with
tracing on, off, or under injected faults; with tracing off the hot
path runs through a shared no-op tracer whose ``span()`` is a constant
context manager.

- **Tracing** — pass ``trace=repro.Tracer()`` to any plan's ``run()``
  (or ``tracer=`` to :class:`~repro.stream.engine.StreamingJoin` /
  :class:`~repro.stream.service.StreamJoinService`), then export the
  finished spans with :func:`repro.obs.write_jsonl` or render them with
  :func:`repro.obs.format_span_tree`.  Span names are a contract:

  - ``join`` — one per executed join (attrs: ``method``, ``tau``,
    ``workers``, ``trees``, ``results``);
  - serial PartSJ: ``partsj.loop`` > ``partsj.probe`` /
    ``partsj.index`` / ``partsj.verify`` per loop pass;
  - parallel PartSJ: ``parallel.plan``, ``parallel.candidates`` >
    ``shard:<n>`` (one per shard, relayed from the worker process,
    ``pid``-stamped) > ``partsj.band`` / ``partsj.probe`` /
    ``partsj.index``, then ``verify.parallel`` > ``verify.chunk``;
  - streaming: ``wal.append``, ``wal.sync``, ``wal.recover``,
    ``stream.flush``, ``verify.stream_chunk``;
  - persistence: ``snapshot.save``, ``snapshot.load``;
  - search: ``search``.

  Worker-side spans are captured unconditionally as plain dicts,
  shipped back inside the CRC-sealed result envelopes and grafted under
  the coordinator's span only when tracing is enabled — no flag crosses
  the pool boundary.  A traced ``run()`` bypasses the session result
  *cache read* (a cache hit would emit no spans) but still stores its
  result; the returned pairs are bit-identical either way.

- **Metrics** — every executed ``JoinPlan.run()`` publishes into the
  process-wide :class:`~repro.obs.metrics.MetricsRegistry`
  (:func:`repro.obs.get_registry`); ``StreamJoinService.stats()`` and
  ``close()`` fan out ``StreamStats`` the same way.  Families:
  ``repro_join_runs_total``, ``repro_join_trees_total``,
  ``repro_join_candidates_total``, ``repro_join_results_total``,
  ``repro_join_ted_calls_total``, ``repro_join_pairs_considered_total``
  (labels ``method``, ``tau``), ``repro_join_phase_seconds{phase}``,
  ``repro_join_counter_total{counter}`` (one series per integer
  ``JoinStats.extra`` counter), and on the stream side
  ``repro_stream_snapshots_total``, gauges ``repro_stream_trees`` /
  ``_results`` / ``_pending_verification`` / ``_candidates`` /
  ``_index_entries``, ``repro_stream_quarantined_trees_total`` /
  ``_pairs_total``, ``repro_stream_wall_seconds{phase}``,
  ``repro_stream_counter_total{counter}``.
  :func:`repro.obs.render_prometheus` renders any registry as text
  exposition format 0.0.4.

- **Plans** — every ``QueryPlan.explain()`` carries an
  ``"observability"`` section listing the span names that run would
  emit and the metric families it would publish.

Backend selection
-----------------
Every execution path can run its hot loops on compiled flat-array
kernels (:mod:`repro.kernels`, numpy-vectorized) or on the pure-python
reference, selected by ``backend`` — a :class:`~repro.core.join.
PartSJConfig` field for PartSJ/streaming/search and a keyword on the
baseline joins (``str_join(..., backend="numpy")``).  The contract:

- ``"auto"`` (default) uses numpy when it is importable and falls back
  to pure python silently — the library has **no hard dependency** on
  numpy (install it via ``pip install repro[fast]``).  ``"python"``
  forces the reference; ``"numpy"`` forces the kernels and raises
  :class:`~repro.errors.InvalidParameterError` when numpy is absent.
- Backends are **bit-identical**: the same pairs, the same exact
  distances, the same candidate sets and the same deterministic
  ``JoinStats`` fields and counters, under every method, tau, worker
  count and filter configuration.  Only speed may differ.
- The backend that actually ran is reported in
  ``JoinStats.extra["backend"]`` (always the resolved ``"python"`` or
  ``"numpy"``, never ``"auto"``) and in ``QueryPlan.explain()`` under
  ``"filter"``; the CLI exposes ``join --backend``.
- Three kernels are swapped in: the candidate-probe walk over the
  two-layer index (:mod:`repro.kernels.probe`), the partition span
  fills (:mod:`repro.kernels.partition`), and the tau-banded
  Zhang–Shasha verification DP (:mod:`repro.kernels.ted`).  Session
  caches (result cache, per-tau preparations) key on the backend, so
  switching backends never serves the other backend's artifacts —
  though their contents would be identical anyway.

- **CLI** — ``join --trace PATH`` writes the run's spans as JSONL (one
  object per line with keys ``name``, ``span_id``, ``parent_id``,
  ``trace_id``, ``start``, ``duration``, ``pid`` plus span attributes);
  ``repro-trees trace PATH`` pretty-prints such a file; ``stats
  --metrics`` emits Prometheus text instead of the human report.  The
  ``join --json`` payload is unchanged: ``{"stats": {"method", "tau",
  "trees", "workers", "candidates", "results", "candidate_time",
  "probe_time", "index_time", "verify_time", "ted_calls", "extra"},
  "pairs": [[i, j, distance], ...]}`` (wrapped per-tau under
  ``"queries"`` when ``--tau`` repeats).

Invariants
----------
The promises above are *enforced statically* by the AST invariant
linter (:mod:`repro.analysis`, run as ``python -m repro.analysis``; a
tier-1 test fails the build on any finding).  The rules, and what each
one protects:

- ``determinism`` — inside ``core/``, ``kernels/``, ``parallel/``,
  ``stream/`` and ``ted/``: no shared global RNG or unseeded
  ``random.Random()``, no ``id()``-keyed mappings, no iterating a set
  straight into ordered output.  Protects the bit-identical contract
  across backends, worker counts and processes.
- ``wall-clock`` — ``time.time()`` / ``datetime.now()`` and friends
  only under ``obs/`` and the benchmark harness; durations use
  ``time.perf_counter()`` / ``time.monotonic()``.  Protects
  reproducible stats and the observability-never-changes-results rule.
- ``cache-key`` — every :class:`~repro.core.join.PartSJConfig` field
  appears in ``Session._prep_key``, the snapshot config encoding and
  ``JoinPlan._cache_key``, or on an explicit exclusion list with a
  reason.  Protects against stale cache hits after a config grows a
  field.
- ``pool-boundary`` — callables handed across the fork boundary
  (``apply_async`` tasks, pool ``initializer=``, the dispatched
  function of ``PoolSupervisor.run``) must be module-level defs.
  Protects against pickle failures that only fire on multi-process
  paths.
- ``error-contract`` — no bare ``except:``, no raising builtin
  exceptions from library code (use :mod:`repro.errors`; the typed
  classes subclass the matching builtin), and every ``ReproError``
  subclass exported.  Protects the single-catchable-base promise.
- ``counter-registry`` — stats ``extra`` keys and ``repro_*`` metric
  family names must be declared in :mod:`repro.analysis.registry`.
  Protects dashboards and ``explain()`` from silent typos.

A deliberate violation is suppressed inline — hash sign, then
``repro: allow[rule-id]`` plus a justification — on the offending
line.  Pragmas are themselves linted: unknown rule ids and pragmas
that suppress nothing are findings.
"""

from __future__ import annotations

import warnings
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.baselines.common import JoinPair, JoinResult
from repro.core.join import PartSJConfig
from repro.params import check_micro_batch, check_tau, check_workers
from repro.session import (
    _BASELINE_IMPLS,
    JOIN_METHOD_NAMES,
    StreamPlan,
    TreeCollection,
)
from repro.tree.node import Tree

__all__ = ["similarity_join", "stream_join", "JOIN_METHODS"]


# -- shim deprecation machinery ----------------------------------------------

_SHIM_WARNINGS_EMITTED: set[str] = set()


def _warn_shim(name: str) -> None:
    """Emit the one-shot-shim deprecation notice, once per process.

    The library itself never calls a shim (everything internal goes
    through sessions); the test suite turns repro-internal
    DeprecationWarnings into errors to keep it that way.
    """
    if name in _SHIM_WARNINGS_EMITTED:
        return
    _SHIM_WARNINGS_EMITTED.add(name)
    warnings.warn(
        f"{name}() is a one-shot shim over repro.TreeCollection sessions; "
        "for repeated queries over the same trees, prepare a TreeCollection "
        "and reuse it (this notice is emitted once per process)",
        DeprecationWarning,
        stacklevel=3,
    )


def _reset_shim_warnings() -> None:
    """Re-arm the once-per-process shim warnings (test hook)."""
    _SHIM_WARNINGS_EMITTED.clear()


# -- the method registry (kept for compatibility) ----------------------------

def _partsj(trees: Sequence[Tree], tau: int, **options) -> JoinResult:
    config = options.pop("config", None)
    workers = options.pop("workers", 1)
    return (
        TreeCollection.from_trees(trees)
        .join(tau, method="partsj", workers=workers, config=config, **options)
        .run()
    )


JOIN_METHODS: dict[str, Callable[..., JoinResult]] = {
    "partsj": _partsj,  # the paper's PRT
    "prt": _partsj,  # figure-series alias
    "str": _BASELINE_IMPLS["str"],
    "set": _BASELINE_IMPLS["set"],
    "histogram": _BASELINE_IMPLS["histogram"],
    "nested_loop": _BASELINE_IMPLS["nested_loop"],  # ground truth (REL)
    "rel": _BASELINE_IMPLS["rel"],
}


def similarity_join(
    trees: Sequence[Tree],
    tau: int,
    method: str = "partsj",
    workers: int = 1,
    **options,
) -> JoinResult:
    """Similarity self-join: all pairs with ``TED <= tau`` (one-shot shim).

    Equivalent to ``TreeCollection.from_trees(trees).join(...).run()`` —
    bit-identical pairs and distances — but the preparation work is
    discarded afterwards; joining the same trees repeatedly (other taus,
    searches, R×S) is what sessions are for.

    Parameters
    ----------
    trees:
        The collection.  Result pairs are ``(i, j, distance)`` with
        ``i < j`` indexing into this sequence.
    tau:
        The TED threshold (an integer >= 0).
    method:
        ``"partsj"`` (default), ``"str"``, ``"set"``, ``"histogram"``, or
        ``"nested_loop"``.  All methods return the identical result set;
        they differ in filtering strategy and therefore speed.
    workers:
        Worker process count (default ``1`` = serial, in-process).  Every
        method verifies candidates through the parallel pool; PartSJ
        additionally shards candidate generation itself
        (:mod:`repro.parallel`).  Results are bit-identical at every
        setting.
    options:
        Method-specific options, e.g. ``config=PartSJConfig.paper()`` or
        ``semantics="paper"`` for PartSJ, ``use_bounds=False`` for the
        nested loop.

    >>> trees = [Tree.from_bracket(s) for s in ("{a{b}{c}}", "{a{b}}", "{x{y}}")]
    >>> sorted(p.key() for p in similarity_join(trees, 1))
    [(0, 1)]
    """
    _warn_shim("similarity_join")
    key = method.lower() if isinstance(method, str) else method
    if key in JOIN_METHODS and key not in JOIN_METHOD_NAMES:
        # A caller-registered method: dispatch through the registry with
        # the historical calling convention (workers rides in options).
        check_tau(tau)
        if check_workers(workers) != 1:
            options["workers"] = workers
        return JOIN_METHODS[key](trees, tau, **options)
    return (
        TreeCollection.from_trees(trees)
        .join(tau, method=method, workers=workers, **options)
        .run()
    )


def stream_join(
    trees: Iterable[Tree],
    tau: int,
    config: Optional[PartSJConfig] = None,
    workers: int = 1,
    micro_batch: int = 1,
) -> Iterator[JoinPair]:
    """Incremental similarity self-join over a stream of trees (shim).

    Consumes ``trees`` lazily — an exhausted list, a generator still
    reading from disk, a socket — and yields verified
    :class:`~repro.baselines.common.JoinPair` objects **as they are
    found**, where pair indices are arrival positions.  When the iterable
    is exhausted (and pending verification drained), the yielded pairs
    are exactly those of ``similarity_join(list(trees), tau)`` — and the
    same holds at every intermediate flush point, so a consumer can stop
    early with a correct join of the prefix it has seen.

    A thin shim over :class:`repro.session.StreamPlan` (laziness is why
    it takes an iterable rather than a prepared collection; an in-memory
    collection streams via ``TreeCollection.stream(tau)``).

    Parameters
    ----------
    trees:
        The arriving collection, in arrival order.
    tau:
        The TED threshold (an integer >= 0).
    config:
        PartSJ filter configuration (defaults to the provably-exact one).
    workers:
        ``1`` verifies inline (each yielded pair involves the most recent
        arrival); ``> 1`` verifies in a background pool, so pairs may be
        yielded a few arrivals after both their trees were ingested.
    micro_batch:
        Ingest this many trees between yield points (``>= 1``).  Larger
        batches amortize per-arrival overhead at the cost of result
        latency.

    >>> from repro.tree.node import Tree
    >>> trees = [Tree.from_bracket(s) for s in ("{a{b}{c}}", "{a{b}}", "{x{y}}")]
    >>> [(p.i, p.j) for p in stream_join(iter(trees), 1)]
    [(0, 1)]
    """
    _warn_shim("stream_join")
    # The plan constructor raises parameter errors at call time, not at
    # the first next(); iteration itself stays lazy.
    plan = StreamPlan(
        trees, check_tau(tau), config,
        check_workers(workers), check_micro_batch(micro_batch),
    )
    return plan.iter()


def join_methods() -> list[str]:
    """The registered method names (aliases included)."""
    return sorted(JOIN_METHODS)
