"""Rule engine of the invariant linter: file walk, findings, pragmas.

The engine is deliberately small and dependency-free: it reads python
sources, parses them with :mod:`ast`, hands each file to every *per-file*
rule and the whole set to every *project* rule (the cross-module checks,
e.g. cache-key completeness), then applies suppression pragmas and
reports what is left as :class:`Finding` objects.

Suppression
-----------
A violation that is deliberate is declared inline::

    number_of = {id(node): b for ...}  # repro: allow[determinism] never iterated

The pragma silences exactly one rule on exactly the line it sits on (the
line a finding anchors to — for a multi-line statement, the statement's
first line).  Pragmas are themselves linted:

- an unknown rule id inside ``allow[...]`` is a finding (rule
  ``pragma``), so typos cannot silently disable nothing;
- a pragma that suppressed no finding is a finding (rule
  ``unused-pragma``), so stale exemptions are garbage-collected the
  moment the code they excused goes away.

Both meta findings are unsuppressible by design.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.errors import InvalidParameterError

__all__ = [
    "Finding",
    "Pragma",
    "FileContext",
    "Project",
    "Report",
    "analyze",
    "iter_python_files",
    "META_RULES",
]

# One pragma token: hash, then "repro: allow[rule-id]".  Several may sit on
# one line; each names exactly one rule (comma lists are rejected by the
# rule-id grammar below, surfacing as an unknown-id finding).
_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")
_RULE_ID_RE = re.compile(r"^[a-z][a-z0-9-]*$")

# Findings the engine itself emits (not suppressible, not filterable off
# by accident: --rule keeps them unless explicitly excluded).
META_RULES = {
    "parse": "the file does not parse as python at all",
    "pragma": "a suppression pragma names an unknown rule id",
    "unused-pragma": "a suppression pragma suppressed nothing",
}


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation at ``file:line``."""

    file: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class Pragma:
    """One ``# repro: allow[rule]`` occurrence."""

    line: int
    rule: str
    used: bool = False


class FileContext:
    """One parsed source file as the rules see it."""

    def __init__(self, path: Path, display: str, source: str):
        self.path = path
        self.display = display
        self.source = source
        self.lines = source.splitlines()
        self.tree: Optional[ast.AST] = None
        self.parse_error: Optional[tuple[int, str]] = None
        try:
            self.tree = ast.parse(source)
        except SyntaxError as exc:
            self.parse_error = (exc.lineno or 1, exc.msg or "syntax error")
        # Pragmas live in COMMENT tokens only — a pragma example quoted
        # inside a docstring is documentation, not a suppression.
        self.pragmas: list[Pragma] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                for match in _PRAGMA_RE.finditer(token.string):
                    self.pragmas.append(
                        Pragma(token.start[0], match.group(1).strip())
                    )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            pass  # unparseable file: the "parse" finding already covers it
        # Directory segments of the path, for scope decisions ("is this
        # file under core/?").  The file name itself is excluded.
        self.segments = frozenset(
            part.lower() for part in Path(display).parts[:-1]
        )

    def in_any(self, segments: frozenset[str]) -> bool:
        """Whether the file sits under any of the named directories."""
        return bool(self.segments & segments)


class Project:
    """Every scanned file, for the cross-module rules."""

    def __init__(self, contexts: Sequence[FileContext]):
        self.contexts = [ctx for ctx in contexts if ctx.tree is not None]

    def classes(self, name: str) -> list[tuple[FileContext, ast.ClassDef]]:
        """Every top-level-or-nested class definition named ``name``."""
        found = []
        for ctx in self.contexts:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef) and node.name == name:
                    found.append((ctx, node))
        return found

    def functions(self, name: str) -> list[tuple[FileContext, ast.FunctionDef]]:
        """Every function/method definition named ``name``."""
        found = []
        for ctx in self.contexts:
            for node in ast.walk(ctx.tree):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == name
                ):
                    found.append((ctx, node))
        return found


@dataclass
class Report:
    """The outcome of one :func:`analyze` run."""

    files: int
    findings: list[Finding]

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict:
        return {
            "files": self.files,
            "findings": [f.as_dict() for f in self.findings],
            "clean": self.clean,
        }

    def render(self) -> str:
        if self.clean:
            return f"clean: {self.files} files, 0 findings"
        lines = [f.render() for f in self.findings]
        lines.append(
            f"{len(self.findings)} finding"
            f"{'' if len(self.findings) == 1 else 's'} in {self.files} files"
        )
        return "\n".join(lines)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files accepted verbatim),
    sorted for deterministic output; caches and hidden dirs skipped."""
    out: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_file():
            out.append(path)
            continue
        if not path.is_dir():
            raise InvalidParameterError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.parts
            if any(p == "__pycache__" or p.startswith(".") for p in parts):
                continue
            out.append(candidate)
    # De-duplicate while keeping order (a file named twice lints once).
    seen = set()
    unique = []
    for path in out:
        key = str(path.resolve())
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def _display(path: Path) -> str:
    """The path as findings print it: relative to cwd when possible."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def analyze(
    paths: Iterable[str | Path],
    rules: Optional[Sequence] = None,
    rule_ids: Optional[Sequence[str]] = None,
    path_filter: Optional[str] = None,
) -> Report:
    """Run the invariant rules over every python file under ``paths``.

    ``rules`` defaults to the full registered set
    (:func:`repro.analysis.rules.all_rules`); ``rule_ids`` keeps only the
    named rules (meta findings for those rules included); ``path_filter``
    keeps only files whose display path contains the substring.

    Returns a :class:`Report` whose findings are sorted by
    ``(file, line, rule)``.  Pragma bookkeeping — unknown ids, unused
    pragmas — is part of the report; see the module docstring.
    """
    if rules is None:
        from repro.analysis.rules import all_rules

        rules = all_rules()
    rules = list(rules)
    known_ids = {rule.id for rule in rules}
    if rule_ids:
        rule_ids = list(rule_ids)
        unknown = sorted(set(rule_ids) - known_ids - set(META_RULES))
        if unknown:
            raise InvalidParameterError(
                f"unknown rule id(s) {unknown}; known: "
                f"{sorted(known_ids | set(META_RULES))}"
            )
        selected = [rule for rule in rules if rule.id in rule_ids]
        # Meta findings stay on under --rule filtering (a parse failure or
        # a bogus pragma is never "out of scope"); unused-pragma judgment
        # still requires the pragma's own rule to have been selected.
        selected_ids = set(rule_ids) | set(META_RULES)
    else:
        selected = rules
        selected_ids = known_ids | set(META_RULES)

    files = iter_python_files(paths)
    if path_filter:
        files = [f for f in files if path_filter in _display(f)]
    contexts: list[FileContext] = []
    findings: list[Finding] = []
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except UnicodeDecodeError:
            source = path.read_text(encoding="utf-8", errors="replace")
        ctx = FileContext(path, _display(path), source)
        contexts.append(ctx)
        if ctx.parse_error is not None and "parse" in selected_ids:
            line, message = ctx.parse_error
            findings.append(Finding(ctx.display, line, "parse", message))

    project = Project(contexts)
    for rule in selected:
        for ctx in project.contexts:
            findings.extend(rule.check_file(ctx))
        findings.extend(rule.check_project(project))

    by_display = {ctx.display: ctx for ctx in contexts}
    kept: list[Finding] = []
    for finding in findings:
        ctx = by_display.get(finding.file)
        suppressed = False
        if ctx is not None and finding.rule not in META_RULES:
            for pragma in ctx.pragmas:
                if pragma.line == finding.line and pragma.rule == finding.rule:
                    pragma.used = True
                    suppressed = True
        if not suppressed:
            kept.append(finding)

    for ctx in contexts:
        for pragma in ctx.pragmas:
            if pragma.rule not in known_ids or not _RULE_ID_RE.match(pragma.rule):
                if "pragma" in selected_ids:
                    kept.append(Finding(
                        ctx.display, pragma.line, "pragma",
                        f"suppression pragma names unknown rule id "
                        f"{pragma.rule!r}",
                    ))
            elif (
                pragma.rule in selected_ids
                and not pragma.used
                and "unused-pragma" in selected_ids
            ):
                # A pragma for a rule that did not run is not judged:
                # only evaluated rules can prove a pragma unused.
                kept.append(Finding(
                    ctx.display, pragma.line, "unused-pragma",
                    f"pragma allow[{pragma.rule}] suppressed nothing",
                ))

    kept.sort()
    return Report(files=len(contexts), findings=kept)
