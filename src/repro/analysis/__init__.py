"""repro.analysis — the AST invariant linter.

Static enforcement of the promises the rest of the package makes at
runtime: bit-identical determinism in the hot tiers, complete cache
keys, picklable pool boundaries, typed errors, and registered counter
names.  Run it as ``python -m repro.analysis [paths...]`` or call
:func:`analyze` directly; see :mod:`repro.analysis.engine` for the
pragma grammar and :mod:`repro.analysis.rules` for the battery.
"""

from __future__ import annotations

from repro.analysis.engine import (
    META_RULES,
    FileContext,
    Finding,
    Pragma,
    Project,
    Report,
    analyze,
    iter_python_files,
)
from repro.analysis.registry import (
    EXTRA_COUNTER_KEYS,
    METRIC_FAMILIES,
    STREAM_FORWARDED_COUNTERS,
)
from repro.analysis.rules import Rule, all_rules

__all__ = [
    "analyze",
    "all_rules",
    "Rule",
    "Finding",
    "Pragma",
    "FileContext",
    "Project",
    "Report",
    "META_RULES",
    "iter_python_files",
    "EXTRA_COUNTER_KEYS",
    "METRIC_FAMILIES",
    "STREAM_FORWARDED_COUNTERS",
]
