"""``python -m repro.analysis`` — run the invariant linter.

Exit status is the contract: 0 when the scanned tree is clean, 1 when
any finding survives suppression, 2 on usage errors.  ``--json`` emits
the full report as one JSON object for CI consumption.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.engine import META_RULES, analyze
from repro.analysis.rules import all_rules
from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def _default_path() -> str:
    """The installed ``repro`` package: lint ourselves when no path given."""
    return str(Path(__file__).resolve().parent.parent)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST invariant linter: determinism, cache-key completeness, "
            "pool-boundary safety, error contract, counter registry."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="RULE-ID",
        help="run only the named rule (repeatable)",
    )
    parser.add_argument(
        "--path", dest="path_filter", metavar="SUBSTRING",
        help="keep only files whose path contains SUBSTRING",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the report as a JSON object",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list rule ids and what they enforce, then exit",
    )
    return parser


def _list_rules(as_json: bool) -> str:
    rules = all_rules()
    if as_json:
        return json.dumps({
            "rules": [
                {"id": rule.id, "summary": rule.summary,
                 "suppression": rule.suppression}
                for rule in rules
            ],
            "meta": dict(META_RULES),
        }, indent=2, sort_keys=True)
    width = max(len(rule.id) for rule in rules)
    lines = [f"{rule.id:<{width}}  {rule.summary}" for rule in rules]
    lines.append("")
    lines.append("meta findings (not suppressible):")
    meta_width = max(len(name) for name in META_RULES)
    lines.extend(
        f"{name:<{meta_width}}  {what}" for name, what in META_RULES.items()
    )
    lines.append("")
    lines.append(f"suppress one deliberate violation inline with "
                 f"{all_rules()[0].suppression!r}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules(args.json))
        return 0
    paths = args.paths or [_default_path()]
    try:
        report = analyze(
            paths, rule_ids=args.rules, path_filter=args.path_filter
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
