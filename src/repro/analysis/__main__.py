"""Entry point for ``python -m repro.analysis``."""

import sys

from repro.analysis.cli import main

try:
    code = main()
except BrokenPipeError:
    # Downstream pager/head closed the pipe: not an error, exit quietly.
    sys.stderr.close()
    code = 0
sys.exit(code)
