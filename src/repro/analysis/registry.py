"""The committed counter registry: every stats/metrics name, declared once.

PRs 1–9 grew three name-keyed surfaces that exporters, ``explain()``,
docs and dashboards all read:

- integer/float counters written into ``JoinStats.extra``,
- counters written into ``StreamStats`` / ``StreamStats.extra``,
- Prometheus metric family names emitted by :mod:`repro.obs`.

Nothing enforced that a key written in one module matched the key read
in another — a typo ships silently and a dashboard goes blank.  This
module is the single source of truth: the ``counter-registry`` lint rule
(:mod:`repro.analysis.rules.counters`) fails any write of an unregistered
key, and :func:`repro.obs.metrics.publish_stream_stats` imports its
forwarding list from here instead of duplicating it.

Keep this module **pure data** (it is imported by :mod:`repro.obs` and
by the linter; it must never import back into the engine).
"""

from __future__ import annotations

__all__ = [
    "JOIN_EXTRA_COUNTERS",
    "STREAM_EXTRA_COUNTERS",
    "BENCH_EXTRA_COUNTERS",
    "EXTRA_COUNTER_KEYS",
    "METRIC_FAMILIES",
    "STREAM_FORWARDED_COUNTERS",
]

# -- JoinStats.extra ---------------------------------------------------------
# Written by the serial driver (repro.core.join), the sharded executor
# (repro.parallel.executor), the verification layer (repro.baselines.common,
# repro.parallel.verify_pool), the baselines and the session layer.
JOIN_EXTRA_COUNTERS: dict[str, str] = {
    # probe/insert loop (core.join._ProbeCounters.as_dict)
    "probe_hits": "subgraphs returned by index probes",
    "match_tests": "structural matches attempted",
    "match_hits": "structural matches that succeeded",
    "dedup_skips": "probe hits skipped because the pair was already checked",
    "small_pool_pairs": "pairs verified via the small-tree pool",
    "partitioned_trees": "trees partitioned into delta subgraphs",
    "small_trees": "trees below the partitionable floor",
    "subgraphs_built": "subgraphs extracted across the join",
    "gamma_total": "sum of chosen gammas (for average reporting)",
    "band_trees": "handoff-band trees re-partitioned at shard boundaries",
    "band_subgraphs": "subgraphs built for handoff-band trees",
    # index accounting (core.join / parallel.executor)
    "backend": "kernel backend that actually ran ('python' or 'numpy')",
    "total_indexed_subgraphs": "subgraphs inserted into the two-layer index",
    "total_index_entries": "entries in the two-layer index",
    "shard_index_entries": "per-shard index entries summed across shards",
    # verification breakdown (baselines.common.Verifier.extra_stats)
    "lb_filtered": "candidate pairs rejected by a proven lower bound",
    "ub_accepted": "candidate pairs accepted by a proven upper bound",
    "ted_early_exits": "banded TED runs cut short by the early exit",
    # parallel execution (parallel.executor / parallel.verify_pool)
    "workers": "worker processes the run used",
    "shards": "per-shard timing summaries (list)",
    "band_time": "handoff-band insert wall seconds summed across shards",
    "plan_time": "shard-planning wall seconds",
    "candidate_wall_time": "candidate-stage wall seconds",
    "verify_wall_time": "verification-stage wall seconds",
    "verify_chunks": "verification chunks dispatched",
    # supervised-dispatch failure accounting (resilience.supervisor)
    "retries": "tasks re-dispatched after a failure",
    "worker_failures": "worker crashes, remote raises, corrupt envelopes",
    "timeouts": "tasks that exceeded the per-task deadline",
    "degraded_serial_tasks": "tasks re-executed serially after exhaustion",
    "pool_respawns": "pool replacements after a failed round",
    "fault_events": "per-event failure trail (list)",
    # session layer (repro.session)
    "prep_time": "preparation wall seconds folded into a cold run",
    "prep_reused": "whether the run reused a warm preparation (bool)",
    "cross_pairs": "R×S cross pairs kept after the merged self-join",
    "same_side_pairs_discarded": "same-side pairs dropped by the R×S filter",
    # baseline-specific funnels
    "banded": "STR join ran the banded string-edit filter (bool)",
    "pruned_by_labels": "histogram join: pairs pruned by the label filter",
    "pruned_by_degrees": "histogram join: pairs pruned by the degree filter",
    "pruned_by_preorder": "STR join: pairs pruned by the preorder filter",
    "pruned_by_postorder": "STR join: pairs pruned by the postorder filter",
    "pruned_by_bib": "set join: pairs pruned by the binary-branch bound",
}

# -- StreamStats / StreamStats.extra ----------------------------------------
# Written by repro.stream.engine and the background verify pool.
STREAM_EXTRA_COUNTERS: dict[str, str] = {
    "ted_calls": "exact TED computations (foreground + pool)",
    "backend": "kernel backend that actually ran",
    "verify_failures": "pool verification failures swallowed into retry",
    "quarantined_pairs": "poison candidate pairs quarantined by the pool",
    "quarantine_log": "recent quarantined-ingest error records (list)",
    "wal": "write-ahead log counters (nested dict)",
    "verify_time": "pool verification wall seconds",
}

# -- benchmark harness extras (repro.bench) ---------------------------------
BENCH_EXTRA_COUNTERS: dict[str, str] = {
    "ingest_rate": "trees ingested per second of ingest wall",
    "time_to_first_result": "seconds until the first streamed pair",
    "reverse_candidates": "candidates found via the reverse node-twig index",
}

#: Every extra key a write site may use (the ``counter-registry`` rule's
#: acceptance set).  Registering here is a *declaration*: exporters and
#: ``explain()`` may rely on the name staying spelled exactly like this.
EXTRA_COUNTER_KEYS: frozenset[str] = frozenset(
    {**JOIN_EXTRA_COUNTERS, **STREAM_EXTRA_COUNTERS, **BENCH_EXTRA_COUNTERS}
)

# -- Prometheus families (repro.obs.metrics / repro.cli) --------------------
METRIC_FAMILIES: dict[str, str] = {
    "repro_join_runs_total": "joins published to the registry",
    "repro_join_trees_total": "trees joined",
    "repro_join_candidates_total": "candidate pairs surviving filters",
    "repro_join_results_total": "result pairs within tau",
    "repro_join_ted_calls_total": "tree edit distance computations",
    "repro_join_pairs_considered_total": "pairs considered before filtering",
    "repro_join_phase_seconds": "per-join phase wall clock histogram",
    "repro_join_counter_total": "integer counters from JoinStats.extra",
    "repro_stream_snapshots_total": "stream snapshots published",
    "repro_stream_trees": "trees ingested at publish time",
    "repro_stream_results": "result pairs at publish time",
    "repro_stream_pending_verification": "pairs awaiting background verify",
    "repro_stream_candidates": "candidate pairs generated",
    "repro_stream_index_entries": "live two-layer index entries",
    "repro_stream_quarantined_trees_total": "malformed arrivals quarantined",
    "repro_stream_quarantined_pairs_total": "poison pairs quarantined",
    "repro_stream_wall_seconds": "streaming phase wall clock histogram",
    "repro_stream_counter_total": "verify-pool work and failure accounting",
    "repro_dataset_trees": "trees in the dataset file",
    "repro_dataset_size_min": "smallest tree (nodes)",
    "repro_dataset_size_max": "largest tree (nodes)",
    "repro_dataset_size_avg": "average tree size (nodes)",
    "repro_dataset_labels": "distinct node labels",
    "repro_dataset_depth_max": "maximum node depth (root = 0)",
}

#: The ``StreamStats.extra`` counters :func:`repro.obs.metrics.
#: publish_stream_stats` forwards into ``repro_stream_counter_total``.
#: Listed here (not in obs) so the exporter and the registry cannot
#: drift; every entry must also be a registered extra key.
STREAM_FORWARDED_COUNTERS: tuple[str, ...] = (
    "retries",
    "worker_failures",
    "timeouts",
    "verify_failures",
    "degraded_serial_tasks",
    "pool_respawns",
    "fault_events",
    "verify_chunks",
)
