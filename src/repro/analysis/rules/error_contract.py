"""Error contract: typed errors only, and every one of them exported.

The library promises callers a single catchable base
(:class:`repro.errors.ReproError`) with meaningful subclasses.  Three
things erode that promise over time, and this rule pins all of them:

- **bare ``except:``** swallows ``SystemExit``/``KeyboardInterrupt`` and
  hides typed failures; always name the exception being handled;
- **raising builtins** (``ValueError``, ``RuntimeError``, ...) from
  library code hands callers an exception they cannot distinguish from
  an interpreter error; raise the typed classes (which multiply inherit
  from the matching builtin, so ``except ValueError`` callers keep
  working);
- **unexported subclasses**: a ``ReproError`` subclass that is not
  importable from the package root (or its defining module's
  ``__all__``) cannot be caught by name — a typed error nobody can type.

``NotImplementedError`` (abstract methods), ``StopIteration`` /
``StopAsyncIteration`` (iterator protocol) and bare re-``raise`` are
exempt: they are protocol, not error reporting.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import FileContext, Finding, Project
from repro.analysis.rules.base import Rule

__all__ = ["ErrorContractRule"]

# Builtins whose raising from library code is a contract violation.
_BANNED_RAISES = frozenset({
    "BaseException",
    "Exception",
    "ValueError",
    "TypeError",
    "RuntimeError",
    "KeyError",
    "IndexError",
    "LookupError",
    "AttributeError",
    "ArithmeticError",
    "ZeroDivisionError",
    "OSError",
    "IOError",
    "EnvironmentError",
    "AssertionError",
    "TimeoutError",
    "NameError",
    "UnicodeDecodeError",
    "UnicodeEncodeError",
})


class ErrorContractRule(Rule):
    id = "error-contract"
    summary = (
        "no bare except:, no raising builtin exceptions from library "
        "code, every ReproError subclass exported"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                findings.append(self.finding(
                    ctx, node,
                    "bare except: catches SystemExit/KeyboardInterrupt too; "
                    "name the exception (ReproError for library failures)",
                ))
            elif isinstance(node, ast.Raise) and node.exc is not None:
                name = None
                if isinstance(node.exc, ast.Call) and isinstance(
                    node.exc.func, ast.Name
                ):
                    name = node.exc.func.id
                elif isinstance(node.exc, ast.Name):
                    name = node.exc.id
                if name in _BANNED_RAISES:
                    findings.append(self.finding(
                        ctx, node,
                        f"raising builtin {name} from library code; raise a "
                        "typed repro.errors class instead (they subclass "
                        "the matching builtin, so callers keep working)",
                    ))
        return findings

    # -- export completeness -------------------------------------------------

    def check_project(self, project: Project) -> Iterable[Finding]:
        base_defs = project.classes("ReproError")
        if not base_defs:
            return ()
        errors_ctx, _ = base_defs[0]
        # Transitive subclasses inside the defining module.
        error_names = {"ReproError"}
        grew = True
        class_defs = [
            node for node in ast.walk(errors_ctx.tree)
            if isinstance(node, ast.ClassDef)
        ]
        while grew:
            grew = False
            for node in class_defs:
                if node.name in error_names:
                    continue
                bases = {
                    b.id for b in node.bases if isinstance(b, ast.Name)
                }
                if bases & error_names:
                    error_names.add(node.name)
                    grew = True

        findings: list[Finding] = []
        root_init = self._package_root_init(project, errors_ctx)
        if root_init is not None:
            init_ctx, imported = root_init
            for node in class_defs:
                if node.name in error_names and node.name not in imported:
                    findings.append(Finding(
                        errors_ctx.display, node.lineno, self.id,
                        f"ReproError subclass {node.name!r} is not exported "
                        f"from {init_ctx.display}; add it to the package "
                        "root imports",
                    ))

        # Subclasses defined outside the errors module must be named in
        # their own module's __all__ so they are part of a public surface.
        for ctx in project.contexts:
            if ctx is errors_ctx:
                continue
            module_all = self._module_all(ctx)
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                bases = {
                    b.id for b in node.bases if isinstance(b, ast.Name)
                }
                if not (bases & error_names):
                    continue
                if module_all is None or node.name not in module_all:
                    findings.append(Finding(
                        ctx.display, node.lineno, self.id,
                        f"ReproError subclass {node.name!r} is missing from "
                        "this module's __all__; typed errors must be "
                        "importable by name",
                    ))
        return findings

    @staticmethod
    def _package_root_init(project, errors_ctx):
        """The ``__init__`` importing from the errors module, with the set
        of names it imports from there (``None`` when absent)."""
        for ctx in project.contexts:
            if not ctx.display.endswith("__init__.py"):
                continue
            imported: set[str] = set()
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ImportFrom) and node.module and (
                    node.module == "errors"
                    or node.module.endswith(".errors")
                ):
                    imported.update(alias.name for alias in node.names)
            if imported:
                return ctx, imported
        return None

    @staticmethod
    def _module_all(ctx: FileContext):
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        if isinstance(node.value, (ast.List, ast.Tuple)):
                            return {
                                elt.value
                                for elt in node.value.elts
                                if isinstance(elt, ast.Constant)
                            }
        return None
