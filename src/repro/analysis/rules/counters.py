"""Counter registry: stats keys and metric families must be declared.

Exporters, ``explain()`` and dashboards read ``JoinStats.extra`` /
``StreamStats.extra`` keys and Prometheus family names *by string*.  A
typo at a write site ships silently: the counter is written under the
wrong name, the reader sees zero, and nothing fails.  This rule makes
every such name a checked reference against the committed registry
(:mod:`repro.analysis.registry`):

- subscript writes ``<x>.extra["name"] = ...`` (and ``extra["name"]``
  on a local stats-extras dict, ``.setdefault("name", ...)``, and dict
  literals passed to ``.extra.update({...})``) must use a key in
  ``EXTRA_COUNTER_KEYS``;
- string constants shaped like a metric family name (``repro_`` prefix,
  ``[a-z0-9_]`` body) must be in ``METRIC_FAMILIES``.

Writes under a *dynamic* key (``extra[key] = ...``) are invisible to
the reader-by-string failure mode this rule targets and are skipped.
New counters are added by registering them first — the registry entry
doubles as the name's documentation.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, Optional

from repro.analysis.engine import FileContext, Finding
from repro.analysis.registry import EXTRA_COUNTER_KEYS, METRIC_FAMILIES
from repro.analysis.rules.base import Rule

__all__ = ["CounterRegistryRule"]

_FAMILY_SHAPE = re.compile(r"repro_[a-z0-9_]+\Z")


def _extra_target(node: ast.AST) -> bool:
    """Whether ``node`` is an expression denoting a stats-extras dict:
    ``<anything>.extra`` or a bare name ``extra``."""
    if isinstance(node, ast.Attribute) and node.attr == "extra":
        return True
    return isinstance(node, ast.Name) and node.id == "extra"


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class CounterRegistryRule(Rule):
    id = "counter-registry"
    summary = (
        "stats extra keys and repro_* metric family names must be "
        "declared in repro.analysis.registry"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            findings.extend(self._check_node(ctx, node))
        return findings

    def _check_node(
        self, ctx: FileContext, node: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and _extra_target(
                    target.value
                ):
                    key = _const_str(target.slice)
                    if key is not None and key not in EXTRA_COUNTER_KEYS:
                        yield self._unregistered_key(ctx, node, key)
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            attr = node.func.attr
            if attr == "setdefault" and _extra_target(node.func.value):
                if node.args:
                    key = _const_str(node.args[0])
                    if key is not None and key not in EXTRA_COUNTER_KEYS:
                        yield self._unregistered_key(ctx, node, key)
            elif attr == "update" and _extra_target(node.func.value):
                for arg in node.args:
                    if isinstance(arg, ast.Dict):
                        for key_node in arg.keys:
                            key = (
                                _const_str(key_node)
                                if key_node is not None
                                else None
                            )
                            if key is not None and key not in EXTRA_COUNTER_KEYS:
                                yield self._unregistered_key(
                                    ctx, key_node, key
                                )
        elif isinstance(node, ast.Constant):
            value = node.value
            if (
                isinstance(value, str)
                and _FAMILY_SHAPE.fullmatch(value)
                and value not in METRIC_FAMILIES
            ):
                yield self.finding(
                    ctx, node,
                    f"metric family name {value!r} is not declared in "
                    "repro.analysis.registry.METRIC_FAMILIES; register it "
                    "(with a description) before emitting it",
                )

    def _unregistered_key(self, ctx, node, key: str) -> Finding:
        return self.finding(
            ctx, node,
            f"stats extra key {key!r} is not declared in "
            "repro.analysis.registry; register it (with a description) "
            "so exporters and explain() can rely on the spelling",
        )
