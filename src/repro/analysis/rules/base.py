"""Shared rule plumbing: the base class and scope constants."""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import FileContext, Finding, Project

__all__ = [
    "Rule",
    "DETERMINISM_SCOPE",
    "CLOCK_EXEMPT",
    "call_name",
    "is_id_call",
]

# Packages whose code must be bit-identical across backends, worker
# counts and processes — the determinism rule's jurisdiction.
DETERMINISM_SCOPE = frozenset({"core", "kernels", "parallel", "stream", "ted"})

# Directories where reading the wall clock is legitimate: observability
# stamps export timestamps, benchmarks report when they ran.
CLOCK_EXEMPT = frozenset({"obs", "bench", "benchmarks"})


class Rule:
    """One invariant.  Subclasses set ``id``/``summary`` and implement
    :meth:`check_file` (per-file AST walk) and/or :meth:`check_project`
    (cross-module checks over every scanned file)."""

    id: str = ""
    summary: str = ""
    #: How to silence one deliberate violation (shown by --list-rules).
    suppression = "# repro: allow[<rule-id>] <why>"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(ctx.display, getattr(node, "lineno", 1), self.id, message)


def call_name(node: ast.Call) -> str:
    """Dotted name of a call's callee, best effort (``""`` when dynamic)."""
    parts: list[str] = []
    cursor = node.func
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
        return ".".join(reversed(parts))
    return ""


def is_id_call(node: ast.AST) -> bool:
    """Whether ``node`` is a call to the builtin ``id``."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
        and len(node.args) == 1
    )
