"""Pool-boundary safety: only module-level callables cross the fork.

Task callables handed to the multiprocessing tier — the ``func`` of
``pool.apply_async``, the ``initializer=`` of a ``Pool``, the dispatched
function of :class:`repro.resilience.PoolSupervisor.run` — are pickled
into worker processes.  Lambdas and nested functions (closures) are not
picklable; handing one over fails at dispatch time, and only on the
code path that actually spawns workers, which is exactly the path unit
tests most often skip.  This rule rejects them statically.

Deliberately **not** flagged:

- the ``pool_factory`` argument of ``PoolSupervisor(...)`` and the
  ``fallback`` argument of ``PoolSupervisor.run(...)`` — both execute in
  the parent process (the factory builds the pool; the fallback is the
  serial degradation path), so closures are fine there and the executor
  uses them on purpose;
- ``functools.partial(...)`` — picklable when its target is; the rule
  recurses into the target instead.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.analysis.engine import FileContext, Finding
from repro.analysis.rules.base import Rule, call_name

__all__ = ["PoolBoundaryRule"]


def _module_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _nested_defs_and_lambdas(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Names of defs nested inside functions, and names bound to lambdas."""
    nested: set[str] = set()
    lambda_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if (
                    isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and inner is not node
                ):
                    nested.add(inner.name)
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    lambda_names.add(target.id)
    return nested, lambda_names


def _supervisor_names(tree: ast.Module) -> set[str]:
    """Names bound to ``PoolSupervisor(...)`` instances (assignments and
    ``with PoolSupervisor(...) as name``)."""
    names: set[str] = set()

    def is_supervisor_call(value: ast.AST) -> bool:
        return isinstance(value, ast.Call) and call_name(value).endswith(
            "PoolSupervisor"
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and is_supervisor_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if is_supervisor_call(item.context_expr) and isinstance(
                    item.optional_vars, ast.Name
                ):
                    names.add(item.optional_vars.id)
    return names


class PoolBoundaryRule(Rule):
    id = "pool-boundary"
    summary = (
        "callables crossing the fork boundary (apply_async, Pool "
        "initializer, PoolSupervisor.run) must be module-level defs"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        tree = ctx.tree
        module_names = _module_level_names(tree)
        nested, lambda_names = _nested_defs_and_lambdas(tree)
        supervisors = _supervisor_names(tree)
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if not isinstance(callee, ast.Attribute):
                # Bare Pool(...) calls: check the initializer keyword.
                if call_name(node).split(".")[-1] == "Pool":
                    findings.extend(self._check_initializer(ctx, node, module_names, nested, lambda_names))
                continue
            if callee.attr == "apply_async" and node.args:
                findings.extend(self._validate(
                    ctx, node.args[0], "apply_async task",
                    module_names, nested, lambda_names,
                ))
            elif callee.attr == "Pool":
                findings.extend(self._check_initializer(
                    ctx, node, module_names, nested, lambda_names
                ))
            elif callee.attr == "run" and node.args:
                receiver = callee.value
                is_supervisor = (
                    isinstance(receiver, ast.Name) and receiver.id in supervisors
                ) or (
                    isinstance(receiver, ast.Call)
                    and call_name(receiver).endswith("PoolSupervisor")
                )
                if is_supervisor:
                    # Only the dispatched func (arg 0) crosses the fork;
                    # the fallback (arg 2) runs in-parent by contract.
                    findings.extend(self._validate(
                        ctx, node.args[0], "PoolSupervisor.run task",
                        module_names, nested, lambda_names,
                    ))
        return findings

    def _check_initializer(
        self, ctx, call: ast.Call, module_names, nested, lambda_names
    ) -> Iterator[Finding]:
        for keyword in call.keywords:
            if keyword.arg == "initializer":
                yield from self._validate(
                    ctx, keyword.value, "pool initializer",
                    module_names, nested, lambda_names,
                )

    def _validate(
        self, ctx, node: ast.AST, role: str, module_names, nested, lambda_names
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Call) and call_name(node).split(".")[-1] == "partial":
            if node.args:
                yield from self._validate(
                    ctx, node.args[0], role,
                    module_names, nested, lambda_names,
                )
            return
        if isinstance(node, ast.Lambda):
            yield self.finding(
                ctx, node,
                f"lambda passed as {role}: lambdas cannot be pickled "
                "across the fork boundary; use a module-level def",
            )
        elif isinstance(node, ast.Name):
            if node.id in lambda_names and node.id not in module_names:
                yield self.finding(
                    ctx, node,
                    f"{node.id!r} (bound to a lambda) passed as {role}: "
                    "lambdas cannot cross the fork boundary; use a "
                    "module-level def",
                )
            elif node.id in nested and node.id not in module_names:
                yield self.finding(
                    ctx, node,
                    f"nested function {node.id!r} passed as {role}: "
                    "closures cannot be pickled across the fork boundary; "
                    "hoist it to module level",
                )
