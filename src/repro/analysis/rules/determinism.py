"""Determinism rules: the bit-identical contract, enforced at the AST.

Every tier from the sharded executor to the compiled kernels promises
*bit-identical results* — across backends, worker counts, restarts and
machines.  The constructs these rules ban are exactly the ones that have
historically broken that promise in similar systems:

- ``determinism`` (scope: ``core/``, ``kernels/``, ``parallel/``,
  ``stream/``, ``ted/``): wall-clock reads, the shared global RNG or an
  unseeded ``random.Random()``, building ``id()``-keyed mappings (ids
  are allocation addresses: not stable across processes, and the
  mapping's iteration order follows them), and iterating a set straight
  into ordered output (hash-order is salt- and history-dependent for
  ``str`` keys; wrap in ``sorted()``).
- ``wall-clock`` (scope: everywhere except ``obs/`` and benchmarks):
  ``time.time()`` / ``datetime.now()`` and friends.  Durations belong to
  ``time.perf_counter()`` / ``time.monotonic()``; absolute timestamps
  belong to the observability layer and the benchmark harness only.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.analysis.engine import FileContext, Finding
from repro.analysis.rules.base import (
    CLOCK_EXEMPT,
    DETERMINISM_SCOPE,
    Rule,
    call_name,
    is_id_call,
)

__all__ = ["WallClockRule", "DeterminismRule"]

# Wall-clock reads by dotted name.  perf_counter/monotonic are absent on
# purpose: they measure durations and are deterministic-output-safe.
_WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.asctime",
    "time.localtime",
    "time.gmtime",
    "time.strftime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
})

# Module-level functions of ``random`` that consume the shared global
# RNG — unseedable per call site, so any use is order-dependent state.
_GLOBAL_RNG_CALLS = frozenset({
    "random.random",
    "random.randint",
    "random.randrange",
    "random.shuffle",
    "random.choice",
    "random.choices",
    "random.sample",
    "random.uniform",
    "random.getrandbits",
    "random.gauss",
    "random.seed",
})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class WallClockRule(Rule):
    id = "wall-clock"
    summary = (
        "time.time()/datetime.now() outside obs/ and benchmarks; use "
        "perf_counter()/monotonic() for durations"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.in_any(CLOCK_EXEMPT):
            return ()
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name in _WALL_CLOCK_CALLS:
                    findings.append(self.finding(
                        ctx, node,
                        f"{name}() reads the wall clock; use "
                        "time.perf_counter()/time.monotonic() for durations "
                        "(absolute timestamps belong in obs/ and benchmarks)",
                    ))
        return findings


class DeterminismRule(Rule):
    id = "determinism"
    summary = (
        "no global RNG, unseeded random.Random(), id()-keyed mappings or "
        "set-order iteration inside core/kernels/parallel/stream/ted"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.in_any(DETERMINISM_SCOPE):
            return ()
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            findings.extend(self._check_node(ctx, node))
        return findings

    def _check_node(
        self, ctx: FileContext, node: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in _GLOBAL_RNG_CALLS:
                yield self.finding(
                    ctx, node,
                    f"{name}() consumes the shared global RNG; construct a "
                    "seeded random.Random(seed) and thread it explicitly",
                )
            elif (
                name in ("random.Random", "Random")
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    ctx, node,
                    "random.Random() without a seed draws entropy from the "
                    "OS; pass an explicit seed",
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
                and _is_set_expr(node.args[0])
            ):
                yield self.finding(
                    ctx, node,
                    f"{node.func.id}() over a set fixes hash order into an "
                    "ordered sequence; use sorted(...) instead",
                )
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and is_id_call(
                    target.slice
                ):
                    yield self.finding(
                        ctx, node,
                        "storing under an id(...) key builds an id()-keyed "
                        "mapping; ids are allocation-dependent and not "
                        "stable across processes",
                    )
        elif isinstance(node, ast.Dict):
            if any(key is not None and is_id_call(key) for key in node.keys):
                yield self.finding(
                    ctx, node,
                    "dict literal keyed by id(...); ids are "
                    "allocation-dependent and not stable across processes",
                )
        elif isinstance(node, ast.DictComp):
            if is_id_call(node.key):
                yield self.finding(
                    ctx, node,
                    "dict comprehension keyed by id(...); ids are "
                    "allocation-dependent and not stable across processes",
                )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter):
                yield self.finding(
                    ctx, node,
                    "iterating a set directly yields hash order; wrap the "
                    "iterable in sorted(...)",
                )
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                if _is_set_expr(gen.iter):
                    yield Finding(
                        ctx.display, gen.iter.lineno, self.id,
                        "comprehension iterates a set directly (hash "
                        "order); wrap the iterable in sorted(...)",
                    )
