"""The rule set.  ``all_rules()`` is the engine's default battery."""

from __future__ import annotations

from repro.analysis.rules.base import CLOCK_EXEMPT, DETERMINISM_SCOPE, Rule
from repro.analysis.rules.cache_keys import (
    PREP_KEY_EXCLUDED,
    SNAPSHOT_EXCLUDED,
    CacheKeyRule,
)
from repro.analysis.rules.counters import CounterRegistryRule
from repro.analysis.rules.determinism import DeterminismRule, WallClockRule
from repro.analysis.rules.error_contract import ErrorContractRule
from repro.analysis.rules.pool_safety import PoolBoundaryRule

__all__ = [
    "Rule",
    "all_rules",
    "DETERMINISM_SCOPE",
    "CLOCK_EXEMPT",
    "PREP_KEY_EXCLUDED",
    "SNAPSHOT_EXCLUDED",
    "DeterminismRule",
    "WallClockRule",
    "CacheKeyRule",
    "PoolBoundaryRule",
    "ErrorContractRule",
    "CounterRegistryRule",
]


def all_rules() -> list[Rule]:
    """One fresh instance of every shipped rule, stable order."""
    return [
        DeterminismRule(),
        WallClockRule(),
        CacheKeyRule(),
        PoolBoundaryRule(),
        ErrorContractRule(),
        CounterRegistryRule(),
    ]
