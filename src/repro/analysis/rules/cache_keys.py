"""Cache-key completeness: config fields vs. the keys derived from them.

``PartSJConfig`` fields feed three derived keys, and a field added to
the dataclass but forgotten in one of them causes the worst kind of bug:
a stale cache hit that silently answers with the wrong configuration.

- ``Session._prep_key`` keys the prepared-partition cache **and** the
  session result cache (the result cache reuses the prep key's config);
- ``persist.snapshot._config_fields`` keys snapshot round-trips —
  a missing field loads an old snapshot into a config it was not built
  under;
- ``JoinPlan._cache_key`` hashes the *whole* config object, which covers
  every field by construction (the rule recognises that shape).

Every ``PartSJConfig`` field must therefore appear in each consumer or
on that consumer's explicit exclusion list below, with a reason.  The
exclusion lists are part of the invariant: an entry that names a field
the dataclass no longer has, or a field the consumer *does* read, is
itself a finding — exclusions must stay true, not accumulate.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.engine import FileContext, Finding, Project
from repro.analysis.rules.base import Rule

__all__ = ["CacheKeyRule", "PREP_KEY_EXCLUDED", "SNAPSHOT_EXCLUDED"]

#: Fields ``Session._prep_key`` may omit, and why.  Everything else in
#: ``PartSJConfig`` MUST be read by ``_prep_key``.
PREP_KEY_EXCLUDED: dict[str, str] = {
    "workers": "execution knob; worker count never changes prepared artifacts",
    "retry": "fault-tolerance policy; retries re-run identical work",
    "fault_injector": "test-only hook; never alters successful results",
}

#: Fields ``persist.snapshot._config_fields`` may omit, and why.
SNAPSHOT_EXCLUDED: dict[str, str] = {
    "backend": (
        "backends are bit-identical and re-resolved per process; a "
        "snapshot written with numpy must load without it"
    ),
    "workers": "execution knob; not part of the prepared state",
    "retry": "fault-tolerance policy; not part of the prepared state",
    "fault_injector": "test-only hook; not part of the prepared state",
}

#: Consumer function name -> its exclusion list.
_CONSUMERS: dict[str, dict[str, str]] = {
    "_prep_key": PREP_KEY_EXCLUDED,
    "_config_fields": SNAPSHOT_EXCLUDED,
}


def _dataclass_fields(cls: ast.ClassDef) -> list[str]:
    fields: list[str] = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            fields.append(stmt.target.id)
    return fields


def _attribute_reads(func: ast.AST) -> set[str]:
    """Every ``<something>.<attr>`` attribute name read inside ``func``."""
    return {
        node.attr
        for node in ast.walk(func)
        if isinstance(node, ast.Attribute)
    }


def _returns_whole_config(func: ast.AST) -> bool:
    """Whether ``func`` returns a structure containing ``self.config`` /
    ``<name>.config`` or a bare config parameter — covering every field
    at once."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        for part in ast.walk(node.value):
            if isinstance(part, ast.Attribute) and part.attr == "config":
                return True
    return False


class CacheKeyRule(Rule):
    id = "cache-key"
    summary = (
        "every PartSJConfig field appears in _prep_key, snapshot "
        "_config_fields and JoinPlan._cache_key, or on an exclusion "
        "list with a reason"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        config_defs = project.classes("PartSJConfig")
        if not config_defs:
            return ()
        config_ctx, config_cls = config_defs[0]
        fields = _dataclass_fields(config_cls)
        if not fields:
            return ()
        field_set = set(fields)

        findings: list[Finding] = []
        for name, excluded in _CONSUMERS.items():
            defs = project.functions(name)
            if not defs:
                findings.append(Finding(
                    config_ctx.display, config_cls.lineno, self.id,
                    f"PartSJConfig is defined but no {name}() consumer was "
                    "scanned; the cache-key invariant cannot be checked",
                ))
                continue
            for ctx, func in defs:
                findings.extend(self._check_consumer(
                    ctx, func, name, fields, excluded
                ))
            for excluded_field, _reason in sorted(excluded.items()):
                if excluded_field not in field_set:
                    ctx, func = defs[0]
                    findings.append(Finding(
                        ctx.display, func.lineno, self.id,
                        f"exclusion list for {name}() names "
                        f"{excluded_field!r}, which is not a PartSJConfig "
                        "field; remove the stale entry",
                    ))

        # JoinPlan._cache_key: hashing the whole config covers all fields.
        for ctx, func in project.functions("_cache_key"):
            if _returns_whole_config(func):
                continue
            reads = _attribute_reads(func)
            for field in fields:
                if field not in reads:
                    findings.append(Finding(
                        ctx.display, func.lineno, self.id,
                        f"_cache_key() neither hashes the whole config nor "
                        f"reads PartSJConfig field {field!r}; two configs "
                        "differing only in it would share a cache entry",
                    ))
        return findings

    def _check_consumer(
        self,
        ctx: FileContext,
        func: ast.AST,
        name: str,
        fields: list[str],
        excluded: dict[str, str],
    ) -> Iterable[Finding]:
        reads = _attribute_reads(func)
        for field in fields:
            if field in excluded:
                if field in reads:
                    yield Finding(
                        ctx.display, func.lineno, self.id,
                        f"{name}() reads PartSJConfig field {field!r} but "
                        "the exclusion list claims it is omitted "
                        f"({excluded[field]}); drop the stale exclusion",
                    )
                continue
            if field not in reads:
                yield Finding(
                    ctx.display, func.lineno, self.id,
                    f"{name}() omits PartSJConfig field {field!r}; include "
                    "it in the derived key or add it to the exclusion list "
                    "in repro.analysis.rules.cache_keys with a reason",
                )
