"""``repro.stream``: incremental ingestion and the warm-index search service.

The batch pipeline assumes the whole collection up front; this package
refactors it into an engine that consumes a **stream** of trees and
serves queries from the live index:

- :mod:`~repro.stream.engine` — :class:`StreamingJoin`, the incremental
  probe-then-insert join: coherent in-place insertion into the
  size-sorted order, bidirectional candidate generation (forward
  two-layer index + reverse node-twig index), inline or background
  verification.  At every flush point its results are bit-identical to a
  batch ``similarity_join`` over the ingested prefix, for any arrival
  order.
- :mod:`~repro.stream.reverse` — :class:`NodeTwigIndex`, the mirror of
  the two-layer index answering "which ingested nodes would have probed
  this subgraph?", which is what makes out-of-order arrivals (and
  smaller-than-collection queries) filterable instead of
  verify-everything.
- :mod:`~repro.stream.searcher` — :class:`StreamSearcher`, a live
  ``similarity_search`` view over the engine's warm index (no rebuild;
  unifies :class:`repro.search.SimilaritySearcher` with the streaming
  state).
- :mod:`~repro.stream.service` — :class:`StreamJoinService`, the asyncio
  front end multiplexing concurrent ingest, search, and result
  subscriptions over one engine.

Entry points: :func:`repro.api.stream_join` (generator API), the CLI's
``join --stream`` / ``stats --stream`` (newline-delimited bracket trees
or NDJSON on stdin), or the classes above directly.
"""

from repro.stream.engine import StreamingJoin, StreamStats
from repro.stream.reverse import NodeTwigIndex
from repro.stream.searcher import StreamSearcher
from repro.stream.service import StreamJoinService

__all__ = [
    "StreamingJoin",
    "StreamStats",
    "NodeTwigIndex",
    "StreamSearcher",
    "StreamJoinService",
]
