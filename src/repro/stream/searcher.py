"""Warm-index similarity search over a live :class:`StreamingJoin`.

:class:`repro.search.SimilaritySearcher` builds its own index from a
fixed collection; :class:`StreamSearcher` *is* that searcher with the
build step removed — it binds the streaming engine's live structures
(two-layer index, interner, small pool, reverse node-twig index, sorted
order) and therefore always answers over exactly the ingested prefix,
with no rebuild and no copy.  Ingesting more trees between two queries
is the whole point: the index is warm, queries are cheap, and the
search-as-a-service scenario of the ROADMAP is one
:class:`repro.stream.service.StreamJoinService` away.

It also *improves* on the batch searcher's filtering: for collection
trees **larger** than the query, the batch searcher must fall back to
verifying the whole size window (its index only answers the
smaller-partner direction), while this one partitions the query and
probes the engine's reverse node-twig index — the same Lemma 2 filter
the streaming join applies to out-of-order arrivals.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING

from repro.core.index import PostorderFilter, postorder_half_width
from repro.core.partition import extract_partition, max_min_size_cached
from repro.core.subgraph import MatchSemantics
from repro.core.treecache import TreeCache
from repro.search import SimilaritySearcher

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.stream.engine import StreamingJoin

__all__ = ["StreamSearcher"]


class StreamSearcher(SimilaritySearcher):
    """A :class:`SimilaritySearcher` bound to a streaming engine's state.

    Construct via :meth:`StreamingJoin.searcher`.  The searcher holds
    references, not copies: queries interleaved with ingestion see every
    tree whose :meth:`~repro.stream.engine.StreamingJoin.add` completed.
    (Like the engine itself, it is not safe against *concurrent* mutation
    from another thread — the asyncio service serializes for you.)
    """

    def __init__(self, join: "StreamingJoin"):
        # Deliberately no super().__init__: the batch constructor builds
        # an index; here every structure is borrowed from the live join.
        self._join = join
        self.trees = join.trees
        self.tau = join.tau
        self.config = join.config
        self._index = join._driver.index
        self._interner = join._driver.interner
        self._min_size = join._min_size

    def _size_window(self, size: int) -> list[int]:
        collection = self._join.collection
        sizes = collection.sizes
        order = collection.order
        lo = bisect_left(sizes, size - self.tau)
        hi = bisect_right(sizes, size + self.tau)
        return order[lo:hi]

    def _upper_candidates(self, cache: TreeCache, candidates: set[int]) -> None:
        """Partners the forward probe cannot see, filtered where possible.

        Small-pool trees within the size window are taken directly (they
        are never indexed).  For partitioned collection trees *larger*
        than the query, the query is partitioned and its subgraphs probe
        the engine's reverse node-twig index — a query too small to
        partition falls back to the (at most ``3*tau``-node) trees of
        the band directly.
        """
        join = self._join
        tau = self.tau
        n = cache.size
        for i, size_i in join._driver.small_pool:
            if abs(size_i - n) <= tau:
                candidates.add(i)
        lo_size = n + 1
        hi_size = n + tau
        if lo_size > hi_size:
            return
        if n >= self._min_size:
            delta = 2 * tau + 1
            gamma = max_min_size_cached(cache, delta)
            subgraphs = extract_partition(
                cache, -1, delta, gamma, self.config.postorder_numbering,
                check=False,
            )
            reverse = join._reverse
            mode = reverse.postorder_filter
            off = mode is PostorderFilter.OFF
            strict = self.config.semantics is MatchSemantics.PAPER
            caches = join._caches
            for s in subgraphs:
                half = 0 if off else postorder_half_width(mode, tau, s.rank)
                for owner, b in reverse.anchors(
                    s.twig_key, s.postorder_id, half, lo_size, hi_size
                ):
                    if owner in candidates:
                        continue
                    if s.matches_at_number(caches[owner], b, strict):
                        candidates.add(owner)
        else:
            collection = join.collection
            sizes = collection.sizes
            order = collection.order
            for position in range(
                bisect_left(sizes, lo_size), bisect_right(sizes, hi_size)
            ):
                candidates.add(order[position])
