"""`StreamingJoin`: the incremental similarity-join engine.

Where :func:`repro.core.join.partsj_join` consumes a complete collection,
``StreamingJoin`` consumes trees **one at a time** (or in micro-batches)
and yields verified ``(i, j, distance)`` pairs as they are found.  The
contract — property-tested in ``tests/stream/`` — is *flush-point
equivalence*: after any prefix of arrivals (and a :meth:`flush`),
:meth:`results` equals a batch ``similarity_join`` over exactly that
prefix, bit for bit, for **any arrival order**.

One arrival runs three steps:

1. **Coherent in-place insertion** —
   :meth:`repro.baselines.common.SizeSortedCollection.insert` splices the
   tree into the live sorted order, sizes and size histogram (no rebuild,
   no re-sort), bumping the collection ``version`` that the shard
   re-planner keys on.
2. **Bidirectional probe** — the shared
   :meth:`repro.core.join.ShardDriver.ingest` entry point probes the tree
   *forward* against the two-layer index (partners of size ``<= |T|``,
   plus the small-tree pool) and partitions/files it; the partition
   subgraphs then probe the *reverse* node-twig index
   (:class:`repro.stream.reverse.NodeTwigIndex`) for already-ingested
   **larger** partners — the pairs a batch run would have discovered
   later, when the larger tree probed.  The union reproduces the batch
   candidate set exactly (same filters, same windows, same structural
   match), so even the strict ``paper`` filter variants stream
   identically to their batch behavior.
3. **Verification** — candidates run the threshold-aware
   :class:`~repro.baselines.common.Verifier` inline (``workers == 1``) or
   are handed to the background verification pool
   (:class:`repro.parallel.verify_pool.StreamVerifyPool`), whose
   completed pairs are collected opportunistically on later arrivals and
   exhaustively by :meth:`flush`.

The engine keeps every ingested tree's :class:`~repro.core.treecache.TreeCache`
so reverse anchors can be structurally matched at any time; together with
the node-twig registrations this is the warm-index state that
:meth:`searcher` exposes for mid-ingest ``similarity_search`` queries
(no rebuild — the searcher is a live view).  Memory therefore grows with
the ingested prefix; the spill-to-disk inverted size index is the
ROADMAP follow-up.
"""

from __future__ import annotations

import time
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.baselines.common import JoinPair, SizeSortedCollection, Verifier
from repro.core.index import PostorderFilter, postorder_half_width
from repro.core.join import PartSJConfig, ShardDriver
from repro.core.subgraph import MatchSemantics
from repro.core.treecache import TreeCache
from repro.errors import InvalidParameterError
from repro.obs.trace import NULL_TRACER
from repro.parallel.sharding import ShardPlan, ShardPlanner
from repro.params import check_tau, check_workers
from repro.stream.reverse import NodeTwigIndex
from repro.tree.node import Tree

__all__ = ["StreamStats", "StreamingJoin"]


@dataclass
class StreamStats:
    """A snapshot of the streaming engine's state and counters.

    ``ingest_time`` is wall time spent inside :meth:`StreamingJoin.add`
    — candidate generation plus verification dispatch, so with
    ``workers == 1`` it *includes* the inline ``verify_time`` (the two
    overlap; they are not additive).  ``pending_verification`` is the
    number of candidate pairs submitted to the background pool whose
    outcome has not been collected yet (always ``0`` with
    ``workers == 1`` or right after a flush).
    """

    trees: int = 0
    results: int = 0
    candidates: int = 0
    reverse_candidates: int = 0
    pending_verification: int = 0
    ingest_time: float = 0.0
    verify_time: float = 0.0
    index_subgraphs: int = 0
    index_entries: int = 0
    reverse_nodes: int = 0
    small_pool: int = 0
    workers: int = 1
    # Failure-semantics counters: malformed ingest items skipped under
    # on_error="skip" (the quarantine channel of the service and the CLI
    # --stream path); poison *pairs* quarantined by the background verify
    # pool appear under extra["quarantined_pairs"].
    quarantined_trees: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def ingest_rate(self) -> float:
        """Trees ingested per second of ingest wall time."""
        return self.trees / self.ingest_time if self.ingest_time > 0 else 0.0

    def as_dict(self) -> dict:
        """JSON-ready snapshot (the CLI's ``--stream --json`` payload)."""
        return {
            "trees": self.trees,
            "results": self.results,
            "candidates": self.candidates,
            "reverse_candidates": self.reverse_candidates,
            "pending_verification": self.pending_verification,
            "ingest_time": round(self.ingest_time, 6),
            "verify_time": round(self.verify_time, 6),
            "ingest_rate": round(self.ingest_rate, 3),
            "index_subgraphs": self.index_subgraphs,
            "index_entries": self.index_entries,
            "reverse_nodes": self.reverse_nodes,
            "small_pool": self.small_pool,
            "workers": self.workers,
            "quarantined_trees": self.quarantined_trees,
            "extra": self.extra,
        }


class StreamingJoin:
    """Incremental tree similarity self-join over a stream of arrivals.

    Parameters
    ----------
    tau:
        The TED threshold.
    config:
        PartSJ filter configuration (defaults to the provably-exact one).
        Its ``workers`` field is an execution knob and is overridden by
        the explicit ``workers`` argument when given.
    workers:
        ``1`` (default) verifies candidates inline; ``> 1`` runs them
        through the background verification pool — results are identical,
        but arrive asynchronously (collected on later :meth:`add` calls
        and by :meth:`flush`).
    wal:
        Optional path of a write-ahead log.  Every arrival is appended
        (per-record CRC32) *before* it mutates engine state, so a
        crashed stream resumes via :meth:`recover` with state
        bit-identical to a batch join over the logged prefix.  An
        existing file at this path is truncated — a fresh engine is a
        fresh stream; continuing an old log is :meth:`recover`'s job.
    wal_fsync:
        Durability policy of the log: ``"always"`` fsyncs every arrival
        before ``add`` returns, ``"batch"`` (default) fsyncs at flush
        points (:meth:`flush` / :meth:`close`), ``"never"`` leaves it to
        the OS.  See :mod:`repro.persist.wal`.
    tracer:
        Optional :class:`repro.obs.Tracer`.  When enabled it records a
        ``wal.append`` span per logged arrival, a ``stream.flush`` span
        per flush, and the background pool's relayed per-chunk
        ``verify.stream_chunk`` spans.  Tracing never changes pairs,
        distances, or any :class:`StreamStats` field.

    Usage::

        join = StreamingJoin(tau=2)
        for tree in arriving_trees:
            for pair in join.add(tree):
                ...            # verified (i, j, distance), i < j
        join.flush()
        join.results()         # == similarity_join(arrived_trees, 2).pairs

    Tree indices in result pairs are **arrival positions** (0-based), so
    they match a batch join over the arrival-ordered prefix.
    """

    def __init__(
        self,
        tau: int,
        config: Optional[PartSJConfig] = None,
        workers: Optional[int] = None,
        wal: Optional[str] = None,
        wal_fsync: str = "batch",
        tracer=None,
    ):
        check_tau(tau)
        self._tracer = tracer if tracer is not None else NULL_TRACER
        cfg = (config or PartSJConfig()).resolved()
        if workers is not None:
            cfg = replace(cfg, workers=check_workers(workers))
        self.tau = tau
        self.config = cfg
        self.workers = cfg.workers
        self.trees: list[Tree] = []
        self.collection = SizeSortedCollection(self.trees)
        # Serial driver config: the driver is the in-process probe/insert
        # engine either way; workers only parallelize verification.
        self._driver = ShardDriver(self.trees, tau, replace(cfg, workers=1))
        self._verifier = Verifier(self.trees, tau, backend=cfg.backend)
        self._reverse = NodeTwigIndex(tau, self._driver.index.postorder_filter)
        self._caches: dict[int, TreeCache] = {}
        self._planner = ShardPlanner(self.collection, tau)
        self._pairs: list[JoinPair] = []
        self._pool = None
        self._pool_stats: dict = {}
        self._candidates = 0
        self._reverse_candidates = 0
        self._ingest_time = 0.0
        self._quarantined_trees = 0
        self._quarantine_log: list[dict] = []
        self._min_size = self._driver.min_size
        self._strict = cfg.semantics is MatchSemantics.PAPER
        self._closed = False
        self._recovered: Optional[dict] = None
        self._wal = None
        if wal is not None:
            from repro.persist.wal import StreamWAL

            # A fresh engine means a fresh stream: arrival indices start
            # at 0, so an existing log is truncated, not appended to
            # (continuing an old log is recover()'s job).
            self._wal = StreamWAL.create(
                wal, tau, cfg, fsync=wal_fsync, tracer=self._tracer
            )

    # -- ingestion -----------------------------------------------------------

    def add(self, tree: Tree) -> list[JoinPair]:
        """Ingest one tree; return pairs verified during this call.

        With ``workers == 1`` the returned pairs are exactly the new
        tree's results against the ingested prefix.  With a background
        pool they are whatever submissions completed by now (possibly
        involving earlier arrivals); :meth:`flush` collects the rest.
        """
        if self._closed:
            raise InvalidParameterError("StreamingJoin is closed")
        if not isinstance(tree, Tree):
            raise InvalidParameterError(
                f"add expects a Tree, got {type(tree).__name__}"
            )
        start = time.perf_counter()
        if self._wal is not None:
            # Write-ahead: log the arrival before any engine state
            # changes.  A crash after the append replays this tree on
            # recovery; a crash before it loses the tree but leaves the
            # log describing exactly the applied prefix — either way the
            # recovered state is batch-equivalent over the logged trees.
            from repro.tree.bracket import to_bracket

            with self._tracer.span("wal.append", arrival=len(self.trees)):
                self._wal.append(to_bracket(tree))
        i = self.collection.insert(tree)
        candidates, subgraphs = self._driver.ingest(i)
        if subgraphs is not None:
            cache = subgraphs[0].cache
            self._caches[i] = cache
            self._reverse.insert_tree(cache, i, self._driver.numbering)
            self._reverse_probe(i, tree.size, subgraphs, candidates)
        else:
            self._small_reverse_scan(i, tree.size, candidates)
        self._candidates += len(candidates)
        found = self._dispatch(i, candidates)
        self._ingest_time += time.perf_counter() - start
        return found

    def add_many(self, trees: Iterable[Tree]) -> list[JoinPair]:
        """Ingest a micro-batch; returns all pairs verified along the way."""
        found: list[JoinPair] = []
        for tree in trees:
            found.extend(self.add(tree))
        return found

    def record_quarantine(self, error, source=None) -> None:
        """Count one malformed ingest item skipped under ``on_error="skip"``.

        The quarantine channel of the streaming ingest paths: the service
        and the CLI call this for every item they drop, so the loss is
        visible in :attr:`StreamStats.quarantined_trees` (a bounded tail
        of the errors is kept in ``stats().extra["quarantine_log"]``).
        """
        self._quarantined_trees += 1
        if len(self._quarantine_log) < 32:
            entry = {"error": str(error)}
            if source is not None:
                entry["source"] = source
            self._quarantine_log.append(entry)

    def _reverse_probe(
        self, i: int, n: int, subgraphs: list, candidates: list[int]
    ) -> None:
        """Find already-ingested partners *larger* than tree ``i``.

        Mirrors the forward probe's dedup discipline: a pair enters
        ``checked`` only when a structural match succeeds, so the
        streamed candidate set matches the batch run's exactly.
        """
        tau = self.tau
        lo_size = n + 1
        hi_size = n + tau
        if lo_size > hi_size:
            return
        mode = self._reverse.postorder_filter
        off = mode is PostorderFilter.OFF
        checked = self._driver.checked
        caches = self._caches
        strict = self._strict
        before = len(candidates)
        for s in subgraphs:
            half = 0 if off else postorder_half_width(mode, tau, s.rank)
            for owner, b in self._reverse.anchors(
                s.twig_key, s.postorder_id, half, lo_size, hi_size
            ):
                key = (owner, i) if owner < i else (i, owner)
                if key in checked:
                    continue
                if s.matches_at_number(caches[owner], b, strict):
                    checked.add(key)
                    candidates.append(owner)
        self._reverse_candidates += len(candidates) - before

    def _small_reverse_scan(self, i: int, n: int, candidates: list[int]) -> None:
        """Larger partners of a small (unpartitionable) arrival, directly.

        In a batch run every later tree within the size window consults
        the small pool when it probes; a small tree arriving *after* its
        larger partners must pair with them here instead.  All such
        partners have at most ``n + tau < 3*tau + 1`` nodes, so the
        unfiltered scan is as cheap as the pool scan it mirrors.
        """
        tau = self.tau
        lo_size = n + 1
        hi_size = n + tau
        if lo_size > hi_size:
            return
        sizes = self.collection.sizes
        order = self.collection.order
        checked = self._driver.checked
        before = len(candidates)
        for position in range(
            bisect_left(sizes, lo_size), bisect_right(sizes, hi_size)
        ):
            j = order[position]
            if j == i:
                continue
            key = (j, i) if j < i else (i, j)
            if key not in checked:
                checked.add(key)
                candidates.append(j)
        self._reverse_candidates += len(candidates) - before

    # -- verification --------------------------------------------------------

    def _dispatch(self, i: int, candidates: list[int]) -> list[JoinPair]:
        if self.workers <= 1:
            found: list[JoinPair] = []
            for j in candidates:
                distance = self._verifier.verify(i, j)
                if distance is not None:
                    lo, hi = (i, j) if i < j else (j, i)
                    found.append(JoinPair(lo, hi, distance))
            self._pairs.extend(found)
            return found
        pool = self._ensure_pool()
        if candidates:
            pool.submit([(i, j) for j in candidates], self.trees)
        found = [JoinPair(*triple) for triple in pool.poll()]
        self._pairs.extend(found)
        return found

    def _ensure_pool(self):
        if self._pool is None:
            from repro.parallel.verify_pool import StreamVerifyPool

            self._pool = StreamVerifyPool(
                self.tau,
                self.workers,
                options={"backend": self.config.backend},
                policy=self.config.retry,
                injector=self.config.fault_injector,
                tracer=self._tracer,
            )
        return self._pool

    def flush(self) -> list[JoinPair]:
        """Drain all pending verification work; return the pairs it found.

        After a flush, :meth:`results` is complete for the ingested
        prefix — the streaming flush point the batch-equivalence property
        is stated at.  A no-op (empty list) with inline verification.
        With a WAL attached, a flush is also a durability point: under
        the ``"batch"`` fsync policy the logged prefix is synced here.
        """
        with self._tracer.span(
            "stream.flush",
            pending=self._pool.pending if self._pool else 0,
        ) as sp:
            if self._wal is not None:
                self._wal.sync()
            if self._pool is None:
                return []
            found = [JoinPair(*triple) for triple in self._pool.drain()]
            self._pairs.extend(found)
            sp.set("found", len(found))
        return found

    # -- results and introspection -------------------------------------------

    @property
    def pairs(self) -> list[JoinPair]:
        """Verified pairs in discovery order (no pending-work drain)."""
        return self._pairs

    def results(self) -> list[JoinPair]:
        """All verified pairs so far, in the batch join's canonical order.

        Call :meth:`flush` first when a background pool is active;
        otherwise pairs still in flight are not included.
        """
        return sorted(self._pairs, key=lambda p: p.key())

    def __len__(self) -> int:
        return len(self.trees)

    def searcher(self):
        """A live ``similarity_search`` view over the warm index.

        Returns a :class:`repro.stream.searcher.StreamSearcher` bound to
        this engine's index, interner, small pool and reverse index —
        nothing is copied or rebuilt, so queries interleave freely with
        ingestion and always see exactly the ingested prefix.
        """
        from repro.stream.searcher import StreamSearcher

        return StreamSearcher(self)

    def shard_plan(self, workers: int) -> list[ShardPlan]:
        """A batch shard plan over the current prefix (re-planned lazily).

        The re-plan hook of the sharded executor: plans are cached per
        ``workers`` count and recomputed only when the collection has
        grown since (tracked through ``collection.version``), so shard
        boundaries refresh as the size histogram grows without paying a
        planning pass per arrival.
        """
        return self._planner.plan(workers)

    def stats(self) -> StreamStats:
        """Counter snapshot; see :class:`StreamStats`."""
        driver = self._driver
        verify_time = self._verifier.stats_time
        ted_calls = self._verifier.stats_ted_calls
        extra = dict(driver.counters.as_dict())
        extra.update(self._verifier.extra_stats())
        if self._pool is not None:
            pool_stats = self._pool.stats()
            verify_time += pool_stats.pop("verify_time", 0.0)
            ted_calls += pool_stats.pop("ted_calls", 0)
            for key in ("lb_filtered", "ub_accepted", "ted_early_exits"):
                extra[key] = extra.get(key, 0) + pool_stats.pop(key, 0)
            extra.update(pool_stats)
        extra["ted_calls"] = ted_calls
        extra["backend"] = self._driver.backend
        if self._quarantine_log:
            extra["quarantine_log"] = list(self._quarantine_log)
        if self._wal is not None or self._recovered is not None:
            wal_info = self._wal.describe() if self._wal is not None else {}
            if self._recovered is not None:
                wal_info["recovered"] = dict(self._recovered)
            extra["wal"] = wal_info
        return StreamStats(
            trees=len(self.trees),
            results=len(self._pairs),
            candidates=self._candidates,
            reverse_candidates=self._reverse_candidates,
            pending_verification=self._pool.pending if self._pool else 0,
            ingest_time=self._ingest_time,
            verify_time=verify_time,
            index_subgraphs=driver.index.total_subgraphs,
            index_entries=driver.index.total_entries,
            reverse_nodes=self._reverse.node_count,
            small_pool=len(driver.small_pool),
            workers=self.workers,
            quarantined_trees=self._quarantined_trees,
            extra=extra,
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drain pending work, sync and close the WAL, release the
        background pool (idempotent)."""
        if self._closed:
            return
        try:
            self.flush()
        finally:
            if self._pool is not None:
                self._pool.close()
                self._pool = None
            if self._wal is not None:
                self._wal.close()
            self._closed = True

    # -- recovery ------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        path,
        workers: Optional[int] = None,
        fsync: str = "batch",
        resume: bool = True,
        tracer=None,
    ) -> "StreamingJoin":
        """Rebuild an engine from a write-ahead log after a crash.

        Reads the log (tolerating a torn final record — the one kind of
        damage a crash mid-append can cause), then replays every logged
        arrival through the normal ingest path, so the returned engine's
        state — trees, sorted order, indexes, verified pairs — is
        **bit-identical to a batch join over the logged prefix**.  With
        ``resume=True`` (default) the log's torn tail is truncated away
        and the engine keeps appending to it, so ingestion continues
        where the crashed process left off.

        ``tau`` and the filter config come from the log header, not from
        arguments — a WAL only replays correctly under the config it was
        written with.  ``workers`` is an execution knob and may differ.

        Raises
        ------
        SnapshotFormatError
            Not a WAL, or an unreadable/unsupported header.
        WALCorruptError
            Damage *before* the final record (salvage stats attached):
            replaying past a mid-log hole would silently drop arrivals.
        """
        from repro.persist.wal import StreamWAL, scan_wal
        from repro.tree.bracket import parse_bracket

        resolved_tracer = tracer if tracer is not None else NULL_TRACER
        with resolved_tracer.span("wal.recover", path=str(path)) as sp:
            scanned = scan_wal(path)
            header = scanned["header"]
            config = PartSJConfig(**header["config"]).resolved()
            engine = cls(
                header["tau"], config=config, workers=workers, tracer=tracer
            )
            for bracket in scanned["brackets"]:
                engine.add(parse_bracket(bracket))
            engine.flush()
            salvage = scanned["salvage"]
            sp.set("records", salvage["records"])
            engine._recovered = {"path": str(path), **salvage}
            if resume:
                engine._wal = StreamWAL.reopen(
                    path, salvage["good_bytes"], salvage["records"],
                    fsync=fsync, tracer=resolved_tracer,
                )
        return engine

    def __enter__(self) -> "StreamingJoin":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
