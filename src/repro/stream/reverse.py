"""The reverse node-twig index: probing *backwards in time*, forwards in size.

The batch join's two-layer index answers "which stored *subgraphs* could
match this probing *node*?" — sound because Algorithm 1 feeds trees in
ascending size order, so the prober is always the size-wise larger side
and every potential partner is already partitioned and filed.

A streaming join cannot rely on that order: a tree ``T`` may arrive
*after* larger trees it is similar to.  For those pairs Lemma 2 assigns
the roles the other way around — ``T`` (the smaller side) is the
partitioned one, the earlier-ingested larger tree ``U`` is the prober —
but ``U`` already ran its probe phase before ``T`` existed.
:class:`NodeTwigIndex` answers the mirrored question, "which ingested
*nodes* would have probed this *subgraph*?":

- On ingest, every partitioned tree registers each of its nodes under the
  node's at-most-four packed *search keys* (the epsilon-collapsed twig
  variants of :func:`repro.core.intern.search_keys` — exactly the keys
  that node would probe the forward index with), bucketed by tree size
  and lazily sorted by the node's postorder number, mirroring
  :class:`repro.core.index.TwoLayerIndex`'s bucket discipline.
- On arrival of ``T``, each subgraph ``s`` of ``T``'s partition looks up
  its own ``twig_key`` — by construction the set of registered
  ``(tree, node)`` anchors under that key at size ``|U|`` within the
  postorder window ``|p_node - p_s| <= Delta'(s)`` is *identical* to the
  set of probes that would have hit ``s`` had ``T`` been indexed before
  ``U`` probed.  The caller then runs the very same structural match
  (:meth:`repro.core.subgraph.Subgraph.matches_at_number`, with the
  ingested tree's retained :class:`~repro.core.treecache.TreeCache` as
  the prober), so the streamed candidate set for these pairs is equal to
  the batch join's — not merely a superset — under every filter
  configuration, including the strict ``paper`` variants.

Only partitionable trees (size ``>= 2*tau + 1``) register nodes: a
reverse probe targets sizes strictly above the arriving tree's (which is
itself ``>= 2*tau + 1`` when it has subgraphs to probe with), and
small-tree partners are handled by the engine's direct small-pool scan.

The same structure powers the warm searcher's upper side
(:class:`repro.stream.searcher.StreamSearcher`): a query smaller than a
collection tree is partitioned and reverse-probed instead of falling
back to verify-everything-larger as the batch searcher does.

Memory: four entries per node per ingested tree, plus the retained tree
caches held by the engine — the price of serving any arrival order from
RAM.  The spill-to-disk inverted size index tracked in ROADMAP.md is the
follow-up for collections that outgrow it.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from operator import itemgetter
from typing import Iterator

from repro.core.index import PostorderFilter
from repro.core.intern import search_keys
from repro.core.treecache import TreeCache

__all__ = ["NodeTwigIndex"]

_entry_postorder = itemgetter(0)


class _NodeBucket:
    """Registered nodes of one tree size sharing one packed search key.

    ``entries`` holds ``(postorder, node_number, owner)`` triples;
    ``posts`` mirrors the postorder numbers for bisection.  Inserts
    append and mark the bucket dirty; the sort happens lazily on the
    next reverse probe — the same amortized discipline as the forward
    index's ``_TwigBucket``.
    """

    __slots__ = ("entries", "posts", "dirty")

    def __init__(self) -> None:
        self.entries: list[tuple[int, int, int]] = []
        self.posts: list[int] = []
        self.dirty = False

    def _ensure_sorted(self) -> None:
        self.entries.sort(key=_entry_postorder)
        self.posts = [entry[0] for entry in self.entries]
        self.dirty = False


class NodeTwigIndex:
    """Nodes of ingested trees filed under their packed probe search keys.

    The mirror image of :class:`repro.core.index.InvertedSizeIndex` (see
    the module docstring): ``merged`` maps ``search_key -> {tree_size:
    bucket}``, sharing the forward index's merged-view shape so a
    subgraph lookup over the ``tau``-wide size band costs one dictionary
    probe per absent key.
    """

    __slots__ = ("tau", "postorder_filter", "merged", "tree_count", "node_count")

    def __init__(self, tau: int, postorder_filter: PostorderFilter | str = "safe"):
        self.tau = tau
        self.postorder_filter = PostorderFilter.coerce(postorder_filter)
        self.merged: dict[int, dict[int, _NodeBucket]] = {}
        self.tree_count = 0
        self.node_count = 0

    def insert_tree(self, cache: TreeCache, owner: int, numbering: str) -> None:
        """Register every node of ``owner``'s tree under its search keys.

        ``cache`` must be the tree's probe-side :class:`TreeCache` (the
        one the engine retains for structural matching) and ``numbering``
        the join's configured postorder numbering, so the registered
        positions agree with the forward probe's.
        """
        n = cache.size
        labels = cache.labels
        left = cache.left
        right = cache.right
        positions = cache.general_post if numbering == "general" else range(n + 1)
        merged = self.merged
        for b in range(1, n + 1):
            p = positions[b]
            child = left[b]
            ll = labels[child] if child else 0
            child = right[b]
            rl = labels[child] if child else 0
            # The same epsilon-collapsed key set the forward probe builds;
            # registration runs once per node per tree (not once per node
            # per probed size like the join's hot loop), so the shared
            # helper is used instead of a third inlined copy.
            for key in search_keys(labels[b], ll, rl):
                by_size = merged.get(key)
                if by_size is None:
                    by_size = merged[key] = {}
                bucket = by_size.get(n)
                if bucket is None:
                    bucket = by_size[n] = _NodeBucket()
                bucket.entries.append((p, b, owner))
                bucket.dirty = True
        self.tree_count += 1
        self.node_count += n

    def anchors(
        self,
        twig_key: int,
        postorder_id: int,
        half: int,
        lo_size: int,
        hi_size: int,
    ) -> Iterator[tuple[int, int]]:
        """Yield ``(owner, node_number)`` anchors for one subgraph lookup.

        Anchors are registered nodes of trees with size in ``[lo_size,
        hi_size]`` whose search-key set contains ``twig_key`` and whose
        postorder number lies within ``half`` of ``postorder_id`` (the
        window is skipped entirely when the layer is ``OFF``) — exactly
        the probes that would have hit this subgraph in a batch run.
        """
        by_size = self.merged.get(twig_key)
        if by_size is None:
            return
        off = self.postorder_filter is PostorderFilter.OFF
        lo = postorder_id - half
        hi = postorder_id + half
        for size in range(lo_size, hi_size + 1):
            bucket = by_size.get(size)
            if bucket is None:
                continue
            entries = bucket.entries
            if off:
                for _, b, owner in entries:
                    yield owner, b
                continue
            if bucket.dirty:
                bucket._ensure_sorted()
            posts = bucket.posts
            start = bisect_left(posts, lo)
            stop = bisect_right(posts, hi, start)
            for k in range(start, stop):
                entry = entries[k]
                yield entry[2], entry[1]
