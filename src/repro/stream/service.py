"""Asyncio front end: concurrent ingest + search over one warm index.

:class:`StreamJoinService` wraps a :class:`~repro.stream.engine.StreamingJoin`
for the search-as-a-service scenario: many coroutines — ingest producers,
search clients, result subscribers — multiplex over one engine and one
warm index.  The CPU-bound engine calls run in worker threads
(``asyncio.to_thread``) so the event loop stays responsive, and a single
``asyncio.Lock`` serializes them: the engine's structures are
single-writer (lazily sorted buckets, shared interner), and with the
GIL-bound workload a reader/writer split would buy nothing while
complicating the coherence story.  Fairness is the lock's FIFO ordering —
a search submitted between two ingests sees exactly the first ingest's
prefix.

Result pairs fan out to subscribers as they are verified:
:meth:`subscribe` returns an async iterator fed by an unbounded queue per
subscriber (slow consumers buffer, they never stall ingestion), closed by
:meth:`close`.

Usage::

    async with StreamJoinService(tau=2) as service:
        asyncio.create_task(producer(service))   # service.ingest(tree)
        hits = await service.search(query)       # mid-ingest, warm index
        async for pair in service.subscribe():   # verified (i, j, distance)
            ...
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Iterable, Optional

from repro.baselines.common import JoinPair
from repro.core.join import PartSJConfig
from repro.search import SearchHit
from repro.stream.engine import StreamingJoin, StreamStats
from repro.tree.node import Tree

__all__ = ["StreamJoinService"]

_CLOSED = object()  # queue sentinel ending every subscription


class StreamJoinService:
    """Concurrent ingest / search / subscribe over one streaming join."""

    def __init__(
        self,
        tau: int,
        config: Optional[PartSJConfig] = None,
        workers: Optional[int] = None,
    ):
        self._join = StreamingJoin(tau, config=config, workers=workers)
        self._lock = asyncio.Lock()
        self._subscribers: list[asyncio.Queue] = []
        self._closed = False

    @property
    def join(self) -> StreamingJoin:
        """The underlying engine (read-only introspection; use the async
        methods for anything that runs engine code)."""
        return self._join

    def _publish(self, pairs: list[JoinPair]) -> None:
        for queue in self._subscribers:
            for pair in pairs:
                queue.put_nowait(pair)

    async def ingest(self, tree: Tree) -> list[JoinPair]:
        """Ingest one tree; returns (and publishes) pairs verified now."""
        async with self._lock:
            pairs = await asyncio.to_thread(self._join.add, tree)
        self._publish(pairs)
        return pairs

    async def ingest_many(self, trees: Iterable[Tree]) -> list[JoinPair]:
        """Ingest a micro-batch under one lock hold."""
        async with self._lock:
            pairs = await asyncio.to_thread(self._join.add_many, list(trees))
        self._publish(pairs)
        return pairs

    async def search(self, query: Tree) -> list[SearchHit]:
        """``similarity_search`` against the warm index, mid-ingest."""
        async with self._lock:
            searcher = self._join.searcher()
            return await asyncio.to_thread(searcher.search, query)

    async def flush(self) -> list[JoinPair]:
        """Drain background verification; returns (and publishes) the rest."""
        async with self._lock:
            pairs = await asyncio.to_thread(self._join.flush)
        self._publish(pairs)
        return pairs

    async def results(self) -> list[JoinPair]:
        """All verified pairs so far, canonical order (flush first for
        prefix-exactness when a background pool is active)."""
        async with self._lock:
            return self._join.results()

    async def stats(self) -> StreamStats:
        async with self._lock:
            return self._join.stats()

    def subscribe(self) -> AsyncIterator[JoinPair]:
        """Async iterator over verified pairs from this moment on.

        Subscribing to an already-closed service yields nothing and ends
        immediately (it never blocks).
        """
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(queue)
        if self._closed:
            queue.put_nowait(_CLOSED)

        async def _iterate() -> AsyncIterator[JoinPair]:
            try:
                while True:
                    item = await queue.get()
                    if item is _CLOSED:
                        return
                    yield item
            finally:
                if queue in self._subscribers:
                    self._subscribers.remove(queue)

        return _iterate()

    async def close(self) -> None:
        """Flush, release the engine, and end every subscription."""
        if self._closed:
            return
        self._closed = True
        async with self._lock:
            pairs = await asyncio.to_thread(self._join.flush)
            await asyncio.to_thread(self._join.close)
        self._publish(pairs)
        for queue in self._subscribers:
            queue.put_nowait(_CLOSED)

    async def __aenter__(self) -> "StreamJoinService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
