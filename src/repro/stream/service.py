"""Asyncio front end: concurrent ingest + search over one warm index.

:class:`StreamJoinService` wraps a :class:`~repro.stream.engine.StreamingJoin`
for the search-as-a-service scenario: many coroutines — ingest producers,
search clients, result subscribers — multiplex over one engine and one
warm index.  The CPU-bound engine calls run in worker threads
(``asyncio.to_thread``) so the event loop stays responsive, and a single
``asyncio.Lock`` serializes them: the engine's structures are
single-writer (lazily sorted buckets, shared interner), and with the
GIL-bound workload a reader/writer split would buy nothing while
complicating the coherence story.  Fairness is the lock's FIFO ordering —
a search submitted between two ingests sees exactly the first ingest's
prefix.

Result pairs fan out to subscribers as they are verified.
:meth:`subscribe` returns an async iterator fed by a per-subscriber
queue, **bounded** on request: ``subscribe(maxsize=N, overflow=...)``
with overflow policy ``"block"`` (backpressure: publishing awaits until
the subscriber consumes) or ``"drop_oldest"`` (the oldest buffered pair
is discarded and counted in the subscription's ``dropped`` counter — a
slow consumer costs bounded memory, never stalls ingestion, and can see
exactly what it missed).  Subscriptions end at :meth:`close`.

Failure semantics
-----------------
- ``ingest``/``ingest_many`` accept ``Tree`` objects or bracket strings;
  a malformed item raises :class:`~repro.errors.IngestError` with
  ``on_error="fail"`` (the constructor default) or is *quarantined* —
  dropped, counted in ``StreamStats.quarantined_trees`` — with
  ``on_error="skip"``.
- ``ingest``/``search``/``flush`` after :meth:`close` raise a clear
  :class:`~repro.errors.ReproError` instead of operating on a closed
  engine; ``results``/``stats`` stay readable.
- :meth:`close` is idempotent and safe under concurrency: every caller
  awaits the one real shutdown, and active subscriptions always receive
  their end-of-stream sentinel (forced past a full bounded queue by
  dropping the oldest buffered item), so no subscriber hangs.

Usage::

    async with StreamJoinService(tau=2) as service:
        asyncio.create_task(producer(service))   # service.ingest(tree)
        hits = await service.search(query)       # mid-ingest, warm index
        async for pair in service.subscribe():   # verified (i, j, distance)
            ...
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Iterable, Optional, Union

from repro.baselines.common import JoinPair
from repro.core.join import PartSJConfig
from repro.errors import IngestError, InvalidParameterError, ReproError
from repro.obs.metrics import publish_stream_stats
from repro.search import SearchHit
from repro.stream.engine import StreamingJoin, StreamStats
from repro.tree.bracket import parse_bracket
from repro.tree.node import Tree

__all__ = ["StreamJoinService", "Subscription"]

_CLOSED = object()  # queue sentinel ending every subscription

_OVERFLOW_POLICIES = ("block", "drop_oldest")


class Subscription:
    """One subscriber's bounded view of the verified-pair stream.

    An async iterator (``async for pair in subscription``) over a
    per-subscriber queue.  With ``maxsize > 0`` the queue is bounded and
    ``overflow`` decides what publishing does when it is full:
    ``"block"`` awaits (backpressure on the publisher), ``"drop_oldest"``
    discards the oldest buffered pair and increments :attr:`dropped`.
    """

    def __init__(self, maxsize: int, overflow: str):
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)
        self._overflow = overflow
        self._ended = False
        self.dropped = 0

    def __aiter__(self) -> "Subscription":
        return self

    async def __anext__(self) -> JoinPair:
        if self._ended:
            raise StopAsyncIteration
        item = await self._queue.get()
        if item is _CLOSED:
            self._ended = True
            raise StopAsyncIteration
        return item

    async def _deliver(self, pair: JoinPair) -> None:
        if self._overflow == "block":
            await self._queue.put(pair)
            return
        while True:
            try:
                self._queue.put_nowait(pair)
                return
            except asyncio.QueueFull:
                try:
                    self._queue.get_nowait()
                    self.dropped += 1
                except asyncio.QueueEmpty:  # pragma: no cover - race-free loop
                    pass

    def _end(self) -> None:
        """Enqueue the end-of-stream sentinel, unconditionally.

        Even under the ``block`` policy the sentinel must land — a
        full queue sheds its oldest item instead, so :meth:`close`
        can never deadlock behind a stalled consumer.
        """
        while True:
            try:
                self._queue.put_nowait(_CLOSED)
                return
            except asyncio.QueueFull:
                try:
                    self._queue.get_nowait()
                    self.dropped += 1
                except asyncio.QueueEmpty:  # pragma: no cover
                    pass


class StreamJoinService:
    """Concurrent ingest / search / subscribe over one streaming join."""

    def __init__(
        self,
        tau: int,
        config: Optional[PartSJConfig] = None,
        workers: Optional[int] = None,
        on_error: str = "fail",
        wal: Optional[str] = None,
        wal_fsync: str = "batch",
        tracer=None,
        registry=None,
    ):
        if on_error not in ("fail", "skip"):
            raise InvalidParameterError(
                f"on_error must be 'fail' or 'skip', got {on_error!r}"
            )
        # wal / wal_fsync pass straight to the engine: arrivals are
        # logged before they mutate state, and every service flush is a
        # WAL sync point (see repro.persist.wal for the policy promises).
        # tracer is handed to the engine too (flush / WAL / pool spans);
        # registry receives the repro_stream_* metrics fan-out — every
        # stats() call and the final close() publish a snapshot into it
        # (None = the process-wide default registry).
        self._join = StreamingJoin(
            tau, config=config, workers=workers, wal=wal,
            wal_fsync=wal_fsync, tracer=tracer,
        )
        self._registry = registry
        self._lock = asyncio.Lock()
        self._subscribers: list[Subscription] = []
        self._on_error = on_error
        self._closed = False
        self._close_done: Optional[asyncio.Event] = None

    @property
    def join(self) -> StreamingJoin:
        """The underlying engine (read-only introspection; use the async
        methods for anything that runs engine code)."""
        return self._join

    def _require_open(self, operation: str) -> None:
        if self._closed:
            raise ReproError(
                f"StreamJoinService is closed; {operation}() is no longer "
                "available (results() and stats() remain readable)"
            )

    def _coerce(self, tree: Union[Tree, str]) -> Optional[Tree]:
        """Parse/validate one ingest item under the ``on_error`` policy.

        Returns ``None`` for a quarantined (skipped) item.
        """
        try:
            if isinstance(tree, str):
                return parse_bracket(tree)
            if not isinstance(tree, Tree):
                raise IngestError(
                    f"ingest expects a Tree or bracket string, got "
                    f"{type(tree).__name__}"
                )
            return tree
        except ReproError as exc:
            if self._on_error == "skip":
                self._join.record_quarantine(exc)
                return None
            if isinstance(exc, IngestError):
                raise
            raise IngestError(f"malformed ingest item: {exc}") from exc

    async def _publish(self, pairs: list[JoinPair]) -> None:
        for subscription in list(self._subscribers):
            for pair in pairs:
                await subscription._deliver(pair)

    async def ingest(self, tree: Union[Tree, str]) -> list[JoinPair]:
        """Ingest one tree (or bracket string); returns (and publishes)
        pairs verified now.  Malformed items follow the ``on_error``
        policy: ``fail`` raises :class:`~repro.errors.IngestError`,
        ``skip`` quarantines (see :class:`StreamStats`)."""
        self._require_open("ingest")
        parsed = self._coerce(tree)
        if parsed is None:
            return []
        async with self._lock:
            pairs = await asyncio.to_thread(self._join.add, parsed)
        await self._publish(pairs)
        return pairs

    async def ingest_many(
        self, trees: Iterable[Union[Tree, str]]
    ) -> list[JoinPair]:
        """Ingest a micro-batch under one lock hold (same ``on_error``
        handling as :meth:`ingest`, applied per item)."""
        self._require_open("ingest_many")
        parsed = [tree for tree in map(self._coerce, trees) if tree is not None]
        async with self._lock:
            pairs = await asyncio.to_thread(self._join.add_many, parsed)
        await self._publish(pairs)
        return pairs

    async def search(self, query: Tree) -> list[SearchHit]:
        """``similarity_search`` against the warm index, mid-ingest."""
        self._require_open("search")
        async with self._lock:
            searcher = self._join.searcher()
            return await asyncio.to_thread(searcher.search, query)

    async def flush(self) -> list[JoinPair]:
        """Drain background verification; returns (and publishes) the rest."""
        self._require_open("flush")
        async with self._lock:
            pairs = await asyncio.to_thread(self._join.flush)
        await self._publish(pairs)
        return pairs

    async def results(self) -> list[JoinPair]:
        """All verified pairs so far, canonical order (flush first for
        prefix-exactness when a background pool is active)."""
        async with self._lock:
            return self._join.results()

    async def stats(self) -> StreamStats:
        """A :class:`StreamStats` snapshot, also fanned out as metrics.

        Every call publishes the snapshot into the metrics registry
        (:func:`repro.obs.publish_stream_stats`) — scraping the service
        is ``await stats()`` then ``render_prometheus(registry)``.
        """
        async with self._lock:
            snapshot = self._join.stats()
        publish_stream_stats(snapshot, registry=self._registry)
        return snapshot

    def subscribe(
        self, maxsize: int = 0, overflow: str = "block"
    ) -> AsyncIterator[JoinPair]:
        """Async iterator over verified pairs from this moment on.

        ``maxsize == 0`` (default) buffers without bound; ``maxsize > 0``
        bounds the subscriber queue, with ``overflow`` choosing between
        ``"block"`` (publisher backpressure) and ``"drop_oldest"``
        (bounded memory for slow consumers; discarded pairs are counted
        in the returned subscription's ``dropped``).  Subscribing to an
        already-closed service yields nothing and ends immediately (it
        never blocks).
        """
        if overflow not in _OVERFLOW_POLICIES:
            raise InvalidParameterError(
                f"overflow must be one of {_OVERFLOW_POLICIES}, "
                f"got {overflow!r}"
            )
        if not isinstance(maxsize, int) or isinstance(maxsize, bool) or maxsize < 0:
            raise InvalidParameterError(
                f"maxsize must be an integer >= 0, got {maxsize!r}"
            )
        subscription = Subscription(maxsize, overflow)
        self._subscribers.append(subscription)
        if self._closed:
            subscription._end()
        return subscription

    async def close(self) -> None:
        """Flush, release the engine, and end every subscription.

        Idempotent and concurrency-safe: the first caller performs the
        shutdown, every other (and every repeat) call awaits the same
        completion.  Subscribers receive the final flushed pairs and
        then the end-of-stream sentinel.
        """
        if self._closed:
            if self._close_done is not None:
                await self._close_done.wait()
            return
        self._closed = True
        self._close_done = asyncio.Event()
        try:
            async with self._lock:
                pairs = await asyncio.to_thread(self._join.flush)
                await asyncio.to_thread(self._join.close)
            await self._publish(pairs)
            for subscription in list(self._subscribers):
                subscription._end()
            # Final metrics fan-out: the closing snapshot lands in the
            # registry even for services that never called stats().
            publish_stream_stats(self._join.stats(), registry=self._registry)
        finally:
            self._close_done.set()

    async def __aenter__(self) -> "StreamJoinService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
