"""Command line interface: ``python -m repro`` or the ``repro-trees`` script.

Subcommands
-----------
- ``generate``   — write a dataset file (synthetic or realistic simulator).
- ``stats``      — shape statistics of a dataset file, paper-style
  (``--stream`` ingests stdin incrementally and reports ingest statistics).
- ``join``       — similarity self-join(s) over a dataset file: the file
  is prepared **once** as a :class:`repro.TreeCollection` session and
  ``--tau`` may repeat, so ``join data --tau 1 --tau 2 --tau 3`` shares
  the parse/intern/cache work across all three joins (``--explain``
  prints each query's structured plan; ``--stream`` joins trees arriving
  on stdin instead, emitting pairs as they verify).
- ``search``     — similarity search in a dataset file; ``--query`` may
  repeat and all queries share one prepared session (repl-style usage:
  many queries, one preparation).

``join`` and ``search`` persist their prepared session with
``--save-index PATH`` and restore one with ``--load-index PATH`` (or
automatically from ``<input>.repro-idx``); ``join --stream`` takes
``--wal PATH`` to log arrivals crash-safely and ``--recover`` to replay
such a log; ``stats --snapshot PATH`` prints a snapshot's provenance
and checksum status.  See :mod:`repro.persist`.
- ``ted``        — tree edit distance between two bracket-notation trees.
- ``experiment`` — run one of the paper's figure reproductions.
- ``trace``      — render a JSONL trace written by ``join --trace PATH``
  as an indented span tree with durations and attributes.

Observability: ``join --trace PATH`` records a structured trace of the
run (partition / probe / index / verify spans, including per-shard spans
relayed from worker processes) and writes it as JSONL; ``stats
--metrics`` (with a dataset file or ``--stream``) emits Prometheus text
exposition instead of the human report.  See :mod:`repro.obs`.

Streaming stdin format (``join --stream`` / ``stats --stream``)
---------------------------------------------------------------
One tree per line.  With ``--format brackets`` (the default), each line
is a bracket-notation tree, e.g. ``{a{b}{c{d}}}``; blank lines and lines
starting with ``#`` are skipped.  With ``--format ndjson``, each line is
a JSON object with the bracket string under the ``"tree"`` key, e.g.
``{"tree": "{a{b}}"}`` (other keys are ignored).  Pairs are printed as
``i<TAB>j<TAB>distance`` the moment they verify, where ``i < j`` are
0-based arrival positions; ``--json`` switches to NDJSON events
(``{"pair": [i, j, distance]}`` per result, one final
``{"stats": {...}}`` line with ingest rate, index size and
pending-verification depth).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import render_figure
from repro.core.join import PartSJConfig
from repro.datasets.io import save_trees
from repro.datasets.realistic import DATASET_GENERATORS
from repro.datasets.synthetic import SyntheticParams, generate_forest
from repro.errors import (
    IngestError,
    InvalidParameterError,
    ReproError,
    TreeFormatError,
)
from repro.obs.export import (
    format_span_tree,
    read_jsonl,
    render_prometheus,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry, publish_stream_stats
from repro.obs.trace import Tracer
from repro.session import TreeCollection
from repro.ted.api import TED_ALGORITHMS, ted
from repro.tree.bracket import parse_bracket
from repro.tree.stats import collection_stats

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trees",
        description=(
            "Tree similarity joins (reproduction of Tang et al., VLDB 2015)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser("generate", help="generate a dataset file")
    gen.add_argument("--dataset", default="synthetic",
                     choices=["synthetic", *sorted(DATASET_GENERATORS)])
    gen.add_argument("--count", type=int, default=1000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output path (.gz supported)")
    gen.add_argument("--fanout", type=int, default=3, help="synthetic: max fanout")
    gen.add_argument("--depth", type=int, default=5, help="synthetic: max depth")
    gen.add_argument("--labels", type=int, default=20, help="synthetic: label count")
    gen.add_argument("--size", type=int, default=80, help="synthetic: avg tree size")
    gen.add_argument("--decay", type=float, default=0.05, help="synthetic: Dz")

    stats = commands.add_parser("stats", help="dataset shape statistics")
    stats.add_argument("input", nargs="?", default=None,
                       help="dataset file (omit with --stream)")
    stats.add_argument("--stream", action="store_true",
                       help="ingest trees from stdin incrementally and report "
                            "ingest rate / index size (see the module help "
                            "for the line format)")
    stats.add_argument("--tau", type=int, default=1,
                       help="streaming: threshold the incremental index is "
                            "built for (default 1)")
    stats.add_argument("--format", default="brackets",
                       choices=["brackets", "ndjson"],
                       help="streaming: stdin line format")
    stats.add_argument("--snapshot", metavar="PATH", default=None,
                       help="inspect a session snapshot instead: print its "
                            "format/library versions, sections and per-"
                            "section CRC status (exit 2 if any checksum "
                            "fails)")
    stats.add_argument("--metrics", action="store_true",
                       help="emit the statistics as Prometheus text "
                            "exposition (version 0.0.4) instead of the "
                            "human-readable report")

    join = commands.add_parser(
        "join", help="similarity self-join",
        description="Similarity self-join of a dataset file, or — with "
                    "--stream — of trees arriving on stdin: one bracket "
                    "tree per line (--format brackets, default) or one "
                    'JSON object {"tree": "<bracket>"} per line '
                    "(--format ndjson).  Streamed result pairs are "
                    "emitted as soon as they verify.",
    )
    join.add_argument("input", nargs="?", default=None,
                      help="dataset file (omit with --stream)")
    join.add_argument("--tau", type=int, required=True, action="append",
                      help="TED threshold; repeatable — all thresholds "
                           "share one prepared collection session")
    join.add_argument("--stream", action="store_true",
                      help="read trees from stdin incrementally, emitting "
                           "pairs as they verify (partsj only)")
    join.add_argument("--format", default="brackets",
                      choices=["brackets", "ndjson"],
                      help="streaming: stdin line format")
    join.add_argument("--micro-batch", type=int, default=1,
                      help="streaming: trees ingested between flush points")
    join.add_argument("--on-error", default="fail", choices=["fail", "skip"],
                      help="streaming: malformed stdin lines abort the join "
                           "with the offending line number (fail, default) "
                           "or are quarantined — skipped, counted in the "
                           "final stats, reported as events (skip)")
    join.add_argument("--method", default="partsj",
                      choices=["partsj", "str", "set", "histogram", "nested_loop"])
    join.add_argument("--semantics", default="safe", choices=["safe", "paper"],
                      help="partsj: matching semantics")
    join.add_argument("--postorder-filter", default="safe",
                      choices=["safe", "paper", "off"],
                      help="partsj: postorder window variant")
    join.add_argument("--backend", default="auto",
                      choices=["auto", "python", "numpy"],
                      help="kernel backend: numpy-vectorized probe and "
                           "verification kernels or the pure-python "
                           "reference (identical results either way; auto "
                           "picks numpy when it is importable)")
    join.add_argument("--pairs", action="store_true",
                      help="print every result pair (default: stats only)")
    join.add_argument("--json", action="store_true", help="machine-readable output")
    join.add_argument("--explain", action="store_true",
                      help="print each query's structured plan (method, "
                           "filter config, shard plan, index stats) before "
                           "running it")
    join.add_argument("--workers", type=int, default=1,
                      help="worker processes (1 = serial; results identical; "
                           "per-shard timings appear under extra.shards in "
                           "--json output)")
    join.add_argument("--save-index", metavar="PATH", default=None,
                      help="after the join(s), save the prepared session as "
                           "a checksummed snapshot sidecar (trees stay in "
                           "the dataset file; the sidecar records its "
                           "digest, so a changed dataset is detected)")
    join.add_argument("--load-index", metavar="PATH", default=None,
                      help="load a previously saved snapshot explicitly "
                           "(default: auto-discover <input>.repro-idx; a "
                           "corrupt or stale snapshot warns and rebuilds "
                           "cold — it never changes results)")
    join.add_argument("--trace", metavar="PATH", default=None,
                      help="write the run's spans as a JSONL trace to PATH "
                           "(one JSON object per span; render it with the "
                           "'trace' subcommand)")
    join.add_argument("--wal", metavar="PATH", default=None,
                      help="streaming: write every arrival to an append-only "
                           "write-ahead log before indexing it, so a crash "
                           "mid-stream loses at most the unsynced tail")
    join.add_argument("--recover", action="store_true",
                      help="streaming: replay --wal first (tau and filter "
                           "config come from the log header and must match "
                           "--tau), emit the recovered pairs, then continue "
                           "ingesting stdin with the log still attached")

    search = commands.add_parser(
        "search", help="similarity search",
        description="Similarity search in a dataset file.  --query may be "
                    "given multiple times; the collection is prepared once "
                    "and every query hits the warm per-tau index.",
    )
    search.add_argument("input", help="dataset file")
    search.add_argument("--query", required=True, action="append",
                        help="query tree in bracket notation (repeatable; "
                             "all queries share one prepared session)")
    search.add_argument("--tau", type=int, required=True)
    search.add_argument("--explain", action="store_true",
                        help="print each query's structured plan before "
                             "running it")
    search.add_argument("--save-index", metavar="PATH", default=None,
                        help="after the queries, save the prepared session "
                             "as a checksummed snapshot sidecar")
    search.add_argument("--load-index", metavar="PATH", default=None,
                        help="load a previously saved snapshot explicitly "
                             "(default: auto-discover <input>.repro-idx; "
                             "corrupt or stale snapshots warn and rebuild "
                             "cold)")

    trace_cmd = commands.add_parser(
        "trace", help="render a saved JSONL trace as a span tree",
        description="Pretty-print a trace written by join --trace PATH: "
                    "spans are nested under their parents and shown with "
                    "durations in milliseconds and their attributes.",
    )
    trace_cmd.add_argument("file", help="JSONL trace file (one span per line)")

    ted_cmd = commands.add_parser("ted", help="tree edit distance of two trees")
    ted_cmd.add_argument("tree1", help="bracket notation")
    ted_cmd.add_argument("tree2", help="bracket notation")
    ted_cmd.add_argument("--algorithm", default="rted",
                         choices=sorted(TED_ALGORITHMS))

    experiment = commands.add_parser(
        "experiment", help="reproduce one of the paper's figures"
    )
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--scale", default=None,
                            choices=["smoke", "small", "medium"])
    experiment.add_argument("--quiet", action="store_true",
                            help="suppress per-cell progress lines")
    experiment.add_argument("--workers", type=int, default=1,
                            help="worker processes per join (1 = serial)")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "synthetic":
        params = SyntheticParams(
            max_fanout=args.fanout,
            max_depth=args.depth,
            num_labels=args.labels,
            avg_size=args.size,
            decay=args.decay,
        )
        trees = generate_forest(args.count, params, seed=args.seed)
        comment = f"synthetic f={args.fanout} d={args.depth} l={args.labels} t={args.size}"
    else:
        trees = DATASET_GENERATORS[args.dataset](args.count, seed=args.seed)
        comment = f"{args.dataset}-like simulator"
    written = save_trees(trees, args.out, comment=f"{comment} seed={args.seed}")
    print(f"wrote {written} trees to {args.out}")
    return 0


def _parse_stream_line(line: str, lineno: int, fmt: str):
    """One stdin line to a Tree; malformed input raises IngestError
    carrying the 1-based line number."""
    if fmt == "ndjson":
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise IngestError(
                f"stdin line {lineno}: invalid JSON ({exc})"
            ) from None
        if (
            not isinstance(payload, dict)
            or not isinstance(payload.get("tree"), str)
        ):
            raise IngestError(
                f"stdin line {lineno}: expected an object with a "
                '"tree" key holding a bracket string'
            )
        line = payload["tree"]
    try:
        return parse_bracket(line)
    except (TreeFormatError, ReproError) as exc:
        raise IngestError(f"stdin line {lineno}: {exc}") from exc


def _iter_stream_trees(lines, fmt: str, on_error: str = "fail",
                       on_quarantine=None):
    """Parse the streaming stdin format (see the module docstring).

    ``on_error="fail"`` lets the :class:`~repro.errors.IngestError` (with
    the offending line number) escape; ``"skip"`` quarantines the line —
    ``on_quarantine(lineno, error)`` is invoked and ingestion continues.
    """
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            tree = _parse_stream_line(line, lineno, fmt)
        except IngestError as exc:
            if on_error != "skip":
                raise
            if on_quarantine is not None:
                on_quarantine(lineno, exc)
            continue
        yield tree


def _require_stream_input(args: argparse.Namespace) -> None:
    if args.input not in (None, "-"):
        raise InvalidParameterError(
            "--stream reads from stdin; drop the dataset file argument"
        )


def _cmd_stats_stream(args: argparse.Namespace) -> int:
    from repro.stream import StreamingJoin

    with StreamingJoin(args.tau) as join:
        for tree in _iter_stream_trees(sys.stdin, args.format):
            join.add(tree)
        stats = join.stats()
        histogram = join.collection.size_histogram()
    if args.metrics:
        registry = MetricsRegistry()
        publish_stream_stats(stats, registry=registry)
        sys.stdout.write(render_prometheus(registry))
        return 0
    print(
        f"streamed {stats.trees} trees at {stats.ingest_rate:.1f} trees/s "
        f"(tau={args.tau})"
    )
    print(
        f"warm index: {stats.index_entries} entries / "
        f"{stats.index_subgraphs} subgraphs, {stats.reverse_nodes} reverse "
        f"node keys, small pool {stats.small_pool}"
    )
    print(
        f"results {stats.results}, candidates {stats.candidates} "
        f"({stats.reverse_candidates} via reverse index), "
        f"pending verification {stats.pending_verification}"
    )
    if histogram:
        sizes = [size for size, _ in histogram]
        peak_size, peak_count = max(histogram, key=lambda run: run[1])
        print(
            f"size histogram: {len(histogram)} distinct sizes in "
            f"[{sizes[0]}, {sizes[-1]}], mode {peak_size} ({peak_count} trees)"
        )
    return 0


def _open_session(args: argparse.Namespace) -> TreeCollection:
    """The dataset as a session, restoring a snapshot when one applies.

    ``--load-index`` names the snapshot explicitly; otherwise
    ``<input>.repro-idx`` is auto-discovered.  Either way an unusable
    snapshot (corrupt, stale, wrong version) only warns and rebuilds
    cold — the snapshot path can never change results.
    """
    sidecar = args.load_index if args.load_index else "auto"
    return TreeCollection.from_file(args.input, sidecar=sidecar)


def _save_session(collection: TreeCollection, args: argparse.Namespace) -> None:
    if not args.save_index:
        return
    path = collection.save(args.save_index, include_trees=False,
                           source=args.input)
    print(f"# saved session snapshot to {path}", file=sys.stderr)


def _cmd_stats_snapshot(args: argparse.Namespace) -> int:
    from repro.persist import inspect_container

    info = inspect_container(args.snapshot)
    status = "ok" if info["crc_ok"] else "CORRUPT"
    print(
        f"snapshot {info['path']}: format v{info['format_version']}, "
        f"written by repro {info['library_version']}, {info['bytes']} bytes, "
        f"checksums {status}"
    )
    for section in info["sections"]:
        flag = "ok" if section["crc_ok"] else "CORRUPT"
        print(f"  {section['name']:<12} {section['bytes']:>12} bytes  crc {flag}")
    return 0 if info["crc_ok"] else 2


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.snapshot is not None:
        return _cmd_stats_snapshot(args)
    if args.stream:
        _require_stream_input(args)
        return _cmd_stats_stream(args)
    if args.input is None:
        raise InvalidParameterError(
            "stats needs a dataset file (or --stream / --snapshot)"
        )
    collection = TreeCollection.from_file(args.input)
    if args.metrics:
        shape = collection_stats(collection.trees)
        registry = MetricsRegistry()
        labels = {"dataset": str(args.input)}
        for name, help_text, value in (
            ("repro_dataset_trees", "Trees in the dataset file", shape.count),
            ("repro_dataset_size_min", "Smallest tree (nodes)",
             shape.min_size),
            ("repro_dataset_size_max", "Largest tree (nodes)",
             shape.max_size),
            ("repro_dataset_size_avg", "Average tree size (nodes)",
             shape.average_size),
            ("repro_dataset_labels", "Distinct node labels",
             shape.distinct_labels),
            ("repro_dataset_depth_max", "Maximum node depth (root = 0)",
             shape.max_depth),
        ):
            registry.gauge(name, help_text, **labels).set(value)
        sys.stdout.write(render_prometheus(registry))
        return 0
    print(collection_stats(collection.trees).describe())
    histogram = collection.sorted.size_histogram()
    sizes = [size for size, _ in histogram]
    peak_size, peak_count = max(histogram, key=lambda run: run[1])
    print(
        f"size histogram: {len(histogram)} distinct sizes in "
        f"[{sizes[0]}, {sizes[-1]}], mode {peak_size} ({peak_count} trees)"
    )
    return 0


def _cmd_join_stream(args: argparse.Namespace, tau: int) -> int:
    from repro.stream import StreamingJoin

    if args.method != "partsj":
        raise InvalidParameterError(
            "--stream supports the partsj method only (every method returns "
            "the same pairs; run the stream through partsj)"
        )
    if args.micro_batch < 1:
        raise InvalidParameterError(
            f"--micro-batch must be >= 1, got {args.micro_batch}"
        )
    if args.recover and args.wal is None:
        raise InvalidParameterError("--recover needs --wal PATH (the log to replay)")
    config = PartSJConfig(
        semantics=args.semantics, postorder_filter=args.postorder_filter,
        backend=args.backend,
    )
    emitted = 0

    def emit(pairs) -> None:
        nonlocal emitted
        for pair in pairs:
            emitted += 1
            if args.json:
                print(json.dumps(
                    {"pair": [pair.i, pair.j, pair.distance]}, sort_keys=True
                ), flush=True)
            else:
                print(f"{pair.i}\t{pair.j}\t{pair.distance}", flush=True)

    tracer = Tracer() if args.trace else None

    if args.recover:
        # tau and filter config come from the log header (they shaped the
        # logged state); the CLI tau is cross-checked, not applied.
        engine = StreamingJoin.recover(
            args.wal, workers=args.workers, tracer=tracer
        )
        if engine.tau != tau:
            engine.close()
            raise InvalidParameterError(
                f"--tau {tau} does not match the recovered log "
                f"(written at tau={engine.tau}); pass the log's tau"
            )
        recovery = dict(engine.stats().extra["wal"]["recovered"])
        recovered_pairs = engine.results()
        if args.json:
            print(json.dumps({"recovered": {
                **recovery, "pairs": len(recovered_pairs),
            }}, sort_keys=True), flush=True)
        else:
            torn = (
                f", dropped {recovery['torn_bytes']} torn tail bytes"
                if recovery.get("torn_bytes") else ""
            )
            print(
                f"# recovered {recovery['records']} trees / "
                f"{len(recovered_pairs)} pairs from {args.wal}{torn}",
                file=sys.stderr, flush=True,
            )
        emit(recovered_pairs)
    else:
        engine = StreamingJoin(
            tau, config=config, workers=args.workers, wal=args.wal,
            tracer=tracer,
        )

    with engine as join:
        def quarantine(lineno: int, error: IngestError) -> None:
            join.record_quarantine(error, source=f"stdin line {lineno}")
            if args.json:
                print(json.dumps(
                    {"quarantine": {"line": lineno, "error": str(error)}},
                    sort_keys=True,
                ), flush=True)
            else:
                print(f"# quarantined stdin line {lineno}: {error}",
                      file=sys.stderr, flush=True)

        batch = []
        for tree in _iter_stream_trees(
            sys.stdin, args.format, on_error=args.on_error,
            on_quarantine=quarantine,
        ):
            batch.append(tree)
            if len(batch) >= args.micro_batch:
                emit(join.add_many(batch))
                batch.clear()
        if batch:
            emit(join.add_many(batch))
        emit(join.flush())
        stats = join.stats()
    if tracer is not None:
        written = write_jsonl(tracer.finished(), args.trace)
        print(f"# wrote {written} trace spans to {args.trace}",
              file=sys.stderr)
    if args.json:
        print(json.dumps({"stats": stats.as_dict()}, sort_keys=True))
    else:
        quarantined = (
            f", quarantined {stats.quarantined_trees}"
            if stats.quarantined_trees else ""
        )
        print(
            f"# streamed {stats.trees} trees, {emitted} pairs, "
            f"{stats.candidates} candidates, "
            f"{stats.ingest_rate:.1f} trees/s ingest, "
            f"index {stats.index_entries} entries, "
            f"pending {stats.pending_verification}{quarantined}",
            file=sys.stderr,
        )
    return 0


def _join_payload(result, workers: int) -> dict:
    return {
        "stats": {
            "method": result.stats.method,
            "tau": result.stats.tau,
            "trees": result.stats.tree_count,
            "workers": workers,
            "candidates": result.stats.candidates,
            "results": result.stats.results,
            "candidate_time": result.stats.candidate_time,
            "probe_time": result.stats.probe_time,
            "index_time": result.stats.index_time,
            "verify_time": result.stats.verify_time,
            "ted_calls": result.stats.ted_calls,
            "extra": result.stats.extra,
        },
        "pairs": [[p.i, p.j, p.distance] for p in result.pairs],
    }


def _cmd_join(args: argparse.Namespace) -> int:
    taus = args.tau
    if args.stream:
        _require_stream_input(args)
        if len(taus) != 1:
            raise InvalidParameterError(
                "--stream joins one threshold at a time; give --tau once"
            )
        return _cmd_join_stream(args, taus[0])
    if args.input is None:
        raise InvalidParameterError("join needs a dataset file (or --stream)")
    # One prepared session serves every requested threshold: the parse,
    # intern, sort and verification caches are shared, and each tau pays
    # its own partitioning at most once.
    collection = _open_session(args)
    options = {}
    if args.method == "partsj":
        options["config"] = PartSJConfig(
            semantics=args.semantics, postorder_filter=args.postorder_filter,
            backend=args.backend,
        )
    else:
        # Baselines take the backend as a loose keyword; their verifiers
        # resolve it the same way partsj does.
        options["backend"] = args.backend
    tracer = Tracer() if args.trace else None
    payloads = []
    for tau in taus:
        plan = collection.join(
            tau, method=args.method, workers=args.workers, **options
        )
        if args.explain:
            explain = plan.explain()
            if not args.json:
                print(f"# plan: {json.dumps(explain, sort_keys=True)}")
        result = plan.run(trace=tracer)
        if args.json:
            payload = _join_payload(result, args.workers)
            if args.explain:
                payload["plan"] = explain
            payloads.append(payload)
            continue
        print(result.stats.summary())
        if args.pairs:
            for pair in result.pairs:
                print(f"{pair.i}\t{pair.j}\t{pair.distance}")
    _save_session(collection, args)
    if tracer is not None:
        written = write_jsonl(tracer.finished(), args.trace)
        print(f"# wrote {written} trace spans to {args.trace}",
              file=sys.stderr)
    if args.json:
        # Single-tau invocations keep the historical payload shape; a
        # multi-tau session wraps the per-tau payloads in "queries".
        json.dump(
            payloads[0] if len(payloads) == 1 else {"queries": payloads},
            sys.stdout, indent=2,
        )
        print()
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    collection = _open_session(args)
    # All queries run against one prepared session: the first pays the
    # per-tau partitioning, the rest hit the warm index.
    for position, bracket in enumerate(args.query):
        query = parse_bracket(bracket)
        plan = collection.search(query, args.tau)
        if args.explain:
            print(f"# plan: {json.dumps(plan.explain(), sort_keys=True)}")
        if len(args.query) > 1:
            print(f"# query {position}: {bracket}", file=sys.stderr)
        hits = plan.run()
        for hit in hits:
            print(f"{hit.index}\t{hit.distance}")
        print(f"# {len(hits)} trees within tau={args.tau}", file=sys.stderr)
    _save_session(collection, args)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    try:
        spans = read_jsonl(args.file)
    except OSError as exc:
        print(f"error: cannot read trace file: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        print(format_span_tree(spans))
    except ValueError as exc:  # orphan cycles in a hand-edited file
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_ted(args: argparse.Namespace) -> int:
    distance = ted(
        parse_bracket(args.tree1), parse_bracket(args.tree2),
        algorithm=args.algorithm,
    )
    print(distance)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    progress = None if args.quiet else (lambda msg: print(msg, file=sys.stderr))
    title, _ = EXPERIMENTS[args.id]
    cells = run_experiment(
        args.id, scale=args.scale, progress=progress, workers=args.workers
    )
    kind = "candidates" if args.id in ("fig11", "fig13") else "both"
    print(render_figure(title, cells, kind=kind))
    return 0


_HANDLERS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "join": _cmd_join,
    "search": _cmd_search,
    "trace": _cmd_trace,
    "ted": _cmd_ted,
    "experiment": _cmd_experiment,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
