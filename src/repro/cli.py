"""Command line interface: ``python -m repro`` or the ``repro-trees`` script.

Subcommands
-----------
- ``generate``   — write a dataset file (synthetic or realistic simulator).
- ``stats``      — shape statistics of a dataset file, paper-style.
- ``join``       — run a similarity self-join over a dataset file.
- ``search``     — similarity search of one query tree in a dataset file.
- ``ted``        — tree edit distance between two bracket-notation trees.
- ``experiment`` — run one of the paper's figure reproductions.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.api import similarity_join
from repro.baselines.common import SizeSortedCollection
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import render_figure
from repro.core.join import PartSJConfig
from repro.datasets.io import load_trees, save_trees
from repro.datasets.realistic import DATASET_GENERATORS
from repro.datasets.synthetic import SyntheticParams, generate_forest
from repro.errors import ReproError
from repro.search import similarity_search
from repro.ted.api import TED_ALGORITHMS, ted
from repro.tree.bracket import parse_bracket
from repro.tree.stats import collection_stats

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trees",
        description=(
            "Tree similarity joins (reproduction of Tang et al., VLDB 2015)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser("generate", help="generate a dataset file")
    gen.add_argument("--dataset", default="synthetic",
                     choices=["synthetic", *sorted(DATASET_GENERATORS)])
    gen.add_argument("--count", type=int, default=1000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output path (.gz supported)")
    gen.add_argument("--fanout", type=int, default=3, help="synthetic: max fanout")
    gen.add_argument("--depth", type=int, default=5, help="synthetic: max depth")
    gen.add_argument("--labels", type=int, default=20, help="synthetic: label count")
    gen.add_argument("--size", type=int, default=80, help="synthetic: avg tree size")
    gen.add_argument("--decay", type=float, default=0.05, help="synthetic: Dz")

    stats = commands.add_parser("stats", help="dataset shape statistics")
    stats.add_argument("input", help="dataset file")

    join = commands.add_parser("join", help="similarity self-join")
    join.add_argument("input", help="dataset file")
    join.add_argument("--tau", type=int, required=True)
    join.add_argument("--method", default="partsj",
                      choices=["partsj", "str", "set", "histogram", "nested_loop"])
    join.add_argument("--semantics", default="safe", choices=["safe", "paper"],
                      help="partsj: matching semantics")
    join.add_argument("--postorder-filter", default="safe",
                      choices=["safe", "paper", "off"],
                      help="partsj: postorder window variant")
    join.add_argument("--pairs", action="store_true",
                      help="print every result pair (default: stats only)")
    join.add_argument("--json", action="store_true", help="machine-readable output")
    join.add_argument("--workers", type=int, default=1,
                      help="worker processes (1 = serial; results identical; "
                           "per-shard timings appear under extra.shards in "
                           "--json output)")

    search = commands.add_parser("search", help="similarity search")
    search.add_argument("input", help="dataset file")
    search.add_argument("--query", required=True, help="query tree in bracket notation")
    search.add_argument("--tau", type=int, required=True)

    ted_cmd = commands.add_parser("ted", help="tree edit distance of two trees")
    ted_cmd.add_argument("tree1", help="bracket notation")
    ted_cmd.add_argument("tree2", help="bracket notation")
    ted_cmd.add_argument("--algorithm", default="rted",
                         choices=sorted(TED_ALGORITHMS))

    experiment = commands.add_parser(
        "experiment", help="reproduce one of the paper's figures"
    )
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--scale", default=None,
                            choices=["smoke", "small", "medium"])
    experiment.add_argument("--quiet", action="store_true",
                            help="suppress per-cell progress lines")
    experiment.add_argument("--workers", type=int, default=1,
                            help="worker processes per join (1 = serial)")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "synthetic":
        params = SyntheticParams(
            max_fanout=args.fanout,
            max_depth=args.depth,
            num_labels=args.labels,
            avg_size=args.size,
            decay=args.decay,
        )
        trees = generate_forest(args.count, params, seed=args.seed)
        comment = f"synthetic f={args.fanout} d={args.depth} l={args.labels} t={args.size}"
    else:
        trees = DATASET_GENERATORS[args.dataset](args.count, seed=args.seed)
        comment = f"{args.dataset}-like simulator"
    written = save_trees(trees, args.out, comment=f"{comment} seed={args.seed}")
    print(f"wrote {written} trees to {args.out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    trees = load_trees(args.input)
    print(collection_stats(trees).describe())
    histogram = SizeSortedCollection(trees).size_histogram()
    sizes = [size for size, _ in histogram]
    peak_size, peak_count = max(histogram, key=lambda run: run[1])
    print(
        f"size histogram: {len(histogram)} distinct sizes in "
        f"[{sizes[0]}, {sizes[-1]}], mode {peak_size} ({peak_count} trees)"
    )
    return 0


def _cmd_join(args: argparse.Namespace) -> int:
    trees = load_trees(args.input)
    options = {}
    if args.method == "partsj":
        options["config"] = PartSJConfig(
            semantics=args.semantics, postorder_filter=args.postorder_filter
        )
    result = similarity_join(
        trees, args.tau, method=args.method, workers=args.workers, **options
    )
    if args.json:
        payload = {
            "stats": {
                "method": result.stats.method,
                "tau": result.stats.tau,
                "trees": result.stats.tree_count,
                "workers": args.workers,
                "candidates": result.stats.candidates,
                "results": result.stats.results,
                "candidate_time": result.stats.candidate_time,
                "probe_time": result.stats.probe_time,
                "index_time": result.stats.index_time,
                "verify_time": result.stats.verify_time,
                "ted_calls": result.stats.ted_calls,
                "extra": result.stats.extra,
            },
            "pairs": [[p.i, p.j, p.distance] for p in result.pairs],
        }
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    print(result.stats.summary())
    if args.pairs:
        for pair in result.pairs:
            print(f"{pair.i}\t{pair.j}\t{pair.distance}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    trees = load_trees(args.input)
    query = parse_bracket(args.query)
    hits = similarity_search(query, trees, args.tau)
    for hit in hits:
        print(f"{hit.index}\t{hit.distance}")
    print(f"# {len(hits)} trees within tau={args.tau}", file=sys.stderr)
    return 0


def _cmd_ted(args: argparse.Namespace) -> int:
    distance = ted(
        parse_bracket(args.tree1), parse_bracket(args.tree2),
        algorithm=args.algorithm,
    )
    print(distance)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    progress = None if args.quiet else (lambda msg: print(msg, file=sys.stderr))
    title, _ = EXPERIMENTS[args.id]
    cells = run_experiment(
        args.id, scale=args.scale, progress=progress, workers=args.workers
    )
    kind = "candidates" if args.id in ("fig11", "fig13") else "both"
    print(render_figure(title, cells, kind=kind))
    return 0


_HANDLERS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "join": _cmd_join,
    "search": _cmd_search,
    "ted": _cmd_ted,
    "experiment": _cmd_experiment,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
