"""Binary trees for the left-child/right-sibling (LC-RS) representation.

The PartSJ framework (paper Section 3) operates on the Knuth transformation
of each general tree: every node keeps at most two pointers, ``left`` (its
leftmost child in the general tree) and ``right`` (its next sibling).  This
module provides the binary node/tree types plus the edge-category vocabulary
of Section 3.1:

- a node's *incoming* edge is either a **left incoming** edge (it hangs off
  its parent's ``left`` pointer, i.e. it is the parent's leftmost child in
  the general tree) or a **right incoming** edge (parent's ``right`` pointer,
  i.e. it is the parent's next sibling);
- its *outgoing* edges are the **left outgoing** and **right outgoing**
  pointers.

The module also assigns postorder numbers (1-based) over the binary tree,
which the two-layer index of Section 3.4 keys on.
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional

from repro.errors import InvalidInputTypeError

__all__ = ["BinaryNode", "BinaryTree", "EdgeKind"]


class EdgeKind(enum.Enum):
    """Category of a node's incoming edge in an LC-RS binary tree."""

    ROOT = "root"  # no incoming edge: the node is the tree root
    LEFT = "left"  # incoming from the parent's left (leftmost-child) pointer
    RIGHT = "right"  # incoming from the parent's right (next-sibling) pointer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EdgeKind.{self.name}"


class BinaryNode:
    """A node of an LC-RS binary tree.

    Attributes
    ----------
    label:
        Node label, copied unchanged from the general tree (Knuth's
        transformation never alters labels).
    left / right:
        The two outgoing pointers, or ``None``.
    parent:
        Back-pointer to the parent node (``None`` at the root).  Maintained
        by :meth:`set_left` / :meth:`set_right`.
    """

    __slots__ = ("label", "left", "right", "parent")

    def __init__(self, label: str):
        self.label = str(label)
        self.left: Optional[BinaryNode] = None
        self.right: Optional[BinaryNode] = None
        self.parent: Optional[BinaryNode] = None

    # -- construction ------------------------------------------------------

    def set_left(self, child: Optional["BinaryNode"]) -> Optional["BinaryNode"]:
        """Attach ``child`` on the left pointer (maintains parent links)."""
        self.left = child
        if child is not None:
            child.parent = self
        return child

    def set_right(self, child: Optional["BinaryNode"]) -> Optional["BinaryNode"]:
        """Attach ``child`` on the right pointer (maintains parent links)."""
        self.right = child
        if child is not None:
            child.parent = self
        return child

    # -- inspection --------------------------------------------------------

    @property
    def incoming(self) -> EdgeKind:
        """The category of this node's incoming edge (Section 3.1)."""
        if self.parent is None:
            return EdgeKind.ROOT
        if self.parent.left is self:
            return EdgeKind.LEFT
        return EdgeKind.RIGHT

    def subtree_size(self) -> int:
        """Number of nodes in the binary subtree rooted here."""
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            count += 1
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return count

    def iter_postorder(self) -> Iterator["BinaryNode"]:
        """Yield nodes of this binary subtree in (left, right, node) order."""
        stack: list[tuple[BinaryNode, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
                continue
            stack.append((node, True))
            if node.right is not None:
                stack.append((node.right, False))
            if node.left is not None:
                stack.append((node.left, False))

    def iter_preorder(self) -> Iterator["BinaryNode"]:
        """Yield nodes of this binary subtree in (node, left, right) order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def structurally_equal(self, other: "BinaryNode") -> bool:
        """True when both binary subtrees have identical shape and labels."""
        stack = [(self, other)]
        while stack:
            a, b = stack.pop()
            if a is None and b is None:
                continue
            if a is None or b is None or a.label != b.label:
                return False
            stack.append((a.left, b.left))
            stack.append((a.right, b.right))
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BinaryNode({self.label!r})"


class BinaryTree:
    """An LC-RS binary tree with cached postorder numbering.

    The numbering is 1-based over the *binary* postorder traversal (left
    subtree, right subtree, node), matching the numbers shown next to the
    nodes in the paper's Figure 7.
    """

    __slots__ = ("root", "_postorder", "_number_of")

    def __init__(self, root: BinaryNode):
        if not isinstance(root, BinaryNode):
            raise InvalidInputTypeError(
                f"BinaryTree root must be a BinaryNode, got {type(root).__name__}"
            )
        self.root = root
        self._postorder: Optional[list[BinaryNode]] = None
        self._number_of: Optional[dict[BinaryNode, int]] = None

    @property
    def size(self) -> int:
        """Total number of nodes (equals the general tree's node count)."""
        return len(self.postorder())

    def __len__(self) -> int:
        return self.size

    def postorder(self) -> list[BinaryNode]:
        """The nodes in binary postorder; computed once and cached."""
        if self._postorder is None:
            self._postorder = list(self.root.iter_postorder())
        return self._postorder

    def postorder_number(self, node: BinaryNode) -> int:
        """1-based postorder number of ``node`` (Figure 7's parenthesised ids)."""
        if self._number_of is None:
            self._number_of = {
                n: i for i, n in enumerate(self.postorder(), start=1)
            }
        return self._number_of[node]

    def iter_postorder(self) -> Iterator[BinaryNode]:
        """Iterate nodes in binary postorder."""
        return iter(self.postorder())

    def iter_preorder(self) -> Iterator[BinaryNode]:
        """Iterate nodes in binary preorder."""
        return self.root.iter_preorder()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BinaryTree):
            return NotImplemented
        return self.root.structurally_equal(other.root)

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BinaryTree(size={self.size}, root={self.root.label!r})"
