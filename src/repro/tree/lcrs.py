"""Knuth's left-child/right-sibling transformation and its inverse.

``to_lcrs`` maps a general rooted ordered labeled tree to its LC-RS binary
tree (paper Figure 4): a binary node's ``left`` pointer leads to the node's
leftmost child in the general tree and its ``right`` pointer leads to the
node's next sibling.  The transformation is a bijection on trees whose root
has no sibling, so ``from_lcrs`` recovers the original tree exactly; node
labels and node count are preserved.
"""

from __future__ import annotations

from repro.errors import TreeFormatError
from repro.tree.binary import BinaryNode, BinaryTree
from repro.tree.node import Tree, TreeNode

__all__ = ["to_lcrs", "from_lcrs"]


def to_lcrs(tree: Tree) -> BinaryTree:
    """Return the LC-RS binary representation of ``tree``.

    The conversion is iterative so arbitrarily deep trees are safe.

    >>> t = Tree.from_bracket("{a{b}{c}{d}}")
    >>> b = to_lcrs(t)
    >>> b.root.label, b.root.left.label, b.root.left.right.label
    ('a', 'b', 'c')
    """
    binary_root = BinaryNode(tree.root.label)
    # Each work item links a general node (whose children we still need to
    # wire) to its already-created binary twin.
    stack: list[tuple[TreeNode, BinaryNode]] = [(tree.root, binary_root)]
    while stack:
        general, binary = stack.pop()
        previous: BinaryNode | None = None
        for child in general.children:
            twin = BinaryNode(child.label)
            if previous is None:
                binary.set_left(twin)  # leftmost child
            else:
                previous.set_right(twin)  # next sibling
            stack.append((child, twin))
            previous = twin
    return BinaryTree(binary_root)


def from_lcrs(binary: BinaryTree) -> Tree:
    """Invert :func:`to_lcrs`.

    Raises
    ------
    TreeFormatError
        If the binary root has a right child: a general tree's root has no
        sibling, so such a binary tree is not a valid LC-RS image.
    """
    if binary.root.right is not None:
        raise TreeFormatError(
            "binary root has a right (sibling) pointer; "
            "not a valid LC-RS image of a single tree"
        )
    general_root = TreeNode(binary.root.label)
    # Work items pair a binary node whose left pointer is unprocessed with
    # the general-tree node that is its twin.  Sibling chains are unrolled
    # inline so the loop visits each binary node exactly once.
    stack: list[tuple[BinaryNode, TreeNode]] = [(binary.root, general_root)]
    while stack:
        bnode, gnode = stack.pop()
        sibling = bnode.left  # leftmost child of gnode, then its sibling chain
        while sibling is not None:
            child = gnode.add_child(TreeNode(sibling.label))
            stack.append((sibling, child))
            sibling = sibling.right
    return Tree(general_root)
