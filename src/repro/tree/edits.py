"""Node edit operations on general trees (paper Section 2, Figure 2).

The three unit-cost operations of the tree edit distance:

- **rename**: change one node's label;
- **delete**: remove a node; its children splice into the parent's child
  list in its place, preserving order;
- **insert**: add a node ``Nx`` between a parent ``Np`` and a (possibly
  empty) run of consecutive children, which become ``Nx``'s children.

Operations are value-oriented: :func:`apply_edit` returns a *new* tree and
never mutates its input.  Nodes are addressed by their preorder index
(0-based), which is stable under serialization and easy to generate
randomly.  These operations power the synthetic dataset generator (decay
factor mutations) and the property tests, which check the fundamental
invariant ``TED(T, apply_script(T, ops)) <= len(ops)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence, Union

from repro.errors import EditOperationError
from repro.tree.node import Tree, TreeNode

__all__ = [
    "Rename",
    "Delete",
    "Insert",
    "EditOperation",
    "apply_edit",
    "apply_script",
    "random_edit",
    "random_script",
]


@dataclass(frozen=True)
class Rename:
    """Change the label of the node at preorder index ``node`` to ``label``."""

    node: int
    label: str


@dataclass(frozen=True)
class Delete:
    """Delete the node at preorder index ``node``.

    Deleting the root is only legal when the root has exactly one child
    (otherwise the result would be a forest, which the paper's data model
    excludes).
    """

    node: int


@dataclass(frozen=True)
class Insert:
    """Insert a new node labeled ``label`` under the node at preorder index
    ``parent``, adopting the ``count`` consecutive children starting at
    child position ``position``.

    ``count = 0`` inserts a new leaf at child position ``position``.
    """

    parent: int
    position: int
    count: int
    label: str


EditOperation = Union[Rename, Delete, Insert]


def apply_edit(tree: Tree, op: EditOperation) -> Tree:
    """Return a new tree with ``op`` applied.

    Raises
    ------
    EditOperationError
        If the operation references nodes/positions that do not exist or
        would produce a forest.
    """
    new_tree = tree.copy()
    nodes = list(new_tree.iter_preorder())
    if isinstance(op, Rename):
        _check_index(op.node, len(nodes), "rename target")
        nodes[op.node].label = op.label
    elif isinstance(op, Delete):
        _check_index(op.node, len(nodes), "delete target")
        _delete_node(new_tree, nodes, op.node)
    elif isinstance(op, Insert):
        _check_index(op.parent, len(nodes), "insert parent")
        _insert_node(nodes[op.parent], op)
    else:
        raise EditOperationError(f"unknown edit operation: {op!r}")
    return Tree(new_tree.root)


def apply_script(tree: Tree, ops: Sequence[EditOperation]) -> Tree:
    """Apply a sequence of operations left to right.

    Preorder indices in each operation refer to the tree produced by the
    previous operation.
    """
    for op in ops:
        tree = apply_edit(tree, op)
    return tree


def _check_index(index: int, size: int, what: str) -> None:
    if not 0 <= index < size:
        raise EditOperationError(f"{what} index {index} out of range [0, {size})")


def _find_parent(tree: Tree, target: TreeNode) -> TreeNode | None:
    for node in tree.iter_preorder():
        if any(child is target for child in node.children):
            return node
    return None


def _delete_node(tree: Tree, nodes: list[TreeNode], index: int) -> None:
    target = nodes[index]
    if target is tree.root:
        if len(target.children) != 1:
            raise EditOperationError(
                "cannot delete the root unless it has exactly one child "
                f"(it has {len(target.children)})"
            )
        tree.root = target.children[0]
        return
    parent = _find_parent(tree, target)
    assert parent is not None  # non-root nodes always have a parent
    at = next(i for i, child in enumerate(parent.children) if child is target)
    parent.children[at:at + 1] = target.children


def _insert_node(parent: TreeNode, op: Insert) -> None:
    if op.count < 0:
        raise EditOperationError(f"insert count must be >= 0, got {op.count}")
    if not 0 <= op.position <= len(parent.children):
        raise EditOperationError(
            f"insert position {op.position} out of range "
            f"[0, {len(parent.children)}]"
        )
    if op.position + op.count > len(parent.children):
        raise EditOperationError(
            f"insert adopts children [{op.position}, {op.position + op.count}) "
            f"but parent has only {len(parent.children)} children"
        )
    adopted = parent.children[op.position:op.position + op.count]
    new_node = TreeNode(op.label, adopted)
    parent.children[op.position:op.position + op.count] = [new_node]


def random_edit(
    tree: Tree,
    rng: random.Random,
    labels: Sequence[str],
    kind_weights: Sequence[float] = (1.0, 1.0, 1.0),
) -> EditOperation:
    """Draw one random valid edit operation for ``tree``.

    The operation kind is drawn from ``kind_weights`` over
    ``(insert, delete, rename)`` — uniform by default, as in the paper's
    synthetic data mutation ([27]'s decay factor) — falling back to another
    kind when the drawn one has no valid instance (e.g. delete on a
    single-node tree whose root has no single child).
    """
    size = tree.size
    nodes = list(tree.iter_preorder())
    all_kinds = ["insert", "delete", "rename"]
    first = rng.choices(all_kinds, weights=kind_weights, k=1)[0]
    kinds = [first] + [k for k in all_kinds if k != first]
    for kind in kinds:
        if kind == "rename":
            index = rng.randrange(size)
            current = nodes[index].label
            choices = [lab for lab in labels if lab != current]
            if not choices:
                continue
            return Rename(index, rng.choice(choices))
        if kind == "insert":
            parent_index = rng.randrange(size)
            parent = nodes[parent_index]
            position = rng.randrange(len(parent.children) + 1)
            max_count = len(parent.children) - position
            count = rng.randint(0, max_count)
            return Insert(parent_index, position, count, rng.choice(list(labels)))
        if kind == "delete":
            deletable = [
                i
                for i, node in enumerate(nodes)
                if node is not tree.root or len(node.children) == 1
            ]
            if not deletable:
                continue
            return Delete(rng.choice(deletable))
    raise EditOperationError("no valid edit operation exists for this tree")


def random_script(
    tree: Tree,
    k: int,
    rng: random.Random,
    labels: Sequence[str],
) -> tuple[Tree, list[EditOperation]]:
    """Apply ``k`` random edits, returning the edited tree and the script.

    The returned tree satisfies ``TED(tree, edited) <= k`` by construction.
    """
    ops: list[EditOperation] = []
    current = tree
    for _ in range(k):
        op = random_edit(current, rng, labels)
        current = apply_edit(current, op)
        ops.append(op)
    return current, ops
