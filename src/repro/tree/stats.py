"""Shape statistics for trees and collections.

The paper characterizes each dataset with: number of trees, average tree
size, number of distinct labels, average depth, and maximum depth (Section
4).  :func:`tree_stats` and :func:`collection_stats` compute exactly those
plus fanout statistics, so the dataset simulators in
:mod:`repro.datasets.realistic` can be validated against the paper's
published numbers.

Depth convention: the root is at depth 0, matching the paper's figures
(e.g. Swissprot's "maximum depth 4" for trees of 5 levels).  The *average
depth* of a tree is the mean depth over all of its nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import InvalidParameterError
from repro.tree.node import Tree, TreeNode

__all__ = ["TreeStats", "CollectionStats", "tree_stats", "collection_stats"]


@dataclass(frozen=True)
class TreeStats:
    """Shape summary of one tree."""

    size: int
    depth: int  # maximum node depth, root = 0
    average_depth: float  # mean node depth
    max_fanout: int
    leaf_count: int
    distinct_labels: int

    @property
    def average_fanout(self) -> float:
        """Mean out-degree over internal nodes (0 for a single-node tree)."""
        internal = self.size - self.leaf_count
        if internal == 0:
            return 0.0
        return (self.size - 1) / internal


@dataclass(frozen=True)
class CollectionStats:
    """Shape summary of a tree collection, in the paper's Section 4 format."""

    count: int
    average_size: float
    distinct_labels: int
    average_depth: float  # mean over trees of the per-tree average depth
    max_depth: int
    max_size: int
    min_size: int

    def describe(self) -> str:
        """One-line summary in the style of the paper's dataset paragraphs."""
        return (
            f"{self.count} trees (average tree size {self.average_size:.2f}, "
            f"number of distinct labels {self.distinct_labels}, "
            f"average depth {self.average_depth:.2f}, "
            f"maximum depth {self.max_depth})"
        )


def tree_stats(tree: Tree) -> TreeStats:
    """Compute :class:`TreeStats` for one tree in a single traversal."""
    size = 0
    depth_sum = 0
    max_depth = 0
    max_fanout = 0
    leaves = 0
    labels: set[str] = set()
    stack: list[tuple[TreeNode, int]] = [(tree.root, 0)]
    while stack:
        node, depth = stack.pop()
        size += 1
        depth_sum += depth
        max_depth = max(max_depth, depth)
        max_fanout = max(max_fanout, len(node.children))
        labels.add(node.label)
        if node.is_leaf:
            leaves += 1
        for child in node.children:
            stack.append((child, depth + 1))
    return TreeStats(
        size=size,
        depth=max_depth,
        average_depth=depth_sum / size,
        max_fanout=max_fanout,
        leaf_count=leaves,
        distinct_labels=len(labels),
    )


def collection_stats(trees: Sequence[Tree] | Iterable[Tree]) -> CollectionStats:
    """Compute :class:`CollectionStats` over a collection.

    Raises
    ------
    InvalidParameterError
        If the collection is empty (a :class:`ValueError` subclass).
    """
    trees = list(trees)
    if not trees:
        raise InvalidParameterError(
            "cannot compute statistics of an empty collection"
        )
    labels: set[str] = set()
    sizes: list[int] = []
    avg_depths: list[float] = []
    max_depth = 0
    for tree in trees:
        stats = tree_stats(tree)
        sizes.append(stats.size)
        avg_depths.append(stats.average_depth)
        max_depth = max(max_depth, stats.depth)
        for node in tree.iter_preorder():
            labels.add(node.label)
    return CollectionStats(
        count=len(trees),
        average_size=sum(sizes) / len(sizes),
        distinct_labels=len(labels),
        average_depth=sum(avg_depths) / len(avg_depths),
        max_depth=max_depth,
        max_size=max(sizes),
        min_size=min(sizes),
    )
