"""XML to tree conversion, following the paper's Figure 1 convention.

The paper's real datasets (Swissprot, Treebank) are XML documents whose tags
*and* text are treated as node labels.  :func:`tree_from_xml` reproduces
that: each element becomes a node labeled with its tag, and every
non-whitespace text fragment becomes a child node labeled with the text.
Attributes can optionally be materialized as ``name=value`` child nodes.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.errors import TreeFormatError
from repro.tree.node import Tree, TreeNode

__all__ = ["tree_from_xml", "tree_from_xml_file", "tree_to_xml"]


def tree_from_xml(xml_text: str, include_attributes: bool = False) -> Tree:
    """Parse an XML document string into a :class:`Tree`.

    Parameters
    ----------
    xml_text:
        The document.  Must have a single root element.
    include_attributes:
        When True, each attribute becomes a child node labeled
        ``"name=value"``, ordered before element children (attribute order
        follows the document).

    Raises
    ------
    TreeFormatError
        If the document is not well-formed XML.
    """
    try:
        element = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise TreeFormatError(f"malformed XML: {exc}") from exc
    return Tree(_convert_element(element, include_attributes))


def tree_from_xml_file(path: str | Path, include_attributes: bool = False) -> Tree:
    """Parse the XML document at ``path`` into a :class:`Tree`."""
    text = Path(path).read_text(encoding="utf-8")
    return tree_from_xml(text, include_attributes=include_attributes)


def _convert_element(element: ET.Element, include_attributes: bool) -> TreeNode:
    node = TreeNode(element.tag)
    if include_attributes:
        for name, value in element.attrib.items():
            node.add_child(TreeNode(f"{name}={value}"))
    text = (element.text or "").strip()
    if text:
        node.add_child(TreeNode(text))
    for child in element:
        node.add_child(_convert_element(child, include_attributes))
        tail = (child.tail or "").strip()
        if tail:
            node.add_child(TreeNode(tail))
    return node


def tree_to_xml(tree: Tree) -> str:
    """Render a tree as nested XML elements.

    Leaf nodes whose labels are not valid XML names are emitted as text
    content of their parent; other nodes become elements.  This is a lossy
    convenience for eyeballing trees, not a round-trip format (use bracket
    notation for that).
    """
    return _render(tree.root)


def _render(node: TreeNode) -> str:
    tag = _sanitize_tag(node.label)
    if node.is_leaf:
        return f"<{tag}/>"
    inner = "".join(
        _render(child) if not _is_textual_leaf(child) else _escape_text(child.label)
        for child in node.children
    )
    return f"<{tag}>{inner}</{tag}>"


def _is_textual_leaf(node: TreeNode) -> bool:
    return node.is_leaf and not node.label.replace("_", "").replace("-", "").isalnum()


def _sanitize_tag(label: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch in "_-." else "_" for ch in label)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = "n_" + cleaned
    return cleaned


def _escape_text(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
