"""Tree substrate: data model, LC-RS transform, IO, edits, statistics."""

from repro.tree.binary import BinaryNode, BinaryTree, EdgeKind
from repro.tree.bracket import parse_bracket, to_bracket
from repro.tree.edits import (
    Delete,
    EditOperation,
    Insert,
    Rename,
    apply_edit,
    apply_script,
    random_edit,
    random_script,
)
from repro.tree.lcrs import from_lcrs, to_lcrs
from repro.tree.node import Tree, TreeNode
from repro.tree.stats import CollectionStats, TreeStats, collection_stats, tree_stats
from repro.tree.validate import validate_binary_tree, validate_tree
from repro.tree.xmlio import tree_from_xml, tree_from_xml_file, tree_to_xml

__all__ = [
    "Tree",
    "TreeNode",
    "BinaryNode",
    "BinaryTree",
    "EdgeKind",
    "parse_bracket",
    "to_bracket",
    "to_lcrs",
    "from_lcrs",
    "Rename",
    "Delete",
    "Insert",
    "EditOperation",
    "apply_edit",
    "apply_script",
    "random_edit",
    "random_script",
    "TreeStats",
    "CollectionStats",
    "tree_stats",
    "collection_stats",
    "validate_tree",
    "validate_binary_tree",
    "tree_from_xml",
    "tree_from_xml_file",
    "tree_to_xml",
]
