"""Bracket notation for trees, the interchange format of the TED community.

A tree is written as ``{label`` followed by the bracket forms of its children
and a closing ``}``.  For example ``{a{b}{c{d}}}`` is the tree rooted at
``a`` with children ``b`` and ``c``, where ``c`` has one child ``d``.  This
is the format used by the RTED/APTED reference implementations, which makes
datasets produced by this library interoperable with them.

Labels may contain any character; ``{``, ``}`` and ``\\`` are escaped with a
backslash.
"""

from __future__ import annotations

from repro.errors import TreeFormatError
from repro.tree.node import Tree, TreeNode

__all__ = ["parse_bracket", "to_bracket", "escape_label", "unescape_label"]

_SPECIAL = {"{", "}", "\\"}


def escape_label(label: str) -> str:
    """Escape the bracket-notation metacharacters in ``label``."""
    if not any(ch in _SPECIAL for ch in label):
        return label
    return "".join("\\" + ch if ch in _SPECIAL else ch for ch in label)


def unescape_label(label: str) -> str:
    """Inverse of :func:`escape_label` (assumes a well-formed escape)."""
    if "\\" not in label:
        return label
    out: list[str] = []
    it = iter(label)
    for ch in it:
        if ch == "\\":
            ch = next(it, "")
        out.append(ch)
    return "".join(out)


def parse_bracket(text: str) -> Tree:
    """Parse one tree from bracket notation.

    Raises
    ------
    TreeFormatError
        On unbalanced brackets, trailing garbage, an empty input, or a
        forest (multiple roots).
    """
    text = text.strip()
    if not text:
        raise TreeFormatError("empty bracket string")
    if text[0] != "{":
        raise TreeFormatError(f"bracket string must start with '{{': {text[:40]!r}")

    root: TreeNode | None = None
    stack: list[TreeNode] = []
    label_chars: list[str] = []
    reading_label = False
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and reading_label:
            if i + 1 >= n:
                raise TreeFormatError("dangling escape at end of bracket string")
            label_chars.append(text[i + 1])
            i += 2
            continue
        if ch == "{":
            if reading_label:
                # Label ends where the first child starts.
                _finish_label(stack, label_chars)
            node = TreeNode("")
            if stack:
                stack[-1].add_child(node)
            elif root is None:
                root = node
            else:
                raise TreeFormatError("multiple roots: input is a forest, not a tree")
            stack.append(node)
            label_chars = []
            reading_label = True
        elif ch == "}":
            if not stack:
                raise TreeFormatError("unbalanced '}' in bracket string")
            if reading_label:
                _finish_label(stack, label_chars)
                reading_label = False
                label_chars = []
            stack.pop()
        else:
            if not reading_label:
                raise TreeFormatError(
                    f"unexpected character {ch!r} between siblings at offset {i}"
                )
            label_chars.append(ch)
        i += 1

    if stack:
        raise TreeFormatError("unbalanced '{' in bracket string")
    if root is None:
        raise TreeFormatError("no tree found in bracket string")
    return Tree(root)


def _finish_label(stack: list[TreeNode], chars: list[str]) -> None:
    if not stack:  # pragma: no cover - guarded by callers
        raise TreeFormatError("label outside any tree node")
    stack[-1].label = "".join(chars)


def to_bracket(tree: Tree) -> str:
    """Serialize ``tree`` to bracket notation (inverse of :func:`parse_bracket`)."""
    parts: list[str] = []
    # Explicit stack: each entry is either a node to open or the CLOSE marker.
    close = object()
    stack: list[object] = [tree.root]
    while stack:
        item = stack.pop()
        if item is close:
            parts.append("}")
            continue
        node: TreeNode = item  # type: ignore[assignment]
        parts.append("{")
        parts.append(escape_label(node.label))
        stack.append(close)
        for child in reversed(node.children):
            stack.append(child)
    return "".join(parts)
