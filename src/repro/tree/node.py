"""Rooted ordered labeled trees: the data model of the paper (Section 2).

A tree object is a hierarchy of :class:`TreeNode` instances.  Each node has a
string label (two nodes may share a label) and an ordered list of children.
:class:`Tree` is a thin immutable-by-convention wrapper around a root node
that carries the collection-level identity of a tree object and caches its
size.

The classes here model *general* trees (unbounded fanout).  The binary
left-child/right-sibling representation used by the PartSJ join lives in
:mod:`repro.tree.binary` and :mod:`repro.tree.lcrs`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.errors import InvalidInputTypeError

__all__ = ["TreeNode", "Tree"]


class TreeNode:
    """A node of a rooted ordered labeled tree.

    Parameters
    ----------
    label:
        The node label.  Labels are plain strings; equality of labels is
        string equality.
    children:
        Optional iterable of child nodes, kept in order.
    """

    __slots__ = ("label", "children")

    def __init__(self, label: str, children: Optional[Iterable["TreeNode"]] = None):
        self.label = str(label)
        self.children: list[TreeNode] = list(children) if children is not None else []

    # -- construction ------------------------------------------------------

    def add_child(self, child: "TreeNode") -> "TreeNode":
        """Append ``child`` as the new rightmost child and return it."""
        self.children.append(child)
        return child

    def copy(self) -> "TreeNode":
        """Return a deep copy of the subtree rooted at this node."""
        return TreeNode(self.label, [child.copy() for child in self.children])

    # -- inspection --------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        """True when this node has no children."""
        return not self.children

    @property
    def degree(self) -> int:
        """Number of children (out-degree)."""
        return len(self.children)

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here (iterative)."""
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count

    def iter_preorder(self) -> Iterator["TreeNode"]:
        """Yield the nodes of this subtree in preorder (node before children)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            # Reversed so the leftmost child is popped (and yielded) first.
            stack.extend(reversed(node.children))

    def iter_postorder(self) -> Iterator["TreeNode"]:
        """Yield the nodes of this subtree in postorder (children before node)."""
        # Two-stack iterative postorder keeps this safe for very deep trees.
        stack: list[tuple[TreeNode, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                for child in reversed(node.children):
                    stack.append((child, False))

    # -- comparison --------------------------------------------------------

    def structurally_equal(self, other: "TreeNode") -> bool:
        """True when both subtrees have identical shape and labels."""
        if not isinstance(other, TreeNode):
            return NotImplemented
        stack = [(self, other)]
        while stack:
            a, b = stack.pop()
            if a.label != b.label or len(a.children) != len(b.children):
                return False
            stack.extend(zip(a.children, b.children))
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreeNode):
            return NotImplemented
        return self.structurally_equal(other)

    # Nodes are mutable; identity hashing keeps them usable as dict keys for
    # per-node bookkeeping (postorder numbering tables and the like).
    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TreeNode({self.label!r}, {len(self.children)} children)"


class Tree:
    """A tree object in a collection: a root node plus cached metadata.

    ``Tree`` instances are treated as immutable once constructed; mutating
    the underlying nodes after wrapping them invalidates the cached size.
    Use :meth:`Tree.copy` + :mod:`repro.tree.edits` to derive edited trees.
    """

    __slots__ = ("root", "_size")

    def __init__(self, root: TreeNode):
        if not isinstance(root, TreeNode):
            raise InvalidInputTypeError(
                f"Tree root must be a TreeNode, got {type(root).__name__}"
            )
        self.root = root
        self._size: Optional[int] = None

    # -- metadata ----------------------------------------------------------

    @property
    def size(self) -> int:
        """Total number of nodes; computed once and cached."""
        if self._size is None:
            self._size = self.root.subtree_size()
        return self._size

    def __len__(self) -> int:
        return self.size

    # -- traversal ---------------------------------------------------------

    def iter_preorder(self) -> Iterator[TreeNode]:
        """Preorder node iterator over the whole tree."""
        return self.root.iter_preorder()

    def iter_postorder(self) -> Iterator[TreeNode]:
        """Postorder node iterator over the whole tree."""
        return self.root.iter_postorder()

    def preorder_labels(self) -> list[str]:
        """Labels in preorder; the STR baseline's first traversal string."""
        return [node.label for node in self.iter_preorder()]

    def postorder_labels(self) -> list[str]:
        """Labels in postorder; the STR baseline's second traversal string."""
        return [node.label for node in self.iter_postorder()]

    def labels(self) -> list[str]:
        """All labels (preorder); convenience for histogram filters."""
        return self.preorder_labels()

    # -- construction ------------------------------------------------------

    def copy(self) -> "Tree":
        """Deep copy of the tree."""
        return Tree(self.root.copy())

    @classmethod
    def from_bracket(cls, text: str) -> "Tree":
        """Parse bracket notation, e.g. ``{a{b}{c{d}}}``.

        Delegates to :func:`repro.tree.bracket.parse_bracket`.
        """
        from repro.tree.bracket import parse_bracket

        return parse_bracket(text)

    def to_bracket(self) -> str:
        """Serialize to bracket notation (inverse of :meth:`from_bracket`)."""
        from repro.tree.bracket import to_bracket

        return to_bracket(self)

    # -- comparison --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tree):
            return NotImplemented
        return self.root.structurally_equal(other.root)

    __hash__ = None  # type: ignore[assignment]  # mutable content

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tree(size={self.size}, root={self.root.label!r})"
