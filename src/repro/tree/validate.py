"""Structural validation helpers for trees.

These checks are used by tests and by dataset loaders to fail fast on
corrupted inputs: a tree must be acyclic, each node must appear exactly once
(no shared subtrees), and binary trees must have consistent parent
back-pointers.
"""

from __future__ import annotations

from repro.errors import TreeFormatError
from repro.tree.binary import BinaryTree
from repro.tree.node import Tree

__all__ = ["validate_tree", "validate_binary_tree"]


def validate_tree(tree: Tree) -> None:
    """Raise :class:`TreeFormatError` if ``tree`` shares or repeats nodes.

    A well-formed tree visits every node exactly once in preorder; a node
    reachable twice means the children lists alias each other (a DAG, not a
    tree) which would silently corrupt edit operations and TED values.
    """
    seen: set[int] = set()
    stack = [tree.root]
    while stack:
        node = stack.pop()
        ident = id(node)
        if ident in seen:
            raise TreeFormatError(
                f"node {node.label!r} is reachable more than once: "
                "the structure is a DAG, not a tree"
            )
        seen.add(ident)
        stack.extend(node.children)


def validate_binary_tree(binary: BinaryTree) -> None:
    """Raise :class:`TreeFormatError` on broken parent links or sharing."""
    seen: set[int] = set()
    stack = [binary.root]
    if binary.root.parent is not None:
        raise TreeFormatError("binary root must not have a parent pointer")
    while stack:
        node = stack.pop()
        ident = id(node)
        if ident in seen:
            raise TreeFormatError(
                f"binary node {node.label!r} is reachable more than once"
            )
        seen.add(ident)
        for child in (node.left, node.right):
            if child is None:
                continue
            if child.parent is not node:
                raise TreeFormatError(
                    f"binary node {child.label!r} has a stale parent pointer"
                )
            stack.append(child)
