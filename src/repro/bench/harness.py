"""Benchmark harness: run one join "cell" and collect the paper's metrics.

A *cell* is one bar/point of a figure: (dataset, method, x-value) →
candidate-generation time, TED-verification time, candidate count, result
count.  :func:`run_cell` executes one cell; :func:`run_grid` sweeps a
parameter; the experiment definitions in :mod:`repro.bench.experiments`
compose these into the paper's Figures 10-14.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.core.join import PartSJConfig
from repro.errors import InvalidParameterError
from repro.session import TreeCollection
from repro.tree.node import Tree

# Cells accept either raw trees (a fresh one-shot session per cell — the
# cold-cache measurement the paper's figures want) or an existing
# TreeCollection (a warm session shared across cells, e.g. one per
# workload in run_grid).
Workload = Union[Sequence[Tree], TreeCollection]

__all__ = ["CellResult", "run_cell", "run_stream_cell", "run_grid", "METHOD_LABELS"]

# Figure series names used by the paper, mapped to registry method names.
METHOD_LABELS = {
    "STR": "str",
    "SET": "set",
    "PRT": "partsj",
    "REL": "nested_loop",
    "HST": "histogram",
}


@dataclass
class CellResult:
    """One figure cell: a method executed on one workload configuration."""

    experiment: str
    dataset: str
    method: str  # figure series name: STR / SET / PRT / REL
    x_name: str  # swept parameter, e.g. "tau" or "cardinality"
    x_value: object
    candidate_time: float
    verify_time: float
    candidates: int
    results: int
    ted_calls: int
    wall_time: float
    # Candidate-generation split (probe vs index build); for filter-only
    # baselines probe_time == candidate_time and index_time == 0.
    probe_time: float = 0.0
    index_time: float = 0.0
    # Worker processes the join ran with.  For workers > 1 the phase times
    # above are summed worker CPU seconds; wall_time is what speeds up.
    workers: int = 1
    extra: dict = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.candidate_time + self.verify_time

    def as_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "dataset": self.dataset,
            "method": self.method,
            "x_name": self.x_name,
            "x_value": self.x_value,
            "workers": self.workers,
            "candidate_time": round(self.candidate_time, 4),
            "probe_time": round(self.probe_time, 4),
            "index_time": round(self.index_time, 4),
            "verify_time": round(self.verify_time, 4),
            "total_time": round(self.total_time, 4),
            "wall_time": round(self.wall_time, 4),
            "candidates": self.candidates,
            "results": self.results,
            "ted_calls": self.ted_calls,
        }


def run_cell(
    experiment: str,
    dataset: str,
    trees: Workload,
    tau: int,
    method: str,
    x_name: str,
    x_value: object,
    partsj_config: Optional[PartSJConfig] = None,
    str_banded: bool = False,
    workers: int = 1,
) -> CellResult:
    """Execute one method on one workload and wrap its statistics.

    ``trees`` may be a raw sequence (a one-shot session is built per cell
    — the cold measurement the paper's figures use; result caching never
    applies) or a prepared :class:`repro.session.TreeCollection` for
    explicit warm-session benchmarking (``bench_session_reuse``).

    ``str_banded`` defaults to ``False`` so that the ``STR`` series pays the
    paper-faithful full string DP (see ``repro.baselines.str_join``).
    ``workers`` sweeps the parallel executor (``1`` = serial engine); the
    result set is identical at every setting, so worker-count figures plot
    ``wall_time`` against the serial baseline.
    """
    if method not in METHOD_LABELS:
        raise InvalidParameterError(
            f"unknown figure method {method!r}; choose from {sorted(METHOD_LABELS)}"
        )
    registry_name = METHOD_LABELS[method]
    options = {}
    if registry_name == "partsj" and partsj_config is not None:
        options["config"] = partsj_config
    if registry_name == "str":
        options["banded"] = str_banded
    started = time.perf_counter()
    collection = (
        trees if isinstance(trees, TreeCollection)
        else TreeCollection.from_trees(trees)
    )
    result = collection.join(
        tau, method=registry_name, workers=workers, **options
    ).run()
    wall = time.perf_counter() - started
    stats = result.stats
    return CellResult(
        experiment=experiment,
        dataset=dataset,
        method=method,
        x_name=x_name,
        x_value=x_value,
        candidate_time=stats.candidate_time,
        verify_time=stats.verify_time,
        candidates=stats.candidates,
        results=stats.results,
        ted_calls=stats.ted_calls,
        wall_time=wall,
        probe_time=stats.probe_time,
        index_time=stats.index_time,
        workers=workers,
        extra=dict(stats.extra),
    )


def run_stream_cell(
    experiment: str,
    dataset: str,
    trees: Sequence[Tree],
    tau: int,
    x_name: str,
    x_value: object,
    partsj_config: Optional[PartSJConfig] = None,
    workers: int = 1,
) -> CellResult:
    """Execute the streaming engine on one workload, fed in arrival order.

    The streaming counterpart of :func:`run_cell` (series name ``PRT-S``):
    the trees are ingested one at a time through
    :class:`repro.stream.StreamingJoin` and the cell records, besides the
    batch-comparable phase metrics, the streaming-specific columns in
    ``extra`` — ``ingest_rate`` (trees per second of ingest wall time)
    and ``time_to_first_result`` (seconds until the first verified pair,
    ``None`` when the join is empty) — which
    :func:`repro.bench.reporting.stream_table` renders.
    """
    from repro.stream import StreamingJoin

    started = time.perf_counter()
    first: Optional[float] = None
    with StreamingJoin(tau, config=partsj_config, workers=workers) as join:
        for tree in trees:
            if join.add(tree) and first is None:
                first = time.perf_counter() - started
        if join.flush() and first is None:
            first = time.perf_counter() - started
        wall = time.perf_counter() - started
        stats = join.stats()
        results = len(join.results())
    extra = dict(stats.extra)
    extra["ingest_rate"] = round(stats.ingest_rate, 1)
    extra["time_to_first_result"] = (
        round(first, 4) if first is not None else None
    )
    extra["reverse_candidates"] = stats.reverse_candidates
    return CellResult(
        experiment=experiment,
        dataset=dataset,
        method="PRT-S",
        x_name=x_name,
        x_value=x_value,
        candidate_time=stats.ingest_time,
        verify_time=stats.verify_time,
        candidates=stats.candidates,
        results=results,
        ted_calls=extra.get("ted_calls", 0),
        wall_time=wall,
        workers=workers,
        extra=extra,
    )


def run_grid(
    experiment: str,
    dataset: str,
    workloads: Sequence[tuple[object, Sequence[Tree], int]],
    methods: Sequence[str],
    x_name: str,
    partsj_config: Optional[PartSJConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: int = 1,
) -> list[CellResult]:
    """Run every method over a sequence of ``(x_value, trees, tau)`` workloads."""
    cells: list[CellResult] = []
    for x_value, trees, tau in workloads:
        for method in methods:
            if progress is not None:
                progress(
                    f"[{experiment}/{dataset}] {method} {x_name}={x_value} "
                    f"(n={len(trees)}, tau={tau})"
                )
            cells.append(
                run_cell(
                    experiment, dataset, trees, tau, method,
                    x_name, x_value, partsj_config, workers=workers,
                )
            )
    return cells
