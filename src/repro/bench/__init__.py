"""Benchmark harness and the paper's experiment registry."""

from repro.bench.experiments import (
    BENCH_PRT_CONFIG,
    EXPERIMENTS,
    SCALES,
    Scale,
    build_dataset,
    get_scale,
    run_experiment,
)
from repro.bench.harness import CellResult, run_cell, run_grid
from repro.bench.reporting import (
    candidates_table,
    format_table,
    render_figure,
    runtime_table,
)

__all__ = [
    "CellResult",
    "run_cell",
    "run_grid",
    "Scale",
    "SCALES",
    "get_scale",
    "build_dataset",
    "EXPERIMENTS",
    "run_experiment",
    "BENCH_PRT_CONFIG",
    "runtime_table",
    "candidates_table",
    "render_figure",
    "format_table",
]
