"""Experiment registry: every figure of the paper's Section 4.

Each experiment id maps to a runner that generates its workloads, executes
all figure series, and returns :class:`~repro.bench.harness.CellResult`
rows.  Figures that share runs are produced together (Figure 10's runtimes
and Figure 11's candidate counts come from the same executions, likewise
12/13).

Scales
------
The paper runs 10K-100K trees on C++; a pure-Python reproduction sweeps the
same parameter grids at reduced cardinality, chosen so every method's
*relative* behaviour is preserved (see EXPERIMENTS.md for the mapping).
Select with ``REPRO_BENCH_SCALE`` (``smoke`` / ``small`` / ``medium``) or
the ``scale=`` argument; the default is ``small``.

Method configurations
---------------------
- ``STR`` runs paper-faithfully with the full ``O(n^2)`` string DP
  (``banded=False``); the banded variant is an ablation
  (``ablation_str_banding``).
- ``PRT`` runs with the paper's strict matching semantics and the *safe*
  postorder window.  The fully published window (``PartSJConfig.paper()``)
  drops join results (see EXPERIMENTS.md finding F1) and is measured by the
  ``ablation_filters`` experiment instead.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from repro.bench.harness import CellResult, run_cell
from repro.core.join import PartSJConfig
from repro.datasets.realistic import sentiment_like, swissprot_like, treebank_like
from repro.datasets.synthetic import SyntheticParams, generate_forest
from repro.errors import InvalidParameterError
from repro.tree.node import Tree

__all__ = [
    "Scale",
    "SCALES",
    "get_scale",
    "build_dataset",
    "EXPERIMENTS",
    "run_experiment",
    "BENCH_PRT_CONFIG",
]

BENCH_SEED = 2015  # the paper's year; fixed so runs are reproducible

# PRT configuration used in the figure reproductions: the paper's strict
# matching, with the provably-sound postorder window (the published window
# loses results; see the ablation_filters experiment).
BENCH_PRT_CONFIG = PartSJConfig(semantics="paper", postorder_filter="safe")

Progress = Optional[Callable[[str], None]]


@dataclass(frozen=True)
class Scale:
    """Workload sizes for one benchmark scale."""

    name: str
    join_count: int  # collection size for fig10/11
    taus: tuple[int, ...]  # TED thresholds swept in fig10/11
    cardinalities: tuple[int, ...]  # collection sizes for fig12/13
    card_tau: int  # fixed tau for fig12/13 (paper: 3)
    sens_count: int  # collection size per fig14 cell
    sens_tau: int  # fixed tau for fig14 (paper: 3)
    fanouts: tuple[int, ...]  # fig14(a,b)
    depths: tuple[int, ...]  # fig14(c,d)
    label_counts: tuple[int, ...]  # fig14(e,f)
    tree_sizes: tuple[int, ...]  # fig14(g,h)
    ablation_count: int
    datasets: tuple[str, ...] = ("swissprot", "treebank", "sentiment", "synthetic")


SCALES: dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        join_count=120,
        taus=(1, 2, 3),
        cardinalities=(40, 80, 120),
        card_tau=2,
        sens_count=80,
        sens_tau=2,
        fanouts=(2, 4, 6),
        depths=(4, 6, 8),
        label_counts=(5, 20, 50),
        tree_sizes=(40, 80, 120),
        ablation_count=100,
    ),
    "small": Scale(
        name="small",
        join_count=250,
        taus=(1, 2, 3, 4, 5),
        cardinalities=(50, 100, 150, 200, 250),
        card_tau=3,
        sens_count=100,
        sens_tau=3,
        fanouts=(2, 3, 4, 5, 6),  # Table 1
        depths=(4, 5, 6, 7, 8),
        label_counts=(3, 5, 10, 20, 50),
        tree_sizes=(40, 80, 120, 160, 200),
        ablation_count=150,
    ),
    "medium": Scale(
        name="medium",
        join_count=600,
        taus=(1, 2, 3, 4, 5),
        cardinalities=(120, 240, 360, 480, 600),
        card_tau=3,
        sens_count=200,
        sens_tau=3,
        fanouts=(2, 3, 4, 5, 6),
        depths=(4, 5, 6, 7, 8),
        label_counts=(3, 5, 10, 20, 50),
        tree_sizes=(40, 80, 120, 160, 200),
        ablation_count=300,
    ),
}


def get_scale(name: Optional[str] = None) -> Scale:
    """Resolve a scale by argument, ``REPRO_BENCH_SCALE``, or default."""
    chosen = name or os.environ.get("REPRO_BENCH_SCALE", "small")
    try:
        return SCALES[chosen]
    except KeyError:
        raise InvalidParameterError(
            f"unknown scale {chosen!r}; choose from {sorted(SCALES)}"
        ) from None


def build_dataset(
    name: str,
    count: int,
    seed: int = BENCH_SEED,
    params: Optional[SyntheticParams] = None,
) -> list[Tree]:
    """Instantiate one of the four evaluation datasets at a given size."""
    if name == "swissprot":
        return swissprot_like(count, seed=seed)
    if name == "treebank":
        return treebank_like(count, seed=seed)
    if name == "sentiment":
        return sentiment_like(count, seed=seed)
    if name == "synthetic":
        return generate_forest(count, params or SyntheticParams(), seed=seed)
    raise InvalidParameterError(
        f"unknown dataset {name!r}; choose from "
        "swissprot / treebank / sentiment / synthetic"
    )


def _note(progress: Progress, message: str) -> None:
    if progress is not None:
        progress(message)


def _run_series(
    experiment: str,
    dataset: str,
    workloads: Sequence[tuple[object, Sequence[Tree], int]],
    methods: Sequence[str],
    x_name: str,
    progress: Progress,
    workers: int = 1,
) -> list[CellResult]:
    cells: list[CellResult] = []
    for x_value, trees, tau in workloads:
        for method in methods:
            _note(
                progress,
                f"[{experiment}] {dataset} {method} {x_name}={x_value} "
                f"(n={len(trees)}, tau={tau})",
            )
            cells.append(
                run_cell(
                    experiment, dataset, trees, tau, method, x_name, x_value,
                    partsj_config=BENCH_PRT_CONFIG, workers=workers,
                )
            )
    return cells


def run_fig10_11(
    scale: Optional[Scale] = None,
    datasets: Optional[Sequence[str]] = None,
    progress: Progress = None,
    workers: int = 1,
) -> list[CellResult]:
    """Figures 10 & 11: runtime and candidates vs TED threshold tau.

    One execution per (dataset, tau, method); Figure 10 reads the timing
    columns, Figure 11 the candidate counts (REL = result count).
    """
    scale = scale or get_scale()
    cells: list[CellResult] = []
    for dataset in datasets or scale.datasets:
        trees = build_dataset(dataset, scale.join_count)
        workloads = [(tau, trees, tau) for tau in scale.taus]
        cells.extend(
            _run_series(
                "fig10_11", dataset, workloads,
                ("STR", "SET", "PRT", "REL"), "tau", progress, workers,
            )
        )
    return cells


def run_fig12_13(
    scale: Optional[Scale] = None,
    datasets: Optional[Sequence[str]] = None,
    progress: Progress = None,
    workers: int = 1,
) -> list[CellResult]:
    """Figures 12 & 13: runtime and candidates vs dataset cardinality."""
    scale = scale or get_scale()
    cells: list[CellResult] = []
    for dataset in datasets or scale.datasets:
        # Prefix subsets of one generated collection, like the paper's
        # 20K..100K subsets of each dataset.
        full = build_dataset(dataset, max(scale.cardinalities))
        workloads = [
            (count, full[:count], scale.card_tau)
            for count in scale.cardinalities
        ]
        cells.extend(
            _run_series(
                "fig12_13", dataset, workloads,
                ("STR", "SET", "PRT", "REL"), "cardinality", progress, workers,
            )
        )
    return cells


def _sensitivity_workloads(
    scale: Scale,
    parameter: str,
) -> list[tuple[object, list[Tree], int]]:
    values: Sequence[int]
    if parameter == "fanout":
        values = scale.fanouts
        make = lambda v: SyntheticParams(max_fanout=v)
    elif parameter == "depth":
        values = scale.depths
        make = lambda v: SyntheticParams(max_depth=v)
    elif parameter == "labels":
        values = scale.label_counts
        make = lambda v: SyntheticParams(num_labels=v)
    elif parameter == "tree_size":
        values = scale.tree_sizes
        make = lambda v: SyntheticParams(avg_size=v)
    else:
        raise InvalidParameterError(
            f"unknown sensitivity parameter {parameter!r}; choose from "
            "fanout / depth / labels / tree_size"
        )
    return [
        (
            value,
            build_dataset("synthetic", scale.sens_count, params=make(value)),
            scale.sens_tau,
        )
        for value in values
    ]


def run_fig14(
    parameter: str,
    scale: Optional[Scale] = None,
    progress: Progress = None,
    workers: int = 1,
) -> list[CellResult]:
    """Figure 14: sensitivity to fanout / depth / labels / tree size.

    Each call covers one parameter (two panels of the figure: runtime and
    candidates); all four parameters together reproduce panels (a)-(h).
    """
    scale = scale or get_scale()
    workloads = _sensitivity_workloads(scale, parameter)
    return _run_series(
        f"fig14_{parameter}", "synthetic", workloads,
        ("STR", "SET", "PRT", "REL"), parameter, progress, workers,
    )


def run_ablation_partitioning(
    scale: Optional[Scale] = None,
    progress: Progress = None,
    workers: int = 1,
) -> list[CellResult]:
    """Section 4.3 closing remark: MaxMinSize vs random partitioning.

    The paper reports a 50%-300% improvement from its balanced partitioning
    over random tree partitioning; this experiment reproduces that
    comparison on the synthetic dataset across taus.
    """
    scale = scale or get_scale()
    trees = build_dataset("synthetic", scale.ablation_count)
    cells: list[CellResult] = []
    for tau in scale.taus:
        for strategy in ("maxmin", "random"):
            _note(progress, f"[ablation_partitioning] {strategy} tau={tau}")
            config = replace(BENCH_PRT_CONFIG, partition_strategy=strategy)
            cell = run_cell(
                "ablation_partitioning", "synthetic", trees, tau, "PRT",
                "tau", tau, partsj_config=config, workers=workers,
            )
            cell.method = f"PRT[{strategy}]"
            cells.append(cell)
    return cells


def run_ablation_filters(
    scale: Optional[Scale] = None,
    progress: Progress = None,
    workers: int = 1,
) -> list[CellResult]:
    """Filter-variant ablation, including the published (unsound) window.

    Runs PRT under every combination of matching semantics and postorder
    window on the synthetic dataset and reports candidates *and results*:
    configurations using the published window return fewer results than
    REL — the false-negative finding documented in EXPERIMENTS.md.
    """
    scale = scale or get_scale()
    trees = build_dataset("synthetic", scale.ablation_count)
    tau = scale.sens_tau
    cells: list[CellResult] = []
    _note(progress, "[ablation_filters] REL baseline")
    cells.append(
        run_cell("ablation_filters", "synthetic", trees, tau, "REL",
                 "variant", "exact", workers=workers)
    )
    for semantics in ("paper", "safe"):
        for window in ("paper", "safe", "off"):
            _note(progress, f"[ablation_filters] sem={semantics} window={window}")
            config = PartSJConfig(semantics=semantics, postorder_filter=window)
            cell = run_cell(
                "ablation_filters", "synthetic", trees, tau, "PRT",
                "variant", f"{semantics}/{window}", partsj_config=config,
                workers=workers,
            )
            cell.method = f"PRT[{semantics}/{window}]"
            cells.append(cell)
    return cells


def run_ablation_str_banding(
    scale: Optional[Scale] = None,
    progress: Progress = None,
    workers: int = 1,
) -> list[CellResult]:
    """Our STR improvement: banded early-exit DP vs the paper's full DP."""
    scale = scale or get_scale()
    trees = build_dataset("swissprot", scale.ablation_count)
    cells: list[CellResult] = []
    for tau in scale.taus:
        for banded in (False, True):
            _note(progress, f"[ablation_str_banding] banded={banded} tau={tau}")
            cell = run_cell(
                "ablation_str_banding", "swissprot", trees, tau, "STR",
                "tau", tau, str_banded=banded, workers=workers,
            )
            cell.method = "STR[banded]" if banded else "STR[full]"
            cells.append(cell)
    return cells


EXPERIMENTS: dict[str, tuple[str, Callable[..., list[CellResult]]]] = {
    "fig10": ("Figure 10: runtime vs tau", run_fig10_11),
    "fig11": ("Figure 11: candidates vs tau", run_fig10_11),
    "fig12": ("Figure 12: runtime vs cardinality", run_fig12_13),
    "fig13": ("Figure 13: candidates vs cardinality", run_fig12_13),
    "fig14f": ("Figure 14(a,b): fanout sensitivity",
               lambda **kw: run_fig14("fanout", **kw)),
    "fig14d": ("Figure 14(c,d): depth sensitivity",
               lambda **kw: run_fig14("depth", **kw)),
    "fig14l": ("Figure 14(e,f): label sensitivity",
               lambda **kw: run_fig14("labels", **kw)),
    "fig14t": ("Figure 14(g,h): tree size sensitivity",
               lambda **kw: run_fig14("tree_size", **kw)),
    "ablation_partitioning": (
        "Ablation: MaxMinSize vs random partitioning", run_ablation_partitioning),
    "ablation_filters": (
        "Ablation: filter variants incl. published window", run_ablation_filters),
    "ablation_str_banding": (
        "Ablation: STR banded vs full DP", run_ablation_str_banding),
}


def run_experiment(
    experiment_id: str,
    scale: Optional[str | Scale] = None,
    progress: Progress = None,
    workers: int = 1,
) -> list[CellResult]:
    """Run one registered experiment by id and return its cells."""
    try:
        _, runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise InvalidParameterError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    resolved = scale if isinstance(scale, Scale) else get_scale(scale)
    return runner(scale=resolved, progress=progress, workers=workers)
