"""Render experiment cells as the paper's figure tables.

Two views are produced for each figure:

- a *runtime* table (Figures 10/12/14 odd panels): per method and x-value,
  candidate-generation and TED-verification seconds — the two stacked bar
  segments of the paper's plots;
- a *candidates* table (Figures 11/13/14 even panels): candidate counts per
  series including REL (the true result count).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.bench.harness import CellResult

__all__ = [
    "runtime_table",
    "candidates_table",
    "stream_table",
    "format_table",
    "render_figure",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Plain-text aligned table (also valid GitHub markdown)."""
    materialized = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for k, value in enumerate(row):
            widths[k] = max(widths[k], len(value))
    def line(values: Sequence[str]) -> str:
        return "| " + " | ".join(v.ljust(widths[k]) for k, v in enumerate(values)) + " |"
    separator = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    out = [line(list(headers)), separator]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def _sorted_x(cells: Sequence[CellResult]) -> list[object]:
    seen: list[object] = []
    for cell in cells:
        if cell.x_value not in seen:
            seen.append(cell.x_value)
    return seen


def _methods(cells: Sequence[CellResult], include: Sequence[str]) -> list[str]:
    present: list[str] = []
    for cell in cells:
        if cell.method not in present:
            present.append(cell.method)
    ordered = [m for m in include if m in present]
    ordered.extend(m for m in present if m not in ordered)
    return ordered


def runtime_table(cells: Sequence[CellResult], dataset: str) -> str:
    """Runtime split per method and x-value (one paper bar per row).

    Candidate generation is additionally broken into its probe and
    index-build parts (``JoinStats.probe_time`` / ``index_time``); for
    filter-only baselines the index column is zero.  When any cell ran
    with ``workers > 1`` the table adds ``workers`` and ``wall (s)``
    columns: the phase columns are then summed worker CPU seconds, and
    the wall clock is the number a worker-count sweep actually improves.
    """
    subset = [
        c for c in cells if c.dataset == dataset and not c.method.startswith("REL")
    ]
    x_name = subset[0].x_name if subset else "x"
    methods = _methods(subset, ["STR", "SET", "HST", "PRT"])
    parallel = any(c.workers != 1 for c in subset)
    rows = []
    for x_value in _sorted_x(subset):
        for method in methods:
            cell = next(
                (c for c in subset if c.x_value == x_value and c.method == method),
                None,
            )
            if cell is None:
                continue  # sparse grid (e.g. ablations with per-method x values)
            row = [
                x_value,
                method,
                f"{cell.candidate_time:.3f}",
                f"{cell.probe_time:.3f}",
                f"{cell.index_time:.3f}",
                f"{cell.verify_time:.3f}",
                f"{cell.total_time:.3f}",
            ]
            if parallel:
                row += [cell.workers, f"{cell.wall_time:.3f}"]
            rows.append(row)
    headers = [
        x_name, "method", "cand gen (s)", "probe (s)", "index (s)",
        "TED (s)", "total (s)",
    ]
    if parallel:
        headers += ["workers", "wall (s)"]
    return format_table(headers, rows)


def stream_table(cells: Sequence[CellResult], dataset: str) -> str:
    """Streaming-ingestion view: throughput and latency per x-value.

    Renders the cells of :func:`repro.bench.harness.run_stream_cell`
    (series ``PRT-S``) with the two columns batch cells cannot have —
    **ingest throughput** (trees per second through the engine) and
    **time to first result** (seconds until the first verified pair was
    yielded; the batch pipeline's equivalent is its entire wall time) —
    next to the comparable wall/result counts.
    """
    subset = [
        c for c in cells
        if c.dataset == dataset and "ingest_rate" in c.extra
    ]
    x_name = subset[0].x_name if subset else "x"
    rows = []
    for x_value in _sorted_x(subset):
        for cell in subset:
            if cell.x_value != x_value:
                continue
            first = cell.extra.get("time_to_first_result")
            rows.append([
                x_value,
                cell.method,
                f"{cell.extra['ingest_rate']:.0f}",
                f"{first:.4f}" if first is not None else "n/a",
                f"{cell.wall_time:.3f}",
                cell.candidates,
                cell.results,
            ])
    headers = [
        x_name, "method", "ingest (trees/s)", "first result (s)",
        "wall (s)", "candidates", "results",
    ]
    return format_table(headers, rows)


def candidates_table(cells: Sequence[CellResult], dataset: str) -> str:
    """Candidate counts per series, REL being the true result count."""
    subset = [c for c in cells if c.dataset == dataset]
    x_name = subset[0].x_name if subset else "x"
    methods = _methods(subset, ["SET", "STR", "HST", "PRT", "REL"])
    rows = []
    for x_value in _sorted_x(subset):
        row: list[object] = [x_value]
        for method in methods:
            cell = next(
                (c for c in subset if c.x_value == x_value and c.method == method),
                None,
            )
            if cell is None:
                row.append("-")  # sparse grid
                continue
            # The REL series in the paper plots the number of join results.
            row.append(cell.results if method.startswith("REL") else cell.candidates)
        rows.append(row)
    headers = [x_name] + methods
    return format_table(headers, rows)


def render_figure(
    title: str,
    cells: Sequence[CellResult],
    kind: str = "both",
) -> str:
    """Full text rendering of a figure: one table block per dataset."""
    out = [f"== {title} =="]
    datasets: list[str] = []
    for cell in cells:
        if cell.dataset not in datasets:
            datasets.append(cell.dataset)
    for dataset in datasets:
        out.append(f"-- dataset: {dataset} --")
        if kind in ("both", "runtime"):
            out.append(runtime_table(cells, dataset))
        if kind in ("both", "candidates"):
            out.append(candidates_table(cells, dataset))
    return "\n".join(out) + "\n"
