"""Tests for non-self (R x S) joins (repro.rsjoin)."""

import pytest

from repro.core.join import PartSJConfig
from repro.errors import InvalidParameterError
from repro.rsjoin import similarity_join_rs
from repro.ted.zhang_shasha import zhang_shasha
from repro.tree.node import Tree
from tests.conftest import make_cluster_forest, make_random_tree


def brute_force_rs(left, right, tau):
    return {
        (i, j, zhang_shasha(a, b))
        for i, a in enumerate(left)
        for j, b in enumerate(right)
        if zhang_shasha(a, b) <= tau
    }


class TestRSJoin:
    def test_simple(self):
        left = [Tree.from_bracket("{a{b}{c}}")]
        right = [Tree.from_bracket("{a{b}}"), Tree.from_bracket("{z}")]
        result = similarity_join_rs(left, right, 1)
        assert [(p.i, p.j, p.distance) for p in result.pairs] == [(0, 0, 1)]

    @pytest.mark.parametrize("method", ["partsj", "str", "set", "nested_loop"])
    @pytest.mark.parametrize("tau", [0, 1, 2])
    def test_matches_brute_force(self, rng, method, tau):
        left = make_cluster_forest(
            rng, clusters=2, cluster_size=3, base_size=8, max_edits=2
        )
        right = make_cluster_forest(
            rng, clusters=2, cluster_size=3, base_size=8, max_edits=2
        )
        # Plant guaranteed cross matches: share one tree across sides.
        right.append(left[0].copy())
        expected = brute_force_rs(left, right, tau)
        result = similarity_join_rs(left, right, tau, method=method)
        assert {(p.i, p.j, p.distance) for p in result.pairs} == expected

    def test_same_side_pairs_never_reported(self, rng):
        # Two identical trees inside `left` must not appear in the output.
        twin = make_random_tree(rng, 8)
        left = [twin, twin.copy()]
        right = [make_random_tree(rng, 8)]
        result = similarity_join_rs(left, right, 0)
        assert all(0 <= p.j < len(right) for p in result.pairs)
        assert result.stats.extra["same_side_pairs_discarded"] >= 1

    def test_indices_are_per_side(self, rng):
        left = [make_random_tree(rng, 6) for _ in range(3)]
        right = [left[2].copy()]
        result = similarity_join_rs(left, right, 0)
        assert (2, 0) in {(p.i, p.j) for p in result.pairs}

    def test_stats_method_tag(self, rng):
        left = [make_random_tree(rng, 6)]
        right = [make_random_tree(rng, 6)]
        assert similarity_join_rs(left, right, 1).stats.method == "PRT-RS"

    def test_empty_sides(self):
        assert similarity_join_rs([], [Tree.from_bracket("{a}")], 1).pairs == []
        assert similarity_join_rs([Tree.from_bracket("{a}")], [], 1).pairs == []

    def test_pairs_sorted(self, rng):
        left = make_cluster_forest(rng, 2, 2, 7, 1)
        right = [t.copy() for t in left]
        result = similarity_join_rs(left, right, 2)
        keys = [(p.i, p.j) for p in result.pairs]
        assert keys == sorted(keys)


class TestRSWorkers:
    """``workers`` is a first-class argument (it used to ride in
    ``**options``) and composes with ``config=`` like similarity_join's."""

    def test_workers_first_class_identical_results(self, rng):
        left = make_cluster_forest(rng, 2, 3, 8, 2)
        right = make_cluster_forest(rng, 2, 3, 8, 2)
        serial = similarity_join_rs(left, right, 2)
        parallel = similarity_join_rs(left, right, 2, workers=2)
        assert [(p.i, p.j, p.distance) for p in parallel.pairs] == [
            (p.i, p.j, p.distance) for p in serial.pairs
        ]

    def test_workers_composes_with_config(self, rng):
        left = make_cluster_forest(rng, 2, 3, 8, 2)
        right = [left[0].copy()] + make_cluster_forest(rng, 1, 2, 8, 1)
        config = PartSJConfig(semantics="paper")
        serial = similarity_join_rs(left, right, 1, config=config)
        parallel = similarity_join_rs(
            left, right, 1, config=config, workers=2
        )
        assert [(p.i, p.j, p.distance) for p in parallel.pairs] == [
            (p.i, p.j, p.distance) for p in serial.pairs
        ]

    def test_workers_validated(self, rng):
        left = [make_random_tree(rng, 5)]
        with pytest.raises(InvalidParameterError, match="workers"):
            similarity_join_rs(left, left, 1, workers=0)
        with pytest.raises(InvalidParameterError, match="workers"):
            similarity_join_rs(left, left, 1, workers="four")


class TestRSErrorPaths:
    def test_empty_sides_all_shapes(self, rng):
        tree = [make_random_tree(rng, 5)]
        assert similarity_join_rs([], tree, 1).pairs == []
        assert similarity_join_rs(tree, [], 1).pairs == []
        assert similarity_join_rs([], [], 1).pairs == []
        # tau=0 on an empty side is still a valid (empty) query.
        assert similarity_join_rs([], tree, 0).pairs == []

    def test_tau_zero_exact_duplicates_only(self, rng):
        base = make_random_tree(rng, 7)
        left = [base, make_random_tree(rng, 7)]
        right = [base.copy()]
        result = similarity_join_rs(left, right, 0)
        assert {(p.i, p.j, p.distance) for p in result.pairs} == {(0, 0, 0)}

    def test_negative_tau_rejected(self, rng):
        tree = [make_random_tree(rng, 5)]
        with pytest.raises(InvalidParameterError, match="tau"):
            similarity_join_rs(tree, tree, -1)

    def test_unknown_method_rejected(self, rng):
        tree = [make_random_tree(rng, 5)]
        with pytest.raises(InvalidParameterError, match="unknown join method"):
            similarity_join_rs(tree, tree, 1, method="magic")

    def test_config_kwargs_conflict_rejected(self, rng):
        tree = [make_random_tree(rng, 5)]
        with pytest.raises(InvalidParameterError, match="not both"):
            similarity_join_rs(
                tree, tree, 1, config=PartSJConfig(), semantics="paper"
            )
