"""Tests for the pq-gram extension (repro.extras.pqgram)."""

import pytest
from hypothesis import given, settings

from repro.errors import InvalidParameterError
from repro.extras.pqgram import DUMMY, pqgram_distance, pqgram_profile
from repro.tree.node import Tree
from tests.conftest import trees


class TestProfile:
    def test_single_node_profile(self):
        profile = pqgram_profile(Tree.from_bracket("{a}"), p=2, q=3)
        assert profile == {(DUMMY, "a", DUMMY, DUMMY, DUMMY): 1}

    def test_leaf_grams_padded(self):
        profile = pqgram_profile(Tree.from_bracket("{a{b}}"), p=1, q=1)
        assert profile[("a", "b")] == 1
        assert profile[("b", DUMMY)] == 1

    def test_window_slides_over_children(self):
        profile = pqgram_profile(Tree.from_bracket("{a{b}{c}}"), p=1, q=2)
        # Root windows: (*, b), (b, c), (c, *).
        assert profile[("a", DUMMY, "b")] == 1
        assert profile[("a", "b", "c")] == 1
        assert profile[("a", "c", DUMMY)] == 1

    def test_stems_track_ancestors(self):
        profile = pqgram_profile(Tree.from_bracket("{a{b{c}}}"), p=2, q=1)
        assert profile[("b", "c", DUMMY)] == 1  # stem (b, c), leaf base

    def test_invalid_parameters(self):
        tree = Tree.from_bracket("{a}")
        with pytest.raises(InvalidParameterError):
            pqgram_profile(tree, p=0, q=1)
        with pytest.raises(InvalidParameterError):
            pqgram_profile(tree, p=1, q=0)


class TestDistance:
    @given(trees(max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_identity(self, tree):
        assert pqgram_distance(tree, tree) == 0.0

    @given(trees(max_size=10), trees(max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_symmetry_and_range(self, t1, t2):
        d12 = pqgram_distance(t1, t2)
        assert d12 == pqgram_distance(t2, t1)
        assert 0.0 <= d12 <= 1.0

    def test_unnormalized_counts(self):
        t1 = Tree.from_bracket("{a{b}}")
        t2 = Tree.from_bracket("{a{c}}")
        raw = pqgram_distance(t1, t2, normalized=False)
        assert raw == float(int(raw))  # integral
        assert raw > 0

    def test_disjoint_labels_max_distance(self):
        t1 = Tree.from_bracket("{a{a}{a}}")
        t2 = Tree.from_bracket("{z{z}{z}}")
        assert pqgram_distance(t1, t2) == 1.0

    def test_small_change_small_distance(self):
        t1 = Tree.from_bracket("{a{b}{c}{d}{e}}")
        t2 = Tree.from_bracket("{a{b}{c}{d}{f}}")
        assert pqgram_distance(t1, t2) < 0.5
