"""Tests for binary branches and the BIB distance (repro.ted.binary_branch)."""

from collections import Counter

from hypothesis import given, settings

from repro.ted.binary_branch import (
    EPSILON,
    binary_branch_distance,
    binary_branches,
    branch_bag_distance,
)
from repro.ted.zhang_shasha import zhang_shasha
from repro.tree.node import Tree
from tests.conftest import trees


class TestBranchBags:
    def test_single_node(self):
        bag = binary_branches(Tree.from_bracket("{a}"))
        assert bag == Counter({("a", EPSILON, EPSILON): 1})

    def test_tree_has_one_branch_per_node(self):
        tree = Tree.from_bracket("{a{b{x}{y}}{c}}")
        assert sum(binary_branches(tree).values()) == tree.size

    def test_branches_read_from_lcrs_structure(self):
        # LC-RS of {a{b}{c}}: a.left=b, b.right=c.
        bag = binary_branches(Tree.from_bracket("{a{b}{c}}"))
        assert bag[("a", "b", EPSILON)] == 1
        assert bag[("b", EPSILON, "c")] == 1
        assert bag[("c", EPSILON, EPSILON)] == 1

    def test_duplicate_twigs_counted_with_multiplicity(self):
        tree = Tree.from_bracket("{a{x}{x}{x}}")
        bag = binary_branches(tree)
        assert bag[("x", EPSILON, "x")] == 2


class TestDistance:
    def test_identical_trees(self):
        tree = Tree.from_bracket("{a{b}{c{d}}}")
        assert binary_branch_distance(tree, tree) == 0

    def test_figure3_value(self):
        t1 = Tree.from_bracket("{a{b}{a{c}}}")
        t2 = Tree.from_bracket("{a{b{a}{c}}}")
        assert binary_branch_distance(t1, t2) == 4

    def test_bag_distance_formula(self):
        x1 = Counter({("a", "b", "c"): 2, ("d", EPSILON, EPSILON): 1})
        x2 = Counter({("a", "b", "c"): 1})
        # |X1| + |X2| - 2|X1 ∩ X2| = 3 + 1 - 2*1
        assert branch_bag_distance(x1, x2) == 2

    @given(t1=trees(max_size=10), t2=trees(max_size=10))
    @settings(max_examples=80, deadline=None)
    def test_five_ted_bound(self, t1, t2):
        # Yang et al.'s theorem: BIB <= 5 * TED.
        assert binary_branch_distance(t1, t2) <= 5 * zhang_shasha(t1, t2)

    @given(t1=trees(max_size=10), t2=trees(max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, t1, t2):
        assert binary_branch_distance(t1, t2) == binary_branch_distance(t2, t1)
