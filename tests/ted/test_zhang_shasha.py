"""Tests for the Zhang–Shasha TED algorithm (repro.ted.zhang_shasha)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ted.simple import ted_reference
from repro.ted.zhang_shasha import AnnotatedTree, zhang_shasha
from repro.tree.edits import random_script
from repro.tree.node import Tree
from tests.conftest import LABELS, make_random_tree, trees


class TestKnownDistances:
    @pytest.mark.parametrize("a,b,expected", [
        ("{a}", "{a}", 0),
        ("{a}", "{b}", 1),  # rename
        ("{a{b}}", "{a}", 1),  # delete leaf
        ("{a{b}{c}}", "{a{b}}", 1),
        ("{a{b}{c}}", "{a{c}{b}}", 2),  # ordered trees: swap costs 2
        ("{a{b{c}}}", "{a{c{b}}}", 2),
        ("{f{d{a}{c{b}}}{e}}", "{f{c{d{a}{b}}}{e}}", 2),  # Zhang-Shasha's classic
    ])
    def test_pairs(self, a, b, expected):
        assert zhang_shasha(Tree.from_bracket(a), Tree.from_bracket(b)) == expected

    def test_paper_figure3_trees(self):
        # The paper states TED(T1, T2) = 3 for Figure 3.
        t1 = Tree.from_bracket("{a{b}{a{c}}}")
        t2 = Tree.from_bracket("{a{b{a}{c}}}")
        assert zhang_shasha(t1, t2) == 3

    def test_figure2_single_operations(self):
        t1 = Tree.from_bracket("{l1{l2{l3{l4{l5}{l6}}}}{l7}}")
        t2 = Tree.from_bracket("{l1{l2{l3{l5}{l6}}}{l7}}")  # delete l4
        t3 = Tree.from_bracket("{l1{l2{l3{l5}{l6}}}{l8{l7}}}")  # insert l8
        assert zhang_shasha(t1, t2) == 1
        assert zhang_shasha(t2, t3) == 1
        assert zhang_shasha(t1, t3) == 2


class TestAgainstReference:
    @given(trees(max_size=8), trees(max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_oracle(self, t1, t2):
        assert zhang_shasha(t1, t2) == ted_reference(t1, t2)

    def test_randomized_larger_trees(self, rng):
        for _ in range(25):
            t1 = make_random_tree(rng, rng.randint(1, 11))
            t2 = make_random_tree(rng, rng.randint(1, 11))
            assert zhang_shasha(t1, t2) == ted_reference(t1, t2)


class TestMetricProperties:
    @given(trees(max_size=10), trees(max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, t1, t2):
        assert zhang_shasha(t1, t2) == zhang_shasha(t2, t1)

    @given(trees(max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_identity(self, t):
        assert zhang_shasha(t, t) == 0

    @given(trees(max_size=12), trees(max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_size_bound(self, t1, t2):
        distance = zhang_shasha(t1, t2)
        assert distance >= abs(t1.size - t2.size)
        assert distance <= t1.size + t2.size

    @given(trees(max_size=6), st.integers(min_value=0, max_value=4),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_upper_bounded_by_edit_script(self, tree, k, seed):
        edited, ops = random_script(tree, k, random.Random(seed), LABELS)
        assert zhang_shasha(tree, edited) <= len(ops)


class TestCustomCosts:
    def test_rename_cost_function(self):
        # Make renames free: distance collapses to pure shape difference.
        free_rename = lambda a, b: 0
        t1 = Tree.from_bracket("{a{b}{c}}")
        t2 = Tree.from_bracket("{x{y}{z}}")
        assert zhang_shasha(t1, t2, rename_cost=free_rename) == 0

    def test_expensive_rename_prefers_delete_insert(self):
        costly = lambda a, b: 0 if a == b else 10
        t1 = Tree.from_bracket("{a}")
        t2 = Tree.from_bracket("{b}")
        # delete + insert (cost 2) beats rename (cost 10)
        assert zhang_shasha(t1, t2, rename_cost=costly) == 2


class TestAnnotatedTree:
    def test_keyroots_contain_root(self):
        tree = Tree.from_bracket("{a{b{c}}{d}}")
        annotated = AnnotatedTree(tree)
        assert annotated.size == 4
        assert annotated.keyroots[-1] == 4  # root has the max postorder

    def test_left_chain_has_single_keyroot(self):
        annotated = AnnotatedTree(Tree.from_bracket("{a{b{c{d}}}}"))
        assert annotated.keyroots == [4]
        assert annotated.keyroot_weight() == 4

    def test_keyroot_count_matches_definition(self, rng):
        # A node is a keyroot iff it is the root or has a left sibling.
        tree = make_random_tree(rng, 30)
        annotated = AnnotatedTree(tree)
        expected = 1  # the root
        for node in tree.iter_preorder():
            expected += max(0, len(node.children) - 1)
        assert len(annotated.keyroots) == expected

    def test_reusable_across_calls(self):
        t1 = AnnotatedTree(Tree.from_bracket("{a{b}}"))
        t2 = AnnotatedTree(Tree.from_bracket("{a{c}}"))
        assert zhang_shasha(t1, t2) == 1
        assert zhang_shasha(t1, t2) == 1  # annotations not consumed
