"""Tests for TED lower/upper bounds (repro.ted.bounds).

The central property: every lower bound must never exceed the exact TED,
for any pair of trees.  Violations would make the baseline joins drop
results, so these are the most safety-critical tests in the suite.
"""

import pytest
from hypothesis import given, settings

from repro.ted.bounds import (
    binary_branch_lower_bound,
    composite_lower_bound,
    degree_histogram_lower_bound,
    label_multiset_lower_bound,
    size_lower_bound,
    traversal_string_lower_bound,
    trivial_upper_bound,
)
from repro.ted.zhang_shasha import zhang_shasha
from repro.tree.node import Tree
from tests.conftest import make_random_tree, trees

ALL_LOWER_BOUNDS = [
    size_lower_bound,
    label_multiset_lower_bound,
    degree_histogram_lower_bound,
    traversal_string_lower_bound,
    binary_branch_lower_bound,
    composite_lower_bound,
]


class TestLowerBoundSoundness:
    @pytest.mark.parametrize("bound", ALL_LOWER_BOUNDS)
    @given(t1=trees(max_size=10), t2=trees(max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_never_exceeds_ted(self, bound, t1, t2):
        assert bound(t1, t2) <= zhang_shasha(t1, t2)

    def test_randomized_soundness_sweep(self, rng):
        for _ in range(60):
            t1 = make_random_tree(rng, rng.randint(1, 12))
            t2 = make_random_tree(rng, rng.randint(1, 12))
            exact = zhang_shasha(t1, t2)
            for bound in ALL_LOWER_BOUNDS:
                assert bound(t1, t2) <= exact, bound.__name__


class TestKnownValues:
    def test_size_bound(self):
        t1 = Tree.from_bracket("{a{b}}")
        t2 = Tree.from_bracket("{a{b}{c}{d}}")
        assert size_lower_bound(t1, t2) == 2

    def test_label_bound_counts_bag_moves(self):
        t1 = Tree.from_bracket("{a{b}}")
        t2 = Tree.from_bracket("{a{c}}")  # one rename: L1 = 2 -> bound 1
        assert label_multiset_lower_bound(t1, t2) == 1

    def test_label_bound_identical_bags(self):
        t1 = Tree.from_bracket("{a{b}{c}}")
        t2 = Tree.from_bracket("{a{c}{b}}")
        assert label_multiset_lower_bound(t1, t2) == 0

    def test_degree_bound(self):
        star = Tree.from_bracket("{a{b}{c}{d}}")  # degrees: 3,0,0,0
        chain = Tree.from_bracket("{a{b{c{d}}}}")  # degrees: 1,1,1,0
        # L1 = |3:1-0| + |1:1-3| + |0:3-1| = 1+2+2 = 5 -> ceil(5/3) = 2
        assert degree_histogram_lower_bound(star, chain) == 2

    def test_traversal_bound_on_figure3(self):
        # Paper: preorder SED 0, postorder SED 2 for the Figure 3 trees.
        t1 = Tree.from_bracket("{a{b}{a{c}}}")
        t2 = Tree.from_bracket("{a{b{a}{c}}}")
        assert traversal_string_lower_bound(t1, t2) == 2

    def test_binary_branch_bound_on_figure3(self):
        t1 = Tree.from_bracket("{a{b}{a{c}}}")
        t2 = Tree.from_bracket("{a{b{a}{c}}}")
        # BIB = 4 on LC-RS representations -> ceil(4/5) = 1 <= TED = 3
        assert binary_branch_lower_bound(t1, t2) == 1

    def test_composite_takes_the_max(self):
        t1 = Tree.from_bracket("{a{b}}")
        t2 = Tree.from_bracket("{x{y}{z}{w}}")
        components = [
            size_lower_bound(t1, t2),
            label_multiset_lower_bound(t1, t2),
            degree_histogram_lower_bound(t1, t2),
            binary_branch_lower_bound(t1, t2),
        ]
        assert composite_lower_bound(t1, t2) == max(components)


class TestUpperBound:
    @given(t1=trees(max_size=10), t2=trees(max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_trivial_upper_bound_is_valid(self, t1, t2):
        assert zhang_shasha(t1, t2) <= trivial_upper_bound(t1, t2)

    def test_equal_roots_save_one(self):
        t1 = Tree.from_bracket("{a{b}}")
        t2 = Tree.from_bracket("{a{c}{d}}")
        assert trivial_upper_bound(t1, t2) == 1 + 0 + 2
